//! Reproduces the paper's Fig. 3 flow: find the voltage guardband,
//! critical region and crash point of every benchmark on all three board
//! samples.
//!
//! ```text
//! cargo run --release --example guardband_scan
//! ```

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::{Accelerator, AcceleratorConfig};
use redvolt::core::guardband::{find_regions, RegionSearchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>5} {:>8} {:>9} {:>11} {:>10}",
        "model", "board", "Vmin mV", "Vcrash mV", "guardband", "critical"
    );
    let mut vmins = Vec::new();
    for benchmark in BenchmarkId::ALL {
        for board in 0..3u32 {
            let mut acc = Accelerator::bring_up(&AcceleratorConfig {
                board_sample: board,
                benchmark,
                eval_images: 50,
                repetitions: 3,
                ..AcceleratorConfig::default()
            })?;
            let r = find_regions(
                &mut acc,
                &RegionSearchConfig {
                    step_mv: 5.0,
                    images: 50,
                    accuracy_tolerance: 0.01,
                },
            )?;
            println!(
                "{:<10} {:>5} {:>8.0} {:>9.0} {:>10.1}% {:>8.0}mV",
                benchmark.name(),
                board,
                r.vmin_mv,
                r.vcrash_mv,
                r.guardband_fraction() * 100.0,
                r.critical_mv()
            );
            vmins.push(r.vmin_mv);
        }
    }
    let mean = vmins.iter().sum::<f64>() / vmins.len() as f64;
    let spread = vmins.iter().cloned().fold(f64::MIN, f64::max)
        - vmins.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nmean Vmin {mean:.0} mV (paper: 570), spread {spread:.0} mV (paper dVmin: 31)");
    Ok(())
}

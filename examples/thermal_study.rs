//! Reproduces the paper's §7 flow: regulate the board temperature through
//! the PMBus fan interface and measure the power (Fig. 9) and reliability
//! (Fig. 10 / inverse thermal dependence) effects.
//!
//! ```text
//! cargo run --release --example thermal_study
//! ```

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::{Accelerator, AcceleratorConfig};
use redvolt::core::sweep::SweepConfig;
use redvolt::core::tempexp::{temperature_study, SETPOINTS_C};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // First show the physical fan loop the paper used: duty -> temperature.
    let mut acc = Accelerator::bring_up(&AcceleratorConfig {
        benchmark: BenchmarkId::GoogleNet,
        ..AcceleratorConfig::default()
    })?;
    acc.measure(32)?; // publish the running load
    println!("fan duty -> junction temperature (PMBus loop):");
    for duty in [100.0, 50.0, 0.0] {
        acc.set_fan_percent(duty)?;
        println!("  {:>5.0}% -> {:.1} C", duty, acc.read_temperature_c()?);
    }

    // Then the chamber-mode campaign at the paper's set-points.
    let study = temperature_study(
        &AcceleratorConfig {
            benchmark: BenchmarkId::GoogleNet,
            eval_images: 100,
            repetitions: 5,
            ..AcceleratorConfig::default()
        },
        &SETPOINTS_C,
        &SweepConfig {
            start_mv: 850.0,
            stop_mv: 535.0,
            step_mv: 5.0,
            images: 100,
        },
    )?;

    println!("\npower (W) vs voltage and temperature:");
    println!("{:>7} {:>8} {:>8} {:>8}", "mV", "34C", "43C", "52C");
    for &mv in &[850.0, 650.0, 570.0] {
        print!("{mv:>7.0}");
        for &t in &SETPOINTS_C {
            let p = study
                .at_temp(t)
                .and_then(|c| c.sweep.at_mv(mv))
                .map(|m| format!("{:.3}", m.power_w))
                .unwrap_or_default();
            print!(" {p:>8}");
        }
        println!();
    }

    println!("\naccuracy vs voltage and temperature (ITD heals timing when hot):");
    println!("{:>7} {:>8} {:>8} {:>8}", "mV", "34C", "43C", "52C");
    for &mv in &[570.0, 560.0, 550.0, 545.0] {
        print!("{mv:>7.0}");
        for &t in &SETPOINTS_C {
            let a = study
                .at_temp(t)
                .and_then(|c| c.sweep.at_mv(mv))
                .map(|m| format!("{:.1}%", m.accuracy * 100.0))
                .unwrap_or_else(|| "crash".into());
            print!(" {a:>8}");
        }
        println!();
    }

    if let Some((t, mv, p)) = study.optimal_point(0.01) {
        println!("\noptimal point (paper §7.3): {t:.0} C at {mv:.0} mV — {p:.2} W");
    }
    Ok(())
}

//! Extension of the paper's §9 future work (ii): a closed-loop voltage
//! governor that discovers and tracks the minimum safe voltage online,
//! using fault-detection counters as feedback — no prior calibration.
//!
//! ```text
//! cargo run --release --example adaptive_governor
//! ```

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::{Accelerator, AcceleratorConfig};
use redvolt::core::governor::{run_governor, GovernorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut acc = Accelerator::bring_up(&AcceleratorConfig {
        benchmark: BenchmarkId::GoogleNet,
        eval_images: 32,
        repetitions: 1,
        ..AcceleratorConfig::default()
    })?;

    let trace = run_governor(&mut acc, &GovernorConfig::default(), 140)?;

    println!("governor trajectory (every 10th batch):");
    println!(
        "{:>6} {:>9} {:>9} {:>7}",
        "batch", "VCCINT", "power W", "faults"
    );
    for step in trace.steps.iter().step_by(10) {
        println!(
            "{:>6} {:>7.0}mV {:>9.2} {:>7}{}",
            step.batch,
            step.vccint_mv,
            step.power_w,
            step.faults,
            if step.crashed {
                "  [CRASH->power-cycle]"
            } else {
                ""
            }
        );
    }
    let first = trace.steps.first().expect("non-empty trace");
    let last = trace.steps.last().expect("non-empty trace");
    println!(
        "\nsettled at {:.0} mV; power {:.2} W -> {:.2} W ({:.1}x saving), {} crash events",
        trace.settled_mv,
        first.power_w,
        last.power_w,
        first.power_w / last.power_w,
        trace.crash_count()
    );
    Ok(())
}

//! Quickstart: bring up a simulated ZCU102, run CNN inference on the DPU,
//! and undervolt the core rail over PMBus.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::{Accelerator, AcceleratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Board sample 0 with GoogleNet on the 3-core B4096 DPU at INT8.
    let mut acc = Accelerator::bring_up(&AcceleratorConfig {
        benchmark: BenchmarkId::GoogleNet,
        ..AcceleratorConfig::default()
    })?;

    println!("GoogleNet on ZCU102 sample 0 (3x B4096 @ 333 MHz, INT8)\n");
    println!(
        "{:>8} {:>9} {:>8} {:>9} {:>7}",
        "VCCINT", "power W", "GOPs", "GOPs/W", "acc"
    );

    // Nominal operation.
    let nominal = acc.measure(100)?;
    print_point(&nominal);

    // Eliminate the guardband: still fault-free, ~2.6x the efficiency.
    acc.set_vccint_mv(570.0)?;
    let vmin = acc.measure(100)?;
    print_point(&vmin);

    // Push into the critical region: efficiency keeps rising, accuracy pays.
    for mv in [560.0, 550.0, 540.0] {
        acc.set_vccint_mv(mv)?;
        print_point(&acc.measure(100)?);
    }

    // One step further and the board hangs...
    acc.set_vccint_mv(535.0)
        .and_then(|()| acc.measure(100).map(|_| ()))
        .expect_err("535 mV is below Vcrash");
    println!("\n535 mV: board hung (Vcrash reached) — power-cycling");

    // ...until we power-cycle it.
    acc.power_cycle();
    let recovered = acc.measure(100)?;
    println!(
        "after power cycle: {:.2} W at {:.0} mV, accuracy {:.1}%",
        recovered.power_w,
        recovered.vccint_mv,
        recovered.accuracy * 100.0
    );

    let gain = vmin.gops_per_w / nominal.gops_per_w;
    println!("\nguardband elimination gain: {gain:.2}x GOPs/W at zero accuracy cost");
    Ok(())
}

fn print_point(m: &redvolt::core::experiment::Measurement) {
    println!(
        "{:>6.0}mV {:>9.2} {:>8.0} {:>9.1} {:>6.1}%",
        m.vccint_mv,
        m.power_w,
        m.gops,
        m.gops_per_w,
        m.accuracy * 100.0
    );
}

//! Reproduces the paper's §5 / Table-2 flow: below the guardband, rescue
//! accuracy by underscaling the DPU clock, and compare the GOPs/W vs
//! GOPs/J trade-off of each safe (V, F) point.
//!
//! ```text
//! cargo run --release --example frequency_rescue
//! ```

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::{Accelerator, AcceleratorConfig};
use redvolt::core::freqscale::{frequency_underscaling, FreqScaleConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut acc = Accelerator::bring_up(&AcceleratorConfig {
        benchmark: BenchmarkId::VggNet,
        eval_images: 100,
        repetitions: 5,
        ..AcceleratorConfig::default()
    })?;

    // First, show the problem: at 545 mV and full clock, accuracy dies.
    acc.set_vccint_mv(545.0)?;
    let broken = acc.measure(100)?;
    println!(
        "545 mV @ 333 MHz: accuracy {:.1}% ({} faults injected)",
        broken.accuracy * 100.0,
        broken.injected_faults
    );

    // Then run the paper's search: per voltage, the largest safe clock.
    acc.power_cycle();
    let rows = frequency_underscaling(
        &mut acc,
        &FreqScaleConfig {
            images: 100,
            ..FreqScaleConfig::default()
        },
    )?;

    println!(
        "\n{:>7} {:>6} {:>6} {:>7} {:>7} {:>7}",
        "VCCINT", "Fmax", "GOPs", "Power", "GOPs/W", "GOPs/J"
    );
    for r in &rows {
        println!(
            "{:>5.0}mV {:>6.0} {:>6.2} {:>7.2} {:>7.2} {:>7.2}",
            r.vccint_mv,
            r.fmax_mhz,
            r.gops_norm,
            r.power_norm,
            r.gops_per_w_norm,
            r.gops_per_j_norm
        );
    }
    let best_j = rows
        .iter()
        .max_by(|a, b| a.gops_per_j_norm.total_cmp(&b.gops_per_j_norm))
        .expect("non-empty table");
    println!(
        "\nbest GOPs/J at ({:.0} mV, {:.0} MHz) — the paper's conclusion: \
         stay at (Vmin, Fmax); underscale only for GOPs/W",
        best_j.vccint_mv, best_j.fmax_mhz
    );
    Ok(())
}

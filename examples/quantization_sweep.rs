//! Reproduces the paper's Fig. 7 flow: combine undervolting with INT8..4
//! quantization on VGGNet and observe the efficiency/vulnerability
//! trade-off.
//!
//! ```text
//! cargo run --release --example quantization_sweep
//! ```

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::AcceleratorConfig;
use redvolt::core::quantexp::{quantization_study, FIG7_PRECISIONS};
use redvolt::core::sweep::SweepConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = quantization_study(
        &AcceleratorConfig {
            benchmark: BenchmarkId::VggNet,
            eval_images: 100,
            repetitions: 5,
            ..AcceleratorConfig::default()
        },
        &FIG7_PRECISIONS,
        &SweepConfig {
            start_mv: 850.0,
            stop_mv: 535.0,
            step_mv: 5.0,
            images: 100,
        },
    )?;

    println!("accuracy (top) and GOPs/W (bottom) per precision and voltage\n");
    print!("{:>7}", "mV");
    for bits in FIG7_PRECISIONS {
        print!(" {:>9}", format!("INT{bits}"));
    }
    println!();
    for &mv in &[850.0, 700.0, 570.0, 560.0, 550.0, 540.0] {
        print!("{mv:>7.0}");
        for bits in FIG7_PRECISIONS {
            let cell = study
                .at_bits(bits)
                .and_then(|c| c.sweep.at_mv(mv))
                .map(|m| format!("{:.1}%", m.accuracy * 100.0))
                .unwrap_or_else(|| "crash".into());
            print!(" {cell:>9}");
        }
        println!();
    }
    println!();
    for &mv in &[850.0, 570.0, 540.0] {
        print!("{mv:>7.0}");
        for bits in FIG7_PRECISIONS {
            let cell = study
                .at_bits(bits)
                .and_then(|c| c.sweep.at_mv(mv))
                .map(|m| format!("{:.0}", m.gops_per_w))
                .unwrap_or_else(|| "crash".into());
            print!(" {cell:>9}");
        }
        println!("  GOPs/W");
    }
    println!(
        "\nlower precision: higher GOPs/W at every voltage, but more accuracy\n\
         loss from both quantization noise and undervolting faults (Fig. 7)."
    );
    Ok(())
}

//! Extension of the paper's §9 future work (i): Razor-style
//! detect-and-retry fault mitigation at the full 333 MHz clock, below the
//! voltage guardband.
//!
//! Where §5's frequency underscaling trades throughput *statically*, the
//! Razor scheme pays only for the inferences that actually fault —
//! until the fault rate saturates near Vcrash and retries stop converging.
//!
//! ```text
//! cargo run --release --example razor_mitigation
//! ```

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::{Accelerator, AcceleratorConfig};
use redvolt::core::mitigation::mitigation_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut acc = Accelerator::bring_up(&AcceleratorConfig {
        benchmark: BenchmarkId::VggNet,
        eval_images: 100,
        repetitions: 4,
        ..AcceleratorConfig::default()
    })?;

    let study = mitigation_study(&mut acc, 570.0, 540.0, 5.0, 100, 8)?;

    println!(
        "{:>7} {:>11} {:>11} {:>13} {:>11} {:>11}",
        "VCCINT", "mitigated", "plain", "attempts/img", "eff GOPs/W", "unresolved"
    );
    for p in &study.points {
        println!(
            "{:>5.0}mV {:>10.1}% {:>10.1}% {:>13.2} {:>11.0} {:>10.1}%",
            p.vccint_mv,
            p.accuracy * 100.0,
            p.unmitigated_accuracy * 100.0,
            p.attempts_per_image,
            p.effective_gops_per_w,
            p.unresolved_fraction * 100.0
        );
    }
    println!(
        "\nRazor recovers nominal accuracy through the upper critical region\n\
         for a modest redundancy cost; approaching Vcrash every attempt\n\
         faults and the scheme collapses — frequency underscaling (Table 2)\n\
         remains the only rescue there."
    );
    Ok(())
}

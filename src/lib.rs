//! # redvolt — reduced-voltage FPGA CNN acceleration, reproduced in Rust
//!
//! `redvolt` is a full software reproduction of *"An Experimental Study of
//! Reduced-Voltage Operation in Modern FPGAs for Neural Network
//! Acceleration"* (Salami et al., DSN 2020). The paper undervolts the
//! `VCCINT`/`VCCBRAM` rails of three real Xilinx ZCU102 boards running
//! DPU-based CNN inference; this workspace rebuilds the entire measurement
//! stack — PMBus control plane, calibrated board physics, DPU accelerator,
//! CNN inference, fault injection and the experiment methodology — so every
//! table and figure of the paper can be regenerated on a laptop.
//!
//! This facade crate re-exports the sub-crates under stable module names:
//!
//! * [`num`] — interpolation, statistics, RNG, fixed point.
//! * [`pmbus`] — the PMBus protocol used to monitor and regulate rails.
//! * [`fpga`] — the ZCU102 board simulator (power / thermal / timing).
//! * [`nn`] — CNN inference, quantization, pruning, benchmark models.
//! * [`faults`] — undervolting timing-fault models and bit-flip injection.
//! * [`dpu`] — the B4096-style accelerator and DNNDK-like runtime.
//! * [`telemetry`] — deterministic metrics, spans and progress reporting.
//! * [`core`] — the paper's measurement campaigns as a library.
//! * [`serve`] — the deterministic inference-serving subsystem: fleet
//!   scheduler, admission control and Vmin-aware routing.
//!
//! # Quickstart
//!
//! ```
//! use redvolt::core::bench_suite::BenchmarkId;
//! use redvolt::core::experiment::{Accelerator, AcceleratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Bring up board sample #0 with GoogleNet on the 3×B4096 DPU.
//! // (`tiny` shrinks the model for this doc test; experiments use
//! // `AcceleratorConfig::default()`.)
//! let mut acc = Accelerator::bring_up(&AcceleratorConfig {
//!     board_sample: 0,
//!     ..AcceleratorConfig::tiny(BenchmarkId::GoogleNet)
//! })?;
//!
//! // Measure at the nominal 850 mV, then inside the guardband at 600 mV.
//! let nominal = acc.measure(16)?;
//! acc.set_vccint_mv(600.0)?;
//! let undervolted = acc.measure(16)?;
//!
//! assert!(undervolted.power_w < nominal.power_w);
//! assert!((undervolted.accuracy - nominal.accuracy).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

pub use redvolt_core as core;
pub use redvolt_dpu as dpu;
pub use redvolt_faults as faults;
pub use redvolt_fpga as fpga;
pub use redvolt_nn as nn;
pub use redvolt_num as num;
pub use redvolt_pmbus as pmbus;
pub use redvolt_serve as serve;
pub use redvolt_telemetry as telemetry;

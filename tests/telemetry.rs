//! Acceptance tests for the deterministic telemetry pipeline:
//!
//! (a) the exported telemetry of a heavy-fault supervised campaign is a
//!     pure function of (seed, plan) — byte-identical JSONL and
//!     Prometheus output at `jobs = 1`, `2` and `8`, and
//! (b) `--metrics-out` composes with `--resume`: the metrics exported by
//!     an interrupted-then-resumed campaign match a straight run byte
//!     for byte (spans are deliberately not journaled, so only the
//!     metric families are part of the resume contract).

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::executor::{CampaignPlan, CellAction, CellSpec};
use redvolt::core::experiment::AcceleratorConfig;
use redvolt::core::governor::GovernorConfig;
use redvolt::core::supervisor::{run_supervised, run_supervised_journaled, SupervisorConfig};
use redvolt::core::sweep::SweepConfig;
use redvolt::core::telemetry::{bus_stats_table, CampaignTelemetry};
use redvolt::faults::bus::BusFaultProfile;
use std::path::PathBuf;

/// A five-cell mixed plan under the heavy PMBus fault profile — the
/// adversarial setting from the issue's acceptance criterion.
fn heavy_plan(master_seed: u64) -> CampaignPlan {
    let heavy = |benchmark, board| AcceleratorConfig {
        board_sample: board,
        eval_images: 12,
        repetitions: 2,
        bus_faults: BusFaultProfile::heavy(),
        ..AcceleratorConfig::tiny(benchmark)
    };
    let mut plan = CampaignPlan::new(master_seed);
    for board in [0u32, 1] {
        plan.push(CellSpec {
            config: heavy(BenchmarkId::VggNet, board),
            action: CellAction::Sweep(SweepConfig {
                start_mv: 620.0,
                stop_mv: 580.0,
                step_mv: 20.0,
                images: 12,
            }),
            force_temp_c: None,
        });
    }
    plan.push(CellSpec {
        config: heavy(BenchmarkId::GoogleNet, 2),
        action: CellAction::Governor {
            config: GovernorConfig {
                batch_images: 8,
                ..GovernorConfig::default()
            },
            batches: 4,
        },
        force_temp_c: None,
    });
    plan.push(CellSpec {
        config: heavy(BenchmarkId::AlexNet, 0),
        action: CellAction::Measure {
            vccint_mv: Some(600.0),
            images: 12,
        },
        force_temp_c: None,
    });
    plan.push(CellSpec {
        config: heavy(BenchmarkId::GoogleNet, 1),
        action: CellAction::Measure {
            vccint_mv: None,
            images: 12,
        },
        force_temp_c: Some(45.0),
    });
    plan
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("redvolt-telemetry-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.journal", std::process::id()))
}

#[test]
fn heavy_fault_telemetry_is_jobs_invariant() {
    let plan = heavy_plan(42);
    let reference = {
        let sup = run_supervised(&plan, 1, &SupervisorConfig::default(), None).unwrap();
        let telem = CampaignTelemetry::collect(&sup.report);
        (telem.to_jsonl(), telem.to_prometheus())
    };
    assert!(!reference.0.is_empty());
    assert!(reference.1.contains("redvolt_bus_transactions_total"));

    for jobs in [2usize, 8] {
        let sup = run_supervised(&plan, jobs, &SupervisorConfig::default(), None).unwrap();
        let telem = CampaignTelemetry::collect(&sup.report);
        assert_eq!(
            telem.to_jsonl(),
            reference.0,
            "JSONL diverged at jobs={jobs}"
        );
        assert_eq!(
            telem.to_prometheus(),
            reference.1,
            "Prometheus diverged at jobs={jobs}"
        );
    }
}

#[test]
fn metrics_export_composes_with_resume() {
    let plan = heavy_plan(7);
    let straight = run_supervised(&plan, 2, &SupervisorConfig::default(), None).unwrap();
    let straight_telem = CampaignTelemetry::collect(&straight.report);

    let path = temp_journal("resume-metrics");
    let halted = run_supervised_journaled(
        &plan,
        2,
        &SupervisorConfig {
            halt_after: Some(2),
            ..SupervisorConfig::default()
        },
        &path,
        false,
    )
    .unwrap();
    assert!(halted.interrupted);

    let resumed =
        run_supervised_journaled(&plan, 2, &SupervisorConfig::default(), &path, true).unwrap();
    assert!(!resumed.interrupted);
    assert_eq!(resumed.resumed_cells, 2);
    let resumed_telem = CampaignTelemetry::collect(&resumed.report);

    // Every metric family — counters, histograms, gauges — round-trips
    // through the journal's ` telem=` blob, so the Prometheus exposition
    // is byte-identical. (The JSONL stream is not compared: spans are
    // not journaled, so a resumed campaign legitimately has fewer.)
    assert_eq!(
        resumed_telem.to_prometheus(),
        straight_telem.to_prometheus()
    );
    // The stdout bus-health table printed by `repro` obeys the same
    // contract — fault-smoke CI `cmp`s straight vs resumed stdout.
    assert_eq!(
        bus_stats_table(&resumed.report).to_text(),
        bus_stats_table(&straight.report).to_text()
    );
    assert_eq!(
        resumed_telem.summary_table().to_text(),
        straight_telem.summary_table().to_text()
    );

    std::fs::remove_file(&path).ok();
}

/// Satellite: the PMBus adapter's fault-handling counters — retries,
/// PEC failures, retry exhaustion — must surface as metric families in
/// the Prometheus exposition, and a heavy fault profile must actually
/// move the retry/PEC counters (a profile that exercises nothing would
/// make the exposition vacuous).
#[test]
fn heavy_fault_prometheus_reports_bus_health_counters() {
    let plan = heavy_plan(13);
    let sup = run_supervised(&plan, 2, &SupervisorConfig::default(), None).unwrap();
    let prom = CampaignTelemetry::collect(&sup.report).to_prometheus();
    let value = |name: &str| -> f64 {
        prom.lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(value("redvolt_bus_transactions_total") > 0.0);
    assert!(
        value("redvolt_bus_retries_total") > 0.0,
        "heavy profile must force retries"
    );
    assert!(
        value("redvolt_bus_pec_failures_total") > 0.0,
        "heavy profile must corrupt some PEC bytes"
    );
    // Exhaustion stays at zero under the resilient adapter, but the
    // family must be reported so dashboards can alert on it.
    assert_eq!(value("redvolt_bus_exhausted_total"), 0.0);
    // The SDC defense families are registered even for undefended
    // campaigns (all-zero), so scrapes never see families come and go.
    for name in [
        "redvolt_ecc_corrected_words_total",
        "redvolt_ecc_uncorrectable_words_total",
        "redvolt_abft_checks_total",
        "redvolt_abft_mismatches_total",
        "redvolt_scrub_passes_total",
        "redvolt_cells_degraded_total",
    ] {
        assert_eq!(value(name), 0.0, "{name} should be zero when undefended");
    }
    // Span-ring overflow is surfaced, never silent: the family is always
    // exported, and a campaign small enough to fit the ring reports 0.
    assert_eq!(value("redvolt_spans_dropped_total"), 0.0);
}

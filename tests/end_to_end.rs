//! Cross-crate integration tests: the full stack from PMBus writes down
//! to faulty integer arithmetic, exercised the way the paper's
//! measurement scripts drive the real hardware.
//!
//! Triage verdict on the seed's "failing" tests: none of the failures in
//! this file were wrong tolerances or model bugs. The whole suite failed
//! to BUILD because `Cargo.toml` pulled `rand`/`serde`/`proptest` from a
//! registry that is unreachable in the build environment (no lockfile, no
//! cargo cache). With those dependencies replaced by vendored path crates
//! (`vendor/proptest`, `vendor/criterion`) the build succeeds offline and
//! every assertion below passes deterministically, unchanged.

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::{Accelerator, AcceleratorConfig, MeasureError};
use redvolt::core::guardband::{find_regions, RegionSearchConfig};
use redvolt::core::sweep::{voltage_sweep, SweepConfig};
use redvolt::fpga::board::Zcu102Board;
use redvolt::fpga::power::LoadProfile;
use redvolt::pmbus::adapter::PmbusAdapter;
use redvolt::pmbus::PmbusError;

fn tiny(benchmark: BenchmarkId) -> AcceleratorConfig {
    AcceleratorConfig::tiny(benchmark)
}

#[test]
fn paper_headline_guardband_elimination() {
    // Headline 1: eliminating the guardband gives ~2.6x GOPs/W for free.
    let mut acc = Accelerator::bring_up(&tiny(BenchmarkId::GoogleNet)).unwrap();
    let nominal = acc.measure(24).unwrap();
    acc.set_vccint_mv(570.0).unwrap();
    let vmin = acc.measure(24).unwrap();
    assert_eq!(vmin.accuracy, nominal.accuracy, "guardband is loss-free");
    assert_eq!(vmin.injected_faults, 0);
    let gain = vmin.gops_per_w / nominal.gops_per_w;
    assert!((2.4..2.8).contains(&gain), "gain = {gain}");
}

#[test]
fn paper_headline_crash_and_recovery() {
    // Below Vcrash the FPGA stops responding; a power cycle recovers it.
    let mut acc = Accelerator::bring_up(&tiny(BenchmarkId::VggNet)).unwrap();
    acc.measure(8).unwrap();
    let r = acc
        .set_vccint_mv(530.0)
        .and_then(|()| acc.measure(8).map(|_| ()));
    assert!(matches!(r, Err(MeasureError::Crashed { .. })));
    acc.power_cycle();
    assert!(acc.measure(8).is_ok());
}

#[test]
fn every_benchmark_survives_a_full_sweep() {
    for benchmark in BenchmarkId::ALL {
        let mut acc = Accelerator::bring_up(&tiny(benchmark)).unwrap();
        let sweep = voltage_sweep(
            &mut acc,
            &SweepConfig {
                start_mv: 850.0,
                stop_mv: 520.0,
                step_mv: 20.0,
                images: 8,
            },
        )
        .unwrap();
        assert!(
            sweep.crashed_at_mv.is_some(),
            "{} should reach Vcrash",
            benchmark.name()
        );
        assert!(sweep.points.len() >= 13, "{}", benchmark.name());
    }
}

#[test]
fn boards_disagree_on_vmin_like_real_silicon() {
    let regions: Vec<f64> = (0..3)
        .map(|board| {
            let mut acc = Accelerator::bring_up(&AcceleratorConfig {
                board_sample: board,
                ..tiny(BenchmarkId::VggNet)
            })
            .unwrap();
            find_regions(
                &mut acc,
                &RegionSearchConfig {
                    step_mv: 5.0,
                    images: 8,
                    accuracy_tolerance: 0.01,
                },
            )
            .unwrap()
            .vmin_mv
        })
        .collect();
    let spread = regions.iter().cloned().fold(f64::MIN, f64::max)
        - regions.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (15.0..=45.0).contains(&spread),
        "dVmin = {spread} mV across boards {regions:?} (paper: 31 mV)"
    );
}

#[test]
fn pmbus_methodology_is_observable() {
    // The entire control/telemetry flow goes over the bus, like the
    // paper's scripts through the Maxim PMBus adapter.
    let mut acc = Accelerator::bring_up(&tiny(BenchmarkId::VggNet)).unwrap();
    acc.set_vccint_mv(600.0).unwrap();
    acc.measure(8).unwrap();
    let log = acc.bus_log();
    use redvolt::pmbus::command::CommandCode;
    assert!(log
        .iter()
        .any(|t| t.command == CommandCode::VoutCommand && t.address == 0x13));
    assert!(log
        .iter()
        .any(|t| t.command == CommandCode::ReadPout && t.address == 0x13));
    assert!(log.iter().all(|t| t.ok));
}

#[test]
fn raw_board_is_usable_without_the_experiment_layer() {
    // The substrates compose independently of redvolt-core.
    let mut board = Zcu102Board::new(1).with_exact_telemetry();
    board.set_load(LoadProfile::nominal());
    let mut host = PmbusAdapter::new();
    host.set_vout(&mut board, 0x13, 0.62).unwrap();
    let p = host.read_pout(&mut board, 0x13).unwrap();
    assert!(p > 1.0 && p < 12.0, "p = {p}");
    assert!(matches!(
        host.set_vout(&mut board, 0x17, 2.0),
        Err(PmbusError::Rejected { .. })
    ));
}

#[test]
fn fault_injection_is_reproducible_across_full_stack() {
    let run = || {
        let mut acc = Accelerator::bring_up(&tiny(BenchmarkId::ResNet50)).unwrap();
        acc.set_vccint_mv(550.0).unwrap();
        let m = acc.measure(16).unwrap();
        (m.accuracy, m.injected_faults)
    };
    assert_eq!(run(), run());
}

#[test]
fn lower_precision_improves_efficiency_on_both_axes() {
    // Narrower operands draw less switching energy AND move fewer DDR
    // bytes (higher GOPs on the roofline) — Fig. 7b's efficiency spread.
    let mut int8 = Accelerator::bring_up(&tiny(BenchmarkId::VggNet)).unwrap();
    let mut int4 = Accelerator::bring_up(&AcceleratorConfig {
        bits: 4,
        ..tiny(BenchmarkId::VggNet)
    })
    .unwrap();
    let m8 = int8.measure(8).unwrap();
    let m4 = int4.measure(8).unwrap();
    assert!(m4.power_w < m8.power_w);
    assert!(m4.gops >= m8.gops);
    assert!(m4.gops_per_w > m8.gops_per_w);
}

//! The acceptance criterion for the parallel campaign executor: the
//! serialized science payload of a [`CampaignPlan`] is a pure function of
//! the plan — byte-identical for every `--jobs` value and across repeated
//! runs. Each cell derives its RNG seed from `(master_seed, cell_index)`,
//! so nothing the scheduler does (worker count, interleaving, load
//! balance) can leak into the results.

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::executor::{CampaignPlan, CellAction, CellOutcome, CellSpec};
use redvolt::core::experiment::AcceleratorConfig;
use redvolt::core::governor::GovernorConfig;
use redvolt::core::sweep::SweepConfig;
use redvolt_faults::bus::BusFaultProfile;
use redvolt_nn::abft::DefenseMode;

/// A small mixed-action plan covering every [`CellAction`] variant: a
/// sweep grid over two benchmarks × two boards, plus a governor cell and
/// two measurement cells.
fn mixed_plan(master_seed: u64) -> CampaignPlan {
    let base = AcceleratorConfig {
        eval_images: 12,
        repetitions: 2,
        ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
    };
    let sweep = SweepConfig {
        start_mv: 620.0,
        stop_mv: 560.0,
        step_mv: 20.0,
        images: 12,
    };
    let mut plan = CampaignPlan::sweep_grid(
        master_seed,
        &[BenchmarkId::GoogleNet, BenchmarkId::AlexNet],
        &[0, 1],
        base,
        sweep,
    );
    plan.push(CellSpec {
        config: base,
        action: CellAction::Governor {
            config: GovernorConfig {
                batch_images: 8,
                ..GovernorConfig::default()
            },
            batches: 6,
        },
        force_temp_c: None,
    });
    plan.push(CellSpec {
        config: base,
        action: CellAction::Measure {
            vccint_mv: None,
            images: 12,
        },
        force_temp_c: None,
    });
    plan.push(CellSpec {
        config: base,
        action: CellAction::Measure {
            vccint_mv: Some(600.0),
            images: 12,
        },
        force_temp_c: Some(45.0),
    });
    plan
}

#[test]
fn campaign_results_are_identical_for_every_job_count() {
    let plan = mixed_plan(42);
    let serial = plan.run(1).unwrap().to_csv();
    for jobs in [2, 8] {
        let parallel = plan.run(jobs).unwrap().to_csv();
        assert_eq!(
            serial, parallel,
            "jobs={jobs} diverged from jobs=1 — scheduling leaked into results"
        );
    }
}

#[test]
fn campaign_results_are_stable_across_repeated_runs() {
    let plan = mixed_plan(7);
    for jobs in [1, 2] {
        let first = plan.run(jobs).unwrap().to_csv();
        let second = plan.run(jobs).unwrap().to_csv();
        assert_eq!(first, second, "jobs={jobs} is not reproducible run-to-run");
    }
}

#[test]
fn different_master_seeds_give_different_payloads() {
    // Sanity check that the determinism above is not vacuous: the payload
    // actually depends on the master seed (so the per-cell seeds really
    // flow into the simulation, rather than everything being constant).
    let a = mixed_plan(1).run(2).unwrap().to_csv();
    let b = mixed_plan(2).run(2).unwrap().to_csv();
    assert_ne!(a, b, "payload ignores the master seed");
}

/// A small campaign living deep in the faulting regime: heavy PMBus bus
/// faults on the host adapter plus sweep/measure points down at voltages
/// where the DPU injects weight/accumulator/activation flips, across two
/// benchmarks and a low-precision (INT6, refit-readout) variant.
fn heavy_fault_plan(master_seed: u64) -> CampaignPlan {
    heavy_fault_plan_with(master_seed, DefenseMode::Off, false)
}

fn heavy_fault_plan_with(master_seed: u64, defense: DefenseMode, governor: bool) -> CampaignPlan {
    let base = AcceleratorConfig {
        eval_images: 12,
        repetitions: 2,
        bus_faults: BusFaultProfile::heavy(),
        defense,
        governor,
        ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
    };
    let sweep = SweepConfig {
        start_mv: 620.0,
        stop_mv: 545.0,
        step_mv: 25.0,
        images: 12,
    };
    let mut plan = CampaignPlan::sweep_grid(
        master_seed,
        &[BenchmarkId::VggNet, BenchmarkId::GoogleNet],
        &[0],
        base,
        sweep,
    );
    plan.push(CellSpec {
        config: base,
        action: CellAction::Measure {
            vccint_mv: Some(550.0),
            images: 12,
        },
        force_temp_c: None,
    });
    plan.push(CellSpec {
        config: AcceleratorConfig { bits: 6, ..base },
        action: CellAction::Measure {
            vccint_mv: Some(560.0),
            images: 12,
        },
        force_temp_c: Some(45.0),
    });
    plan
}

/// Golden pin for the kernel rework: the heavy-fault campaign payload was
/// captured with the naive (pre-im2col) kernels and must stay
/// byte-identical through every optimization of the inference hot path.
/// Regenerate (only for changes that legitimately alter the science
/// payload) with `REDVOLT_UPDATE_GOLDEN=1 cargo test --test determinism`.
#[test]
fn heavy_fault_campaign_matches_golden() {
    let csv = heavy_fault_plan(1906).run(2).unwrap().to_csv();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/campaign_heavy_fault.csv"
    );
    if std::env::var_os("REDVOLT_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &csv).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with REDVOLT_UPDATE_GOLDEN=1");
    assert_eq!(
        csv, golden,
        "heavy-fault campaign payload diverged from the pre-rework golden"
    );
}

/// The workload cache is a pure bring-up accelerator: serving a prepared
/// workload from the cache must leave the science payload byte-identical
/// to preparing every cell from scratch, at any job count.
#[test]
fn workload_cache_does_not_affect_campaign_payload() {
    use redvolt::core::workload_cache;

    let plan = heavy_fault_plan(1906);

    workload_cache::reset();
    workload_cache::set_enabled(false);
    let cold = plan.run(1).unwrap().to_csv();

    workload_cache::reset();
    let warm_serial = plan.run(1).unwrap().to_csv();
    let warm_parallel = plan.run(4).unwrap().to_csv();

    assert_eq!(cold, warm_serial, "cache on/off changed the payload");
    assert_eq!(cold, warm_parallel, "cached parallel run diverged");

    // Non-vacuity: prove the cache is actually live in this process with
    // a controlled lookup pair on a config no other test uses. Counter
    // *deltas* from concurrent tests in this binary only add, so the
    // assertions are monotone (>=), not exact.
    let probe = redvolt::core::bench_suite::WorkloadConfig {
        seed: 777_001,
        ..redvolt::core::bench_suite::WorkloadConfig::tiny(BenchmarkId::VggNet)
    };
    let before = workload_cache::stats();
    workload_cache::get_or_prepare(probe).unwrap();
    workload_cache::get_or_prepare(probe).unwrap();
    let after = workload_cache::stats();
    assert!(after.misses > before.misses, "first probe lookup must miss");
    assert!(after.hits > before.hits, "second probe lookup must hit");
}

#[test]
fn report_metadata_reflects_the_schedule_without_affecting_payload() {
    let plan = mixed_plan(3);
    let report = plan.run(2).unwrap();
    assert_eq!(report.jobs, 2);
    assert_eq!(report.results.len(), plan.len());
    // Results come back merged in plan order regardless of which worker
    // ran them.
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r.index, i);
        assert!(r.worker < 2);
    }
    // Timing lives in the timing table, never in the CSV payload.
    let csv = report.to_csv();
    assert!(!csv.contains("Seconds"));
    assert!(report.timing_table().to_text().contains("Seconds"));
}

/// The issue's acceptance criterion for the SDC defense: the same
/// heavy-fault sub-Vmin campaign, run with `--defense correct
/// --governor`, must finish with zero silently-corrupted measurement
/// payloads — every measure cell either reports a clean point or comes
/// back as [`CellOutcome::Degraded`] whose settled measurement is clean
/// and whose rescue trace records the intervention. The defended payload
/// stays a pure function of (seed, plan): byte-identical across job
/// counts and pinned by its own golden (the undefended golden above is
/// untouched, proving `--defense off` still reproduces the faulty
/// bytes). Regenerate with `REDVOLT_UPDATE_GOLDEN=1 cargo test --test
/// determinism`.
#[test]
fn defended_campaign_degrades_instead_of_corrupting() {
    let plan = heavy_fault_plan_with(1906, DefenseMode::Correct, true);
    let report = plan.run(1).unwrap();
    assert_eq!(
        report.to_csv(),
        plan.run(4).unwrap().to_csv(),
        "defended campaign is not jobs-invariant"
    );

    let mut degraded = 0;
    for r in &report.results {
        match &r.outcome {
            CellOutcome::Aborted { cause } => panic!("cell {} aborted: {cause}", r.index),
            CellOutcome::Degraded { measurement, trace } => {
                degraded += 1;
                assert!(trace.rescued, "cell {} returned unconfirmed", r.index);
                assert!(trace.intervened());
                assert_eq!(
                    measurement.injected_faults, 0,
                    "cell {} settled on a faulting point",
                    r.index
                );
            }
            CellOutcome::Measure(m) => {
                assert_eq!(
                    m.injected_faults, 0,
                    "cell {} delivered a corrupt payload without degrading",
                    r.index
                );
            }
            _ => {}
        }
    }
    assert!(
        degraded >= 1,
        "the sub-Vmin measure cells must trip the governor"
    );

    let csv = report.to_csv();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/campaign_defended.csv"
    );
    if std::env::var_os("REDVOLT_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &csv).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with REDVOLT_UPDATE_GOLDEN=1");
    assert_eq!(csv, golden, "defended campaign payload diverged");
}

/// Tentpole invariance for the two-level engine: splitting a cell's image
/// batches across shard workers must be invisible in the science payload.
/// Every image derives its fault stream from `(cell seed, image index,
/// attempt)`, so the payload is byte-identical across the full
/// `jobs × image_jobs` grid — including deep in the faulting regime
/// (heavy PMBus faults, sub-Vmin DPU flips) and with the full defense
/// stack armed (`--defense correct --governor`, whose ECC/ABFT/governor
/// decisions all consume the same per-image streams).
#[test]
fn image_sharding_is_payload_invariant_under_heavy_faults() {
    for (tag, plan) in [
        ("undefended", heavy_fault_plan(1906)),
        (
            "defended",
            heavy_fault_plan_with(1906, DefenseMode::Correct, true),
        ),
    ] {
        let baseline = plan.run_sharded(1, 1).unwrap().to_csv();
        for jobs in [1, 4] {
            for image_jobs in [1, 2, 8] {
                if (jobs, image_jobs) == (1, 1) {
                    continue;
                }
                let csv = plan.run_sharded(jobs, image_jobs).unwrap().to_csv();
                assert_eq!(
                    baseline, csv,
                    "{tag}: jobs={jobs} image_jobs={image_jobs} diverged from (1, 1)"
                );
            }
        }
    }
}

/// Image sharding must also be invisible downstream of the executor: the
/// supervised campaign's write-ahead journal bytes (at one cell worker,
/// where completion order equals plan order) and the merged telemetry
/// exports stay byte-identical for every shard count. Cell-level
/// parallelism may reorder journal *lines* (completion order), so journal
/// bytes are pinned at `jobs = 1` while payload and Prometheus exposition
/// are pinned across the whole grid.
#[test]
fn image_sharding_is_invisible_in_journal_and_telemetry() {
    use redvolt::core::supervisor::{run_supervised_journaled, SupervisorConfig};
    use redvolt::core::telemetry::CampaignTelemetry;

    let plan = heavy_fault_plan(1907);
    let mut baseline: Option<(String, String, String)> = None;
    for (jobs, image_jobs) in [(1, 1), (1, 2), (1, 8), (4, 2), (4, 8)] {
        let path = {
            let dir = std::env::temp_dir().join("redvolt-determinism-tests");
            std::fs::create_dir_all(&dir).unwrap();
            dir.join(format!(
                "shard-{jobs}-{image_jobs}-{}.journal",
                std::process::id()
            ))
        };
        let config = SupervisorConfig {
            image_jobs,
            ..SupervisorConfig::default()
        };
        let sup = run_supervised_journaled(&plan, jobs, &config, &path, false).unwrap();
        let journal = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let payload = sup.report.to_csv();
        let prom = CampaignTelemetry::collect(&sup.report).to_prometheus();
        match &baseline {
            None => baseline = Some((payload, journal, prom)),
            Some((p0, j0, t0)) => {
                assert_eq!(
                    p0, &payload,
                    "jobs={jobs} image_jobs={image_jobs}: payload diverged"
                );
                assert_eq!(
                    t0, &prom,
                    "jobs={jobs} image_jobs={image_jobs}: telemetry diverged"
                );
                if jobs == 1 {
                    assert_eq!(
                        j0, &journal,
                        "image_jobs={image_jobs}: journal bytes diverged at one worker"
                    );
                }
            }
        }
    }
}

/// Property sweep of the shard invariance over random master seeds: the
/// vendored proptest RNG draws the seeds deterministically, so the sweep
/// is reproducible while still exercising fresh fault streams each case.
/// Kept to a handful of cases — every case runs four campaigns.
#[test]
fn image_shard_invariance_holds_across_master_seeds() {
    use proptest::TestRng;

    for case in 0..4u32 {
        let mut rng = TestRng::for_case("determinism::image_shard_invariance", case);
        let master_seed = rng.next_below(1 << 48);
        let base = AcceleratorConfig {
            eval_images: 8,
            repetitions: 1,
            bus_faults: BusFaultProfile::heavy(),
            ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
        };
        let mut plan = CampaignPlan::sweep_grid(
            master_seed,
            &[BenchmarkId::VggNet],
            &[0],
            base,
            SweepConfig {
                start_mv: 600.0,
                stop_mv: 560.0,
                step_mv: 20.0,
                images: 8,
            },
        );
        plan.push(CellSpec {
            config: base,
            action: CellAction::Measure {
                vccint_mv: Some(550.0),
                images: 8,
            },
            force_temp_c: None,
        });
        let baseline = plan.run_sharded(1, 1).unwrap().to_csv();
        for (jobs, image_jobs) in [(1, 2), (1, 8), (4, 3)] {
            assert_eq!(
                baseline,
                plan.run_sharded(jobs, image_jobs).unwrap().to_csv(),
                "seed {master_seed}: jobs={jobs} image_jobs={image_jobs} diverged"
            );
        }
    }
}

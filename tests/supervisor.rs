//! Acceptance tests for the crash-resilient campaign supervisor:
//!
//! (a) a panicking cell yields [`CellOutcome::Aborted`] while every other
//!     cell completes, and
//! (b) a campaign killed after `k` cells and `--resume`d merges to a
//!     payload byte-identical to an uninterrupted run, at `jobs = 1` and
//!     `jobs = 4`, with a nonzero injected PMBus fault rate.
//!
//! Plus the watchdog (wall-clock and simulated-cycle deadlines) and the
//! paper's reboot-and-retry bookkeeping.

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::executor::{CampaignPlan, CellAction, CellOutcome, CellSpec};
use redvolt::core::experiment::AcceleratorConfig;
use redvolt::core::governor::GovernorConfig;
use redvolt::core::supervisor::{
    run_supervised, run_supervised_journaled, SupervisorConfig, SupervisorError,
};
use redvolt::core::sweep::SweepConfig;
use redvolt::faults::bus::BusFaultProfile;
use std::path::PathBuf;
use std::time::Duration;

fn tiny_config(benchmark: BenchmarkId, board: u32) -> AcceleratorConfig {
    AcceleratorConfig {
        board_sample: board,
        eval_images: 12,
        repetitions: 2,
        ..AcceleratorConfig::tiny(benchmark)
    }
}

fn measure_cell(benchmark: BenchmarkId, board: u32, vccint_mv: Option<f64>) -> CellSpec {
    CellSpec {
        config: tiny_config(benchmark, board),
        action: CellAction::Measure {
            vccint_mv,
            images: 12,
        },
        force_temp_c: None,
    }
}

/// A sweep whose `step_mv == 0` panics inside `SweepConfig::voltages_mv`
/// — the supervisor must contain it.
fn panicking_cell() -> CellSpec {
    CellSpec {
        config: tiny_config(BenchmarkId::VggNet, 0),
        action: CellAction::Sweep(SweepConfig {
            start_mv: 850.0,
            stop_mv: 800.0,
            step_mv: 0.0,
            images: 8,
        }),
        force_temp_c: None,
    }
}

/// A six-cell mixed plan whose cells all carry a nonzero PMBus fault
/// profile — sweeps, a governor run and plain measurements.
fn faulty_plan(master_seed: u64) -> CampaignPlan {
    let faulty = |benchmark, board| AcceleratorConfig {
        bus_faults: BusFaultProfile::light(),
        ..tiny_config(benchmark, board)
    };
    let sweep = SweepConfig {
        start_mv: 620.0,
        stop_mv: 560.0,
        step_mv: 20.0,
        images: 12,
    };
    let mut plan = CampaignPlan::new(master_seed);
    for board in [0u32, 1] {
        plan.push(CellSpec {
            config: faulty(BenchmarkId::VggNet, board),
            action: CellAction::Sweep(sweep),
            force_temp_c: None,
        });
    }
    plan.push(CellSpec {
        config: faulty(BenchmarkId::GoogleNet, 2),
        action: CellAction::Governor {
            config: GovernorConfig {
                batch_images: 8,
                ..GovernorConfig::default()
            },
            batches: 6,
        },
        force_temp_c: None,
    });
    plan.push(CellSpec {
        config: faulty(BenchmarkId::AlexNet, 0),
        action: CellAction::Measure {
            vccint_mv: Some(600.0),
            images: 12,
        },
        force_temp_c: None,
    });
    plan.push(CellSpec {
        config: faulty(BenchmarkId::GoogleNet, 1),
        action: CellAction::Measure {
            vccint_mv: None,
            images: 12,
        },
        force_temp_c: Some(45.0),
    });
    plan.push(CellSpec {
        config: faulty(BenchmarkId::VggNet, 2),
        action: CellAction::Measure {
            vccint_mv: Some(580.0),
            images: 12,
        },
        force_temp_c: None,
    });
    plan
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("redvolt-supervisor-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.journal", std::process::id()))
}

#[test]
fn panicking_cell_aborts_alone_while_others_complete() {
    let mut plan = CampaignPlan::new(17);
    plan.push(measure_cell(BenchmarkId::VggNet, 0, None));
    plan.push(panicking_cell());
    plan.push(measure_cell(BenchmarkId::GoogleNet, 1, Some(600.0)));

    let sup = run_supervised(&plan, 2, &SupervisorConfig::default(), None).unwrap();
    assert_eq!(sup.report.results.len(), 3);
    assert_eq!(sup.aborted_cells, 1);
    assert!(!sup.interrupted);

    let outcomes = &sup.report.results;
    assert!(matches!(outcomes[0].outcome, CellOutcome::Measure(_)));
    match &outcomes[1].outcome {
        CellOutcome::Aborted { cause } => {
            assert!(cause.starts_with("panic:"), "cause: {cause}");
            assert!(cause.contains("step_mv"), "cause: {cause}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
    assert_eq!(outcomes[1].attempts, 1, "panics are not retried");
    assert!(matches!(outcomes[2].outcome, CellOutcome::Measure(_)));

    // The aborted cell is part of the deterministic payload.
    let csv = sup.report.to_csv();
    assert!(csv.contains("aborted,panic:"), "csv: {csv}");
}

#[test]
fn interrupted_plus_resume_merges_to_uninterrupted_bytes() {
    let plan = faulty_plan(42);
    // The reference: one uninterrupted supervised run, no journal.
    let straight = run_supervised(&plan, 1, &SupervisorConfig::default(), None)
        .unwrap()
        .report
        .to_csv();
    assert!(!straight.is_empty());

    for (jobs, kill_at) in [(1usize, 2usize), (4, 3)] {
        let path = temp_journal(&format!("resume-j{jobs}"));

        // First run: killed after `kill_at` newly journaled cells.
        let halted = run_supervised_journaled(
            &plan,
            jobs,
            &SupervisorConfig {
                halt_after: Some(kill_at),
                ..SupervisorConfig::default()
            },
            &path,
            false,
        )
        .unwrap();
        assert!(halted.interrupted, "jobs={jobs}");
        assert_eq!(halted.report.results.len(), kill_at);

        // Second run: --resume skips the journaled prefix and completes.
        let resumed =
            run_supervised_journaled(&plan, jobs, &SupervisorConfig::default(), &path, true)
                .unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.resumed_cells, kill_at, "jobs={jobs}");
        assert_eq!(
            resumed.report.to_csv(),
            straight,
            "resumed payload diverged at jobs={jobs}"
        );

        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn resume_refuses_a_different_plans_journal() {
    let path = temp_journal("mismatch");
    run_supervised_journaled(
        &faulty_plan(1),
        1,
        &SupervisorConfig {
            halt_after: Some(1),
            ..SupervisorConfig::default()
        },
        &path,
        false,
    )
    .unwrap();
    let err = run_supervised_journaled(
        &faulty_plan(2),
        1,
        &SupervisorConfig::default(),
        &path,
        true,
    )
    .unwrap_err();
    assert!(matches!(err, SupervisorError::Journal(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn crashing_cell_is_retried_to_exhaustion_with_attempts_recorded() {
    // 530 mV is below Vcrash on every board: each attempt brings up a
    // fresh board (the power cycle), commands the voltage, hangs, and the
    // supervisor retries until the budget runs out.
    let mut plan = CampaignPlan::new(5);
    plan.push(measure_cell(BenchmarkId::VggNet, 0, Some(530.0)));
    plan.push(measure_cell(BenchmarkId::VggNet, 1, None));

    let config = SupervisorConfig {
        max_attempts: 3,
        ..SupervisorConfig::default()
    };
    let sup = run_supervised(&plan, 1, &config, None).unwrap();
    let crashed = &sup.report.results[0];
    assert_eq!(crashed.attempts, 3, "retried to the attempt budget");
    match &crashed.outcome {
        CellOutcome::Aborted { cause } => {
            assert!(
                cause.starts_with("retry budget exhausted after 3 attempts:"),
                "cause: {cause}"
            );
            assert!(cause.contains("530 mV"), "cause: {cause}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
    assert!(matches!(
        sup.report.results[1].outcome,
        CellOutcome::Measure(_)
    ));
    assert_eq!(sup.retried_cells, 1);
}

#[test]
fn cycle_budget_reaps_runaway_cells_deterministically() {
    // A governor run costs far more cycles than one tiny measurement; a
    // small budget kills the former and spares the latter.
    let mut plan = CampaignPlan::new(23);
    plan.push(CellSpec {
        config: tiny_config(BenchmarkId::VggNet, 0),
        action: CellAction::Governor {
            config: GovernorConfig {
                batch_images: 8,
                ..GovernorConfig::default()
            },
            batches: 50,
        },
        force_temp_c: None,
    });
    plan.push(measure_cell(BenchmarkId::VggNet, 1, None));

    let config = SupervisorConfig {
        max_attempts: 2,
        cycle_budget: Some(100_000),
        ..SupervisorConfig::default()
    };
    let sup = run_supervised(&plan, 2, &config, None).unwrap();
    let reaped = &sup.report.results[0];
    assert_eq!(reaped.attempts, 2, "deadline exceeded on both attempts");
    match &reaped.outcome {
        CellOutcome::Aborted { cause } => {
            assert!(cause.contains("cycle budget"), "cause: {cause}")
        }
        other => panic!("expected abort, got {other:?}"),
    }
    assert!(matches!(
        sup.report.results[1].outcome,
        CellOutcome::Measure(_)
    ));
}

#[test]
fn wall_clock_watchdog_reaps_hung_cells() {
    // A paper-scale governor cell takes seconds; a 10 ms cap fires first.
    // The reaped attempt's thread is detached and finishes on its own.
    let mut plan = CampaignPlan::new(29);
    plan.push(CellSpec {
        config: AcceleratorConfig {
            eval_images: 32,
            repetitions: 1,
            scale: redvolt::nn::models::ModelScale::Paper,
            ..AcceleratorConfig::tiny(BenchmarkId::GoogleNet)
        },
        action: CellAction::Governor {
            config: GovernorConfig::default(),
            batches: 40,
        },
        force_temp_c: None,
    });
    let config = SupervisorConfig {
        max_attempts: 2,
        wall_cap: Duration::from_millis(10),
        ..SupervisorConfig::default()
    };
    let sup = run_supervised(&plan, 1, &config, None).unwrap();
    let reaped = &sup.report.results[0];
    assert_eq!(reaped.attempts, 2);
    assert_eq!(
        reaped.outcome,
        CellOutcome::Aborted {
            cause: "watchdog: wall-clock cap exceeded".to_string()
        }
    );
}

#[test]
fn empty_plan_supervises_cleanly() {
    let plan = CampaignPlan::new(0);
    for jobs in [0, 1, 4] {
        let sup = run_supervised(&plan, jobs, &SupervisorConfig::default(), None).unwrap();
        assert!(sup.report.results.is_empty());
        assert_eq!(sup.report.to_csv(), "");
        assert!(!sup.interrupted);
    }
}

//! Integration tests pinning the paper's seven headline claims (see
//! DESIGN.md) at reduced scale. The full-scale numbers are produced by
//! `cargo run --release -p redvolt-bench --bin repro` and recorded in
//! EXPERIMENTS.md.
//!
//! Triage verdict on the seed's "failing" tests: every failure here was an
//! environment problem, not a wrong tolerance and not a model bug — the
//! workspace depended on registry crates (`rand`, `serde`, `proptest`)
//! that cannot be fetched in the offline build environment, so no test in
//! this file ever compiled. After vendoring dependency-free substitutes
//! under `vendor/`, all claims below pass with their original tolerances;
//! none needed loosening.

use redvolt::core::bench_suite::BenchmarkId;
use redvolt::core::experiment::{Accelerator, AcceleratorConfig};
use redvolt::core::freqscale::{frequency_underscaling, FreqScaleConfig};
use redvolt::core::pruneexp::pruning_study;
use redvolt::core::sweep::{voltage_sweep, SweepConfig};
use redvolt::core::tempexp::temperature_study;
use redvolt::fpga::calib::F_NOM_MHZ;

fn tiny(benchmark: BenchmarkId) -> AcceleratorConfig {
    AcceleratorConfig::tiny(benchmark)
}

#[test]
fn claim_guardband_is_about_a_third_of_vnom() {
    use redvolt::core::guardband::{find_regions, RegionSearchConfig};
    let mut acc = Accelerator::bring_up(&tiny(BenchmarkId::GoogleNet)).unwrap();
    let r = find_regions(
        &mut acc,
        &RegionSearchConfig {
            step_mv: 5.0,
            images: 12,
            accuracy_tolerance: 0.01,
        },
    )
    .unwrap();
    assert!((0.30..0.36).contains(&r.guardband_fraction()), "{r:?}");
    assert!((20.0..40.0).contains(&r.critical_mv()), "{r:?}");
}

#[test]
fn claim_efficiency_gain_exceeds_3x_at_vcrash() {
    let mut acc = Accelerator::bring_up(&tiny(BenchmarkId::VggNet)).unwrap();
    let sweep = voltage_sweep(
        &mut acc,
        &SweepConfig {
            start_mv: 850.0,
            stop_mv: 530.0,
            step_mv: 10.0,
            images: 12,
        },
    )
    .unwrap();
    let nominal = sweep.nominal().gops_per_w;
    let last = sweep.points.last().unwrap();
    assert!(last.gops_per_w / nominal > 3.0);
}

#[test]
fn claim_accuracy_decays_toward_random_below_vmin() {
    // Paper-scale model: the accuracy trajectory is the emergent result
    // of burst fault injection into real integer arithmetic.
    let mut acc = Accelerator::bring_up(&AcceleratorConfig {
        eval_images: 50,
        repetitions: 3,
        ..AcceleratorConfig::default() // Paper scale, VGGNet
    })
    .unwrap();
    let nominal = acc.measure(50).unwrap().accuracy;
    acc.set_vccint_mv(560.0).unwrap();
    let mid = acc.measure(50).unwrap().accuracy;
    acc.power_cycle();
    acc.set_vccint_mv(540.0).unwrap();
    let deep = acc.measure(50).unwrap().accuracy;
    assert!(mid < nominal - 0.05, "mid = {mid} vs nominal {nominal}");
    assert!(deep < 0.35, "deep = {deep} should be near-random");
}

#[test]
fn claim_parameter_heavy_models_are_more_vulnerable() {
    // ResNet50 vs GoogleNet at a fixed critical-region voltage
    // (paper §4.4): the deeper, parameter-heavier model loses more.
    let relative_drop = |benchmark: BenchmarkId| {
        let mut acc = Accelerator::bring_up(&AcceleratorConfig {
            benchmark,
            eval_images: 60,
            repetitions: 5,
            ..AcceleratorConfig::default()
        })
        .unwrap();
        let nominal = acc.measure(60).unwrap().accuracy;
        // Deep in the critical region, where the separation is widest.
        acc.set_vccint_mv(550.0).unwrap();
        let degraded = acc.measure(60).unwrap().accuracy;
        (nominal - degraded) / nominal
    };
    let resnet = relative_drop(BenchmarkId::ResNet50);
    let googlenet = relative_drop(BenchmarkId::GoogleNet);
    assert!(
        resnet > googlenet,
        "relative drop: ResNet {resnet:.3} vs GoogleNet {googlenet:.3}"
    );
}

#[test]
fn claim_frequency_underscaling_rescues_accuracy() {
    let mut acc = Accelerator::bring_up(&tiny(BenchmarkId::VggNet)).unwrap();
    let rows = frequency_underscaling(
        &mut acc,
        &FreqScaleConfig {
            images: 12,
            ..FreqScaleConfig::default()
        },
    )
    .unwrap();
    assert_eq!(rows.first().unwrap().fmax_mhz, F_NOM_MHZ);
    let last = rows.last().unwrap();
    assert!(last.fmax_mhz < F_NOM_MHZ);
    assert!(last.gops_per_w_norm > 1.1, "{last:?}");
    assert!(last.gops_per_j_norm < 1.0, "{last:?}");
}

#[test]
fn claim_throughput_scales_sublinearly_with_frequency() {
    // Table 2 (§5): the DPU is partly memory-bound, so underclocking from
    // Fnom costs less throughput than the frequency ratio — every row's
    // normalized GOPs stays above fmax/Fnom. (At exactly linear scaling
    // gops_norm == freq_ratio; the margin below guards the inequality
    // from being satisfied by float noise.)
    let mut acc = Accelerator::bring_up(&tiny(BenchmarkId::VggNet)).unwrap();
    let rows = frequency_underscaling(
        &mut acc,
        &FreqScaleConfig {
            images: 12,
            ..FreqScaleConfig::default()
        },
    )
    .unwrap();
    let mut saw_underclocked_row = false;
    for row in &rows {
        let freq_ratio = row.fmax_mhz / F_NOM_MHZ;
        if row.fmax_mhz < F_NOM_MHZ {
            saw_underclocked_row = true;
            assert!(
                row.gops_norm > freq_ratio + 0.01,
                "at {} mV: gops_norm {:.3} <= freq ratio {:.3} (linear or worse)",
                row.vccint_mv,
                row.gops_norm,
                freq_ratio
            );
        }
    }
    assert!(
        saw_underclocked_row,
        "scan never left Fnom — test is vacuous"
    );
}

#[test]
fn claim_vulnerability_ordering_spares_the_shallow_model() {
    // §4.4: deep parameter-heavy models (ResNet50, Inception) lose more
    // accuracy in the critical region than shallow AlexNet, which has
    // far fewer fault-site-exposed MACs per prediction.
    let relative_drop = |benchmark: BenchmarkId| {
        let mut acc = Accelerator::bring_up(&AcceleratorConfig {
            benchmark,
            eval_images: 60,
            repetitions: 5,
            ..AcceleratorConfig::default()
        })
        .unwrap();
        let nominal = acc.measure(60).unwrap().accuracy;
        acc.set_vccint_mv(550.0).unwrap();
        let degraded = acc.measure(60).unwrap().accuracy;
        (nominal - degraded) / nominal
    };
    let alexnet = relative_drop(BenchmarkId::AlexNet);
    let resnet = relative_drop(BenchmarkId::ResNet50);
    let inception = relative_drop(BenchmarkId::Inception);
    assert!(
        resnet > alexnet,
        "relative drop: ResNet {resnet:.3} <= AlexNet {alexnet:.3}"
    );
    assert!(
        inception > alexnet,
        "relative drop: Inception {inception:.3} <= AlexNet {alexnet:.3}"
    );
}

#[test]
fn claim_pruned_models_trade_fragility_for_efficiency() {
    let study = pruning_study(
        &tiny(BenchmarkId::VggNet),
        0.5,
        &SweepConfig {
            start_mv: 850.0,
            stop_mv: 530.0,
            step_mv: 10.0,
            images: 12,
        },
    )
    .unwrap();
    assert!(
        study.pruned.sweep.last_alive_mv().unwrap() > study.dense.sweep.last_alive_mv().unwrap()
    );
    assert!(study.pruned.work_equivalence > 1.5);
}

#[test]
fn claim_temperature_raises_power_and_heals_faults() {
    let study = temperature_study(
        &AcceleratorConfig {
            benchmark: BenchmarkId::GoogleNet,
            eval_images: 50,
            repetitions: 4,
            ..AcceleratorConfig::default()
        },
        &[34.0, 52.0],
        &SweepConfig {
            start_mv: 850.0,
            stop_mv: 545.0,
            step_mv: 5.0,
            images: 50,
        },
    )
    .unwrap();
    let cold = study.at_temp(34.0).unwrap();
    let hot = study.at_temp(52.0).unwrap();
    // Fig 9: hotter boards draw more power at nominal voltage.
    assert!(hot.sweep.nominal().power_w > cold.sweep.nominal().power_w);
    // Fig 10: at a fixed critical voltage, heat improves accuracy (ITD).
    let acc_at = |c: &redvolt::core::tempexp::TempCurve, mv: f64| {
        c.sweep.at_mv(mv).map(|m| m.accuracy).unwrap_or(0.0)
    };
    let mv = 555.0;
    assert!(
        acc_at(hot, mv) >= acc_at(cold, mv),
        "ITD: hot {} vs cold {} at {mv} mV",
        acc_at(hot, mv),
        acc_at(cold, mv)
    );
}

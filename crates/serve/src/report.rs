//! Serving-run reports: plain text, metrics registry, JSONL and
//! Prometheus exports.
//!
//! Everything here is a deterministic rendering of a [`ServeOutcome`] —
//! latency quantiles are exact nearest-rank statistics over the recorded
//! samples (not histogram interpolations), timestamps are reference
//! cycles, and floats go through fixed-decimal or shortest-round-trip
//! formatting so reruns are byte-identical.

use crate::event::Cycle;
use crate::sim::{ServeConfig, ServeOutcome};
use redvolt_core::report::{fmt, Table};
use redvolt_fpga::calib::F_NOM_MHZ;
use redvolt_telemetry::export::{export_jsonl, export_prometheus};
use redvolt_telemetry::metrics::Registry;
use redvolt_telemetry::recorder::export_flight_jsonl;
use redvolt_telemetry::span::SpanRecord;
use redvolt_telemetry::trace::{export_chrome_trace, TraceTrack};

/// Latency-histogram bucket bounds, reference cycles.
const LATENCY_BOUNDS: [f64; 10] = [1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8];

/// Exact nearest-rank percentile of an unsorted sample set (`q` in
/// `0..=1`); 0 for an empty set.
pub fn percentile(samples: &[Cycle], q: f64) -> Cycle {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A rendered serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The scenario that produced the outcome.
    pub config: ServeConfig,
    /// The raw outcome.
    pub outcome: ServeOutcome,
    /// Exact nearest-rank p50 latency, reference cycles.
    pub p50_cycles: Cycle,
    /// Exact nearest-rank p90 latency.
    pub p90_cycles: Cycle,
    /// Exact nearest-rank p99 latency.
    pub p99_cycles: Cycle,
    /// Maximum latency.
    pub max_cycles: Cycle,
    /// Mean latency, reference cycles.
    pub mean_cycles: f64,
    /// Total fleet energy charged, J.
    pub fleet_energy_j: f64,
    /// Fleet energy per completed request, J.
    pub energy_per_completed_j: f64,
    /// Completed throughput over the simulated span, requests/s.
    pub throughput_rps: f64,
    /// Whether the run met its SLO: p99 within bound (when one is set)
    /// and zero silently corrupt responses.
    pub slo_ok: bool,
}

impl ServeReport {
    /// Derives the report from a finished run.
    pub fn build(config: &ServeConfig, outcome: ServeOutcome) -> Self {
        let lat = &outcome.latencies;
        let mean = if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<u64>() as f64 / lat.len() as f64
        };
        let fleet_energy_j: f64 = outcome.boards.iter().map(|b| b.energy_j).sum();
        let completed = outcome.counters.completed;
        let span_s = outcome.end_cycle as f64 / (F_NOM_MHZ * 1e6);
        let p99 = percentile(lat, 0.99);
        let slo_ok = (config.slo_p99_cycles == 0 || p99 <= config.slo_p99_cycles)
            && outcome.counters.silently_corrupt == 0;
        ServeReport {
            config: *config,
            p50_cycles: percentile(lat, 0.50),
            p90_cycles: percentile(lat, 0.90),
            p99_cycles: p99,
            max_cycles: lat.iter().copied().max().unwrap_or(0),
            mean_cycles: mean,
            fleet_energy_j,
            energy_per_completed_j: if completed > 0 {
                fleet_energy_j / completed as f64
            } else {
                0.0
            },
            throughput_rps: if span_s > 0.0 {
                completed as f64 / span_s
            } else {
                0.0
            },
            slo_ok,
            outcome,
        }
    }

    /// The full plain-text report (deterministic; ends with a newline).
    pub fn to_text(&self) -> String {
        let cfg = &self.config;
        let c = &self.outcome.counters;
        let mut out = String::new();
        out.push_str("== redvolt-serve run ==\n");
        out.push_str(&format!(
            "seed {}  boards {}  requests {}  rps {:?}  router {}  defense {}  governor {}\n",
            cfg.seed,
            cfg.boards,
            cfg.requests,
            cfg.rps,
            cfg.router.name(),
            cfg.defense.name(),
            if cfg.governor { "on" } else { "off" },
        ));
        out.push_str(&format!(
            "max-batch {}  batch-timeout {}  queue-depth {}  margin {:?} mV  retry-limit {}\n",
            cfg.max_batch,
            cfg.batch_timeout_cycles,
            cfg.queue_depth,
            cfg.calib.margin_mv,
            cfg.retry_limit,
        ));
        out.push('\n');
        out.push_str(&format!(
            "offered {}  admitted {}  degraded {}  shed {}  completed {}\n",
            c.offered, c.admitted, c.degraded, c.shed, c.completed
        ));
        out.push_str(&format!(
            "retried {}  crash-requeued {}  dropped-on-crash {}  flagged-completed {}\n",
            c.retried, c.requeued_on_crash, c.dropped_on_crash, c.flagged_completed
        ));
        out.push_str(&format!(
            "batches {}  escalations {}  crashes {}  corrupt {}  silently-corrupt {}\n",
            c.batches, c.escalations, c.crashes, c.corrupt, c.silently_corrupt
        ));
        out.push('\n');
        out.push_str(&format!(
            "latency/ref-cycles  p50 {}  p90 {}  p99 {}  max {}  mean {}\n",
            self.p50_cycles,
            self.p90_cycles,
            self.p99_cycles,
            self.max_cycles,
            fmt(self.mean_cycles, 1),
        ));
        out.push_str(&format!(
            "span {} ref-cycles  throughput {} req/s  fleet energy {} mJ  energy/completed {} uJ\n",
            self.outcome.end_cycle,
            fmt(self.throughput_rps, 1),
            fmt(self.fleet_energy_j * 1e3, 3),
            fmt(self.energy_per_completed_j * 1e6, 2),
        ));
        out.push_str(&format!(
            "trace spans {}  spans-dropped {}  postmortems {}  postmortems-suppressed {}\n",
            self.outcome.trace_spans.len(),
            self.outcome.trace_dropped,
            self.outcome.postmortems.len(),
            self.outcome.postmortems_suppressed,
        ));
        if cfg.slo_p99_cycles > 0 {
            out.push_str(&format!(
                "SLO p99 <= {}: {}\n",
                cfg.slo_p99_cycles,
                if self.slo_ok { "ok" } else { "VIOLATED" }
            ));
        } else {
            out.push_str(&format!(
                "SLO (silent corruption only): {}\n",
                if self.slo_ok { "ok" } else { "VIOLATED" }
            ));
        }
        out.push('\n');
        let mut table = Table::new(
            "Fleet",
            &[
                "board", "vmin/mV", "base/mV", "v/mV", "f/MHz", "batches", "served", "util",
                "E/inf uJ", "events", "rungs", "crashes",
            ],
        );
        for b in &self.outcome.boards {
            let util = if self.outcome.end_cycle > 0 {
                b.busy_cycles as f64 / self.outcome.end_cycle as f64
            } else {
                0.0
            };
            table.row(&[
                b.index.to_string(),
                fmt(b.vmin_mv, 0),
                fmt(b.base_mv, 0),
                fmt(b.vccint_mv, 0),
                fmt(b.f_mhz, 0),
                b.batches.to_string(),
                b.served.to_string(),
                fmt(util * 100.0, 1) + "%",
                fmt(b.energy_per_inf_j * 1e6, 2),
                b.events.to_string(),
                b.rungs.to_string(),
                b.crashes.to_string(),
            ]);
        }
        out.push_str(&table.to_text());
        out
    }

    /// Builds the metrics registry for this run: request/batch counters,
    /// the latency histogram, and per-board gauges.
    pub fn registry(&self) -> Registry {
        let reg = Registry::new();
        let c = &self.outcome.counters;
        for (disposition, value) in [
            ("offered", c.offered),
            ("admitted", c.admitted),
            ("degraded", c.degraded),
            ("shed", c.shed),
            ("completed", c.completed),
            ("retried", c.retried),
            ("requeued_on_crash", c.requeued_on_crash),
            ("dropped_on_crash", c.dropped_on_crash),
            ("flagged_completed", c.flagged_completed),
        ] {
            reg.counter("serve_requests_total", &[("disposition", disposition)])
                .add(value);
        }
        reg.counter("serve_corrupt_total", &[("kind", "any")])
            .add(c.corrupt);
        reg.counter("serve_corrupt_total", &[("kind", "silent")])
            .add(c.silently_corrupt);
        reg.counter("serve_batches_total", &[]).add(c.batches);
        reg.counter("serve_crashes_total", &[]).add(c.crashes);
        reg.counter("serve_escalations_total", &[])
            .add(c.escalations);
        reg.counter("serve_trace_spans_total", &[])
            .add(self.outcome.trace_spans.len() as u64);
        reg.counter("serve_spans_dropped_total", &[])
            .add(self.outcome.trace_dropped);
        reg.counter("serve_postmortems_total", &[("disposition", "dumped")])
            .add(self.outcome.postmortems.len() as u64);
        reg.counter("serve_postmortems_total", &[("disposition", "suppressed")])
            .add(self.outcome.postmortems_suppressed);
        reg.gauge("serve_span_ref_cycles", &[])
            .set(self.outcome.end_cycle as f64);
        let latency = reg.histogram("serve_latency_ref_cycles", &[], &LATENCY_BOUNDS);
        for &l in &self.outcome.latencies {
            latency.observe(l as f64);
        }
        for b in &self.outcome.boards {
            let idx = b.index.to_string();
            let labels: &[(&str, &str)] = &[("board", idx.as_str())];
            let util = if self.outcome.end_cycle > 0 {
                b.busy_cycles as f64 / self.outcome.end_cycle as f64
            } else {
                0.0
            };
            reg.gauge("serve_board_utilization", labels).set(util);
            reg.gauge("serve_board_vmin_mv", labels).set(b.vmin_mv);
            reg.gauge("serve_board_vccint_mv", labels).set(b.vccint_mv);
            reg.gauge("serve_board_f_mhz", labels).set(b.f_mhz);
            reg.gauge("serve_board_energy_j", labels).set(b.energy_j);
            reg.gauge("serve_board_energy_per_inference_j", labels)
                .set(b.energy_per_inf_j);
            reg.gauge("serve_board_rungs", labels)
                .set(f64::from(b.rungs));
            reg.counter("serve_board_events_total", labels)
                .add(b.events);
            reg.counter("serve_board_served_total", labels)
                .add(b.served);
        }
        reg
    }

    /// The request-lifecycle span stream recorded by the simulation.
    fn spans(&self) -> &[SpanRecord] {
        &self.outcome.trace_spans
    }

    /// The JSONL telemetry export (schema header, lifecycle spans,
    /// metrics).
    pub fn to_jsonl(&self) -> String {
        export_jsonl(self.spans(), &self.registry().samples())
    }

    /// The Prometheus text-exposition export.
    pub fn to_prometheus(&self) -> String {
        export_prometheus(&self.registry().samples())
    }

    /// The Chrome trace-event export (`chrome://tracing` / Perfetto):
    /// one track per board plus router and governor tracks, reference
    /// cycles mapped to trace microseconds at the nominal clock.
    pub fn to_chrome_trace(&self) -> String {
        let mut tracks = vec![TraceTrack::new(0, "router"), TraceTrack::new(1, "governor")];
        for b in &self.outcome.boards {
            tracks.push(TraceTrack::new(
                2 + b.index as u64,
                &format!("board {}", b.index),
            ));
        }
        let tid_of = |span: &SpanRecord| -> u64 {
            match span.name.as_str() {
                "governor_escalate" => 1,
                "batch" | "queue" | "execute" | "board_crash" | "board_up" => {
                    span.attr_u64("board").map_or(0, |b| 2 + b)
                }
                // request / route / reroute / sdc_audit: router track.
                _ => 0,
            }
        };
        export_chrome_trace(
            self.spans(),
            "redvolt-serve",
            &tracks,
            &tid_of,
            F_NOM_MHZ as u64,
        )
    }

    /// The flight-recorder post-mortem export (JSONL).
    pub fn to_flight_jsonl(&self) -> String {
        export_flight_jsonl(
            &self.outcome.postmortems,
            self.outcome.postmortems_suppressed,
        )
    }

    /// One-line health summary served at `/healthz`: overall status plus
    /// the counters an operator checks first.
    pub fn to_healthz(&self) -> String {
        let c = &self.outcome.counters;
        format!(
            "{{\"status\":\"{}\",\"boards\":{},\"completed\":{},\"shed\":{},\"silently_corrupt\":{},\"crashes\":{},\"postmortems\":{}}}\n",
            if self.slo_ok { "ok" } else { "degraded" },
            self.outcome.boards.len(),
            c.completed,
            c.shed,
            c.silently_corrupt,
            c.crashes,
            self.outcome.postmortems.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn report() -> ServeReport {
        let cfg = ServeConfig {
            requests: 40,
            ..ServeConfig::default()
        };
        ServeReport::build(&cfg, sim::run(&cfg).unwrap())
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let samples: Vec<Cycle> = (1..=100).rev().collect();
        assert_eq!(percentile(&samples, 0.50), 50);
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn text_report_is_deterministic_and_complete() {
        let a = report().to_text();
        let b = report().to_text();
        assert_eq!(a, b);
        assert!(a.contains("== redvolt-serve run =="));
        assert!(a.contains("latency/ref-cycles"));
        assert!(a.contains("== Fleet =="));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn exports_are_deterministic_and_carry_the_run() {
        let r = report();
        assert_eq!(r.to_jsonl(), r.to_jsonl());
        assert_eq!(r.to_prometheus(), r.to_prometheus());
        let jsonl = r.to_jsonl();
        assert!(jsonl.starts_with("{\"type\":\"meta\""));
        assert!(jsonl.contains("\"name\":\"request\""));
        assert!(jsonl.contains("\"name\":\"batch\""));
        assert!(jsonl.contains("serve_requests_total"));
        assert!(jsonl.contains("serve_spans_dropped_total"));
        let prom = r.to_prometheus();
        assert!(prom.contains("# TYPE serve_latency_ref_cycles histogram"));
        assert!(prom.contains("serve_board_utilization"));
        assert!(prom.contains("serve_trace_spans_total"));
    }

    #[test]
    fn chrome_trace_has_board_router_and_governor_tracks() {
        let r = report();
        let trace = r.to_chrome_trace();
        assert_eq!(trace, r.to_chrome_trace());
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(trace.ends_with("]}\n"));
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"router\"}"));
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"governor\"}"));
        assert!(trace.contains("\"thread_name\",\"args\":{\"name\":\"board 0\"}"));
        assert!(trace.contains("\"name\":\"request\",\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"route\",\"ph\":\"i\""));
    }

    #[test]
    fn healthz_is_a_single_json_line() {
        let h = report().to_healthz();
        assert!(h.starts_with("{\"status\":"));
        assert!(h.ends_with("}\n"));
        assert_eq!(h.lines().count(), 1);
    }

    #[test]
    fn latency_stats_match_the_samples() {
        let r = report();
        assert!(r.p50_cycles <= r.p90_cycles);
        assert!(r.p90_cycles <= r.p99_cycles);
        assert!(r.p99_cycles <= r.max_cycles);
        assert_eq!(
            r.max_cycles,
            r.outcome.latencies.iter().copied().max().unwrap()
        );
        assert!(r.slo_ok || r.outcome.counters.silently_corrupt > 0);
    }
}

//! Admission control and request routing.
//!
//! The front door sees every arrival before it touches a board. Routing
//! picks a target queue under one of two policies:
//!
//! * **Round-robin** — the classical baseline: rotate over boards that
//!   have queue space, blind to their operating points.
//! * **Vmin-aware** — score each candidate by its modeled energy per
//!   inference, inflated by queue pressure and by how many mitigation
//!   rungs the governor has walked the board away from its calibrated
//!   point. Deep-undervolted healthy boards win; boards that have been
//!   backed off (their cheap operating point revoked) or are piling up
//!   work are routed around.
//!
//! Admission is load-shedding with a degraded middle band: below the
//! watermark requests get the full service guarantee, between watermark
//! and full they are admitted **degraded** (served, but not retried on a
//! flagged SDC), and when every queue is full they are **shed**.

/// Routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Energy-per-inference scoring against governor state.
    VminAware,
    /// Rotating baseline.
    RoundRobin,
}

impl RouterPolicy {
    /// Parses a CLI name (`vmin` / `rr`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "vmin" | "vmin-aware" => Some(RouterPolicy::VminAware),
            "rr" | "round-robin" => Some(RouterPolicy::RoundRobin),
            _ => None,
        }
    }

    /// The canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::VminAware => "vmin",
            RouterPolicy::RoundRobin => "rr",
        }
    }
}

/// What the router can see of one board when it decides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoardView {
    /// Requests currently queued.
    pub queue_len: usize,
    /// Queue bound.
    pub queue_depth: usize,
    /// Whether the board is up (false while rebooting after a hang).
    pub available: bool,
    /// Modeled energy per inference at the current operating point, J.
    pub energy_per_inf_j: f64,
    /// Mitigation rungs walked away from the calibrated point.
    pub rungs: u32,
}

impl BoardView {
    fn has_space(&self) -> bool {
        self.available && self.queue_len < self.queue_depth
    }
}

/// An admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue on `board`; `degraded` requests forfeit SDC retries.
    Accept {
        /// Target board index.
        board: usize,
        /// Admitted above the degrade watermark.
        degraded: bool,
    },
    /// Every queue is full (or every board is down): drop the request.
    Shed,
}

/// Deterministic router (the round-robin cursor is its only state).
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    rr_cursor: usize,
}

impl Router {
    /// A router under `policy`.
    pub fn new(policy: RouterPolicy) -> Self {
        Router {
            policy,
            rr_cursor: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Vmin-aware score: modeled energy per inference inflated by queue
    /// pressure and mitigation state. Lower is better. Public so the
    /// tracing layer can attach the winning score to route decisions.
    pub fn score_of(view: &BoardView) -> f64 {
        view.energy_per_inf_j
            * (1.0 + 0.3 * view.queue_len as f64)
            * (1.0 + 0.5 * f64::from(view.rungs))
    }

    /// Picks a queue for one request, skipping `exclude` (used when
    /// retrying a flagged batch: the retry must land on a different
    /// board). Returns `None` when no candidate has space.
    pub fn route(&mut self, views: &[BoardView], exclude: Option<usize>) -> Option<usize> {
        let candidate = |i: usize| views[i].has_space() && Some(i) != exclude;
        match self.policy {
            RouterPolicy::VminAware => {
                (0..views.len()).filter(|&i| candidate(i)).min_by(|&a, &b| {
                    Self::score_of(&views[a])
                        .partial_cmp(&Self::score_of(&views[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                })
            }
            RouterPolicy::RoundRobin => {
                let n = views.len();
                for step in 0..n {
                    let i = (self.rr_cursor + step) % n;
                    if candidate(i) {
                        self.rr_cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
        }
    }

    /// Runs admission control for one arrival. `degrade_watermark` is the
    /// queue-fill fraction above which admits are degraded.
    pub fn admit(&mut self, views: &[BoardView], degrade_watermark: f64) -> Admission {
        match self.route(views, None) {
            Some(board) => {
                let v = &views[board];
                let degraded = (v.queue_len as f64) >= degrade_watermark * v.queue_depth as f64;
                Admission::Accept { board, degraded }
            }
            None => Admission::Shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(queue_len: usize, energy: f64, rungs: u32) -> BoardView {
        BoardView {
            queue_len,
            queue_depth: 8,
            available: true,
            energy_per_inf_j: energy,
            rungs,
        }
    }

    #[test]
    fn vmin_aware_prefers_the_cheapest_healthy_board() {
        let mut r = Router::new(RouterPolicy::VminAware);
        let views = [view(0, 3e-3, 0), view(0, 1e-3, 0), view(0, 2e-3, 0)];
        assert_eq!(r.route(&views, None), Some(1));
        // The same cheap board, walked three mitigation rungs, loses out.
        let views = [view(0, 3e-3, 0), view(0, 1e-3, 3), view(0, 2e-3, 0)];
        assert_eq!(r.route(&views, None), Some(2));
        // Queue pressure steers away from a backed-up cheap board.
        let views = [view(0, 1.2e-3, 0), view(7, 1e-3, 0)];
        assert_eq!(r.route(&views, None), Some(0));
    }

    #[test]
    fn round_robin_rotates_and_skips_full_queues() {
        let mut r = Router::new(RouterPolicy::RoundRobin);
        let mut views = [view(0, 1e-3, 0), view(0, 1e-3, 0), view(0, 1e-3, 0)];
        assert_eq!(r.route(&views, None), Some(0));
        assert_eq!(r.route(&views, None), Some(1));
        views[2].queue_len = 8; // full
        assert_eq!(r.route(&views, None), Some(0));
        assert_eq!(r.route(&views, None), Some(1));
    }

    #[test]
    fn retries_exclude_the_source_board() {
        let mut r = Router::new(RouterPolicy::VminAware);
        let views = [view(0, 1e-3, 0), view(0, 5e-3, 0)];
        assert_eq!(r.route(&views, Some(0)), Some(1));
        assert_eq!(r.route(&[view(0, 1e-3, 0)], Some(0)), None);
    }

    #[test]
    fn admission_degrades_above_the_watermark_and_sheds_when_full() {
        let mut r = Router::new(RouterPolicy::VminAware);
        assert_eq!(
            r.admit(&[view(2, 1e-3, 0)], 0.75),
            Admission::Accept {
                board: 0,
                degraded: false
            }
        );
        assert_eq!(
            r.admit(&[view(6, 1e-3, 0)], 0.75),
            Admission::Accept {
                board: 0,
                degraded: true
            }
        );
        let mut full = view(8, 1e-3, 0);
        assert_eq!(r.admit(&[full], 0.75), Admission::Shed);
        full.queue_len = 0;
        full.available = false;
        assert_eq!(r.admit(&[full], 0.75), Admission::Shed);
    }
}

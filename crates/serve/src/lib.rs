//! # redvolt-serve — deterministic inference serving over an undervolted fleet
//!
//! The paper measures one board at a time; this crate asks the systems
//! question that follows from it: *if reduced-voltage operation saves
//! 2-3x power, what does a serving cluster built on undervolted FPGAs
//! look like?* It simulates a fleet of [`Zcu102Board`]-backed
//! accelerators behind a front door with admission control, bounded
//! per-board queues, dynamic batching, and a router that understands
//! each board's calibrated Vmin and current mitigation state.
//!
//! The whole subsystem is a **discrete-event simulation in virtual
//! time**: timestamps are cycles of the nominal DPU clock, arrivals come
//! from seeded streams, and every observable output — the report, the
//! JSONL metrics, the Prometheus export — is byte-identical across
//! reruns and worker counts for a fixed `(seed, config)`.
//!
//! Module map:
//!
//! * [`event`] — the virtual-time event queue (`(cycle, seq)`-ordered).
//! * [`traffic`] — seeded open-loop Poisson/burst arrival streams.
//! * [`fleet`] — per-board bring-up, Vmin calibration, batch execution,
//!   energy accounting, ladder escalation and crash recovery.
//! * [`router`] — admission control (shed/degrade) and the Vmin-aware
//!   vs round-robin routing policies.
//! * [`sim`] — the event loop tying it all together, threading a
//!   request-lifecycle trace (admission → queue → batch → execute →
//!   complete/shed/degraded) and a bounded flight recorder through
//!   every decision.
//! * [`report`] — text/JSONL/Prometheus/Chrome-trace/flight-recorder
//!   renderings of a finished run.
//! * [`obs`] — a std-only blocking HTTP endpoint serving the final
//!   snapshot (`/metrics`, `/healthz`, `/trace`).
//!
//! ```
//! use redvolt_serve::report::ServeReport;
//! use redvolt_serve::sim::{self, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ServeConfig {
//!     requests: 24,
//!     ..ServeConfig::default()
//! };
//! let outcome = sim::run(&cfg)?;
//! assert_eq!(outcome.counters.offered, 24);
//! let report = ServeReport::build(&cfg, outcome);
//! assert!(report.to_text().contains("== redvolt-serve run =="));
//! # Ok(())
//! # }
//! ```
//!
//! [`Zcu102Board`]: redvolt_fpga::board::Zcu102Board

pub mod event;
pub mod fleet;
pub mod obs;
pub mod report;
pub mod router;
pub mod sim;
pub mod traffic;

//! Virtual-time event queue.
//!
//! The serving subsystem is a discrete-event simulation: there is no wall
//! clock anywhere, only a monotonically advancing virtual timestamp in
//! **reference cycles** (cycles of the nominal 333 MHz DPU clock). Events
//! scheduled at the same cycle are ordered by their insertion sequence
//! number, which itself is assigned in deterministic program order — so
//! the event trace, and everything derived from it, is a pure function of
//! `(seed, config)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A virtual timestamp in reference cycles (nominal-clock cycles).
pub type Cycle = u64;

/// One scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A request arrives at the front door (admission control runs).
    Arrival,
    /// A board's batch-accumulation window expired: dispatch whatever is
    /// queued if the board is idle and the epoch still matches (a
    /// dispatch between scheduling and firing bumps the epoch, voiding
    /// the timeout).
    BatchTimeout {
        /// Board index.
        board: usize,
        /// Queue epoch the timeout was armed against.
        epoch: u64,
    },
    /// A board finished its in-flight batch.
    BatchDone {
        /// Board index.
        board: usize,
    },
    /// A crashed board completed its power-cycle and rejoins the fleet.
    BoardUp {
        /// Board index.
        board: usize,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled {
    cycle: Cycle,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (cycle, seq)
        // pops first.
        (other.cycle, other.seq).cmp(&(self.cycle, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of [`Event`]s keyed by `(cycle, seq)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `cycle`. Ties break by insertion order.
    pub fn push(&mut self, cycle: Cycle, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { cycle, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, Event)> {
        self.heap.pop().map(|s| (s.cycle, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_cycle_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(20, Event::BatchDone { board: 1 });
        q.push(10, Event::Arrival);
        q.push(10, Event::BoardUp { board: 0 });
        q.push(15, Event::BatchTimeout { board: 2, epoch: 7 });
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((10, Event::Arrival)));
        assert_eq!(q.pop(), Some((10, Event::BoardUp { board: 0 })));
        assert_eq!(
            q.pop(),
            Some((15, Event::BatchTimeout { board: 2, epoch: 7 }))
        );
        assert_eq!(q.pop(), Some((20, Event::BatchDone { board: 1 })));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}

//! Live observability endpoint (`/metrics`, `/healthz`, `/trace`).
//!
//! A deliberately tiny, std-only, blocking HTTP/1.1 server that exposes
//! a **finished run's** exports over a socket so standard tooling
//! (`curl`, a Prometheus scraper, a browser pointed at Perfetto) can
//! pull them. The deterministic event loop stays pure: the server never
//! touches live simulation state, it serves an immutable [`ObsSnapshot`]
//! rendered once from the final [`ServeReport`]. `/metrics` is
//! byte-identical to the `--prom-out` file, `/trace` to the
//! `--trace-out` file — the socket is a transport, not a second code
//! path.
//!
//! One connection at a time, `Connection: close` on every response; the
//! accept loop is bounded by `max_requests` when the caller needs the
//! server to terminate (tests, CI smoke).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use crate::report::ServeReport;

/// Per-connection socket timeout: a stalled peer cannot wedge the
/// accept loop forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The immutable endpoint payloads, rendered once from a final report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// `/metrics` body (Prometheus text exposition).
    pub metrics: String,
    /// `/healthz` body (one JSON line).
    pub healthz: String,
    /// `/trace` body (Chrome trace-event JSON).
    pub trace: String,
}

impl ObsSnapshot {
    /// Renders the endpoint payloads from a finished run.
    pub fn of(report: &ServeReport) -> Self {
        ObsSnapshot {
            metrics: report.to_prometheus(),
            healthz: report.to_healthz(),
            trace: report.to_chrome_trace(),
        }
    }
}

/// The blocking observability server.
#[derive(Debug)]
pub struct ObsServer {
    listener: TcpListener,
    snapshot: ObsSnapshot,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`, port 0 for ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, snapshot: ObsSnapshot) -> io::Result<Self> {
        Ok(ObsServer {
            listener: TcpListener::bind(addr)?,
            snapshot,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and answers connections one at a time. With
    /// `max_requests: Some(n)` the loop returns after `n` connections;
    /// with `None` it runs until the process exits. Returns the number
    /// of connections handled. Per-connection I/O errors are counted
    /// against the bound but otherwise ignored — a misbehaving client
    /// must not take the endpoint down.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (not per-connection I/O errors).
    pub fn serve(&self, max_requests: Option<u64>) -> io::Result<u64> {
        let mut handled = 0;
        loop {
            if let Some(limit) = max_requests {
                if handled >= limit {
                    return Ok(handled);
                }
            }
            let (stream, _) = self.listener.accept()?;
            let _ = self.handle(stream);
            handled += 1;
        }
    }

    fn handle(&self, stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut reader = BufReader::new(stream);
        let mut request_line = String::new();
        reader.read_line(&mut request_line)?;
        // Drain the headers; the snapshot server ignores them all.
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
                break;
            }
        }
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        let mut stream = reader.into_inner();
        let (status, content_type, body): (&str, &str, &str) = if method != "GET" {
            (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "method not allowed\n",
            )
        } else {
            match path {
                "/metrics" => (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &self.snapshot.metrics,
                ),
                "/healthz" => ("200 OK", "application/json", &self.snapshot.healthz),
                "/trace" => ("200 OK", "application/json", &self.snapshot.trace),
                _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n"),
            }
        };
        write!(
            stream,
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn snapshot() -> ObsSnapshot {
        ObsSnapshot {
            metrics: "# TYPE up gauge\nup 1\n".to_string(),
            healthz: "{\"status\":\"ok\"}\n".to_string(),
            trace: "{\"traceEvents\":[\n]}\n".to_string(),
        }
    }

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn spawn(requests: u64) -> (SocketAddr, std::thread::JoinHandle<u64>) {
        let server = ObsServer::bind("127.0.0.1:0", snapshot()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve(Some(requests)).unwrap());
        (addr, handle)
    }

    #[test]
    fn serves_the_snapshot_bytes_verbatim() {
        let (addr, handle) = spawn(3);
        let metrics = get(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("version=0.0.4"));
        assert!(metrics.ends_with(&snapshot().metrics));
        let healthz = get(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(healthz.ends_with(&snapshot().healthz));
        let trace = get(addr, "GET /trace HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(trace.contains("Content-Type: application/json"));
        assert!(trace.ends_with(&snapshot().trace));
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let (addr, handle) = spawn(2);
        let missing = get(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));
        let post = get(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert_eq!(handle.join().unwrap(), 2);
    }

    #[test]
    fn content_length_matches_the_body() {
        let (addr, handle) = spawn(1);
        let response = get(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        handle.join().unwrap();
    }
}

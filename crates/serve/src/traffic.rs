//! Seeded open-loop request generation.
//!
//! Arrivals follow an open-loop Poisson process (exponential gaps around
//! the configured offered rate), optionally interleaved with seeded
//! bursts — `burst_len` back-to-back requests every `burst_every`
//! arrivals, the adversarial pattern the admission-control property test
//! uses to try to overflow the bounded queues. Gap and image streams are
//! derived independently from the master seed, so changing one knob
//! never perturbs the other stream.

use crate::event::Cycle;
use redvolt_fpga::calib::F_NOM_MHZ;
use redvolt_num::rng::{derive_stream_seed, Xoshiro256StarStar};

/// Seed-stream labels (arbitrary distinct constants).
const GAP_STREAM: u64 = 0x5E21;
const IMAGE_STREAM: u64 = 0x5E22;

/// One inference request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Monotonic request id, in arrival order.
    pub id: u64,
    /// Arrival timestamp, reference cycles.
    pub arrival: Cycle,
    /// Index of the request's image in the shared evaluation set.
    pub image: usize,
    /// Executions so far (0 until first dispatch; bumped by SDC/crash
    /// retries).
    pub attempts: u32,
    /// Whether admission control accepted this request in degraded mode
    /// (served, but without the SDC retry guarantee).
    pub degraded: bool,
}

/// Traffic-shape configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Total requests to generate.
    pub requests: u64,
    /// Offered load in requests per simulated second.
    pub rps: f64,
    /// Images in the shared evaluation set (requests draw uniformly).
    pub eval_images: usize,
    /// Every `burst_every`-th arrival starts a burst (0 disables bursts).
    pub burst_every: u64,
    /// Length of each burst: that many follow-up requests arrive with a
    /// one-cycle gap.
    pub burst_len: u64,
}

/// Mean inter-arrival gap in reference cycles for an offered rate.
pub fn mean_gap_cycles(rps: f64) -> f64 {
    F_NOM_MHZ * 1e6 / rps.max(1e-9)
}

/// Deterministic open-loop arrival stream.
#[derive(Debug)]
pub struct TrafficGenerator {
    cfg: TrafficConfig,
    gap_rng: Xoshiro256StarStar,
    image_rng: Xoshiro256StarStar,
    clock: Cycle,
    emitted: u64,
    burst_left: u64,
}

impl TrafficGenerator {
    /// A generator over `cfg` seeded from the campaign master seed.
    pub fn new(seed: u64, cfg: TrafficConfig) -> Self {
        TrafficGenerator {
            cfg,
            gap_rng: Xoshiro256StarStar::seed_from(derive_stream_seed(seed, GAP_STREAM)),
            image_rng: Xoshiro256StarStar::seed_from(derive_stream_seed(seed, IMAGE_STREAM)),
            clock: 0,
            emitted: 0,
            burst_left: 0,
        }
    }

    /// Requests still to come.
    pub fn remaining(&self) -> u64 {
        self.cfg.requests - self.emitted
    }

    fn next_gap(&mut self) -> Cycle {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return 1;
        }
        if self.cfg.burst_every > 0
            && self.emitted > 0
            && self.emitted.is_multiple_of(self.cfg.burst_every)
        {
            self.burst_left = self.cfg.burst_len;
        }
        let mean = mean_gap_cycles(self.cfg.rps);
        let u = self.gap_rng.next_f64();
        let gap = -(1.0 - u).ln() * mean;
        (gap.ceil() as Cycle).max(1)
    }
}

impl Iterator for TrafficGenerator {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.emitted >= self.cfg.requests {
            return None;
        }
        self.clock += self.next_gap();
        let req = Request {
            id: self.emitted,
            arrival: self.clock,
            image: self.image_rng.next_index(self.cfg.eval_images.max(1)),
            attempts: 0,
            degraded: false,
        };
        self.emitted += 1;
        Some(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrafficConfig {
        TrafficConfig {
            requests: 200,
            rps: 5_000.0,
            eval_images: 24,
            burst_every: 0,
            burst_len: 0,
        }
    }

    #[test]
    fn streams_are_seeded_and_reproducible() {
        let a: Vec<Request> = TrafficGenerator::new(42, cfg()).collect();
        let b: Vec<Request> = TrafficGenerator::new(42, cfg()).collect();
        let c: Vec<Request> = TrafficGenerator::new(43, cfg()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].arrival < w[1].arrival));
        assert!(a.iter().all(|r| r.image < 24));
    }

    #[test]
    fn mean_gap_tracks_the_offered_rate() {
        let reqs: Vec<Request> = TrafficGenerator::new(7, cfg()).collect();
        let span = reqs.last().unwrap().arrival - reqs.first().unwrap().arrival;
        let mean = span as f64 / (reqs.len() - 1) as f64;
        let want = mean_gap_cycles(5_000.0);
        assert!(
            (mean / want - 1.0).abs() < 0.25,
            "measured mean gap {mean} vs configured {want}"
        );
    }

    #[test]
    fn bursts_pack_arrivals_back_to_back() {
        let burst = TrafficConfig {
            burst_every: 50,
            burst_len: 8,
            ..cfg()
        };
        let reqs: Vec<Request> = TrafficGenerator::new(42, burst).collect();
        let one_cycle_gaps = reqs
            .windows(2)
            .filter(|w| w[1].arrival - w[0].arrival == 1)
            .count();
        assert!(one_cycle_gaps >= 8 * 3, "got {one_cycle_gaps} burst gaps");
    }
}

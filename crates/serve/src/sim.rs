//! The discrete-event serving simulation.
//!
//! One single-threaded event loop advances virtual time over a seeded
//! arrival stream and a calibrated board fleet. Everything observable —
//! the event trace, every latency sample, every counter — is a pure
//! function of `(seed, config)`: there is no wall clock, no OS entropy,
//! and the only permitted intra-batch parallelism (`image_jobs`) is the
//! DPU runtime's, which is already bit-invariant across worker counts.
//!
//! Request lifecycle:
//!
//! ```text
//! arrival ──► admission (route / degrade / shed)
//!          ──► bounded per-board queue
//!          ──► batch dispatch (max_batch reached, or batch timeout)
//!          ──► execution on the undervolted board
//!          ──► flagged by the defense?  retry on a different board
//!          ──► completion (latency recorded, prediction audited)
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::event::{Cycle, Event, EventQueue};
use crate::fleet::{BatchExec, CalibConfig, FleetBoard};
use crate::router::{Admission, BoardView, Router, RouterPolicy};
use crate::traffic::{Request, TrafficConfig, TrafficGenerator};
use redvolt_core::bench_suite::BenchmarkId;
use redvolt_core::experiment::{Accelerator, AcceleratorConfig, MeasureError};
use redvolt_dpu::runtime::RunError;
use redvolt_nn::abft::DefenseMode;
use redvolt_nn::models::ModelScale;
use redvolt_nn::tensor::Tensor;
use redvolt_num::rng::derive_stream_seed;
use redvolt_telemetry::span::DEFAULT_SPAN_CAPACITY;
use redvolt_telemetry::{AttrValue, FlightRecorder, PostMortem, Snapshot, SpanRecord, SpanRing};

/// Seed-stream label for the clean reference pass.
const REFERENCE_STREAM: u64 = 0x5EF0;

/// Full serving-scenario configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Master seed; every stream in the simulation derives from it.
    pub seed: u64,
    /// Fleet size.
    pub boards: usize,
    /// Total offered requests.
    pub requests: u64,
    /// Offered load, requests per simulated second.
    pub rps: f64,
    /// Served model.
    pub benchmark: BenchmarkId,
    /// Model scale (tiny for tests/smoke, paper for campaigns).
    pub scale: ModelScale,
    /// Shared evaluation-set size (requests draw uniformly from it).
    pub eval_images: usize,
    /// Dispatch a batch as soon as this many requests are queued.
    pub max_batch: usize,
    /// ... or when the oldest queued request has waited this long.
    pub batch_timeout_cycles: Cycle,
    /// Per-board queue bound (admission control's hard limit).
    pub queue_depth: usize,
    /// Queue-fill fraction above which admits are degraded.
    pub degrade_watermark: f64,
    /// Fixed dispatch overhead added to each batch, reference cycles.
    pub batch_overhead_cycles: Cycle,
    /// Power-cycle duration after a board hang, reference cycles.
    pub reboot_cycles: Cycle,
    /// Vmin-calibration settings (including the serving margin).
    pub calib: CalibConfig,
    /// Defense armed on every board.
    pub defense: DefenseMode,
    /// Whether the governor walks eventful boards down the ladder.
    pub governor: bool,
    /// Routing policy.
    pub router: RouterPolicy,
    /// Maximum executions per request (1 = no SDC retries).
    pub retry_limit: u32,
    /// p99 latency SLO, reference cycles.
    pub slo_p99_cycles: Cycle,
    /// Every `burst_every`-th arrival starts a burst (0 = none).
    pub burst_every: u64,
    /// Burst length (back-to-back arrivals).
    pub burst_len: u64,
    /// DPU intra-batch image workers (output-invariant by construction).
    pub image_jobs: usize,
    /// Bound on retained lifecycle spans (oldest evicted first; evictions
    /// are counted, never silent).
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            boards: 3,
            requests: 120,
            rps: 40_000.0,
            benchmark: BenchmarkId::VggNet,
            scale: ModelScale::Tiny,
            eval_images: 24,
            max_batch: 4,
            batch_timeout_cycles: 200_000,
            queue_depth: 8,
            degrade_watermark: 0.75,
            batch_overhead_cycles: 10_000,
            reboot_cycles: 30_000_000,
            calib: CalibConfig::default(),
            defense: DefenseMode::Correct,
            governor: true,
            router: RouterPolicy::VminAware,
            retry_limit: 2,
            slo_p99_cycles: 0,
            burst_every: 0,
            burst_len: 0,
            image_jobs: 1,
            trace_capacity: DEFAULT_SPAN_CAPACITY,
        }
    }
}

impl ServeConfig {
    /// The CI smoke scenario: a 3-board fleet served just below Vmin so
    /// the defense, governor and retry paths all see real traffic.
    pub fn smoke() -> Self {
        ServeConfig {
            calib: CalibConfig {
                margin_mv: -10.0,
                ..CalibConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    fn accelerator(&self) -> AcceleratorConfig {
        let base = match self.scale {
            ModelScale::Tiny => AcceleratorConfig::tiny(self.benchmark),
            ModelScale::Paper => AcceleratorConfig {
                benchmark: self.benchmark,
                ..AcceleratorConfig::default()
            },
        };
        AcceleratorConfig {
            eval_images: self.eval_images,
            seed: self.seed,
            defense: self.defense,
            repetitions: 1,
            // The serving governor owns mitigation; the per-measurement
            // governor inside `Accelerator` stays off.
            governor: false,
            ..base
        }
    }

    fn traffic(&self) -> TrafficConfig {
        TrafficConfig {
            requests: self.requests,
            rps: self.rps,
            eval_images: self.eval_images,
            burst_every: self.burst_every,
            burst_len: self.burst_len,
        }
    }
}

/// Serving-simulation errors (configuration or bring-up problems; an
/// operating-point excursion mid-serving is handled, not raised).
#[derive(Debug)]
pub enum ServeError {
    /// Bring-up or calibration failed.
    Measure(MeasureError),
    /// A batch failed for a non-crash reason (indicates a bug).
    Run(RunError),
    /// Invalid configuration.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Measure(e) => write!(f, "bring-up failed: {e}"),
            ServeError::Run(e) => write!(f, "batch execution failed: {e}"),
            ServeError::Config(msg) => write!(f, "invalid serve config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<MeasureError> for ServeError {
    fn from(e: MeasureError) -> Self {
        ServeError::Measure(e)
    }
}

impl From<RunError> for ServeError {
    fn from(e: RunError) -> Self {
        ServeError::Run(e)
    }
}

/// Aggregate serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Requests generated by the arrival stream.
    pub offered: u64,
    /// Requests admitted (including degraded).
    pub admitted: u64,
    /// Requests admitted in degraded mode.
    pub degraded: u64,
    /// Requests shed at the front door.
    pub shed: u64,
    /// Requests dropped when a crash requeue found no open queue.
    pub dropped_on_crash: u64,
    /// Requests completed with a response.
    pub completed: u64,
    /// Requests re-routed after their batch was flagged by the defense.
    pub retried: u64,
    /// Requests re-routed because their board hung mid-batch.
    pub requeued_on_crash: u64,
    /// Requests completed while still flagged (retry budget exhausted
    /// or degraded admission).
    pub flagged_completed: u64,
    /// Completed responses whose prediction differs from the clean
    /// reference.
    pub corrupt: u64,
    /// Corrupt responses that no defense ever flagged.
    pub silently_corrupt: u64,
    /// Board hangs while serving.
    pub crashes: u64,
    /// Batches executed (including crashed ones).
    pub batches: u64,
    /// Governor ladder escalations.
    pub escalations: u64,
}

/// End-of-run summary of one board.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardSummary {
    /// Board index.
    pub index: usize,
    /// Calibrated Vmin, mV.
    pub vmin_mv: f64,
    /// Serving base point, mV.
    pub base_mv: f64,
    /// Final operating voltage, mV.
    pub vccint_mv: f64,
    /// Final clock, MHz.
    pub f_mhz: f64,
    /// Batches executed.
    pub batches: u64,
    /// Requests whose recorded response ran here.
    pub served: u64,
    /// Reference cycles spent busy.
    pub busy_cycles: Cycle,
    /// Total energy charged, J.
    pub energy_j: f64,
    /// Modeled energy per inference at the final point, J.
    pub energy_per_inf_j: f64,
    /// Cumulative SDC/ECC events.
    pub events: u64,
    /// Final mitigation rungs away from base.
    pub rungs: u32,
    /// Hangs.
    pub crashes: u64,
}

/// One executed batch, for the exported span stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSpan {
    /// Board that ran the batch.
    pub board: usize,
    /// Dispatch timestamp, reference cycles.
    pub start_cycle: Cycle,
    /// Completion timestamp (== start for a crashed batch).
    pub end_cycle: Cycle,
    /// Requests in the batch.
    pub requests: usize,
    /// SDC/ECC events during the batch.
    pub events: u64,
    /// Whether the defense flagged the batch.
    pub flagged: bool,
    /// Whether the board hung mid-batch.
    pub crashed: bool,
}

/// Raw simulation outcome (rendered by [`crate::report`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Completion latencies in reference cycles, in completion order.
    pub latencies: Vec<Cycle>,
    /// Aggregate counters.
    pub counters: Counters,
    /// Per-board summaries, by index.
    pub boards: Vec<BoardSummary>,
    /// Every executed batch, in dispatch order.
    pub batch_spans: Vec<BatchSpan>,
    /// Request-lifecycle spans (admission → queue → execute → complete,
    /// plus board/governor markers), in completion order.
    pub trace_spans: Vec<SpanRecord>,
    /// Spans evicted from the bounded trace ring.
    pub trace_dropped: u64,
    /// Flight-recorder post-mortems, in trigger order.
    pub postmortems: Vec<PostMortem>,
    /// Post-mortem triggers suppressed after the dump bound was hit.
    pub postmortems_suppressed: u64,
    /// Highest queue occupancy any board ever reached (the admission
    /// bound says this never exceeds `queue_depth`).
    pub peak_queue_len: usize,
    /// Virtual timestamp of the last event.
    pub end_cycle: Cycle,
}

struct BoardState {
    fleet: FleetBoard,
    queue: VecDeque<Request>,
    in_flight: Option<(Vec<Request>, BatchExec)>,
    available: bool,
    epoch: u64,
    armed_epoch: Option<u64>,
}

impl BoardState {
    fn view(&self, depth: usize) -> BoardView {
        BoardView {
            queue_len: self.queue.len(),
            queue_depth: depth,
            available: self.available,
            energy_per_inf_j: self.fleet.energy_per_inf_j,
            rungs: self.fleet.rungs,
        }
    }
}

struct Sim<'a> {
    cfg: &'a ServeConfig,
    boards: Vec<BoardState>,
    router: Router,
    events: EventQueue,
    traffic: TrafficGenerator,
    pending_arrival: Option<Request>,
    reference: Vec<usize>,
    latencies: Vec<Cycle>,
    counters: Counters,
    batch_spans: Vec<BatchSpan>,
    trace: SpanRing,
    recorder: FlightRecorder,
    /// Request-root span id per request id (0 = none yet).
    req_span: Vec<u64>,
    /// Open queue-wait span id per request id (0 = not queued).
    queue_span: Vec<u64>,
    peak_queue_len: usize,
    end_cycle: Cycle,
}

/// Runs one serving scenario to completion.
///
/// # Errors
///
/// Returns [`ServeError`] on invalid configuration or when fleet
/// bring-up/calibration fails; mid-serving hangs and SDC events are part
/// of the simulation, not errors.
pub fn run(cfg: &ServeConfig) -> Result<ServeOutcome, ServeError> {
    if cfg.boards == 0 {
        return Err(ServeError::Config("fleet needs at least one board".into()));
    }
    if cfg.max_batch == 0 || cfg.queue_depth < cfg.max_batch {
        return Err(ServeError::Config(format!(
            "queue depth {} must hold at least one max batch {}",
            cfg.queue_depth, cfg.max_batch
        )));
    }
    if cfg.retry_limit == 0 {
        return Err(ServeError::Config("retry limit must be >= 1".into()));
    }

    let acc_cfg = cfg.accelerator();
    let reference = reference_predictions(&acc_cfg)?;

    let mut boards = Vec::with_capacity(cfg.boards);
    for index in 0..cfg.boards {
        let mut fleet = FleetBoard::bring_up(index, &acc_cfg)?;
        let ops = fleet.accelerator().workload().dense_equivalent_ops;
        fleet.calibrate(&cfg.calib, ops)?;
        if cfg.image_jobs > 0 {
            fleet.set_image_jobs(cfg.image_jobs);
        }
        boards.push(BoardState {
            fleet,
            queue: VecDeque::new(),
            in_flight: None,
            available: true,
            epoch: 0,
            armed_epoch: None,
        });
    }

    let mut sim = Sim {
        cfg,
        boards,
        router: Router::new(cfg.router),
        events: EventQueue::new(),
        traffic: TrafficGenerator::new(cfg.seed, cfg.traffic()),
        pending_arrival: None,
        reference,
        latencies: Vec::with_capacity(cfg.requests as usize),
        counters: Counters::default(),
        batch_spans: Vec::new(),
        trace: SpanRing::with_capacity(cfg.trace_capacity),
        recorder: FlightRecorder::new(),
        req_span: vec![0; cfg.requests as usize],
        queue_span: vec![0; cfg.requests as usize],
        peak_queue_len: 0,
        end_cycle: 0,
    };
    sim.schedule_next_arrival();
    sim.run_to_completion()?;

    let boards = sim
        .boards
        .iter()
        .map(|b| {
            let acc = b.fleet.accelerator();
            BoardSummary {
                index: b.fleet.index,
                vmin_mv: b.fleet.vmin_mv,
                base_mv: b.fleet.base_mv,
                vccint_mv: acc.vccint_mv(),
                f_mhz: acc.clock_mhz(),
                batches: b.fleet.batches,
                served: b.fleet.served,
                busy_cycles: b.fleet.busy_cycles,
                energy_j: b.fleet.energy.total_j(),
                energy_per_inf_j: b.fleet.energy_per_inf_j,
                events: b.fleet.events,
                rungs: b.fleet.rungs,
                crashes: b.fleet.crashes,
            }
        })
        .collect();

    Ok(ServeOutcome {
        latencies: sim.latencies,
        counters: sim.counters,
        boards,
        batch_spans: sim.batch_spans,
        trace_dropped: sim.trace.dropped(),
        trace_spans: sim.trace.take(),
        postmortems: sim.recorder.take_dumps(),
        postmortems_suppressed: sim.recorder.suppressed(),
        peak_queue_len: sim.peak_queue_len,
        end_cycle: sim.end_cycle,
    })
}

/// Clean per-image reference predictions, computed once at the nominal
/// operating point (zero fault rate) before the fleet is undervolted.
fn reference_predictions(acc_cfg: &AcceleratorConfig) -> Result<Vec<usize>, ServeError> {
    let mut acc = Accelerator::bring_up(acc_cfg)?;
    let images: Vec<Tensor> = acc.workload().eval.images.clone();
    let seed = derive_stream_seed(acc_cfg.seed, REFERENCE_STREAM);
    let (runtime, workload) = acc.runtime_and_workload_mut();
    let result = runtime.run_batch(&mut workload.task, &images, seed)?;
    Ok(result.predictions)
}

impl Sim<'_> {
    fn schedule_next_arrival(&mut self) {
        debug_assert!(self.pending_arrival.is_none());
        if let Some(req) = self.traffic.next() {
            self.events.push(req.arrival, Event::Arrival);
            self.pending_arrival = Some(req);
        }
    }

    fn run_to_completion(&mut self) -> Result<(), ServeError> {
        while let Some((now, event)) = self.events.pop() {
            self.end_cycle = self.end_cycle.max(now);
            match event {
                Event::Arrival => {
                    let req = self
                        .pending_arrival
                        .take()
                        .expect("arrival event without a pending request");
                    self.counters.offered += 1;
                    let span = self.trace.begin_root("request", now);
                    self.trace.attr(span, "request", req.id);
                    self.trace.attr(span, "image", req.image as u64);
                    self.req_span[req.id as usize] = span;
                    self.admit(req, now)?;
                    self.schedule_next_arrival();
                }
                Event::BatchTimeout { board, epoch } => {
                    if self.boards[board].armed_epoch == Some(epoch) {
                        self.boards[board].armed_epoch = None;
                        if self.boards[board].epoch == epoch {
                            self.dispatch_if_ready(board, now, true)?;
                        }
                    }
                }
                Event::BatchDone { board } => {
                    self.finish_batch(board, now)?;
                    self.dispatch_if_ready(board, now, false)?;
                }
                Event::BoardUp { board } => {
                    self.boards[board].available = true;
                    let up = self.trace.instant("board_up", None, now);
                    self.trace.attr_done(up, "board", board as u64);
                    self.mirror_last();
                    self.dispatch_if_ready(board, now, false)?;
                }
            }
        }
        Ok(())
    }

    fn admit(&mut self, mut req: Request, now: Cycle) -> Result<(), ServeError> {
        let views: Vec<BoardView> = self
            .boards
            .iter()
            .map(|b| b.view(self.cfg.queue_depth))
            .collect();
        let span = self.req_span[req.id as usize];
        match self.router.admit(&views, self.cfg.degrade_watermark) {
            Admission::Accept { board, degraded } => {
                req.degraded = degraded;
                self.counters.admitted += 1;
                if degraded {
                    self.counters.degraded += 1;
                    self.trace.attr(span, "degraded", true);
                }
                let route = self.trace.instant("route", Some(span), now);
                self.trace.attr_done(route, "board", board as u64);
                self.trace
                    .attr_done(route, "policy", self.router.policy().name());
                if self.router.policy() == RouterPolicy::VminAware {
                    self.trace
                        .attr_done(route, "score", Router::score_of(&views[board]));
                }
                self.mirror_last();
                self.enqueue(board, req, now);
                self.dispatch_if_ready(board, now, false)?;
            }
            Admission::Shed => {
                self.counters.shed += 1;
                self.trace.attr(span, "outcome", "shed");
                self.trace.end(span, now);
                self.mirror_last();
            }
        }
        Ok(())
    }

    /// Re-routes a request mid-flight (SDC retry or crash requeue),
    /// never back onto `from`. Returns whether it found a queue.
    fn reroute(
        &mut self,
        req: Request,
        from: usize,
        now: Cycle,
        reason: &str,
    ) -> Result<bool, ServeError> {
        let views: Vec<BoardView> = self
            .boards
            .iter()
            .map(|b| b.view(self.cfg.queue_depth))
            .collect();
        let span = self.req_span[req.id as usize];
        let target = self.router.route(&views, Some(from));
        let hop = self.trace.instant("reroute", Some(span), now);
        self.trace.attr_done(hop, "from", from as u64);
        self.trace.attr_done(hop, "reason", reason);
        self.trace.attr_done(hop, "found", target.is_some());
        match target {
            Some(board) => {
                self.trace.attr_done(hop, "board", board as u64);
                self.mirror_last();
                self.enqueue(board, req, now);
                self.dispatch_if_ready(board, now, false)?;
                Ok(true)
            }
            None => {
                self.mirror_last();
                Ok(false)
            }
        }
    }

    fn enqueue(&mut self, board: usize, req: Request, now: Cycle) {
        let parent = self.req_span[req.id as usize];
        let wait = self.trace.begin("queue", Some(parent), now);
        self.trace.attr(wait, "board", board as u64);
        self.queue_span[req.id as usize] = wait;
        let queue = &mut self.boards[board].queue;
        queue.push_back(req);
        self.peak_queue_len = self.peak_queue_len.max(queue.len());
    }

    fn dispatch_if_ready(
        &mut self,
        board: usize,
        now: Cycle,
        timed_out: bool,
    ) -> Result<(), ServeError> {
        let ready = {
            let b = &self.boards[board];
            b.available && b.in_flight.is_none() && !b.queue.is_empty()
        };
        if !ready {
            return Ok(());
        }
        let full = self.boards[board].queue.len() >= self.cfg.max_batch;
        if full || timed_out {
            self.dispatch(board, now)
        } else {
            let b = &mut self.boards[board];
            if b.armed_epoch != Some(b.epoch) {
                b.armed_epoch = Some(b.epoch);
                self.events.push(
                    now + self.cfg.batch_timeout_cycles,
                    Event::BatchTimeout {
                        board,
                        epoch: b.epoch,
                    },
                );
            }
            Ok(())
        }
    }

    fn dispatch(&mut self, board: usize, now: Cycle) -> Result<(), ServeError> {
        let batch: Vec<Request> = {
            let b = &mut self.boards[board];
            b.epoch += 1;
            let n = b.queue.len().min(self.cfg.max_batch);
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                let mut req = b.queue.pop_front().expect("batch size checked");
                req.attempts += 1;
                batch.push(req);
            }
            batch
        };
        self.counters.batches += 1;
        for req in &batch {
            let wait = std::mem::take(&mut self.queue_span[req.id as usize]);
            self.trace.end(wait, now);
            self.mirror_last();
        }
        let indices: Vec<usize> = batch.iter().map(|r| r.image).collect();
        let exec = self.boards[board]
            .fleet
            .run_serving_batch(&indices, self.cfg.batch_overhead_cycles)?;

        let done_at = now + exec.service_ref_cycles;
        self.batch_spans.push(BatchSpan {
            board,
            start_cycle: now,
            end_cycle: done_at,
            requests: batch.len(),
            events: exec.events,
            flagged: exec.flagged,
            crashed: exec.crashed,
        });
        let batch_id = self.trace.record(SpanRecord {
            id: 0,
            parent: None,
            name: "batch".to_string(),
            start_cycle: now,
            end_cycle: done_at,
            attrs: vec![
                ("board".to_string(), AttrValue::U64(board as u64)),
                ("requests".to_string(), AttrValue::U64(batch.len() as u64)),
                ("events".to_string(), AttrValue::U64(exec.events)),
                ("flagged".to_string(), AttrValue::Bool(exec.flagged)),
                ("crashed".to_string(), AttrValue::Bool(exec.crashed)),
            ],
        });
        self.mirror_last();

        if exec.crashed {
            self.counters.crashes += 1;
            self.boards[board].fleet.on_crash();
            self.boards[board].available = false;
            self.events
                .push(now + self.cfg.reboot_cycles, Event::BoardUp { board });
            let crash = self.trace.instant("board_crash", Some(batch_id), now);
            self.trace.attr_done(crash, "board", board as u64);
            self.mirror_last();
            self.snapshot_boards(now);
            self.recorder.dump(
                "board_crash",
                now,
                vec![
                    ("board".to_string(), AttrValue::U64(board as u64)),
                    ("batch_span".to_string(), AttrValue::U64(batch_id)),
                ],
            );
            for req in batch {
                self.counters.requeued_on_crash += 1;
                let rid = req.id as usize;
                if !self.reroute(req, board, now, "crash")? {
                    self.counters.dropped_on_crash += 1;
                    let span = self.req_span[rid];
                    self.trace.attr(span, "outcome", "dropped");
                    self.trace.end(span, now);
                    self.mirror_last();
                }
            }
            return Ok(());
        }

        for req in &batch {
            let parent = self.req_span[req.id as usize];
            self.trace.record(SpanRecord {
                id: 0,
                parent: Some(parent),
                name: "execute".to_string(),
                start_cycle: now,
                end_cycle: done_at,
                attrs: vec![
                    (
                        "attempt".to_string(),
                        AttrValue::U64(u64::from(req.attempts)),
                    ),
                    ("batch_span".to_string(), AttrValue::U64(batch_id)),
                    ("board".to_string(), AttrValue::U64(board as u64)),
                ],
            });
            self.mirror_last();
        }

        if self.cfg.governor && exec.events > 0 {
            let esc = self.boards[board].fleet.escalate();
            self.counters.escalations += 1;
            let rung = self
                .trace
                .instant("governor_escalate", Some(batch_id), done_at);
            self.trace.attr_done(rung, "board", board as u64);
            self.trace.attr_done(rung, "kind", esc.kind);
            self.trace.attr_done(rung, "rungs", esc.rungs);
            self.trace.attr_done(rung, "f_mhz", esc.f_mhz);
            self.trace.attr_done(rung, "vccint_mv", esc.vccint_mv);
            self.mirror_last();
            self.snapshot_boards(done_at);
            self.recorder.dump(
                "governor_escalation",
                done_at,
                vec![
                    ("board".to_string(), AttrValue::U64(board as u64)),
                    ("kind".to_string(), AttrValue::Str(esc.kind.to_string())),
                    ("rungs".to_string(), AttrValue::U64(u64::from(esc.rungs))),
                ],
            );
        }
        self.boards[board].fleet.busy_cycles += exec.service_ref_cycles;
        self.boards[board].in_flight = Some((batch, exec));
        self.events.push(done_at, Event::BatchDone { board });
        Ok(())
    }

    fn finish_batch(&mut self, board: usize, now: Cycle) -> Result<(), ServeError> {
        let (batch, exec) = self.boards[board]
            .in_flight
            .take()
            .expect("batch-done event without an in-flight batch");
        let retryable = exec.flagged && self.cfg.defense != DefenseMode::Off;
        for (req, &prediction) in batch.into_iter().zip(exec.predictions.iter()) {
            if retryable && !req.degraded && req.attempts < self.cfg.retry_limit {
                self.counters.retried += 1;
                if self.reroute(req.clone(), board, now, "sdc_retry")? {
                    continue;
                }
                // Nowhere to retry: fall through and answer as-is.
            }
            self.complete(req, prediction, exec.flagged, board, now);
        }
        Ok(())
    }

    fn complete(
        &mut self,
        req: Request,
        prediction: usize,
        flagged: bool,
        board: usize,
        now: Cycle,
    ) {
        self.counters.completed += 1;
        self.boards[board].fleet.served += 1;
        self.latencies.push(now - req.arrival);
        if flagged {
            self.counters.flagged_completed += 1;
        }
        let span = self.req_span[req.id as usize];
        let corrupt = prediction != self.reference[req.image];
        if corrupt {
            self.counters.corrupt += 1;
            if !flagged {
                self.counters.silently_corrupt += 1;
            }
            let audit = self.trace.instant("sdc_audit", Some(span), now);
            self.trace.attr_done(audit, "board", board as u64);
            self.trace.attr_done(audit, "silent", !flagged);
            self.mirror_last();
            self.snapshot_boards(now);
            self.recorder.dump(
                "sdc_audit",
                now,
                vec![
                    ("board".to_string(), AttrValue::U64(board as u64)),
                    ("request".to_string(), AttrValue::U64(req.id)),
                    ("silent".to_string(), AttrValue::Bool(!flagged)),
                ],
            );
        }
        self.trace.attr(span, "attempts", u64::from(req.attempts));
        self.trace.attr(span, "flagged", flagged);
        self.trace.attr(
            span,
            "outcome",
            if corrupt { "corrupt" } else { "complete" },
        );
        self.trace.end(span, now);
        self.mirror_last();
    }

    /// Clones the most recently completed trace span into the flight
    /// recorder's bounded ring.
    fn mirror_last(&mut self) {
        if let Some(span) = self.trace.last() {
            self.recorder.push(span.clone());
        }
    }

    /// Streams a health snapshot of every board into the flight
    /// recorder, taken just before a post-mortem dump freezes the rings.
    fn snapshot_boards(&mut self, now: Cycle) {
        for b in &self.boards {
            let mut attrs = b.fleet.health().attrs();
            attrs.push((
                "queue_len".to_string(),
                AttrValue::U64(b.queue.len() as u64),
            ));
            attrs.push((
                "rungs".to_string(),
                AttrValue::U64(u64::from(b.fleet.rungs)),
            ));
            self.recorder.snapshot(Snapshot {
                cycle: now,
                source: format!("board{}", b.fleet.index),
                attrs,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ServeConfig {
        ServeConfig {
            requests: 40,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn conservation_every_offered_request_is_accounted_for() {
        let out = run(&quick()).unwrap();
        let c = out.counters;
        assert_eq!(c.offered, 40);
        assert_eq!(c.offered, c.admitted + c.shed);
        assert_eq!(c.completed + c.shed + c.dropped_on_crash, c.offered);
        assert_eq!(out.latencies.len() as u64, c.completed);
        assert!(out.end_cycle > 0);
        assert_eq!(out.boards.len(), 3);
    }

    #[test]
    fn outcome_is_a_pure_function_of_seed_and_config() {
        let a = run(&quick()).unwrap();
        let b = run(&quick()).unwrap();
        assert_eq!(a, b);
        let c = run(&ServeConfig {
            seed: 43,
            ..quick()
        })
        .unwrap();
        assert_ne!(a.latencies, c.latencies);
    }

    #[test]
    fn outcome_is_invariant_across_image_jobs() {
        let serial = run(&quick()).unwrap();
        let parallel = run(&ServeConfig {
            image_jobs: 4,
            ..quick()
        })
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sub_vmin_smoke_exercises_defense_without_silent_corruption() {
        let out = run(&ServeConfig {
            requests: 60,
            ..ServeConfig::smoke()
        })
        .unwrap();
        assert_eq!(out.counters.silently_corrupt, 0);
        let events: u64 = out.boards.iter().map(|b| b.events).sum();
        assert!(
            events > 0,
            "a -10 mV margin below Vmin should produce SDC/ECC activity"
        );
    }

    #[test]
    fn round_robin_and_vmin_policies_diverge() {
        let vmin = run(&quick()).unwrap();
        let rr = run(&ServeConfig {
            router: RouterPolicy::RoundRobin,
            ..quick()
        })
        .unwrap();
        let served = |o: &ServeOutcome| o.boards.iter().map(|b| b.served).collect::<Vec<_>>();
        assert_ne!(served(&vmin), served(&rr));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(run(&ServeConfig {
            boards: 0,
            ..quick()
        })
        .is_err());
        assert!(run(&ServeConfig {
            queue_depth: 2,
            max_batch: 4,
            ..quick()
        })
        .is_err());
    }
}

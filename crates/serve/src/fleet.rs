//! The simulated board fleet: bring-up, Vmin calibration, batch
//! execution, energy accounting and governor escalation.
//!
//! Each [`FleetBoard`] wraps one [`Accelerator`] (its own process corner,
//! timing surface and fault physics). Bring-up reuses the process-wide
//! prepared-workload cache: every board shares one `WorkloadConfig`, so
//! the quantized model is prepared once and cloned per board.
//!
//! **Vmin calibration** replays the paper's methodology at fleet scale:
//! each board descends from the guardband edge in fixed steps, probing a
//! short batch at every point, and records the deepest voltage with zero
//! SDC/ECC events as its Vmin. The serving operating point is
//! `Vmin + margin` — a negative margin deliberately serves *below* Vmin,
//! the regime where the defense layer and the mitigation ladder earn
//! their keep.

use crate::event::Cycle;
use redvolt_core::experiment::{Accelerator, AcceleratorConfig, MeasureError, Measurement};
use redvolt_core::governor::BoardHealth;
use redvolt_core::mitigation::{LadderMove, MitigationLadder};
use redvolt_dpu::runtime::RunError;
use redvolt_fpga::calib::F_NOM_MHZ;
use redvolt_fpga::power::EnergyAccount;
use redvolt_nn::tensor::Tensor;
use redvolt_num::rng::derive_substream_seed;

/// Vmin-calibration settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibConfig {
    /// First probed voltage, mV (just inside the guardband).
    pub start_mv: f64,
    /// Deepest probed voltage, mV.
    pub floor_mv: f64,
    /// Probe grid step, mV.
    pub step_mv: f64,
    /// Images per probe batch.
    pub probe_images: usize,
    /// Serving margin added to the calibrated Vmin, mV (negative =
    /// deliberately serve below Vmin).
    pub margin_mv: f64,
}

impl Default for CalibConfig {
    fn default() -> Self {
        CalibConfig {
            start_mv: 620.0,
            floor_mv: 550.0,
            step_mv: 10.0,
            probe_images: 8,
            margin_mv: 0.0,
        }
    }
}

/// Outcome of one served batch.
#[derive(Debug, Clone)]
pub struct BatchExec {
    /// Service time in reference cycles (DPU cycles rescaled from the
    /// board clock to the nominal clock, plus the dispatch overhead).
    pub service_ref_cycles: Cycle,
    /// Per-image predictions, in batch order.
    pub predictions: Vec<usize>,
    /// SDC/ECC events during the batch: faults delivered into the
    /// datapath plus ECC words touched plus ABFT mismatches.
    pub events: u64,
    /// ABFT mismatches still unresolved after the re-execution budget.
    pub unresolved: u64,
    /// ABFT checksum mismatches flagged.
    pub mismatches: u64,
    /// Whether the batch's responses are suspect under the armed defense
    /// (Detect: any mismatch; Correct: any unresolved mismatch).
    pub flagged: bool,
    /// Energy charged for the batch, joules.
    pub energy_j: f64,
    /// The board hung mid-batch (no responses; caller reboots + reroutes).
    pub crashed: bool,
}

/// Result of one governor escalation step, for the tracing layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Escalation {
    /// Ladder move taken: `"underscale"`, `"backoff"` or `"exhausted"`.
    pub kind: &'static str,
    /// Mitigation rungs away from the base point after the move.
    pub rungs: u32,
    /// Operating clock after the move, MHz.
    pub f_mhz: f64,
    /// Operating voltage after the move, mV.
    pub vccint_mv: f64,
}

/// One board of the serving fleet.
#[derive(Debug)]
pub struct FleetBoard {
    acc: Accelerator,
    /// Board index in the fleet (== `board_sample`).
    pub index: usize,
    /// Calibrated Vmin: deepest probed voltage with zero events, mV.
    pub vmin_mv: f64,
    /// Commanded serving operating point, mV (`vmin + margin`).
    pub base_mv: f64,
    /// Commanded serving clock, MHz.
    pub base_f_mhz: f64,
    /// Per-board mitigation ladder (ceiling keeps headroom above the
    /// board's own base point).
    pub ladder: MitigationLadder,
    /// Modeled energy per inference at the current operating point,
    /// joules (initialised from calibration, refreshed per batch).
    pub energy_per_inf_j: f64,
    /// Cumulative served energy.
    pub energy: EnergyAccount,
    /// Reference cycles this board spent busy.
    pub busy_cycles: Cycle,
    /// Batches dispatched to this board.
    pub batches: u64,
    /// Requests whose final (recorded) execution ran here.
    pub served: u64,
    /// Cumulative SDC/ECC events observed while serving.
    pub events: u64,
    /// Mitigation rungs the governor has currently walked this board
    /// away from its base point.
    pub rungs: u32,
    /// Board hangs while serving.
    pub crashes: u64,
    batch_seed: u64,
}

impl FleetBoard {
    /// Brings up board `index` of the fleet. The accelerator config is
    /// identical across boards except `board_sample`, so the prepared
    /// workload comes from the process-wide cache after the first board.
    pub fn bring_up(index: usize, config: &AcceleratorConfig) -> Result<Self, MeasureError> {
        let config = AcceleratorConfig {
            board_sample: index as u32,
            ..*config
        };
        let acc = Accelerator::bring_up(&config)?;
        Ok(FleetBoard {
            acc,
            index,
            vmin_mv: 0.0,
            base_mv: 0.0,
            base_f_mhz: F_NOM_MHZ,
            ladder: MitigationLadder::default(),
            energy_per_inf_j: 0.0,
            energy: EnergyAccount::new(),
            busy_cycles: 0,
            batches: 0,
            served: 0,
            events: 0,
            rungs: 0,
            crashes: 0,
            batch_seed: derive_substream_seed(config.seed, 0x5E23, index as u64),
        })
    }

    /// The wrapped accelerator.
    pub fn accelerator(&self) -> &Accelerator {
        &self.acc
    }

    /// Point-in-time health snapshot (router input).
    pub fn health(&self) -> BoardHealth {
        BoardHealth::of(&self.acc)
    }

    /// Sets the DPU runtime's intra-batch image workers (bit-invariant
    /// across worker counts by construction).
    pub fn set_image_jobs(&mut self, jobs: usize) {
        self.acc.runtime_and_workload_mut().0.set_image_jobs(jobs);
    }

    /// SDC/ECC events of one measurement, including absorbed ones.
    fn probe_events(&mut self, images: usize) -> Result<(Measurement, u64), MeasureError> {
        let before = self.acc.defense_events();
        let m = self.acc.measure(images)?;
        Ok((m, m.injected_faults + (self.acc.defense_events() - before)))
    }

    /// Calibrates the board's Vmin and parks it at the serving point.
    ///
    /// # Errors
    ///
    /// Propagates non-crash measurement errors (crashes during the
    /// descent terminate the probe and are handled by power-cycling).
    pub fn calibrate(
        &mut self,
        calib: &CalibConfig,
        ops_per_image: u64,
    ) -> Result<(), MeasureError> {
        let mut last_clean: Option<f64> = None;
        let mut mv = calib.start_mv;
        while mv >= calib.floor_mv - 1e-9 {
            match self.acc.set_vccint_mv(mv) {
                Ok(()) => {}
                Err(MeasureError::Crashed { .. }) => {
                    self.acc.power_cycle();
                    break;
                }
                Err(e) => return Err(e),
            }
            match self.probe_events(calib.probe_images) {
                Ok((_, 0)) => {
                    last_clean = Some(mv);
                    mv -= calib.step_mv;
                }
                Ok((_, _)) => break,
                Err(MeasureError::Crashed { .. }) => {
                    self.acc.power_cycle();
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        self.vmin_mv = last_clean.unwrap_or(calib.start_mv);
        self.base_mv = (self.vmin_mv + calib.margin_mv).max(calib.floor_mv);
        self.base_f_mhz = F_NOM_MHZ;
        // Keep voltage-backoff headroom above even a weak board's base.
        let default_ladder = MitigationLadder::default();
        self.ladder = MitigationLadder {
            v_ceiling_mv: default_ladder
                .v_ceiling_mv
                .max(self.base_mv + 3.0 * default_ladder.v_step_mv),
            ..default_ladder
        };
        // Park at the serving point; a board too weak for a sub-Vmin
        // margin falls back to its Vmin.
        self.acc.power_cycle();
        if self.acc.set_vccint_mv(self.base_mv).is_err() || self.acc.board().is_crashed() {
            self.acc.power_cycle();
            self.base_mv = self.vmin_mv;
            self.acc.set_vccint_mv(self.base_mv)?;
        }
        let (m, _) = self.probe_events(calib.probe_images)?;
        self.energy_per_inf_j = energy_per_inference_j(&m, ops_per_image);
        self.rungs = 0;
        Ok(())
    }

    /// Runs one served batch over `image_indices` of the shared eval
    /// set. Never returns an error for a board hang — that comes back as
    /// `crashed: true` so the scheduler can reboot and reroute.
    ///
    /// # Errors
    ///
    /// Propagates non-crash run errors (these indicate a bug, not an
    /// operating-point excursion).
    pub fn run_serving_batch(
        &mut self,
        image_indices: &[usize],
        overhead_cycles: Cycle,
    ) -> Result<BatchExec, RunError> {
        let images: Vec<Tensor> = {
            let eval = &self.acc.workload().eval;
            image_indices
                .iter()
                .map(|&i| eval.images[i].clone())
                .collect()
        };
        let seed = derive_substream_seed(self.batch_seed, 1, self.batches);
        self.batches += 1;
        let defense = self.acc.config().defense;
        let cycles_before = self.acc.cycles_run();
        let (runtime, workload) = self.acc.runtime_and_workload_mut();
        let result = runtime.run_batch(&mut workload.task, &images, seed);
        match result {
            Ok(r) => {
                let dpu_cycles = self.acc.cycles_run() - cycles_before;
                let f_mhz = self.acc.clock_mhz();
                let service =
                    (dpu_cycles as f64 * F_NOM_MHZ / f_mhz).ceil() as Cycle + overhead_cycles;
                let energy_j = self.energy.charge(r.on_chip_power_w, dpu_cycles, f_mhz);
                if !images.is_empty() {
                    self.energy_per_inf_j = energy_j / images.len() as f64;
                }
                let events = r.injected_faults
                    + r.ecc.corrected_words
                    + r.ecc.uncorrectable_words
                    + r.defense.mismatches;
                self.events += events;
                let flagged = match defense {
                    redvolt_nn::abft::DefenseMode::Off => false,
                    redvolt_nn::abft::DefenseMode::Detect => r.defense.mismatches > 0,
                    redvolt_nn::abft::DefenseMode::Correct => r.defense.unresolved > 0,
                };
                Ok(BatchExec {
                    service_ref_cycles: service,
                    predictions: r.predictions,
                    events,
                    unresolved: r.defense.unresolved,
                    mismatches: r.defense.mismatches,
                    flagged,
                    energy_j,
                    crashed: false,
                })
            }
            Err(RunError::BoardCrashed) => Ok(BatchExec {
                service_ref_cycles: 0,
                predictions: Vec::new(),
                events: 0,
                unresolved: 0,
                mismatches: 0,
                flagged: false,
                energy_j: 0.0,
                crashed: true,
            }),
            Err(e) => Err(e),
        }
    }

    /// Walks the board one rung down the mitigation ladder (frequency
    /// underscaling first, voltage backoff once the clock floor is
    /// reached). Called by the scheduler after an eventful batch when
    /// the governor is armed. Returns the post-move state so the caller
    /// can attach the escalation to its trace.
    pub fn escalate(&mut self) -> Escalation {
        let kind = match self.ladder.next(self.acc.clock_mhz(), self.acc.vccint_mv()) {
            LadderMove::Underscale(f_mhz) => {
                self.acc.set_clock_mhz(f_mhz);
                "underscale"
            }
            // Backing *up* in voltage cannot hang the board.
            LadderMove::Backoff(mv) => {
                let _ = self.acc.set_vccint_mv(mv);
                "backoff"
            }
            LadderMove::Exhausted => "exhausted",
        };
        self.refresh_rungs();
        Escalation {
            kind,
            rungs: self.rungs,
            f_mhz: self.acc.clock_mhz(),
            vccint_mv: self.acc.vccint_mv(),
        }
    }

    /// Reboots a hung board and rejoins it one voltage-backoff rung
    /// above its base point (the crash proved the base too optimistic).
    pub fn on_crash(&mut self) {
        self.crashes += 1;
        self.acc.power_cycle();
        let rejoin = self.base_mv + self.ladder.v_step_mv;
        let _ = self.acc.set_vccint_mv(rejoin);
        self.refresh_rungs();
    }

    fn refresh_rungs(&mut self) {
        self.rungs = self.ladder.rungs_walked(
            self.base_f_mhz,
            self.base_mv,
            self.acc.clock_mhz(),
            self.acc.vccint_mv(),
        );
    }
}

/// Modeled energy per inference of a measurement, joules:
/// `P / (inferences per second)` with the inference rate derived from
/// the measured GOPs and the workload's dense-equivalent ops per image.
pub fn energy_per_inference_j(m: &Measurement, ops_per_image: u64) -> f64 {
    let inf_per_s = m.gops * 1e9 / (ops_per_image.max(1) as f64);
    if inf_per_s <= 0.0 {
        return 0.0;
    }
    m.power_w / inf_per_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use redvolt_core::bench_suite::BenchmarkId;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig {
            repetitions: 1,
            ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
        }
    }

    #[test]
    fn calibration_finds_a_deep_clean_point() {
        let mut b = FleetBoard::bring_up(0, &config()).unwrap();
        let ops = b.accelerator().workload().dense_equivalent_ops;
        b.calibrate(&CalibConfig::default(), ops).unwrap();
        assert!(b.vmin_mv <= 620.0 && b.vmin_mv >= 550.0, "{}", b.vmin_mv);
        assert_eq!(b.base_mv, b.vmin_mv, "zero margin serves at Vmin");
        assert!(b.energy_per_inf_j > 0.0);
        assert!(!b.accelerator().board().is_crashed());
    }

    #[test]
    fn calibration_is_reproducible_and_corner_dependent() {
        let calib = CalibConfig::default();
        let vmin = |index: usize| {
            let mut b = FleetBoard::bring_up(index, &config()).unwrap();
            let ops = b.accelerator().workload().dense_equivalent_ops;
            b.calibrate(&calib, ops).unwrap();
            (b.vmin_mv, b.energy_per_inf_j)
        };
        assert_eq!(vmin(0), vmin(0), "same board, same calibration");
        // Across a fleet, corners differ enough that at least two boards
        // calibrate to different Vmin grid points.
        let all: Vec<f64> = (0..6).map(|i| vmin(i).0).collect();
        assert!(
            all.iter().any(|&v| (v - all[0]).abs() > 1e-9),
            "all six boards calibrated identically: {all:?}"
        );
    }

    #[test]
    fn serving_batch_returns_predictions_and_charges_energy() {
        let mut b = FleetBoard::bring_up(0, &config()).unwrap();
        let ops = b.accelerator().workload().dense_equivalent_ops;
        b.calibrate(&CalibConfig::default(), ops).unwrap();
        let exec = b.run_serving_batch(&[0, 1, 2, 3], 1000).unwrap();
        assert!(!exec.crashed);
        assert_eq!(exec.predictions.len(), 4);
        assert!(exec.service_ref_cycles > 1000);
        assert!(exec.energy_j > 0.0);
        assert!((b.energy.total_j() - exec.energy_j).abs() < 1e-6);
    }

    #[test]
    fn escalation_underscales_then_backs_off() {
        let mut b = FleetBoard::bring_up(0, &config()).unwrap();
        let ops = b.accelerator().workload().dense_equivalent_ops;
        b.calibrate(&CalibConfig::default(), ops).unwrap();
        assert_eq!(b.rungs, 0);
        b.escalate();
        assert_eq!(b.rungs, 1);
        assert!(b.accelerator().clock_mhz() < F_NOM_MHZ);
        for _ in 0..10 {
            b.escalate();
        }
        assert!(
            b.accelerator().vccint_mv() > b.base_mv,
            "voltage backed off"
        );
    }
}

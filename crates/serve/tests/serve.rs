//! End-to-end acceptance tests for the serving subsystem.
//!
//! The smoke scenario here is exactly what CI's `serve-smoke` job runs
//! through the `serve` binary (`serve run` with default flags — see
//! `.github/workflows/ci.yml`): a 3-board fleet served 10 mV below each
//! board's calibrated Vmin with `--defense correct` and the governor on.
//! Its report, JSONL telemetry and Prometheus exposition are pinned
//! byte-for-byte under `tests/golden/serve_smoke.*`. Regenerate (only
//! for changes that legitimately alter serving output) with
//! `REDVOLT_UPDATE_GOLDEN=1 cargo test -p redvolt-serve --test serve`.

use proptest::prelude::*;
use redvolt_serve::report::ServeReport;
use redvolt_serve::router::RouterPolicy;
use redvolt_serve::sim::{self, ServeConfig};

/// The CI smoke scenario — must match the flag defaults of `serve run`.
fn smoke() -> ServeConfig {
    ServeConfig::smoke()
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("REDVOLT_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("{name} missing; regenerate with REDVOLT_UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, golden,
        "{name} diverged from the pinned serving output"
    );
}

#[test]
fn smoke_scenario_matches_the_golden_pins() {
    let cfg = smoke();
    let report = ServeReport::build(&cfg, sim::run(&cfg).unwrap());
    assert_matches_golden("serve_smoke.txt", &report.to_text());
    assert_matches_golden("serve_smoke.jsonl", &report.to_jsonl());
    assert_matches_golden("serve_smoke.prom", &report.to_prometheus());
    assert_matches_golden("serve_smoke.trace.json", &report.to_chrome_trace());
}

/// The smoke scenario has to demonstrate the whole point of the
/// subsystem: real sub-Vmin SDC/ECC activity, governor interventions,
/// and still zero silently corrupt responses.
#[test]
fn smoke_scenario_is_eventful_but_never_silently_corrupt() {
    let cfg = smoke();
    let out = sim::run(&cfg).unwrap();
    assert_eq!(out.counters.silently_corrupt, 0);
    assert_eq!(
        out.counters.completed + out.counters.shed,
        out.counters.offered
    );
    assert!(
        out.boards.iter().map(|b| b.events).sum::<u64>() > 0,
        "sub-Vmin smoke saw no SDC/ECC events"
    );
    assert!(
        out.counters.escalations > 0,
        "the governor never intervened"
    );
}

/// Byte-identity across reruns and worker counts: the full rendered
/// output (report, JSONL, Prometheus) is a pure function of
/// `(seed, config)`; `image_jobs` must be invisible in all of it.
#[test]
fn rendered_output_is_byte_identical_across_reruns_and_workers() {
    let render = |cfg: &ServeConfig| {
        let r = ServeReport::build(cfg, sim::run(cfg).unwrap());
        (
            r.to_text(),
            r.to_jsonl(),
            r.to_prometheus(),
            r.to_chrome_trace(),
            r.to_flight_jsonl(),
        )
    };
    let cfg = smoke();
    let baseline = render(&cfg);
    assert_eq!(baseline, render(&cfg), "rerun diverged");
    for image_jobs in [2, 8] {
        let sharded = render(&ServeConfig { image_jobs, ..cfg });
        assert_eq!(
            baseline, sharded,
            "image_jobs={image_jobs} leaked into serving output"
        );
    }
}

/// Every offered request owns exactly one lifecycle root span, and the
/// root's terminal `outcome` attribute agrees with the counters.
#[test]
fn every_request_gets_a_lifecycle_span_with_a_terminal_outcome() {
    let cfg = smoke();
    let out = sim::run(&cfg).unwrap();
    let roots: Vec<_> = out
        .trace_spans
        .iter()
        .filter(|s| s.name == "request")
        .collect();
    assert_eq!(roots.len() as u64, out.counters.offered);
    let outcomes = |want: &str| {
        roots
            .iter()
            .filter(|s| s.attr_str("outcome") == Some(want))
            .count() as u64
    };
    assert_eq!(
        outcomes("complete") + outcomes("corrupt"),
        out.counters.completed
    );
    assert_eq!(outcomes("shed"), out.counters.shed);
    assert_eq!(outcomes("dropped"), out.counters.dropped_on_crash);
    // Governor escalations and crashes appear as linked markers.
    let count = |name: &str| out.trace_spans.iter().filter(|s| s.name == name).count() as u64;
    assert_eq!(count("governor_escalate"), out.counters.escalations);
    assert_eq!(count("board_crash"), out.counters.crashes);
    assert_eq!(count("batch"), out.counters.batches);
}

/// Satellite: overflowing the bounded span ring is *counted*, never
/// silent — `trace_dropped` lands in the text report, the JSONL metrics
/// and the Prometheus exposition as `serve_spans_dropped_total`.
#[test]
fn span_ring_overflow_is_surfaced_as_spans_dropped() {
    let cfg = ServeConfig {
        trace_capacity: 16,
        ..smoke()
    };
    let report = ServeReport::build(&cfg, sim::run(&cfg).unwrap());
    assert!(
        report.outcome.trace_dropped > 0,
        "a 16-span ring must overflow under the smoke load"
    );
    assert_eq!(report.outcome.trace_spans.len(), 16);
    let want = format!("serve_spans_dropped_total {}", report.outcome.trace_dropped);
    assert!(report.to_prometheus().contains(&want));
    assert!(report
        .to_jsonl()
        .contains("\"name\":\"serve_spans_dropped_total\""));
    assert!(report
        .to_text()
        .contains(&format!("spans-dropped {}", report.outcome.trace_dropped)));
    // The untruncated smoke run reports zero drops.
    let full = ServeReport::build(&smoke(), sim::run(&smoke()).unwrap());
    assert!(full.to_prometheus().contains("serve_spans_dropped_total 0"));
}

/// Satellite: the report's latency quantiles must be consistent with the
/// raw per-request latencies recoverable from the trace — the request
/// root spans *are* the latency samples.
#[test]
fn reported_quantiles_match_latencies_recovered_from_the_trace() {
    let cfg = smoke();
    let report = ServeReport::build(&cfg, sim::run(&cfg).unwrap());
    let mut from_trace: Vec<u64> = report
        .outcome
        .trace_spans
        .iter()
        .filter(|s| {
            s.name == "request"
                && matches!(s.attr_str("outcome"), Some("complete") | Some("corrupt"))
        })
        .map(redvolt_telemetry::SpanRecord::cycles)
        .collect();
    let mut recorded = report.outcome.latencies.clone();
    from_trace.sort_unstable();
    recorded.sort_unstable();
    assert_eq!(from_trace, recorded, "trace and latency samples diverged");
    assert_eq!(
        report.p50_cycles,
        redvolt_serve::report::percentile(&from_trace, 0.50)
    );
    assert_eq!(
        report.p99_cycles,
        redvolt_serve::report::percentile(&from_trace, 0.99)
    );
}

/// The flight recorder fires on the smoke scenario (sub-Vmin serving
/// escalates the governor) and its dump carries recent spans.
#[test]
fn flight_recorder_dumps_on_governor_escalation() {
    let cfg = smoke();
    let out = sim::run(&cfg).unwrap();
    assert!(
        !out.postmortems.is_empty(),
        "sub-Vmin smoke must trigger at least one post-mortem"
    );
    let dump = &out.postmortems[0];
    assert!(!dump.spans.is_empty(), "dump froze no recent spans");
    assert_eq!(
        dump.snapshots.len(),
        cfg.boards,
        "dump must carry one health snapshot per board"
    );
    assert!(dump.snapshots[0]
        .attrs
        .iter()
        .any(|(k, _)| k == "vccint_mv"));
}

#[test]
fn the_seed_actually_flows_into_the_outcome() {
    let a = sim::run(&smoke()).unwrap();
    let b = sim::run(&ServeConfig {
        seed: 43,
        ..smoke()
    })
    .unwrap();
    assert_ne!(
        a.latencies, b.latencies,
        "serving outcome ignores the master seed"
    );
}

proptest! {
    /// Admission control under adversarial bursty arrivals: whatever the
    /// offered rate, burst shape and queue geometry, no board's queue
    /// ever exceeds the configured bound, and every offered request is
    /// accounted for exactly once (completed, shed, or dropped when a
    /// crash requeue found every queue full).
    #[test]
    fn bursty_arrivals_never_overflow_the_queue_bound(
        seed in 0u64..1_000_000,
        rps_scale in 1u32..40,
        queue_depth in 4usize..10,
        burst_every in 3u64..12,
        burst_len in 1u64..20,
    ) {
        let cfg = ServeConfig {
            seed,
            boards: 2,
            requests: 30,
            rps: 5_000.0 * f64::from(rps_scale),
            max_batch: 4,
            queue_depth,
            burst_every,
            burst_len,
            ..ServeConfig::default()
        };
        let out = sim::run(&cfg).unwrap();
        prop_assert!(
            out.peak_queue_len <= queue_depth,
            "peak queue {} exceeded bound {}",
            out.peak_queue_len,
            queue_depth
        );
        let c = out.counters;
        prop_assert_eq!(c.offered, 30);
        prop_assert_eq!(c.admitted + c.shed, c.offered);
        prop_assert_eq!(c.completed + c.shed + c.dropped_on_crash, c.offered);
        prop_assert_eq!(out.latencies.len() as u64, c.completed);
    }
}

/// Routing policy is live end-to-end: Vmin-aware and round-robin runs of
/// the same scenario distribute load differently.
#[test]
fn router_policy_changes_the_load_distribution() {
    let vmin = sim::run(&smoke()).unwrap();
    let rr = sim::run(&ServeConfig {
        router: RouterPolicy::RoundRobin,
        ..smoke()
    })
    .unwrap();
    let served = |o: &sim::ServeOutcome| o.boards.iter().map(|b| b.served).collect::<Vec<_>>();
    assert_ne!(served(&vmin), served(&rr));
    assert_eq!(
        vmin.counters.offered, rr.counters.offered,
        "policies saw different traffic"
    );
}

//! Property-based tests for the numeric substrates.

use proptest::prelude::*;
use redvolt_num::fixed::{IntFormat, QuantScale};
use redvolt_num::pchip::Pchip;
use redvolt_num::rng::Xoshiro256StarStar;
use redvolt_num::stats::{self, Summary};

fn monotone_knots() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (3usize..10).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.01f64..10.0, n),
            proptest::collection::vec(0.01f64..5.0, n),
        )
            .prop_map(|(dx, dy)| {
                let xs: Vec<f64> = dx
                    .iter()
                    .scan(0.0, |acc, d| {
                        *acc += d;
                        Some(*acc)
                    })
                    .collect();
                let ys: Vec<f64> = dy
                    .iter()
                    .scan(0.0, |acc, d| {
                        *acc += d;
                        Some(*acc)
                    })
                    .collect();
                (xs, ys)
            })
    })
}

proptest! {
    #[test]
    fn pchip_preserves_monotonicity((xs, ys) in monotone_knots()) {
        let p = Pchip::new(&xs, &ys).unwrap();
        let lo = xs[0];
        let hi = *xs.last().unwrap();
        let mut prev = p.eval(lo);
        for i in 1..=200 {
            let x = lo + (hi - lo) * i as f64 / 200.0;
            let y = p.eval(x);
            prop_assert!(y >= prev - 1e-9, "non-monotone at {x}: {y} < {prev}");
            prev = y;
        }
    }

    #[test]
    fn pchip_interpolates_all_knots((xs, ys) in monotone_knots()) {
        let p = Pchip::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((p.eval(*x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn quantize_round_trip_error_bounded(
        max_abs in 0.01f64..100.0,
        value in -150.0f64..150.0,
        bits in 2u32..=8,
    ) {
        let q = QuantScale::for_max_abs(max_abs, IntFormat::new(bits).unwrap());
        let clamped = value.clamp(-max_abs, max_abs);
        let err = (q.dequantize(q.quantize(clamped)) - clamped).abs();
        prop_assert!(err <= q.step_error() + 1e-12, "err {err} > step {}", q.step_error());
    }

    #[test]
    fn sign_extend_round_trips_all_codes(bits in 1u32..=8) {
        let f = IntFormat::new(bits).unwrap();
        for v in f.min_value()..=f.max_value() {
            prop_assert_eq!(f.sign_extend(f.to_raw(v)), v);
        }
    }

    #[test]
    fn summary_mean_is_between_min_and_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert!(s.mean >= s.min - 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let q25 = stats::quantile(&samples, 0.25).unwrap();
        let q50 = stats::quantile(&samples, 0.50).unwrap();
        let q75 = stats::quantile(&samples, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
    }

    #[test]
    fn rng_bounded_draws_stay_in_bounds(seed in any::<u64>(), bound in 1u32..1000) {
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_bounded_u32(bound) < bound);
        }
    }

    #[test]
    fn rng_substreams_are_independent_of_draw_order(seed in any::<u64>()) {
        let root = Xoshiro256StarStar::seed_from(seed);
        let mut a1 = root.substream(1);
        let first = a1.next_u64();
        // Drawing from substream 2 must not perturb substream 1's sequence.
        let mut b = root.substream(2);
        let _ = b.next_u64();
        let mut a2 = root.substream(1);
        prop_assert_eq!(a2.next_u64(), first);
    }

    #[test]
    fn pearson_is_bounded(
        xs in proptest::collection::vec(-100.0f64..100.0, 3..20),
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
        let r = stats::pearson(&xs, &ys).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }
}

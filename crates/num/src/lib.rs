//! Numeric substrates for the `redvolt` FPGA undervolting study.
//!
//! This crate collects the small, dependency-free numeric building blocks the
//! rest of the workspace relies on:
//!
//! * [`rng`] — deterministic, seedable random number generation
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`]) so that every
//!   "measurement" in the simulated study is exactly reproducible.
//! * [`pchip`] — monotone piecewise-cubic Hermite interpolation, used to
//!   anchor calibrated hardware models (power, delay) to the paper's
//!   published measurement points without introducing spurious oscillation.
//! * [`stats`] — summary statistics and confidence intervals for repeated
//!   experiments (the paper averages 10 repetitions per data point).
//! * [`fit`] — golden-section minimization and exponential fitting, used
//!   by the calibration audit to re-derive fitted constants.
//! * [`fixed`] — Q-format fixed-point arithmetic mirroring the INT8..INT4
//!   quantized datapaths of the DPU.
//!
//! # Examples
//!
//! ```
//! use redvolt_num::pchip::Pchip;
//!
//! # fn main() -> Result<(), redvolt_num::NumError> {
//! // Anchor a monotone curve at measured points and query between them.
//! let curve = Pchip::new(&[0.0, 1.0, 2.0], &[0.0, 10.0, 12.0])?;
//! let mid = curve.eval(0.5);
//! assert!(mid > 0.0 && mid < 10.0);
//! # Ok(())
//! # }
//! ```

pub mod fit;
pub mod fixed;
pub mod pchip;
pub mod rng;
pub mod stats;

use std::error::Error;
use std::fmt;

/// Error type for numeric routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumError {
    /// Interpolation knots were empty, mismatched in length, or not strictly
    /// increasing in `x`.
    InvalidKnots(String),
    /// A statistics routine was asked to summarize an empty sample.
    EmptySample,
    /// A fixed-point conversion overflowed the representable range.
    FixedOverflow {
        /// The out-of-range value that triggered the overflow.
        value: f64,
        /// Total bit width of the target format.
        bits: u32,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::InvalidKnots(why) => write!(f, "invalid interpolation knots: {why}"),
            NumError::EmptySample => write!(f, "empty sample"),
            NumError::FixedOverflow { value, bits } => {
                write!(f, "value {value} overflows {bits}-bit fixed-point range")
            }
        }
    }
}

impl Error for NumError {}

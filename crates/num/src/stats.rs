//! Summary statistics for repeated measurements.
//!
//! The paper reports every data point as the average of 10 experiment
//! repetitions and notes that observed variation was negligible; the
//! experiment framework in `redvolt-core` does the same and uses these
//! routines to report mean, spread and confidence intervals.

use crate::NumError;

/// Summary of a sample of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::EmptySample`] for an empty slice.
    pub fn of(samples: &[f64]) -> Result<Self, NumError> {
        if samples.is_empty() {
            return Err(NumError::EmptySample);
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Ok(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Half-width of an approximate 95 % confidence interval on the mean
    /// (normal approximation, `1.96 · s/√n`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (`s / |mean|`), or 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean.abs()
        }
    }
}

/// Returns the arithmetic mean of `samples`.
///
/// # Errors
///
/// Returns [`NumError::EmptySample`] for an empty slice.
pub fn mean(samples: &[f64]) -> Result<f64, NumError> {
    if samples.is_empty() {
        return Err(NumError::EmptySample);
    }
    Ok(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between
/// order statistics.
///
/// # Errors
///
/// Returns [`NumError::EmptySample`] for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any sample is NaN.
pub fn quantile(samples: &[f64], q: f64) -> Result<f64, NumError> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if samples.is_empty() {
        return Err(NumError::EmptySample);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Returns the median of `samples`.
///
/// # Errors
///
/// Returns [`NumError::EmptySample`] for an empty slice.
pub fn median(samples: &[f64]) -> Result<f64, NumError> {
    quantile(samples, 0.5)
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// # Errors
///
/// Returns [`NumError::EmptySample`] if either slice is empty or the
/// lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, NumError> {
    if xs.is_empty() || xs.len() != ys.len() {
        return Err(NumError::EmptySample);
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// # Errors
///
/// Returns [`NumError::EmptySample`] if fewer than two points are given or
/// the lengths differ.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<(f64, f64), NumError> {
    if xs.len() < 2 || xs.len() != ys.len() {
        return Err(NumError::EmptySample);
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        den += (x - mx).powi(2);
    }
    let slope = if den == 0.0 { 0.0 } else { num / den };
    Ok((slope, my - slope * mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[4.0; 10]).unwrap();
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 = 7: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_errors() {
        assert_eq!(Summary::of(&[]), Err(NumError::EmptySample));
        assert_eq!(mean(&[]), Err(NumError::EmptySample));
        assert_eq!(median(&[]), Err(NumError::EmptySample));
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert!((median(&data).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let (slope, intercept) = linear_fit(&xs, &ys).unwrap();
        assert!((slope - 2.5).abs() < 1e-12);
        assert!((intercept + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }
}

//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of the simulated study — process variation,
//! timing-fault arrival, dataset synthesis, label calibration — must be
//! exactly reproducible from a seed, both so experiments can be repeated
//! (the paper averages 10 repetitions per point) and so tests are stable.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — tiny, used for seeding and for cheap hash-style
//!   derivation of independent substreams from a master seed.
//! * [`Xoshiro256StarStar`] — the workhorse generator used by simulation
//!   code paths.
//!
//! Both are well-known public-domain algorithms (Vigna et al.) implemented
//! here so the simulator has zero uncontrolled dependencies in its
//! reproducibility-critical core.

/// Derives an independent stream seed from a master seed and a stream
/// index, via two rounds of splitmix-style mixing.
///
/// This is the seeding scheme of the parallel campaign executor: cell `i`
/// of a campaign seeds its accelerator with
/// `derive_stream_seed(master_seed, i)`, so every cell's randomness is a
/// pure function of `(master_seed, cell_index)` — independent of worker
/// count, scheduling order, and whichever cells ran before it. Two full
/// mix rounds keep related masters (42, 43, …) and adjacent indices from
/// producing correlated streams, which a plain `master ^ index` would.
///
/// # Examples
///
/// ```
/// use redvolt_num::rng::derive_stream_seed;
///
/// let a = derive_stream_seed(42, 0);
/// let b = derive_stream_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_stream_seed(42, 0));
/// ```
pub fn derive_stream_seed(master_seed: u64, stream: u64) -> u64 {
    let mut outer = SplitMix64::new(master_seed);
    let mixed_master = outer.next_u64();
    let mut inner =
        SplitMix64::new(mixed_master.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    inner.next_u64()
}

/// Derives an independent seed from a master seed, a stream index and a
/// substream index, by chaining two [`derive_stream_seed`] rounds.
///
/// This is the per-image seeding scheme of the two-level campaign
/// executor: image `i`, attempt `a` of a cell whose batch seed is `s`
/// injects faults from `derive_substream_seed(s, i, a)`, so every
/// image's fault stream is a pure function of `(cell seed, image index,
/// attempt)` — independent of image-shard count, worker scheduling and
/// whichever images ran before it.
///
/// # Examples
///
/// ```
/// use redvolt_num::rng::derive_substream_seed;
///
/// let a = derive_substream_seed(42, 3, 0);
/// let b = derive_substream_seed(42, 3, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_substream_seed(42, 3, 0));
/// ```
pub fn derive_substream_seed(master_seed: u64, stream: u64, substream: u64) -> u64 {
    derive_stream_seed(derive_stream_seed(master_seed, stream), substream)
}

/// SplitMix64 generator (Vigna, 2015).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`] and to derive independent substream seeds.
///
/// # Examples
///
/// ```
/// use redvolt_num::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** generator (Blackman & Vigna, 2018).
///
/// Fast, high-quality, 256-bit state. This is the generator used everywhere
/// simulation code needs randomness.
///
/// # Examples
///
/// ```
/// use redvolt_num::rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::seed_from(7);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` through [`SplitMix64`], as
    /// recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Derives an independent substream for a named component.
    ///
    /// Mixing the label into the seed stream lets a single experiment seed
    /// fan out to many mutually independent generators (per board, per
    /// repetition, per fault site) without manual seed bookkeeping.
    pub fn substream(&self, label: u64) -> Self {
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(label)
                .rotate_left(17)
                ^ self.s[2],
        );
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `u32` in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless method with rejection for exactness.
        let mut x = self.next_u64() as u32;
        let mut m = u64::from(x) * u64::from(bound);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64() as u32;
                m = u64::from(x) * u64::from(bound);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` or exceeds `u32::MAX` (simulation index spaces
    /// never do).
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound <= u32::MAX as usize, "index bound too large");
        self.next_bounded_u32(bound as u32) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a standard-normal sample via the Box–Muller transform.
    pub fn next_normal(&mut self) -> f64 {
        // Draw u1 from (0,1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a normal sample with the given `mean` and `std`.
    pub fn next_gaussian(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.next_normal()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a Poisson-distributed count with the given `rate`.
    ///
    /// Uses Knuth's product method for small rates and a normal
    /// approximation for large ones; fault counts per measurement fall in
    /// the small-rate regime almost always.
    pub fn next_poisson(&mut self, rate: f64) -> u64 {
        if rate <= 0.0 {
            return 0;
        }
        if rate < 30.0 {
            let limit = (-rate).exp();
            let mut product = self.next_f64();
            let mut count = 0u64;
            while product > limit {
                product *= self.next_f64();
                count += 1;
            }
            count
        } else {
            let sample = self.next_gaussian(rate, rate.sqrt());
            sample.max(0.0).round() as u64
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 0 from the public-domain reference code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn derive_stream_seed_is_pure_and_spreads() {
        assert_eq!(derive_stream_seed(42, 7), derive_stream_seed(42, 7));
        // Distinct (master, stream) pairs — including the transposed and
        // off-by-one cases a weak mix would collide on — give distinct seeds.
        let seeds = [
            derive_stream_seed(42, 0),
            derive_stream_seed(42, 1),
            derive_stream_seed(43, 0),
            derive_stream_seed(43, 1),
            derive_stream_seed(0, 42),
            derive_stream_seed(1, 42),
        ];
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn derive_substream_seed_is_pure_and_spreads() {
        assert_eq!(
            derive_substream_seed(42, 3, 1),
            derive_substream_seed(42, 3, 1)
        );
        // (stream, substream) transpositions and the plain stream seed
        // must all land on distinct values.
        let seeds = [
            derive_substream_seed(42, 0, 0),
            derive_substream_seed(42, 0, 1),
            derive_substream_seed(42, 1, 0),
            derive_substream_seed(42, 1, 1),
            derive_stream_seed(42, 0),
            derive_stream_seed(42, 1),
        ];
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn derived_streams_are_statistically_independent() {
        // Generators seeded from adjacent cells of the same master must not
        // track each other: correlation of the first 1k outputs stays small.
        let mut a = Xoshiro256StarStar::seed_from(derive_stream_seed(42, 0));
        let mut b = Xoshiro256StarStar::seed_from(derive_stream_seed(42, 1));
        let n = 1000;
        let xs: Vec<f64> = (0..n).map(|_| a.next_f64() - 0.5).collect();
        let ys: Vec<f64> = (0..n).map(|_| b.next_f64() - 0.5).collect();
        let dot: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let corr = dot / n as f64 * 12.0; // normalize by Var[U(-0.5,0.5)] = 1/12
        assert!(corr.abs() < 0.15, "corr = {corr}");
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from(123);
        let mut b = Xoshiro256StarStar::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn substreams_differ_from_parent_and_each_other() {
        let root = Xoshiro256StarStar::seed_from(9);
        let mut s1 = root.substream(1);
        let mut s2 = root.substream(2);
        let mut base = root.clone();
        let (a, b, c) = (s1.next_u64(), s2.next_u64(), base.next_u64());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_u32_in_range_and_covers_values() {
        let mut rng = Xoshiro256StarStar::seed_from(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_bounded_u32(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_mean_and_std_are_close() {
        let mut rng = Xoshiro256StarStar::seed_from(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std={}", var.sqrt());
    }

    #[test]
    fn poisson_small_rate_mean_matches() {
        let mut rng = Xoshiro256StarStar::seed_from(23);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.next_poisson(2.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut rng = Xoshiro256StarStar::seed_from(1);
        assert_eq!(rng.next_poisson(0.0), 0);
        assert_eq!(rng.next_poisson(-1.0), 0);
    }

    #[test]
    fn poisson_large_rate_uses_normal_approx() {
        let mut rng = Xoshiro256StarStar::seed_from(29);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.next_poisson(100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn bernoulli_probability_estimate() {
        let mut rng = Xoshiro256StarStar::seed_from(31);
        let hits = (0..50_000).filter(|_| rng.next_bernoulli(0.3)).count();
        let p = hits as f64 / 50_000.0;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from(37);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "should be shuffled");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Xoshiro256StarStar::seed_from(0).next_bounded_u32(0);
    }
}

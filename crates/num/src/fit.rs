//! One-dimensional fitting and minimization.
//!
//! The calibration audit (`redvolt-bench`'s `calibrate` binary) re-derives
//! the board model's fitted constants from the paper's anchors. Some of
//! those derivations are closed-form; the rest are tiny one-dimensional
//! optimizations, solved here with golden-section search over a bracketed
//! minimum (no derivatives, guaranteed convergence for unimodal
//! objectives) or a coarse grid refine.

/// Golden-section minimization of `f` on `[lo, hi]`.
///
/// Returns the abscissa of the minimum to within `tol`. The objective is
/// assumed unimodal on the bracket; for multimodal objectives use
/// [`grid_then_golden`].
///
/// # Panics
///
/// Panics if the bracket is invalid or `tol` is not positive.
pub fn golden_section_min(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, tol: f64) -> f64 {
    assert!(lo < hi, "invalid bracket");
    assert!(tol > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let (mut fc, mut fd) = (f(c), f(d));
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    0.5 * (a + b)
}

/// Coarse grid scan (`n` points) followed by golden-section refinement in
/// the best cell; robust to mild multimodality.
///
/// # Panics
///
/// Panics if `n < 3` or the bracket is invalid.
pub fn grid_then_golden(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    n: usize,
    tol: f64,
) -> f64 {
    assert!(n >= 3, "need at least three grid points");
    assert!(lo < hi, "invalid bracket");
    let step = (hi - lo) / (n - 1) as f64;
    let mut best_i = 0;
    let mut best = f64::INFINITY;
    for i in 0..n {
        let v = f(lo + step * i as f64);
        if v < best {
            best = v;
            best_i = i;
        }
    }
    let a = lo + step * best_i.saturating_sub(1) as f64;
    let b = (lo + step * (best_i + 1) as f64).min(hi);
    golden_section_min(f, a, b, tol)
}

/// Least-squares fit of `y ≈ a · e^{b·x}` by log-linear regression.
///
/// # Panics
///
/// Panics if fewer than two points are given, lengths differ, or any `y`
/// is not strictly positive.
pub fn fit_exponential(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert!(xs.len() >= 2 && xs.len() == ys.len(), "bad sample");
    assert!(ys.iter().all(|&y| y > 0.0), "exponential fit needs y > 0");
    let logs: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let (slope, intercept) = crate::stats::linear_fit(xs, &logs).expect("n >= 2");
    (intercept.exp(), slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_minimum() {
        let x = golden_section_min(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 10.0, 1e-9);
        assert!((x - 2.5).abs() < 1e-7, "x = {x}");
    }

    #[test]
    fn golden_handles_boundary_minimum() {
        let x = golden_section_min(|x| x, 1.0, 3.0, 1e-9);
        assert!((x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn grid_then_golden_escapes_local_bumps() {
        // Global minimum at 8, a local one at 2.
        let f = |x: f64| {
            let g = (x - 8.0) * (x - 8.0);
            let l = (x - 2.0) * (x - 2.0) + 5.0;
            g.min(l)
        };
        let x = grid_then_golden(f, 0.0, 10.0, 21, 1e-9);
        assert!((x - 8.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn exponential_fit_recovers_parameters() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * (1.7 * x).exp()).collect();
        let (a, b) = fit_exponential(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9, "a = {a}");
        assert!((b - 1.7).abs() < 1e-9, "b = {b}");
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn rejects_reversed_bracket() {
        golden_section_min(|x| x, 3.0, 1.0, 1e-6);
    }
}

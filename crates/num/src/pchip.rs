//! Monotone piecewise-cubic Hermite interpolation (PCHIP).
//!
//! Hardware models in `redvolt-fpga` are *calibrated* against the handful of
//! operating points the paper publishes (e.g. power at 850/570/540 mV, Fmax
//! at the Table-2 voltages). Between anchors we need a smooth curve that
//! never overshoots — an ordinary cubic spline oscillates, which would
//! invent non-physical local minima in power or delay. PCHIP (Fritsch &
//! Carlson, 1980) preserves monotonicity of the data on every interval,
//! which is exactly the guarantee a calibrated physical curve needs.

use crate::NumError;

/// A monotonicity-preserving piecewise-cubic Hermite interpolant.
///
/// # Examples
///
/// ```
/// use redvolt_num::pchip::Pchip;
///
/// # fn main() -> Result<(), redvolt_num::NumError> {
/// let p = Pchip::new(&[540.0, 570.0, 850.0], &[3.38, 4.84, 12.59])?;
/// // Interpolated power is monotone between anchors.
/// assert!(p.eval(700.0) > p.eval(600.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pchip {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Endpoint derivatives at each knot.
    ds: Vec<f64>,
}

impl Pchip {
    /// Builds an interpolant through `(xs[i], ys[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidKnots`] if fewer than two knots are given,
    /// the slices differ in length, any coordinate is non-finite, or `xs`
    /// is not strictly increasing.
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumError> {
        if xs.len() != ys.len() {
            return Err(NumError::InvalidKnots(format!(
                "xs has {} knots but ys has {}",
                xs.len(),
                ys.len()
            )));
        }
        if xs.len() < 2 {
            return Err(NumError::InvalidKnots(
                "need at least two knots".to_string(),
            ));
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumError::InvalidKnots(
                "knot coordinates must be finite".to_string(),
            ));
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumError::InvalidKnots(
                "xs must be strictly increasing".to_string(),
            ));
        }
        let ds = derivatives(xs, ys);
        Ok(Pchip {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            ds,
        })
    }

    /// Evaluates the interpolant at `x`.
    ///
    /// Outside the knot range the curve is extended linearly using the
    /// endpoint derivative, which keeps extrapolation tame for the small
    /// overshoots sweeps occasionally make (e.g. one step past Vcrash).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0] + self.ds[0] * (x - self.xs[0]);
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1] + self.ds[n - 1] * (x - self.xs[n - 1]);
        }
        // Binary search for the interval containing x.
        let i = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(exact) => return self.ys[exact],
            Err(ins) => ins - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h10 * h * self.ds[i] + h01 * self.ys[i + 1] + h11 * h * self.ds[i + 1]
    }

    /// Returns the knot x-coordinates.
    pub fn knots_x(&self) -> &[f64] {
        &self.xs
    }

    /// Returns the knot y-coordinates.
    pub fn knots_y(&self) -> &[f64] {
        &self.ys
    }
}

/// Fritsch–Carlson shape-preserving derivative estimates.
fn derivatives(xs: &[f64], ys: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let h: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
    let delta: Vec<f64> = (0..n - 1).map(|i| (ys[i + 1] - ys[i]) / h[i]).collect();
    let mut d = vec![0.0; n];

    // Interior: weighted harmonic mean when slopes agree in sign, else 0.
    for i in 1..n - 1 {
        if delta[i - 1] * delta[i] > 0.0 {
            let w1 = 2.0 * h[i] + h[i - 1];
            let w2 = h[i] + 2.0 * h[i - 1];
            d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
        }
    }

    // Endpoints: one-sided three-point formula, clamped to preserve shape.
    d[0] = endpoint(
        h[0],
        h.get(1).copied().unwrap_or(h[0]),
        delta[0],
        delta.get(1).copied().unwrap_or(delta[0]),
    );
    d[n - 1] = endpoint(
        h[n - 2],
        if n >= 3 { h[n - 3] } else { h[n - 2] },
        delta[n - 2],
        if n >= 3 { delta[n - 3] } else { delta[n - 2] },
    );
    d
}

fn endpoint(h0: f64, h1: f64, d0: f64, d1: f64) -> f64 {
    let d = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if d * d0 <= 0.0 {
        0.0
    } else if d0 * d1 <= 0.0 && d.abs() > 3.0 * d0.abs() {
        3.0 * d0
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_knots() {
        assert!(Pchip::new(&[0.0], &[1.0]).is_err());
        assert!(Pchip::new(&[0.0, 1.0], &[1.0]).is_err());
        assert!(Pchip::new(&[1.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(Pchip::new(&[0.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(Pchip::new(&[0.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn interpolates_knots_exactly() {
        let xs = [0.0, 1.0, 4.0, 9.0];
        let ys = [0.0, 1.0, 2.0, 3.0];
        let p = Pchip::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((p.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn preserves_monotonicity_on_increasing_data() {
        let xs = [
            540.0, 545.0, 550.0, 555.0, 560.0, 565.0, 570.0, 650.0, 850.0,
        ];
        let ys = [3.38, 3.55, 3.7, 3.85, 4.1, 4.5, 4.84, 7.0, 12.59];
        let p = Pchip::new(&xs, &ys).unwrap();
        let mut prev = p.eval(540.0);
        let mut v = 540.5;
        while v <= 850.0 {
            let cur = p.eval(v);
            assert!(cur >= prev - 1e-9, "non-monotone at {v}: {cur} < {prev}");
            prev = cur;
            v += 0.5;
        }
    }

    #[test]
    fn stays_within_data_range_between_knots() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 10.0, 10.5, 30.0];
        let p = Pchip::new(&xs, &ys).unwrap();
        // No overshoot above 10.5 in the flat-ish middle interval.
        let mut x = 1.0;
        while x <= 2.0 {
            let y = p.eval(x);
            assert!((10.0..=10.5).contains(&y), "overshoot at {x}: {y}");
            x += 0.01;
        }
    }

    #[test]
    fn linear_extrapolation_outside_range() {
        let p = Pchip::new(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0]).unwrap();
        assert!((p.eval(-1.0) - (-1.0)).abs() < 1e-9);
        assert!((p.eval(3.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn handles_non_monotone_data_without_panic() {
        // Derivative zeroing at sign changes: curve should pass through knots.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 5.0, 1.0, 4.0];
        let p = Pchip::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((p.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn two_knot_case_is_linear() {
        let p = Pchip::new(&[0.0, 2.0], &[1.0, 5.0]).unwrap();
        assert!((p.eval(1.0) - 3.0).abs() < 1e-9);
    }
}

//! Narrow fixed-point formats for quantized CNN datapaths.
//!
//! The DPU executes CNN layers in integer arithmetic: weights and
//! activations in `INTk` (k = 8 in the paper's baseline, down to 4 in the
//! quantization study of Fig. 7) with 32-bit accumulators. This module
//! defines the value formats and the saturating conversions used by
//! `redvolt-nn`'s quantizer and by the DPU engine.

use crate::NumError;

/// A signed integer format of `bits` total bits (two's complement), as used
/// for DPU weights and activations.
///
/// # Examples
///
/// ```
/// use redvolt_num::fixed::IntFormat;
///
/// let int8 = IntFormat::new(8).unwrap();
/// assert_eq!(int8.max_value(), 127);
/// assert_eq!(int8.min_value(), -128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntFormat {
    bits: u32,
}

impl IntFormat {
    /// Creates a format of the given width.
    ///
    /// Widths 1..=8 correspond to the DECENT quantizer's INT1..INT8 output
    /// precisions (the paper evaluates INT8 down to INT4 and notes INT3 and
    /// below lose accuracy even at nominal voltage).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::FixedOverflow`] if `bits` is 0 or exceeds 8.
    pub fn new(bits: u32) -> Result<Self, NumError> {
        if bits == 0 || bits > 8 {
            return Err(NumError::FixedOverflow {
                value: f64::from(bits),
                bits,
            });
        }
        Ok(IntFormat { bits })
    }

    /// The INT8 baseline format.
    pub const INT8: IntFormat = IntFormat { bits: 8 };

    /// Total bit width.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Largest representable value, `2^(bits-1) - 1`.
    pub fn max_value(self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Smallest representable value, `-2^(bits-1)`.
    pub fn min_value(self) -> i32 {
        -(1i32 << (self.bits - 1))
    }

    /// Number of representable codes, `2^bits`.
    pub fn code_count(self) -> u32 {
        1u32 << self.bits
    }

    /// Saturates `v` into the representable range.
    pub fn saturate(self, v: i32) -> i32 {
        v.clamp(self.min_value(), self.max_value())
    }

    /// Returns `true` if `v` is representable without saturation.
    pub fn contains(self, v: i32) -> bool {
        v >= self.min_value() && v <= self.max_value()
    }

    /// Reinterprets the low `bits` of `raw` as a sign-extended value.
    ///
    /// This is what a hardware bit-flip does to a stored code: the flipped
    /// pattern is read back as a two's-complement number of the same width.
    pub fn sign_extend(self, raw: u32) -> i32 {
        let shift = 32 - self.bits;
        ((raw << shift) as i32) >> shift
    }

    /// The raw (unsigned) bit pattern of a representable value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is out of range; release builds mask.
    pub fn to_raw(self, v: i32) -> u32 {
        debug_assert!(self.contains(v), "{v} out of range for INT{}", self.bits);
        (v as u32) & (self.code_count() - 1)
    }
}

/// Symmetric linear quantization parameters: `real ≈ code · scale`.
///
/// Mirrors DECENT's symmetric per-tensor quantization (zero point fixed at
/// 0), which is what the DPU's integer MACs assume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantScale {
    /// Real value represented by code 1.
    pub scale: f64,
    /// Code format.
    pub format: IntFormat,
}

impl QuantScale {
    /// Chooses a scale so that `max_abs` maps to the largest positive code.
    ///
    /// A `max_abs` of zero yields a unit scale (all-zero tensor).
    pub fn for_max_abs(max_abs: f64, format: IntFormat) -> Self {
        let scale = if max_abs > 0.0 {
            max_abs / f64::from(format.max_value())
        } else {
            1.0
        };
        QuantScale { scale, format }
    }

    /// Quantizes a real value to the nearest representable code, saturating.
    pub fn quantize(&self, real: f64) -> i32 {
        let code = (real / self.scale).round();
        // Saturate in f64 space first to avoid i32 overflow on huge inputs.
        let hi = f64::from(self.format.max_value());
        let lo = f64::from(self.format.min_value());
        code.clamp(lo, hi) as i32
    }

    /// Reconstructs the real value of a code.
    pub fn dequantize(&self, code: i32) -> f64 {
        f64::from(code) * self.scale
    }

    /// Worst-case absolute rounding error of this scale (half a step).
    pub fn step_error(&self) -> f64 {
        self.scale / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ranges() {
        let f8 = IntFormat::new(8).unwrap();
        assert_eq!((f8.min_value(), f8.max_value()), (-128, 127));
        let f4 = IntFormat::new(4).unwrap();
        assert_eq!((f4.min_value(), f4.max_value()), (-8, 7));
        let f1 = IntFormat::new(1).unwrap();
        assert_eq!((f1.min_value(), f1.max_value()), (-1, 0));
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(IntFormat::new(0).is_err());
        assert!(IntFormat::new(9).is_err());
    }

    #[test]
    fn saturate_clamps() {
        let f4 = IntFormat::new(4).unwrap();
        assert_eq!(f4.saturate(100), 7);
        assert_eq!(f4.saturate(-100), -8);
        assert_eq!(f4.saturate(3), 3);
    }

    #[test]
    fn sign_extend_round_trips() {
        let f5 = IntFormat::new(5).unwrap();
        for v in f5.min_value()..=f5.max_value() {
            assert_eq!(f5.sign_extend(f5.to_raw(v)), v);
        }
    }

    #[test]
    fn sign_extend_interprets_flipped_msb() {
        let f8 = IntFormat::INT8;
        // Flipping the sign bit of +1 (0x01) gives 0x81 = -127.
        assert_eq!(f8.sign_extend(0x81), -127);
    }

    #[test]
    fn quant_scale_maps_max_abs_to_max_code() {
        let q = QuantScale::for_max_abs(2.54, IntFormat::INT8);
        assert_eq!(q.quantize(2.54), 127);
        assert_eq!(q.quantize(-2.54), -127);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn quant_saturates_beyond_range() {
        let q = QuantScale::for_max_abs(1.0, IntFormat::INT8);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -128);
        assert_eq!(q.quantize(1e300), 127);
    }

    #[test]
    fn dequantize_error_bounded_by_half_step() {
        let q = QuantScale::for_max_abs(1.0, IntFormat::INT8);
        let mut x = -1.0;
        while x <= 1.0 {
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.step_error() + 1e-12, "err {err} at {x}");
            x += 0.001;
        }
    }

    #[test]
    fn zero_tensor_scale_is_unit() {
        let q = QuantScale::for_max_abs(0.0, IntFormat::INT8);
        assert_eq!(q.scale, 1.0);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn lower_precision_has_larger_step() {
        let q8 = QuantScale::for_max_abs(1.0, IntFormat::new(8).unwrap());
        let q4 = QuantScale::for_max_abs(1.0, IntFormat::new(4).unwrap());
        assert!(q4.step_error() > q8.step_error());
    }
}

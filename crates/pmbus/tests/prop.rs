//! Property-based tests for the PMBus wire encodings and devices.

use proptest::prelude::*;
use redvolt_pmbus::adapter::PmbusAdapter;
use redvolt_pmbus::device::SimpleRegulator;
use redvolt_pmbus::linear;

proptest! {
    #[test]
    fn linear11_round_trip_relative_error(v in -3000.0f64..3000.0) {
        let word = linear::linear11_encode(v).unwrap();
        let back = linear::linear11_decode(word);
        // Encoder picks the finest exponent, so the mantissa is at least
        // 512 in magnitude: error ≤ step/2 ≤ |v|/1024 (plus an absolute
        // floor near zero where the smallest exponent binds).
        let tol = (v.abs() / 1024.0).max(0.5) + 1e-9;
        prop_assert!((back - v).abs() <= tol, "{v} -> {back}");
    }

    #[test]
    fn linear11_decode_encode_decode_is_stable(word in any::<u16>()) {
        let v = linear::linear11_decode(word);
        let re = linear::linear11_encode(v).unwrap();
        prop_assert_eq!(linear::linear11_decode(re), v);
    }

    #[test]
    fn linear16_round_trip_at_standard_exponent(mv in 0u32..4000) {
        let v = f64::from(mv) / 1000.0;
        let m = linear::linear16_encode(v, -12).unwrap();
        let back = linear::linear16_decode(m, -12);
        prop_assert!((back - v).abs() <= 0.5 / 4096.0 + 1e-12);
    }

    #[test]
    fn vout_mode_round_trips(exp in -16i8..=15) {
        prop_assert_eq!(
            linear::vout_mode_exponent(linear::vout_mode_from_exponent(exp)),
            exp
        );
    }

    #[test]
    fn linear11_exactly_representable_values_round_trip_exactly(
        exp in -16i32..=15,
        mant in -1024i32..=1023,
    ) {
        // Every (mantissa, exponent) pair names an exactly-representable
        // value; the encoder may pick a different (finer) exponent but must
        // reproduce the value bit-for-bit. This walks the FULL exponent
        // range including every negative mantissa.
        let v = f64::from(mant) * f64::powi(2.0, exp);
        let word = linear::linear11_encode(v).unwrap();
        prop_assert_eq!(linear::linear11_decode(word), v, "exp={} mant={}", exp, mant);
    }

    #[test]
    fn linear11_saturates_exactly_at_the_mantissa_edges(exp in -16i32..=15) {
        // The saturation edges at each exponent: the largest encodable
        // magnitudes are 1023·2^15 and -1024·2^15; per-exponent edge values
        // ±(1024·2^exp) must still encode (the encoder escalates to a
        // coarser exponent) until the global ceiling.
        let step = f64::powi(2.0, exp);
        prop_assert_eq!(
            linear::linear11_decode(linear::linear11_encode(1023.0 * step).unwrap()),
            1023.0 * step
        );
        prop_assert_eq!(
            linear::linear11_decode(linear::linear11_encode(-1024.0 * step).unwrap()),
            -1024.0 * step
        );
    }

    #[test]
    fn linear11_rejects_just_past_the_global_range(frac in 1u32..1000) {
        // Global ceiling: 1023·2^15. Anything that rounds past it at the
        // coarsest exponent is unencodable — no silent wraparound.
        let max = 1023.0 * f64::powi(2.0, 15);
        let over = max * (1.0 + f64::from(frac) / 1000.0);
        prop_assert!(linear::linear11_encode(over).is_err(), "{over} encoded");
        prop_assert!(linear::linear11_encode(-over * 2.0).is_err());
    }

    #[test]
    fn linear16_mantissa_round_trips_across_full_exponent_range(
        exp in -16i32..=15,
        mant in any::<u16>(),
    ) {
        // decode∘encode is the identity on mantissas for EVERY VOUT_MODE
        // exponent, including the u16::MAX saturation edge.
        let v = linear::linear16_decode(mant, exp as i8);
        prop_assert_eq!(linear::linear16_encode(v, exp as i8).unwrap(), mant);
    }

    #[test]
    fn linear16_rejects_just_past_u16_saturation(exp in -16i32..=15) {
        let step = f64::powi(2.0, exp);
        // The top mantissa encodes; one step beyond it does not.
        prop_assert_eq!(
            linear::linear16_encode(65535.0 * step, exp as i8).unwrap(),
            u16::MAX
        );
        prop_assert!(linear::linear16_encode(65536.0 * step, exp as i8).is_err());
    }

    #[test]
    fn regulator_accepts_any_in_window_voltage(mv in 100u32..1900) {
        let v = f64::from(mv) / 1000.0;
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut reg, 0x13, v).unwrap();
        let back = host.read_vout(&mut reg, 0x13).unwrap();
        prop_assert!((back - v).abs() < 1e-3, "{v} -> {back}");
    }

    #[test]
    fn power_telemetry_is_consistent_with_v_and_i(mv in 200u32..1500) {
        let v = f64::from(mv) / 1000.0;
        let mut reg = SimpleRegulator::new(0x13, v).with_load_ohms(0.2);
        let mut host = PmbusAdapter::new();
        let p = host.read_pout(&mut reg, 0x13).unwrap();
        let i = host.read_iout(&mut reg, 0x13).unwrap();
        let vv = host.read_vout(&mut reg, 0x13).unwrap();
        // P ≈ V * I within LINEAR11 quantization.
        prop_assert!((p - vv * i).abs() <= 0.02 * p.abs().max(0.1), "P={p} V*I={}", vv * i);
    }
}

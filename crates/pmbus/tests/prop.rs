//! Property-based tests for the PMBus wire encodings and devices.

use proptest::prelude::*;
use redvolt_pmbus::adapter::PmbusAdapter;
use redvolt_pmbus::device::SimpleRegulator;
use redvolt_pmbus::linear;

proptest! {
    #[test]
    fn linear11_round_trip_relative_error(v in -3000.0f64..3000.0) {
        let word = linear::linear11_encode(v).unwrap();
        let back = linear::linear11_decode(word);
        // Encoder picks the finest exponent, so the mantissa is at least
        // 512 in magnitude: error ≤ step/2 ≤ |v|/1024 (plus an absolute
        // floor near zero where the smallest exponent binds).
        let tol = (v.abs() / 1024.0).max(0.5) + 1e-9;
        prop_assert!((back - v).abs() <= tol, "{v} -> {back}");
    }

    #[test]
    fn linear11_decode_encode_decode_is_stable(word in any::<u16>()) {
        let v = linear::linear11_decode(word);
        let re = linear::linear11_encode(v).unwrap();
        prop_assert_eq!(linear::linear11_decode(re), v);
    }

    #[test]
    fn linear16_round_trip_at_standard_exponent(mv in 0u32..4000) {
        let v = f64::from(mv) / 1000.0;
        let m = linear::linear16_encode(v, -12).unwrap();
        let back = linear::linear16_decode(m, -12);
        prop_assert!((back - v).abs() <= 0.5 / 4096.0 + 1e-12);
    }

    #[test]
    fn vout_mode_round_trips(exp in -16i8..=15) {
        prop_assert_eq!(
            linear::vout_mode_exponent(linear::vout_mode_from_exponent(exp)),
            exp
        );
    }

    #[test]
    fn regulator_accepts_any_in_window_voltage(mv in 100u32..1900) {
        let v = f64::from(mv) / 1000.0;
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut reg, 0x13, v).unwrap();
        let back = host.read_vout(&mut reg, 0x13).unwrap();
        prop_assert!((back - v).abs() < 1e-3, "{v} -> {back}");
    }

    #[test]
    fn power_telemetry_is_consistent_with_v_and_i(mv in 200u32..1500) {
        let v = f64::from(mv) / 1000.0;
        let mut reg = SimpleRegulator::new(0x13, v).with_load_ohms(0.2);
        let mut host = PmbusAdapter::new();
        let p = host.read_pout(&mut reg, 0x13).unwrap();
        let i = host.read_iout(&mut reg, 0x13).unwrap();
        let vv = host.read_vout(&mut reg, 0x13).unwrap();
        // P ≈ V * I within LINEAR11 quantization.
        prop_assert!((p - vv * i).abs() <= 0.02 * p.abs().max(0.1), "P={p} V*I={}", vv * i);
    }
}

//! SMBus packet error checking (PEC).
//!
//! PMBus inherits the SMBus PEC byte: a CRC-8 (polynomial `x^8 + x^2 +
//! x + 1`, i.e. `0x07`, init `0x00`) computed over every byte of the
//! transaction including the addressing bytes. The host adapter uses it
//! as its read-verify step: the device computes the PEC over the words it
//! actually holds, the host recomputes it over the bytes it received, and
//! any single-bit corruption in flight yields a mismatch (CRC-8 detects
//! all single- and double-bit errors within a transaction).

/// CRC-8 with polynomial 0x07 over `bytes`, as specified by SMBus 2.0.
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// PEC of a word-read transaction: write phase (address+W, command),
/// repeated-start read phase (address+R, data low, data high).
pub fn read_word_pec(address: u8, command: u8, word: u16) -> u8 {
    crc8(&[
        address << 1,
        command,
        (address << 1) | 1,
        (word & 0xFF) as u8,
        (word >> 8) as u8,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc8_known_vectors() {
        // SMBus spec examples / independently computed references.
        assert_eq!(crc8(&[]), 0x00);
        assert_eq!(crc8(&[0x00]), 0x00);
        assert_eq!(crc8(&[0x01]), 0x07);
        assert_eq!(crc8(&[0x02]), 0x0E);
        // "123456789" -> 0xF4 is the canonical CRC-8/ATM check value.
        assert_eq!(crc8(b"123456789"), 0xF4);
    }

    #[test]
    fn single_bit_flips_always_change_the_pec() {
        let base = read_word_pec(0x13, 0x8B, 0x1234);
        for bit in 0..16 {
            let flipped = read_word_pec(0x13, 0x8B, 0x1234 ^ (1 << bit));
            assert_ne!(base, flipped, "bit {bit} flip went undetected");
        }
    }
}

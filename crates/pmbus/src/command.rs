//! PMBus command-code registry.
//!
//! Only the subset of the PMBus 1.3 command space that the study's
//! methodology exercises is modelled: voltage regulation, telemetry
//! (voltage / current / power / temperature) and fan control.

use std::fmt;

/// PMBus commands used by the measurement methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CommandCode {
    /// Select a page (rail) on multi-rail devices.
    Page = 0x00,
    /// On/off and margining behaviour.
    Operation = 0x01,
    /// Output voltage encoding mode (exponent for LINEAR16).
    VoutMode = 0x20,
    /// Commanded output voltage (LINEAR16).
    VoutCommand = 0x21,
    /// Output over-voltage fault threshold (LINEAR16).
    VoutOvFaultLimit = 0x40,
    /// Output under-voltage fault threshold (LINEAR16).
    VoutUvFaultLimit = 0x44,
    /// Fan configuration for fan 1.
    FanConfig12 = 0x3A,
    /// Commanded fan speed (LINEAR11, here in percent duty).
    FanCommand1 = 0x3B,
    /// Latched status summary byte.
    StatusByte = 0x78,
    /// Measured input voltage (LINEAR11).
    ReadVin = 0x88,
    /// Measured input current (LINEAR11).
    ReadIin = 0x89,
    /// Measured output voltage (LINEAR16).
    ReadVout = 0x8B,
    /// Measured output current (LINEAR11).
    ReadIout = 0x8C,
    /// Measured temperature sensor 1 (LINEAR11).
    ReadTemperature1 = 0x8D,
    /// Measured fan speed 1 (LINEAR11).
    ReadFanSpeed1 = 0x90,
    /// Measured output power (LINEAR11).
    ReadPout = 0x96,
    /// Measured input power (LINEAR11).
    ReadPin = 0x97,
}

/// Wire data format of a command's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataFormat {
    /// Single raw byte.
    Byte,
    /// LINEAR11-encoded word.
    Linear11,
    /// LINEAR16-encoded word (exponent from `VOUT_MODE`).
    Linear16,
}

/// Access class of a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Host may only read.
    ReadOnly,
    /// Host may read and write.
    ReadWrite,
}

impl CommandCode {
    /// All commands in this registry.
    pub const ALL: [CommandCode; 17] = [
        CommandCode::Page,
        CommandCode::Operation,
        CommandCode::VoutMode,
        CommandCode::VoutCommand,
        CommandCode::VoutOvFaultLimit,
        CommandCode::VoutUvFaultLimit,
        CommandCode::FanConfig12,
        CommandCode::FanCommand1,
        CommandCode::StatusByte,
        CommandCode::ReadVin,
        CommandCode::ReadIin,
        CommandCode::ReadVout,
        CommandCode::ReadIout,
        CommandCode::ReadTemperature1,
        CommandCode::ReadFanSpeed1,
        CommandCode::ReadPout,
        CommandCode::ReadPin,
    ];

    /// Looks a command up by raw code.
    pub fn from_raw(code: u8) -> Option<CommandCode> {
        CommandCode::ALL.iter().copied().find(|c| *c as u8 == code)
    }

    /// Raw wire code.
    pub fn raw(self) -> u8 {
        self as u8
    }

    /// Payload format of this command.
    pub fn data_format(self) -> DataFormat {
        match self {
            CommandCode::Page
            | CommandCode::Operation
            | CommandCode::VoutMode
            | CommandCode::FanConfig12
            | CommandCode::StatusByte => DataFormat::Byte,
            CommandCode::VoutCommand
            | CommandCode::VoutOvFaultLimit
            | CommandCode::VoutUvFaultLimit
            | CommandCode::ReadVout => DataFormat::Linear16,
            CommandCode::FanCommand1
            | CommandCode::ReadVin
            | CommandCode::ReadIin
            | CommandCode::ReadIout
            | CommandCode::ReadTemperature1
            | CommandCode::ReadFanSpeed1
            | CommandCode::ReadPout
            | CommandCode::ReadPin => DataFormat::Linear11,
        }
    }

    /// Access class of this command.
    pub fn access(self) -> Access {
        match self {
            CommandCode::StatusByte
            | CommandCode::ReadVin
            | CommandCode::ReadIin
            | CommandCode::ReadVout
            | CommandCode::ReadIout
            | CommandCode::ReadTemperature1
            | CommandCode::ReadFanSpeed1
            | CommandCode::ReadPout
            | CommandCode::ReadPin => Access::ReadOnly,
            _ => Access::ReadWrite,
        }
    }
}

impl fmt::Display for CommandCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}({:#04x})", self.raw())
    }
}

/// Status-byte bit flags (subset of the PMBus STATUS_BYTE definition).
pub mod status {
    /// Output over-voltage fault latched.
    pub const VOUT_OV: u8 = 1 << 5;
    /// Output under-voltage / output fault latched.
    pub const VOUT_UV: u8 = 1 << 4;
    /// Device is not providing power (off or crashed).
    pub const OFF: u8 = 1 << 6;
    /// Communication/memory/logic fault (we latch this on board crash).
    pub const CML: u8 = 1 << 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_codes_match_pmbus_spec() {
        assert_eq!(CommandCode::VoutCommand.raw(), 0x21);
        assert_eq!(CommandCode::ReadVout.raw(), 0x8B);
        assert_eq!(CommandCode::ReadPout.raw(), 0x96);
        assert_eq!(CommandCode::ReadTemperature1.raw(), 0x8D);
        assert_eq!(CommandCode::FanCommand1.raw(), 0x3B);
    }

    #[test]
    fn from_raw_round_trips_all() {
        for cmd in CommandCode::ALL {
            assert_eq!(CommandCode::from_raw(cmd.raw()), Some(cmd));
        }
    }

    #[test]
    fn from_raw_unknown_is_none() {
        assert_eq!(CommandCode::from_raw(0xFF), None);
        assert_eq!(CommandCode::from_raw(0x02), None);
    }

    #[test]
    fn read_commands_are_read_only() {
        for cmd in CommandCode::ALL {
            let name = format!("{cmd:?}");
            if name.starts_with("Read") || name.starts_with("Status") {
                assert_eq!(cmd.access(), Access::ReadOnly, "{cmd}");
            }
        }
    }

    #[test]
    fn vout_commands_use_linear16() {
        assert_eq!(CommandCode::VoutCommand.data_format(), DataFormat::Linear16);
        assert_eq!(CommandCode::ReadVout.data_format(), DataFormat::Linear16);
        assert_eq!(CommandCode::ReadPout.data_format(), DataFormat::Linear11);
    }
}

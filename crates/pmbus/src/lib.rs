//! PMBus protocol simulation.
//!
//! The DSN-2020 undervolting study controls and observes the ZCU102 board
//! exclusively through the Power Management Bus: rail voltages are written
//! to the on-board regulators (`VCCINT` at address `0x13`, `VCCBRAM` at
//! `0x14`), and power, current, temperature and fan speed are read back
//! through the same interface. This crate implements that control plane:
//!
//! * [`linear`] — the LINEAR11 and LINEAR16 floating-point encodings that
//!   PMBus uses on the wire.
//! * [`command`] — the command-code registry with per-command data formats.
//! * [`device`] — the [`device::PmbusTarget`] trait implemented by anything
//!   addressable on the bus (the board simulator implements it), plus a
//!   standalone [`device::SimpleRegulator`] reference device.
//! * [`adapter`] — a typed host-side adapter (mirroring the Maxim PMBus
//!   dongle + API the paper used) that encodes/decodes values and keeps a
//!   transaction log.
//! * [`mux`] — bus composition ([`mux::BusMux`]) and `i2cdetect`-style
//!   address scanning.
//!
//! # Examples
//!
//! ```
//! use redvolt_pmbus::adapter::PmbusAdapter;
//! use redvolt_pmbus::device::SimpleRegulator;
//!
//! # fn main() -> Result<(), redvolt_pmbus::PmbusError> {
//! let mut rail = SimpleRegulator::new(0x13, 0.85);
//! let mut adapter = PmbusAdapter::new();
//!
//! adapter.set_vout(&mut rail, 0x13, 0.570)?;
//! let readback = adapter.read_vout(&mut rail, 0x13)?;
//! assert!((readback - 0.570).abs() < 0.001);
//! # Ok(())
//! # }
//! ```

pub mod adapter;
pub mod command;
pub mod device;
pub mod linear;
pub mod mux;
pub mod pec;

use std::error::Error;
use std::fmt;

/// Errors surfaced by PMBus transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PmbusError {
    /// No device acknowledged the given address.
    NoDevice {
        /// 7-bit bus address that went unanswered.
        address: u8,
    },
    /// The device does not implement the command.
    UnsupportedCommand {
        /// 7-bit bus address of the device.
        address: u8,
        /// Raw command code.
        command: u8,
    },
    /// A value could not be encoded in the command's wire format.
    Unencodable {
        /// Human-readable reason.
        reason: String,
    },
    /// The device rejected a write (e.g. voltage outside its output range).
    Rejected {
        /// Human-readable reason from the device.
        reason: String,
    },
    /// The device has latched a fault and no longer responds (the board has
    /// crashed — the paper's behaviour below `Vcrash`).
    DeviceHung {
        /// 7-bit bus address of the hung device.
        address: u8,
    },
    /// The device did not acknowledge a byte mid-transaction (transient
    /// bus glitch — retry is expected to succeed).
    Nack {
        /// 7-bit bus address of the transaction.
        address: u8,
    },
    /// The transaction timed out (e.g. clock stretching past the host's
    /// limit — transient, retry is expected to succeed).
    Timeout {
        /// 7-bit bus address of the transaction.
        address: u8,
    },
    /// A read completed but its packet-error-check (PEC, CRC-8) did not
    /// match — the wire data was corrupted in flight (transient).
    CorruptedRead {
        /// 7-bit bus address of the transaction.
        address: u8,
    },
}

impl PmbusError {
    /// Whether the error is transient — a retry of the same transaction
    /// can succeed (NACK, timeout, corrupted read). Hard errors (no
    /// device, unsupported command, rejected write, hung device) are not
    /// transient: retrying without an external intervention cannot help.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PmbusError::Nack { .. } | PmbusError::Timeout { .. } | PmbusError::CorruptedRead { .. }
        )
    }
}

impl fmt::Display for PmbusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmbusError::NoDevice { address } => {
                write!(f, "no PMBus device at address {address:#04x}")
            }
            PmbusError::UnsupportedCommand { address, command } => write!(
                f,
                "device {address:#04x} does not support command {command:#04x}"
            ),
            PmbusError::Unencodable { reason } => write!(f, "unencodable value: {reason}"),
            PmbusError::Rejected { reason } => write!(f, "write rejected: {reason}"),
            PmbusError::DeviceHung { address } => {
                write!(f, "device {address:#04x} is hung (board crash)")
            }
            PmbusError::Nack { address } => {
                write!(f, "device {address:#04x} NACKed mid-transaction")
            }
            PmbusError::Timeout { address } => {
                write!(f, "transaction to {address:#04x} timed out")
            }
            PmbusError::CorruptedRead { address } => {
                write!(f, "read from {address:#04x} failed packet error check")
            }
        }
    }
}

impl Error for PmbusError {}

//! Bus composition and discovery utilities.
//!
//! A real bench has several PMBus devices behind one adapter (the ZCU102
//! carries three regulators plus the system controller). [`BusMux`] glues
//! independently-implemented [`PmbusTarget`]s into one bus, first match
//! wins; [`scan`] probes an address range the way `i2cdetect` does, which
//! is how a measurement script discovers which rails answer.

use crate::command::CommandCode;
use crate::device::PmbusTarget;
use crate::PmbusError;

/// A bus multiplexer: routes each transaction to the first segment that
/// acknowledges the address.
///
/// # Examples
///
/// ```
/// use redvolt_pmbus::device::{PmbusTarget, SimpleRegulator};
/// use redvolt_pmbus::mux::BusMux;
/// use redvolt_pmbus::command::CommandCode;
///
/// let mut bus = BusMux::new();
/// bus.attach(Box::new(SimpleRegulator::new(0x13, 0.85)));
/// bus.attach(Box::new(SimpleRegulator::new(0x14, 0.85)));
/// assert!(bus.read_word(0x13, CommandCode::ReadVout).is_ok());
/// assert!(bus.read_word(0x14, CommandCode::ReadVout).is_ok());
/// assert!(bus.read_word(0x42, CommandCode::ReadVout).is_err());
/// ```
#[derive(Default)]
pub struct BusMux {
    segments: Vec<Box<dyn PmbusTarget>>,
}

impl std::fmt::Debug for BusMux {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BusMux({} segments)", self.segments.len())
    }
}

impl BusMux {
    /// Creates an empty bus.
    pub fn new() -> Self {
        BusMux::default()
    }

    /// Attaches a segment (device or sub-bus). Segments are probed in
    /// attachment order.
    pub fn attach(&mut self, segment: Box<dyn PmbusTarget>) -> &mut Self {
        self.segments.push(segment);
        self
    }

    /// Number of attached segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the bus has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl PmbusTarget for BusMux {
    fn write_word(
        &mut self,
        address: u8,
        command: CommandCode,
        word: u16,
    ) -> Result<(), PmbusError> {
        for segment in &mut self.segments {
            match segment.write_word(address, command, word) {
                Err(PmbusError::NoDevice { .. }) => continue,
                other => return other,
            }
        }
        Err(PmbusError::NoDevice { address })
    }

    fn read_word(&mut self, address: u8, command: CommandCode) -> Result<u16, PmbusError> {
        for segment in &mut self.segments {
            match segment.read_word(address, command) {
                Err(PmbusError::NoDevice { .. }) => continue,
                other => return other,
            }
        }
        Err(PmbusError::NoDevice { address })
    }
}

/// Probes every address in `range` with a benign read (`VOUT_MODE`, then
/// `STATUS_BYTE`, then `READ_TEMPERATURE_1`) and returns the addresses
/// that acknowledged — the `i2cdetect` flow of a measurement script.
///
/// Hung devices *are* reported (they acknowledge at the transport level in
/// this model: the error is device-specific, not "no device").
pub fn scan<T: PmbusTarget>(target: &mut T, range: std::ops::RangeInclusive<u8>) -> Vec<u8> {
    let probes = [
        CommandCode::VoutMode,
        CommandCode::StatusByte,
        CommandCode::ReadTemperature1,
    ];
    let mut found = Vec::new();
    for address in range {
        let acked = probes.iter().any(|&cmd| {
            !matches!(
                target.read_word(address, cmd),
                Err(PmbusError::NoDevice { .. })
            )
        });
        if acked {
            found.push(address);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimpleRegulator;
    use crate::linear;

    fn two_rail_bus() -> BusMux {
        let mut bus = BusMux::new();
        bus.attach(Box::new(SimpleRegulator::new(0x13, 0.85)));
        bus.attach(Box::new(SimpleRegulator::new(0x14, 0.85)));
        bus
    }

    #[test]
    fn routes_to_the_right_segment() {
        let mut bus = two_rail_bus();
        let w = linear::linear16_encode(0.6, -12).unwrap();
        bus.write_word(0x13, CommandCode::VoutCommand, w).unwrap();
        let v13 = linear::linear16_decode(bus.read_word(0x13, CommandCode::ReadVout).unwrap(), -12);
        let v14 = linear::linear16_decode(bus.read_word(0x14, CommandCode::ReadVout).unwrap(), -12);
        assert!((v13 - 0.6).abs() < 1e-3);
        assert!((v14 - 0.85).abs() < 1e-3);
    }

    #[test]
    fn unknown_address_is_no_device() {
        let mut bus = two_rail_bus();
        assert!(matches!(
            bus.read_word(0x42, CommandCode::ReadVout),
            Err(PmbusError::NoDevice { address: 0x42 })
        ));
    }

    #[test]
    fn device_errors_pass_through_unchanged() {
        let mut bus = two_rail_bus();
        // Read-only command written: the owning device's error, not NoDevice.
        assert!(matches!(
            bus.write_word(0x14, CommandCode::ReadPout, 0),
            Err(PmbusError::UnsupportedCommand { address: 0x14, .. })
        ));
    }

    #[test]
    fn scan_finds_exactly_the_attached_devices() {
        let mut bus = two_rail_bus();
        assert_eq!(scan(&mut bus, 0x00..=0x7F), vec![0x13, 0x14]);
    }

    #[test]
    fn scan_reports_hung_devices() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        reg.hang();
        let mut bus = BusMux::new();
        bus.attach(Box::new(reg));
        assert_eq!(scan(&mut bus, 0x10..=0x20), vec![0x13]);
    }

    #[test]
    fn empty_bus_scans_empty() {
        let mut bus = BusMux::new();
        assert!(bus.is_empty());
        assert!(scan(&mut bus, 0x00..=0x7F).is_empty());
    }
}

//! Host-side PMBus adapter.
//!
//! Mirrors the role of the USB-to-PMBus dongle plus vendor API the paper
//! used: typed get/set operations that handle wire encodings (querying
//! `VOUT_MODE` for the LINEAR16 exponent), with a transaction log for
//! auditability — each experiment's recent bus traffic can be inspected.
//!
//! # Fault tolerance
//!
//! Real campaigns in the paper's critical voltage region live with a
//! flaky bus: the board browns out mid-transaction, the dongle times out,
//! reads come back corrupted. The adapter therefore supports:
//!
//! * a pluggable [`BusFaultInjector`] that models transient transaction
//!   faults (NACK, timeout, bit flips on read data) — the simulation's
//!   stand-in for a marginal physical bus;
//! * a [`RetryPolicy`]: transient failures are retried with exponential
//!   backoff up to a per-transaction attempt budget, surfacing the *last*
//!   error when the budget is exhausted;
//! * read-verify via SMBus packet error checking ([`crate::pec`]): the
//!   device-side PEC is computed over the words it actually holds, the
//!   host recomputes it over the bytes it received, and a mismatch turns
//!   a silent corruption into a retryable [`PmbusError::CorruptedRead`].
//!
//! Backoff is *accounted, not slept*: the adapter accumulates the backoff
//! schedule into [`BusStats::backoff`] so campaigns stay fast and
//! deterministic while the policy remains observable.
//!
//! The transaction log is a bounded ring ([`TransactionLog`]): long
//! campaigns keep the most recent `capacity` transactions plus a
//! monotonic total counter instead of growing without bound.

use crate::command::CommandCode;
use crate::device::PmbusTarget;
use crate::linear;
use crate::pec;
use crate::PmbusError;
use std::time::Duration;

/// Direction of a logged transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host wrote to a device.
    Write,
    /// Host read from a device.
    Read,
}

/// One logged bus transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Monotone sequence number.
    pub seq: u64,
    /// 7-bit device address.
    pub address: u8,
    /// Command code.
    pub command: CommandCode,
    /// Transfer direction.
    pub direction: Direction,
    /// Raw wire word (the value written, or the value read back).
    pub word: u16,
    /// Whether the transaction succeeded (acknowledged, PEC clean).
    pub ok: bool,
}

/// Default transaction-log depth.
pub const DEFAULT_LOG_CAPACITY: usize = 1024;

/// A bounded ring buffer of the most recent bus transactions.
///
/// Appending past `capacity` evicts the oldest entry; [`TransactionLog::total`]
/// keeps counting monotonically, so `total - len` transactions have been
/// evicted. Iteration order is always chronological.
#[derive(Debug, Clone)]
pub struct TransactionLog {
    entries: Vec<Transaction>,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    capacity: usize,
    total: u64,
}

impl TransactionLog {
    /// An empty log keeping at most `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TransactionLog {
            entries: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Number of retained transactions (`<= capacity`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log retains no transactions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monotonic count of all transactions ever recorded, including
    /// evicted ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum number of retained transactions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained transactions in chronological order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.entries[self.head..]
            .iter()
            .chain(self.entries[..self.head].iter())
    }

    /// The most recent transaction, if any.
    pub fn latest(&self) -> Option<&Transaction> {
        self.iter().last()
    }

    /// Drops all retained transactions (the total counter keeps running).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.head = 0;
    }

    fn push(&mut self, mut t: Transaction) {
        t.seq = self.total;
        self.total += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(t);
        } else {
            self.entries[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

impl Default for TransactionLog {
    fn default() -> Self {
        TransactionLog::with_capacity(DEFAULT_LOG_CAPACITY)
    }
}

/// A transient fault injected before a transaction reaches the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientFault {
    /// The device failed to acknowledge a byte.
    Nack,
    /// The transaction timed out.
    Timeout,
}

impl TransientFault {
    /// The [`PmbusError`] this fault surfaces as.
    pub fn into_error(self, address: u8) -> PmbusError {
        match self {
            TransientFault::Nack => PmbusError::Nack { address },
            TransientFault::Timeout => PmbusError::Timeout { address },
        }
    }
}

/// A model of transient bus faults, consulted on every transaction.
///
/// Implemented by `redvolt_faults::bus::PmbusFaultModel`; the trait lives
/// here so the protocol crate stays dependency-free.
pub trait BusFaultInjector: std::fmt::Debug + Send {
    /// Fault to inject *before* the transaction touches the device
    /// (the device never sees the transaction), or `None` to let it
    /// proceed.
    fn pre_transaction(
        &mut self,
        address: u8,
        command: CommandCode,
        direction: Direction,
    ) -> Option<TransientFault>;

    /// Corruption of read data in flight: given the word the device
    /// actually returned, yields the corrupted word the host receives,
    /// or `None` for a clean transfer.
    fn corrupt_read(&mut self, address: u8, command: CommandCode, word: u16) -> Option<u16>;
}

/// Retry/backoff/verify policy for bus transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per transaction (min 1). Only transient errors
    /// ([`PmbusError::is_transient`]) are retried.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Cap on a single backoff interval.
    pub max_backoff: Duration,
    /// Read back `VOUT_COMMAND` after [`PmbusAdapter::set_vout`] and
    /// retry the write if the readback disagrees with what was written.
    pub verify_writes: bool,
}

impl RetryPolicy {
    /// No retries, no write verification — the adapter's historical
    /// behaviour, appropriate for a clean simulated bus.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            verify_writes: false,
        }
    }

    /// The campaign-supervisor policy: 8 attempts, 50 µs base backoff
    /// doubling to a 5 ms cap, write verification on.
    pub fn resilient() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            verify_writes: true,
        }
    }

    /// Backoff scheduled before retry number `retry` (1-based).
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(20);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Counters describing the adapter's fault-handling activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Transaction retries performed (attempts beyond the first).
    pub retries: u64,
    /// Faults the injector introduced (NACKs, timeouts, corrupted reads).
    pub injected_faults: u64,
    /// Reads whose PEC mismatched (detected corruptions).
    pub pec_failures: u64,
    /// Total scheduled backoff (accounted, not slept).
    pub backoff: Duration,
    /// Transactions that exhausted the retry budget.
    pub exhausted: u64,
}

impl BusStats {
    /// Adds another adapter's counters into this one. Campaign telemetry
    /// folds per-cell stats together in plan order with this, so the
    /// totals are independent of which worker ran which cell.
    pub fn accumulate(&mut self, other: BusStats) {
        self.retries += other.retries;
        self.injected_faults += other.injected_faults;
        self.pec_failures += other.pec_failures;
        self.backoff = self.backoff.saturating_add(other.backoff);
        self.exhausted += other.exhausted;
    }
}

/// Typed host adapter with a bounded transaction log and a retry policy.
///
/// # Examples
///
/// ```
/// use redvolt_pmbus::adapter::PmbusAdapter;
/// use redvolt_pmbus::device::SimpleRegulator;
///
/// # fn main() -> Result<(), redvolt_pmbus::PmbusError> {
/// let mut rail = SimpleRegulator::new(0x13, 0.85);
/// let mut host = PmbusAdapter::new();
/// host.set_vout(&mut rail, 0x13, 0.6)?;
/// assert_eq!(host.log().len(), 2); // VOUT_MODE read + VOUT_COMMAND write
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct PmbusAdapter {
    log: TransactionLog,
    policy: RetryPolicy,
    faults: Option<Box<dyn BusFaultInjector>>,
    stats: BusStats,
}

impl PmbusAdapter {
    /// Creates an adapter with an empty log, no fault model and no
    /// retries.
    pub fn new() -> Self {
        PmbusAdapter::default()
    }

    /// Sets the transaction-log depth (evicting oldest entries first).
    pub fn with_log_capacity(mut self, capacity: usize) -> Self {
        self.log = TransactionLog::with_capacity(capacity);
        self
    }

    /// Installs a retry/backoff/verify policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a transient-fault model (simulating a marginal bus).
    pub fn with_fault_model(mut self, model: Box<dyn BusFaultInjector>) -> Self {
        self.faults = Some(model);
        self
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Fault-handling counters.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// The transaction log (bounded ring, chronological iteration).
    pub fn log(&self) -> &TransactionLog {
        &self.log
    }

    /// Clears the transaction log (counters keep running).
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    fn record(&mut self, address: u8, command: CommandCode, dir: Direction, word: u16, ok: bool) {
        self.log.push(Transaction {
            seq: 0, // stamped by the log
            address,
            command,
            direction: dir,
            word,
            ok,
        });
    }

    fn account_retry(&mut self, retry: u32) {
        self.stats.retries += 1;
        self.stats.backoff += self.policy.backoff_for(retry);
    }

    /// Raw word write with fault injection, retry and logging.
    ///
    /// # Errors
    ///
    /// Propagates hard [`PmbusError`]s immediately; transient faults are
    /// retried per the policy, and the last transient error is returned
    /// once the attempt budget is exhausted.
    pub fn write_word<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
        command: CommandCode,
        word: u16,
    ) -> Result<(), PmbusError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.account_retry(attempt - 1);
            }
            if let Some(fault) = self
                .faults
                .as_mut()
                .and_then(|m| m.pre_transaction(address, command, Direction::Write))
            {
                self.stats.injected_faults += 1;
                self.record(address, command, Direction::Write, word, false);
                last_err = Some(fault.into_error(address));
                continue;
            }
            let result = target.write_word(address, command, word);
            self.record(address, command, Direction::Write, word, result.is_ok());
            match result {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        self.stats.exhausted += 1;
        Err(last_err.expect("at least one attempt ran"))
    }

    /// Raw word read with fault injection, PEC read-verify, retry and
    /// logging.
    ///
    /// # Errors
    ///
    /// See [`PmbusAdapter::write_word`]; additionally surfaces
    /// [`PmbusError::CorruptedRead`] when every attempt failed its packet
    /// error check.
    pub fn read_word<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
        command: CommandCode,
    ) -> Result<u16, PmbusError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.account_retry(attempt - 1);
            }
            if let Some(fault) = self
                .faults
                .as_mut()
                .and_then(|m| m.pre_transaction(address, command, Direction::Read))
            {
                self.stats.injected_faults += 1;
                self.record(address, command, Direction::Read, 0, false);
                last_err = Some(fault.into_error(address));
                continue;
            }
            match target.read_word(address, command) {
                Ok(word) => {
                    // Read-verify: the device computes the PEC over the
                    // word it holds; the host recomputes it over the word
                    // it received. Any in-flight corruption mismatches.
                    let device_pec = pec::read_word_pec(address, command.raw(), word);
                    let received = self
                        .faults
                        .as_mut()
                        .and_then(|m| m.corrupt_read(address, command, word));
                    match received {
                        None => {
                            self.record(address, command, Direction::Read, word, true);
                            return Ok(word);
                        }
                        Some(corrupted) => {
                            self.stats.injected_faults += 1;
                            let host_pec = pec::read_word_pec(address, command.raw(), corrupted);
                            self.record(address, command, Direction::Read, corrupted, false);
                            if host_pec == device_pec {
                                // Undetectable corruption (cannot happen
                                // for the single-bit flips the models
                                // inject; CRC-8 catches those).
                                return Ok(corrupted);
                            }
                            self.stats.pec_failures += 1;
                            last_err = Some(PmbusError::CorruptedRead { address });
                        }
                    }
                }
                Err(e) => {
                    self.record(address, command, Direction::Read, 0, false);
                    if e.is_transient() {
                        last_err = Some(e);
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        self.stats.exhausted += 1;
        Err(last_err.expect("at least one attempt ran"))
    }

    fn vout_exponent<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<i8, PmbusError> {
        let mode = self.read_word(target, address, CommandCode::VoutMode)?;
        Ok(linear::vout_mode_exponent(mode as u8))
    }

    /// Commands the output voltage of the rail at `address`, in volts.
    ///
    /// With [`RetryPolicy::verify_writes`] set, the commanded word is read
    /// back and the write repeated (within the attempt budget) until the
    /// readback agrees — the adapter-level analogue of the paper's
    /// set-then-confirm scripting.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent/hung, the value is unencodable, or the
    /// device rejects it (outside its UV/OV window).
    pub fn set_vout<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
        volts: f64,
    ) -> Result<(), PmbusError> {
        let exp = self.vout_exponent(target, address)?;
        let word = linear::linear16_encode(volts, exp)?;
        let verify_rounds = if self.policy.verify_writes {
            self.policy.max_attempts.max(1)
        } else {
            1
        };
        let mut last_err = PmbusError::Timeout { address };
        for round in 1..=verify_rounds {
            if round > 1 {
                self.account_retry(round - 1);
            }
            self.write_word(target, address, CommandCode::VoutCommand, word)?;
            if !self.policy.verify_writes {
                return Ok(());
            }
            let readback = self.read_word(target, address, CommandCode::VoutCommand)?;
            if readback == word {
                return Ok(());
            }
            last_err = PmbusError::CorruptedRead { address };
        }
        self.stats.exhausted += 1;
        Err(last_err)
    }

    /// Reads the measured output voltage of the rail at `address`, in volts.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_vout<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<f64, PmbusError> {
        let exp = self.vout_exponent(target, address)?;
        let word = self.read_word(target, address, CommandCode::ReadVout)?;
        Ok(linear::linear16_decode(word, exp))
    }

    /// Reads measured output power in watts.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_pout<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<f64, PmbusError> {
        let word = self.read_word(target, address, CommandCode::ReadPout)?;
        Ok(linear::linear11_decode(word))
    }

    /// Reads measured output current in amps.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_iout<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<f64, PmbusError> {
        let word = self.read_word(target, address, CommandCode::ReadIout)?;
        Ok(linear::linear11_decode(word))
    }

    /// Reads the device temperature sensor in °C.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_temperature<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<f64, PmbusError> {
        let word = self.read_word(target, address, CommandCode::ReadTemperature1)?;
        Ok(linear::linear11_decode(word))
    }

    /// Commands the fan duty cycle in percent (the paper's temperature
    /// regulation knob).
    ///
    /// # Errors
    ///
    /// Fails if the device is absent/hung or does not control a fan.
    pub fn set_fan_percent<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
        percent: f64,
    ) -> Result<(), PmbusError> {
        if !(0.0..=100.0).contains(&percent) {
            return Err(PmbusError::Unencodable {
                reason: format!("fan duty {percent}% outside 0..=100"),
            });
        }
        let word = linear::linear11_encode(percent)?;
        self.write_word(target, address, CommandCode::FanCommand1, word)
    }

    /// Reads the latched status byte.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_status<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<u8, PmbusError> {
        Ok(self.read_word(target, address, CommandCode::StatusByte)? as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimpleRegulator;

    /// Scripted injector: plays back a fixed fault schedule, then stays
    /// clean.
    #[derive(Debug, Default)]
    struct Script {
        pre: Vec<Option<TransientFault>>,
        flips: Vec<Option<u16>>, // XOR masks applied to read words
    }

    impl BusFaultInjector for Script {
        fn pre_transaction(
            &mut self,
            _address: u8,
            _command: CommandCode,
            _direction: Direction,
        ) -> Option<TransientFault> {
            if self.pre.is_empty() {
                None
            } else {
                self.pre.remove(0)
            }
        }

        fn corrupt_read(&mut self, _address: u8, _command: CommandCode, word: u16) -> Option<u16> {
            if self.flips.is_empty() {
                None
            } else {
                self.flips.remove(0).map(|mask| word ^ mask)
            }
        }
    }

    #[test]
    fn set_and_read_vout_round_trip() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut reg, 0x13, 0.570).unwrap();
        let v = host.read_vout(&mut reg, 0x13).unwrap();
        assert!((v - 0.570).abs() < 1e-3);
    }

    #[test]
    fn log_records_failures_too() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        assert!(host.read_vout(&mut reg, 0x42).is_err());
        assert!(host.log().iter().any(|t| !t.ok && t.address == 0x42));
    }

    #[test]
    fn log_sequence_is_monotone() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        for _ in 0..5 {
            host.read_pout(&mut reg, 0x13).unwrap();
        }
        let seqs: Vec<u64> = host.log().iter().map(|t| t.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn fan_duty_validation() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        assert!(matches!(
            host.set_fan_percent(&mut reg, 0x13, 150.0),
            Err(PmbusError::Unencodable { .. })
        ));
    }

    #[test]
    fn clear_log_empties() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        host.read_pout(&mut reg, 0x13).unwrap();
        assert!(!host.log().is_empty());
        host.clear_log();
        assert!(host.log().is_empty());
    }

    #[test]
    fn ring_log_evicts_oldest_and_keeps_total() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new().with_log_capacity(4);
        for _ in 0..5 {
            host.read_pout(&mut reg, 0x13).unwrap(); // 1 transaction each
        }
        assert_eq!(host.log().len(), 4);
        assert_eq!(host.log().total(), 5);
        assert_eq!(host.log().capacity(), 4);
        let seqs: Vec<u64> = host.log().iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4], "oldest entry (seq 0) evicted");
        assert_eq!(host.log().latest().unwrap().seq, 4);
    }

    #[test]
    fn transient_nack_is_retried_to_success() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new()
            .with_retry_policy(RetryPolicy::resilient())
            .with_fault_model(Box::new(Script {
                pre: vec![Some(TransientFault::Nack), Some(TransientFault::Timeout)],
                flips: vec![],
            }));
        let p = host.read_pout(&mut reg, 0x13).unwrap();
        assert!(p > 0.0);
        let stats = host.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.injected_faults, 2);
        assert!(stats.backoff > Duration::ZERO);
        assert_eq!(stats.exhausted, 0);
        // Failed attempts are in the log alongside the clean one.
        assert_eq!(host.log().iter().filter(|t| !t.ok).count(), 2);
    }

    #[test]
    fn corrupted_read_fails_pec_and_converges_on_retry() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut clean_host = PmbusAdapter::new();
        let want = clean_host.read_vout(&mut reg, 0x13).unwrap();
        let mut host = PmbusAdapter::new()
            .with_retry_policy(RetryPolicy::resilient())
            .with_fault_model(Box::new(Script {
                pre: vec![],
                // VOUT_MODE read corrupted once, then clean.
                flips: vec![Some(1 << 3)],
            }));
        let got = host.read_vout(&mut reg, 0x13).unwrap();
        assert_eq!(got, want, "retry must converge to the true value");
        assert_eq!(host.stats().pec_failures, 1);
    }

    #[test]
    fn retry_exhaustion_surfaces_the_last_error() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::resilient()
        };
        // Two NACKs then a timeout: three attempts, all transient.
        let mut host = PmbusAdapter::new()
            .with_retry_policy(policy)
            .with_fault_model(Box::new(Script {
                pre: vec![
                    Some(TransientFault::Nack),
                    Some(TransientFault::Nack),
                    Some(TransientFault::Timeout),
                ],
                flips: vec![],
            }));
        let err = host.read_pout(&mut reg, 0x13).unwrap_err();
        assert!(
            matches!(err, PmbusError::Timeout { address: 0x13 }),
            "last error must win: {err:?}"
        );
        assert_eq!(host.stats().exhausted, 1);
        assert_eq!(host.stats().retries, 2);
    }

    #[test]
    fn hard_errors_are_not_retried() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new().with_retry_policy(RetryPolicy::resilient());
        assert!(matches!(
            host.read_pout(&mut reg, 0x42),
            Err(PmbusError::NoDevice { address: 0x42 })
        ));
        assert_eq!(host.stats().retries, 0, "NoDevice must fail fast");
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let p = RetryPolicy::resilient();
        assert_eq!(p.backoff_for(1), Duration::from_micros(50));
        assert_eq!(p.backoff_for(2), Duration::from_micros(100));
        assert_eq!(p.backoff_for(3), Duration::from_micros(200));
        assert_eq!(p.backoff_for(30), Duration::from_millis(5), "capped");
    }

    #[test]
    fn verified_set_vout_reads_back_the_commanded_word() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new().with_retry_policy(RetryPolicy::resilient());
        host.set_vout(&mut reg, 0x13, 0.6).unwrap();
        // VOUT_MODE read + write + verification readback.
        assert_eq!(host.log().total(), 3);
        assert!((reg.vout() - 0.6).abs() < 1e-3);
    }

    #[test]
    fn bus_stats_accumulate_sums_fieldwise() {
        let mut total = BusStats {
            retries: 1,
            injected_faults: 2,
            pec_failures: 3,
            backoff: Duration::from_micros(10),
            exhausted: 0,
        };
        total.accumulate(BusStats {
            retries: 4,
            injected_faults: 5,
            pec_failures: 6,
            backoff: Duration::from_micros(40),
            exhausted: 1,
        });
        assert_eq!(
            total,
            BusStats {
                retries: 5,
                injected_faults: 7,
                pec_failures: 9,
                backoff: Duration::from_micros(50),
                exhausted: 1,
            }
        );
    }
}

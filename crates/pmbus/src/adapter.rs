//! Host-side PMBus adapter.
//!
//! Mirrors the role of the USB-to-PMBus dongle plus vendor API the paper
//! used: typed get/set operations that handle wire encodings (querying
//! `VOUT_MODE` for the LINEAR16 exponent), with a transaction log for
//! auditability — each experiment's full bus traffic can be inspected.

use crate::command::CommandCode;
use crate::device::PmbusTarget;
use crate::linear;
use crate::PmbusError;

/// Direction of a logged transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host wrote to a device.
    Write,
    /// Host read from a device.
    Read,
}

/// One logged bus transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Monotone sequence number.
    pub seq: u64,
    /// 7-bit device address.
    pub address: u8,
    /// Command code.
    pub command: CommandCode,
    /// Transfer direction.
    pub direction: Direction,
    /// Raw wire word (the value written, or the value read back).
    pub word: u16,
    /// Whether the device acknowledged the transaction.
    pub ok: bool,
}

/// Typed host adapter with a transaction log.
///
/// # Examples
///
/// ```
/// use redvolt_pmbus::adapter::PmbusAdapter;
/// use redvolt_pmbus::device::SimpleRegulator;
///
/// # fn main() -> Result<(), redvolt_pmbus::PmbusError> {
/// let mut rail = SimpleRegulator::new(0x13, 0.85);
/// let mut host = PmbusAdapter::new();
/// host.set_vout(&mut rail, 0x13, 0.6)?;
/// assert_eq!(host.log().len(), 2); // VOUT_MODE read + VOUT_COMMAND write
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct PmbusAdapter {
    log: Vec<Transaction>,
    seq: u64,
}

impl PmbusAdapter {
    /// Creates an adapter with an empty log.
    pub fn new() -> Self {
        PmbusAdapter::default()
    }

    /// The transaction log so far.
    pub fn log(&self) -> &[Transaction] {
        &self.log
    }

    /// Clears the transaction log.
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    fn record(&mut self, address: u8, command: CommandCode, dir: Direction, word: u16, ok: bool) {
        self.log.push(Transaction {
            seq: self.seq,
            address,
            command,
            direction: dir,
            word,
            ok,
        });
        self.seq += 1;
    }

    /// Raw word write with logging.
    ///
    /// # Errors
    ///
    /// Propagates any [`PmbusError`] from the target.
    pub fn write_word<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
        command: CommandCode,
        word: u16,
    ) -> Result<(), PmbusError> {
        let result = target.write_word(address, command, word);
        self.record(address, command, Direction::Write, word, result.is_ok());
        result
    }

    /// Raw word read with logging.
    ///
    /// # Errors
    ///
    /// Propagates any [`PmbusError`] from the target.
    pub fn read_word<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
        command: CommandCode,
    ) -> Result<u16, PmbusError> {
        let result = target.read_word(address, command);
        let word = *result.as_ref().unwrap_or(&0);
        self.record(address, command, Direction::Read, word, result.is_ok());
        result
    }

    fn vout_exponent<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<i8, PmbusError> {
        let mode = self.read_word(target, address, CommandCode::VoutMode)?;
        Ok(linear::vout_mode_exponent(mode as u8))
    }

    /// Commands the output voltage of the rail at `address`, in volts.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent/hung, the value is unencodable, or the
    /// device rejects it (outside its UV/OV window).
    pub fn set_vout<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
        volts: f64,
    ) -> Result<(), PmbusError> {
        let exp = self.vout_exponent(target, address)?;
        let word = linear::linear16_encode(volts, exp)?;
        self.write_word(target, address, CommandCode::VoutCommand, word)
    }

    /// Reads the measured output voltage of the rail at `address`, in volts.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_vout<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<f64, PmbusError> {
        let exp = self.vout_exponent(target, address)?;
        let word = self.read_word(target, address, CommandCode::ReadVout)?;
        Ok(linear::linear16_decode(word, exp))
    }

    /// Reads measured output power in watts.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_pout<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<f64, PmbusError> {
        let word = self.read_word(target, address, CommandCode::ReadPout)?;
        Ok(linear::linear11_decode(word))
    }

    /// Reads measured output current in amps.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_iout<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<f64, PmbusError> {
        let word = self.read_word(target, address, CommandCode::ReadIout)?;
        Ok(linear::linear11_decode(word))
    }

    /// Reads the device temperature sensor in °C.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_temperature<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<f64, PmbusError> {
        let word = self.read_word(target, address, CommandCode::ReadTemperature1)?;
        Ok(linear::linear11_decode(word))
    }

    /// Commands the fan duty cycle in percent (the paper's temperature
    /// regulation knob).
    ///
    /// # Errors
    ///
    /// Fails if the device is absent/hung or does not control a fan.
    pub fn set_fan_percent<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
        percent: f64,
    ) -> Result<(), PmbusError> {
        if !(0.0..=100.0).contains(&percent) {
            return Err(PmbusError::Unencodable {
                reason: format!("fan duty {percent}% outside 0..=100"),
            });
        }
        let word = linear::linear11_encode(percent)?;
        self.write_word(target, address, CommandCode::FanCommand1, word)
    }

    /// Reads the latched status byte.
    ///
    /// # Errors
    ///
    /// Fails if the device is absent or hung.
    pub fn read_status<T: PmbusTarget>(
        &mut self,
        target: &mut T,
        address: u8,
    ) -> Result<u8, PmbusError> {
        Ok(self.read_word(target, address, CommandCode::StatusByte)? as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimpleRegulator;

    #[test]
    fn set_and_read_vout_round_trip() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut reg, 0x13, 0.570).unwrap();
        let v = host.read_vout(&mut reg, 0x13).unwrap();
        assert!((v - 0.570).abs() < 1e-3);
    }

    #[test]
    fn log_records_failures_too() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        assert!(host.read_vout(&mut reg, 0x42).is_err());
        assert!(host.log().iter().any(|t| !t.ok && t.address == 0x42));
    }

    #[test]
    fn log_sequence_is_monotone() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        for _ in 0..5 {
            host.read_pout(&mut reg, 0x13).unwrap();
        }
        let seqs: Vec<u64> = host.log().iter().map(|t| t.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn fan_duty_validation() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        assert!(matches!(
            host.set_fan_percent(&mut reg, 0x13, 150.0),
            Err(PmbusError::Unencodable { .. })
        ));
    }

    #[test]
    fn clear_log_empties() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new();
        host.read_pout(&mut reg, 0x13).unwrap();
        assert!(!host.log().is_empty());
        host.clear_log();
        assert!(host.log().is_empty());
    }
}

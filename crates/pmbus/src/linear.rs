//! PMBus wire-format number encodings.
//!
//! PMBus transports real-valued quantities in two compact formats:
//!
//! * **LINEAR11** — one 16-bit word holding a 5-bit two's-complement
//!   exponent `N` and an 11-bit two's-complement mantissa `Y`, representing
//!   `Y · 2^N`. Used for currents, power, temperature and fan speed.
//! * **LINEAR16** — a 16-bit unsigned mantissa whose exponent comes from
//!   the `VOUT_MODE` register of the device. Used for output voltages.
//!
//! Encoders pick the exponent that maximizes mantissa resolution.

use crate::PmbusError;

/// Maximum positive LINEAR11 mantissa (11-bit two's complement).
const L11_MANT_MAX: i32 = 1023;
/// Minimum negative LINEAR11 mantissa.
const L11_MANT_MIN: i32 = -1024;

/// Encodes `value` as a LINEAR11 word.
///
/// Chooses the smallest exponent (finest resolution) whose mantissa still
/// fits in 11 bits.
///
/// # Errors
///
/// Returns [`PmbusError::Unencodable`] for non-finite inputs or magnitudes
/// beyond `1023 · 2^15`.
///
/// # Examples
///
/// ```
/// use redvolt_pmbus::linear::{linear11_encode, linear11_decode};
///
/// # fn main() -> Result<(), redvolt_pmbus::PmbusError> {
/// let word = linear11_encode(12.59)?;
/// assert!((linear11_decode(word) - 12.59).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn linear11_encode(value: f64) -> Result<u16, PmbusError> {
    if !value.is_finite() {
        return Err(PmbusError::Unencodable {
            reason: format!("LINEAR11 cannot represent {value}"),
        });
    }
    // Search exponents from finest (-16) to coarsest (15).
    for exp in -16i32..=15 {
        let mant = (value / f64::powi(2.0, exp)).round();
        if mant >= f64::from(L11_MANT_MIN) && mant <= f64::from(L11_MANT_MAX) {
            let mant = mant as i32;
            let exp_bits = ((exp as u16) & 0x1F) << 11;
            let mant_bits = (mant as u16) & 0x07FF;
            return Ok(exp_bits | mant_bits);
        }
    }
    Err(PmbusError::Unencodable {
        reason: format!("{value} exceeds LINEAR11 range"),
    })
}

/// Decodes a LINEAR11 word into its real value.
pub fn linear11_decode(word: u16) -> f64 {
    // Sign-extend the 5-bit exponent and the 11-bit mantissa.
    let exp = ((word >> 11) as i8) << 3 >> 3;
    let mant = ((word & 0x07FF) as i16) << 5 >> 5;
    f64::from(mant) * f64::powi(2.0, i32::from(exp))
}

/// Encodes `value` as a LINEAR16 mantissa under the given `VOUT_MODE`
/// exponent (a 5-bit two's-complement number; regulators in this workspace
/// use −12, i.e. 1/4096 V resolution).
///
/// # Errors
///
/// Returns [`PmbusError::Unencodable`] for negative, non-finite, or
/// out-of-range values (the mantissa is unsigned 16-bit).
pub fn linear16_encode(value: f64, vout_mode_exp: i8) -> Result<u16, PmbusError> {
    if !value.is_finite() || value < 0.0 {
        return Err(PmbusError::Unencodable {
            reason: format!("LINEAR16 cannot represent {value}"),
        });
    }
    let mant = (value / f64::powi(2.0, i32::from(vout_mode_exp))).round();
    if mant > f64::from(u16::MAX) {
        return Err(PmbusError::Unencodable {
            reason: format!("{value} exceeds LINEAR16 range at exponent {vout_mode_exp}"),
        });
    }
    Ok(mant as u16)
}

/// Decodes a LINEAR16 mantissa under the given `VOUT_MODE` exponent.
pub fn linear16_decode(mantissa: u16, vout_mode_exp: i8) -> f64 {
    f64::from(mantissa) * f64::powi(2.0, i32::from(vout_mode_exp))
}

/// Extracts the two's-complement exponent from a `VOUT_MODE` register value
/// (linear mode: top three bits 000, low five bits the exponent).
pub fn vout_mode_exponent(vout_mode: u8) -> i8 {
    ((vout_mode & 0x1F) as i8) << 3 >> 3
}

/// Builds a linear-mode `VOUT_MODE` register value from an exponent.
///
/// # Panics
///
/// Panics if `exp` is outside the representable −16..=15 range.
pub fn vout_mode_from_exponent(exp: i8) -> u8 {
    assert!((-16..=15).contains(&exp), "VOUT_MODE exponent out of range");
    (exp as u8) & 0x1F
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear11_round_trips_typical_telemetry() {
        // Power in watts, temperature in Celsius, current in amps.
        for &v in &[12.59, 0.0, 4.84, 34.0, 52.0, 14.8, -3.5, 0.015, 3000.0] {
            let word = linear11_encode(v).unwrap();
            let back = linear11_decode(word);
            let tol = (v.abs() * 1e-3).max(1e-3);
            assert!((back - v).abs() <= tol, "{v} -> {back}");
        }
    }

    #[test]
    fn linear11_zero_is_zero_word() {
        assert_eq!(linear11_encode(0.0).unwrap() & 0x07FF, 0);
        assert_eq!(linear11_decode(0), 0.0);
    }

    #[test]
    fn linear11_rejects_nonfinite_and_huge() {
        assert!(linear11_encode(f64::NAN).is_err());
        assert!(linear11_encode(f64::INFINITY).is_err());
        assert!(linear11_encode(1e12).is_err());
    }

    #[test]
    fn linear11_negative_values() {
        let word = linear11_encode(-40.0).unwrap();
        assert!((linear11_decode(word) + 40.0).abs() < 0.05);
    }

    #[test]
    fn linear11_known_encoding() {
        // Mantissa 1, exponent 0 => 1.0.
        assert_eq!(linear11_decode(0x0001), 1.0);
        // Mantissa 1, exponent 1 (00001 << 11) => 2.0.
        assert_eq!(linear11_decode(0x0801), 2.0);
        // Exponent -1 (11111 << 11), mantissa 1 => 0.5.
        assert_eq!(linear11_decode(0xF801), 0.5);
    }

    #[test]
    fn linear16_round_trips_rail_voltages() {
        // 1 mV steps over the paper's full sweep range at exponent -12.
        let mut mv = 500;
        while mv <= 900 {
            let v = f64::from(mv) / 1000.0;
            let m = linear16_encode(v, -12).unwrap();
            let back = linear16_decode(m, -12);
            assert!((back - v).abs() < 2.0 / 4096.0, "{v} -> {back}");
            mv += 1;
        }
    }

    #[test]
    fn linear16_rejects_negative() {
        assert!(linear16_encode(-0.1, -12).is_err());
        assert!(linear16_encode(f64::NAN, -12).is_err());
        assert!(linear16_encode(17.0, -12).is_err());
    }

    #[test]
    fn vout_mode_round_trips() {
        for exp in -16i8..=15 {
            assert_eq!(vout_mode_exponent(vout_mode_from_exponent(exp)), exp);
        }
    }

    #[test]
    fn vout_mode_decodes_standard_minus_twelve() {
        // 0x14 is the common "linear, exponent -12" VOUT_MODE byte.
        assert_eq!(vout_mode_exponent(0x14), -12);
    }
}

//! The bus-target abstraction and a reference regulator device.
//!
//! Anything that answers PMBus transactions implements [`PmbusTarget`]. The
//! ZCU102 board simulator in `redvolt-fpga` implements it by routing
//! addresses to its internal regulators and sensors; [`SimpleRegulator`] is
//! a self-contained single-rail device used by protocol tests and examples.

use crate::command::{status, Access, CommandCode};
use crate::linear;
use crate::PmbusError;

/// A system of one or more PMBus-addressable devices.
///
/// Word payloads are raw wire words; interpretation (LINEAR11/LINEAR16) is
/// the host adapter's job, exactly as on real hardware.
pub trait PmbusTarget {
    /// Handles a word write to `(address, command)`.
    ///
    /// # Errors
    ///
    /// Implementations return [`PmbusError`] variants for unknown addresses,
    /// unsupported or read-only commands, out-of-range values, and hung
    /// devices.
    fn write_word(
        &mut self,
        address: u8,
        command: CommandCode,
        word: u16,
    ) -> Result<(), PmbusError>;

    /// Handles a word read from `(address, command)`.
    ///
    /// # Errors
    ///
    /// See [`PmbusTarget::write_word`].
    fn read_word(&mut self, address: u8, command: CommandCode) -> Result<u16, PmbusError>;
}

/// A standalone single-rail voltage regulator with ideal telemetry.
///
/// Models the essentials of a MAX-style point-of-load regulator: a
/// commanded output voltage with slew, a fixed resistive load for telemetry,
/// and UV/OV fault limits. The full board model in `redvolt-fpga` supplies
/// physically calibrated telemetry instead; this device exists so the
/// protocol layer can be developed and tested in isolation.
///
/// # Examples
///
/// ```
/// use redvolt_pmbus::command::CommandCode;
/// use redvolt_pmbus::device::{PmbusTarget, SimpleRegulator};
/// use redvolt_pmbus::linear;
///
/// # fn main() -> Result<(), redvolt_pmbus::PmbusError> {
/// let mut reg = SimpleRegulator::new(0x13, 0.85);
/// let mode = reg.read_word(0x13, CommandCode::VoutMode)? as u8;
/// let exp = linear::vout_mode_exponent(mode);
/// let word = linear::linear16_encode(0.6, exp)?;
/// reg.write_word(0x13, CommandCode::VoutCommand, word)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimpleRegulator {
    address: u8,
    vout_mode_exp: i8,
    vout_command_v: f64,
    vout_v: f64,
    uv_limit_v: f64,
    ov_limit_v: f64,
    load_ohms: f64,
    status: u8,
    hung: bool,
}

impl SimpleRegulator {
    /// Creates a regulator at `address` commanding `vout_v` volts.
    pub fn new(address: u8, vout_v: f64) -> Self {
        SimpleRegulator {
            address,
            vout_mode_exp: -12,
            vout_command_v: vout_v,
            vout_v,
            uv_limit_v: 0.0,
            ov_limit_v: 2.0,
            load_ohms: 0.1,
            status: 0,
            hung: false,
        }
    }

    /// Sets the resistive load used for current/power telemetry.
    pub fn with_load_ohms(mut self, ohms: f64) -> Self {
        self.load_ohms = ohms;
        self
    }

    /// Current output voltage in volts.
    pub fn vout(&self) -> f64 {
        self.vout_v
    }

    /// Marks the device as hung; all subsequent transactions fail with
    /// [`PmbusError::DeviceHung`] until [`SimpleRegulator::reset`].
    pub fn hang(&mut self) {
        self.hung = true;
        self.status |= status::CML;
    }

    /// Clears the hung state and latched faults (power cycle).
    pub fn reset(&mut self) {
        self.hung = false;
        self.status = 0;
    }

    fn check(&self, address: u8, command: CommandCode) -> Result<(), PmbusError> {
        if address != self.address {
            return Err(PmbusError::NoDevice { address });
        }
        if self.hung {
            return Err(PmbusError::DeviceHung { address });
        }
        let _ = command;
        Ok(())
    }
}

impl PmbusTarget for SimpleRegulator {
    fn write_word(
        &mut self,
        address: u8,
        command: CommandCode,
        word: u16,
    ) -> Result<(), PmbusError> {
        self.check(address, command)?;
        if command.access() == Access::ReadOnly {
            return Err(PmbusError::UnsupportedCommand {
                address,
                command: command.raw(),
            });
        }
        match command {
            CommandCode::VoutCommand => {
                let v = linear::linear16_decode(word, self.vout_mode_exp);
                if v > self.ov_limit_v {
                    self.status |= status::VOUT_OV;
                    return Err(PmbusError::Rejected {
                        reason: format!("{v} V above OV limit {} V", self.ov_limit_v),
                    });
                }
                if v < self.uv_limit_v {
                    self.status |= status::VOUT_UV;
                    return Err(PmbusError::Rejected {
                        reason: format!("{v} V below UV limit {} V", self.uv_limit_v),
                    });
                }
                self.vout_command_v = v;
                self.vout_v = v;
                Ok(())
            }
            CommandCode::VoutOvFaultLimit => {
                self.ov_limit_v = linear::linear16_decode(word, self.vout_mode_exp);
                Ok(())
            }
            CommandCode::VoutUvFaultLimit => {
                self.uv_limit_v = linear::linear16_decode(word, self.vout_mode_exp);
                Ok(())
            }
            CommandCode::Page | CommandCode::Operation | CommandCode::FanConfig12 => Ok(()),
            CommandCode::VoutMode => Err(PmbusError::Rejected {
                reason: "VOUT_MODE is factory-fixed on this device".to_string(),
            }),
            CommandCode::FanCommand1 => Err(PmbusError::UnsupportedCommand {
                address,
                command: command.raw(),
            }),
            _ => Err(PmbusError::UnsupportedCommand {
                address,
                command: command.raw(),
            }),
        }
    }

    fn read_word(&mut self, address: u8, command: CommandCode) -> Result<u16, PmbusError> {
        self.check(address, command)?;
        match command {
            CommandCode::VoutMode => Ok(u16::from(linear::vout_mode_from_exponent(
                self.vout_mode_exp,
            ))),
            CommandCode::VoutCommand => {
                linear::linear16_encode(self.vout_command_v, self.vout_mode_exp)
            }
            CommandCode::ReadVout => linear::linear16_encode(self.vout_v, self.vout_mode_exp),
            CommandCode::ReadIout => linear::linear11_encode(self.vout_v / self.load_ohms),
            CommandCode::ReadPout => {
                linear::linear11_encode(self.vout_v * self.vout_v / self.load_ohms)
            }
            CommandCode::ReadVin => linear::linear11_encode(12.0),
            CommandCode::ReadIin => {
                // Ideal converter: input power equals output power at 12 V in.
                linear::linear11_encode(self.vout_v * self.vout_v / self.load_ohms / 12.0)
            }
            CommandCode::ReadTemperature1 => linear::linear11_encode(35.0),
            CommandCode::StatusByte => Ok(u16::from(self.status)),
            CommandCode::VoutOvFaultLimit => {
                linear::linear16_encode(self.ov_limit_v, self.vout_mode_exp)
            }
            CommandCode::VoutUvFaultLimit => {
                linear::linear16_encode(self.uv_limit_v, self.vout_mode_exp)
            }
            _ => Err(PmbusError::UnsupportedCommand {
                address,
                command: command.raw(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrong_address_is_no_device() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let err = reg.read_word(0x20, CommandCode::ReadVout).unwrap_err();
        assert_eq!(err, PmbusError::NoDevice { address: 0x20 });
    }

    #[test]
    fn vout_command_round_trips() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let word = linear::linear16_encode(0.570, -12).unwrap();
        reg.write_word(0x13, CommandCode::VoutCommand, word)
            .unwrap();
        let back =
            linear::linear16_decode(reg.read_word(0x13, CommandCode::ReadVout).unwrap(), -12);
        assert!((back - 0.570).abs() < 1e-3);
    }

    #[test]
    fn ov_limit_rejects_and_latches_status() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let word = linear::linear16_encode(3.0, -12).unwrap();
        assert!(matches!(
            reg.write_word(0x13, CommandCode::VoutCommand, word),
            Err(PmbusError::Rejected { .. })
        ));
        let st = reg.read_word(0x13, CommandCode::StatusByte).unwrap() as u8;
        assert_ne!(st & status::VOUT_OV, 0);
        // Voltage unchanged.
        assert!((reg.vout() - 0.85).abs() < 1e-9);
    }

    #[test]
    fn read_only_commands_refuse_writes() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        assert!(matches!(
            reg.write_word(0x13, CommandCode::ReadPout, 0),
            Err(PmbusError::UnsupportedCommand { .. })
        ));
    }

    #[test]
    fn power_telemetry_follows_square_law() {
        let mut reg = SimpleRegulator::new(0x13, 0.8).with_load_ohms(0.05);
        let p = linear::linear11_decode(reg.read_word(0x13, CommandCode::ReadPout).unwrap());
        assert!((p - 0.8 * 0.8 / 0.05).abs() < 0.05);
    }

    #[test]
    fn hang_blocks_until_reset() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        reg.hang();
        assert!(matches!(
            reg.read_word(0x13, CommandCode::ReadVout),
            Err(PmbusError::DeviceHung { .. })
        ));
        reg.reset();
        assert!(reg.read_word(0x13, CommandCode::ReadVout).is_ok());
    }

    #[test]
    fn vout_mode_is_factory_fixed() {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        assert!(matches!(
            reg.write_word(0x13, CommandCode::VoutMode, 0x10),
            Err(PmbusError::Rejected { .. })
        ));
    }
}

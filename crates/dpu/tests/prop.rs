//! Property-based tests for the DPU timing/compile stack.

use proptest::prelude::*;
use redvolt_dpu::compiler::compile;
use redvolt_dpu::engine::timing;
use redvolt_dpu::isa::DpuInstr;
use redvolt_dpu::memory;
use redvolt_nn::graph::{ConvParams, GraphBuilder};

fn random_graph(seed: u64, ch: usize, k: usize) -> redvolt_nn::graph::Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(8, 8, 3);
    let p = ConvParams {
        in_ch: 3,
        out_ch: ch,
        k,
        stride: 1,
        pad: k / 2,
        relu: true,
    };
    let w: Vec<f32> = (0..p.weight_count())
        .map(|i| (((i as u64).wrapping_mul(seed | 1) % 97) as f32 / 97.0) - 0.5)
        .collect();
    let y = b.conv("c", x, p, w, vec![0.0; ch]);
    let m = b.max_pool("p", y, 2, 2);
    let n = b.shape(m).len();
    let d = b.dense("fc", m, 5, false, vec![0.01; n * 5], vec![0.0; 5]);
    let s = b.softmax("sm", d);
    b.finish(s)
}

proptest! {
    #[test]
    fn kernel_macs_always_match_graph(seed in 1u64..500, ch in 2usize..12, k in 1usize..4) {
        let g = random_graph(seed, ch, k);
        let kern = compile("t", &g, 8).unwrap();
        prop_assert_eq!(kern.total_macs(), g.mac_count());
    }

    #[test]
    fn cycles_never_beat_peak_rate(seed in 1u64..200, ch in 2usize..12) {
        let g = random_graph(seed, ch, 3);
        let kern = compile("t", &g, 8).unwrap();
        // Utilization can never exceed the array's peak MACs/cycle.
        for instr in &kern.instrs {
            if let DpuInstr::Conv { macs, cycles, .. } | DpuInstr::Fc { macs, cycles, .. } = instr
            {
                prop_assert!(*macs <= cycles * memory::PEAK_MACS_PER_CYCLE);
            }
        }
    }

    #[test]
    fn throughput_is_monotone_in_clock(seed in 1u64..100, ch in 2usize..10) {
        let g = random_graph(seed, ch, 3);
        let kern = compile("t", &g, 8).unwrap();
        let mut prev = 0.0;
        for f in [100.0, 150.0, 200.0, 250.0, 300.0, 333.0] {
            let t = timing(&kern, f, 3);
            prop_assert!(t.gops > prev);
            prev = t.gops;
        }
    }

    #[test]
    fn gops_scaling_is_sublinear(seed in 1u64..100, ch in 2usize..10) {
        // The roofline makes GOPs fall slower than the clock.
        let g = random_graph(seed, ch, 3);
        let kern = compile("t", &g, 8).unwrap();
        let full = timing(&kern, 333.0, 3);
        let half = timing(&kern, 166.5, 3);
        prop_assert!(half.gops >= full.gops * 0.5 - 1e-9);
        prop_assert!(half.gops <= full.gops + 1e-9);
    }

    #[test]
    fn stall_fraction_is_a_fraction(seed in 1u64..100, ch in 2usize..10, f in 50.0f64..400.0) {
        let g = random_graph(seed, ch, 3);
        let kern = compile("t", &g, 8).unwrap();
        let t = timing(&kern, f, 3);
        prop_assert!((0.0..=1.0).contains(&t.stall_fraction));
        prop_assert!((t.t_compute_s + t.t_memory_s - t.t_image_s).abs() < 1e-12);
    }

    #[test]
    fn narrower_precision_never_increases_traffic(seed in 1u64..100, ch in 2usize..10) {
        let g = random_graph(seed, ch, 3);
        let k8 = compile("t", &g, 8).unwrap();
        let k4 = compile("t", &g, 4).unwrap();
        prop_assert!(k4.total_feature_bytes() <= k8.total_feature_bytes());
        prop_assert!(k4.weight_bytes <= k8.weight_bytes);
        prop_assert_eq!(k4.total_cycles(), k8.total_cycles());
    }
}

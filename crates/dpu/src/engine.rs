//! Cycle/traffic-accounted execution timing.
//!
//! Each B4096 core runs one inference at a time; the three-core cluster
//! processes independent images (DNNDK's multi-threaded task model), so
//! cluster throughput is three single-core pipelines sharing DDR (the
//! bandwidth split is already folded into
//! [`crate::memory::DDR_BW_PER_CORE_BPS`]).
//!
//! The per-image time is the sum of MAC-array/misc-engine compute time
//! (scaling with the DPU clock) and DDR transfer time (clock-independent).
//! This additive roofline is what the paper's Table 2 measures: GOPs falls
//! only 17 % when the clock drops 25 %, because ≈42 % of the runtime is
//! memory-bound at 333 MHz.

use crate::isa::DpuKernel;
use crate::memory;

/// Number of DPU cores in the baseline configuration (three B4096, §3.3.1).
pub const DEFAULT_CORES: usize = 3;

/// Timing of a kernel at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Single-image latency on one core, seconds.
    pub t_image_s: f64,
    /// Compute portion of the latency, seconds.
    pub t_compute_s: f64,
    /// DDR portion of the latency, seconds.
    pub t_memory_s: f64,
    /// Cluster throughput, images per second.
    pub images_per_s: f64,
    /// Effective throughput in giga-operations per second (2 ops/MAC).
    pub gops: f64,
    /// Fraction of the per-image time spent stalled on DDR.
    pub stall_fraction: f64,
}

/// Computes the timing of `kernel` at `f_mhz` on a cluster of `cores`.
///
/// Per-inference weight traffic is the BRAM-buffer overflow only (see
/// [`memory::streamed_weight_bytes`]); models that fit keep their weights
/// resident.
///
/// # Panics
///
/// Panics if `f_mhz` is not positive or `cores` is zero.
pub fn timing(kernel: &DpuKernel, f_mhz: f64, cores: usize) -> Timing {
    assert!(f_mhz > 0.0, "clock must be positive");
    assert!(cores > 0, "need at least one core");
    let t_compute_s = kernel.total_cycles() as f64 / (f_mhz * 1e6);
    let bytes = kernel.total_feature_bytes() + memory::streamed_weight_bytes(kernel.weight_bytes);
    let t_memory_s = memory::ddr_time_s(bytes);
    let t_image_s = t_compute_s + t_memory_s;
    let images_per_s = cores as f64 / t_image_s;
    let gops = kernel.total_ops() as f64 * images_per_s / 1e9;
    Timing {
        t_image_s,
        t_compute_s,
        t_memory_s,
        images_per_s,
        gops,
        stall_fraction: t_memory_s / t_image_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use redvolt_nn::models::{ModelKind, ModelScale};

    fn paper_kernels() -> Vec<DpuKernel> {
        ModelKind::ALL
            .iter()
            .map(|&k| compile(k.name(), &k.build(ModelScale::Paper).fold_batch_norms(), 8).unwrap())
            .collect()
    }

    #[test]
    fn mean_stall_share_matches_table2_calibration() {
        // Table 2's GOPs column implies ≈42% memory-stall share at 333 MHz.
        let kernels = paper_kernels();
        let mean: f64 = kernels
            .iter()
            .map(|k| timing(k, 333.0, DEFAULT_CORES).stall_fraction)
            .sum::<f64>()
            / kernels.len() as f64;
        assert!((0.32..=0.52).contains(&mean), "mean stall = {mean}");
    }

    #[test]
    fn gops_scaling_matches_table2_column() {
        // Normalized GOPs at the Table-2 clocks, averaged over benchmarks.
        let kernels = paper_kernels();
        let mean_ratio = |f: f64| -> f64 {
            kernels
                .iter()
                .map(|k| timing(k, f, DEFAULT_CORES).gops / timing(k, 333.0, DEFAULT_CORES).gops)
                .sum::<f64>()
                / kernels.len() as f64
        };
        let g300 = mean_ratio(300.0);
        let g250 = mean_ratio(250.0);
        let g200 = mean_ratio(200.0);
        assert!((g300 - 0.94).abs() < 0.03, "g300 = {g300}");
        assert!((g250 - 0.83).abs() < 0.04, "g250 = {g250}");
        assert!((g200 - 0.70).abs() < 0.05, "g200 = {g200}");
    }

    #[test]
    fn throughput_scales_with_cores() {
        let k = &paper_kernels()[0];
        let one = timing(k, 333.0, 1);
        let three = timing(k, 333.0, 3);
        assert!((three.images_per_s / one.images_per_s - 3.0).abs() < 1e-9);
        assert_eq!(one.t_image_s, three.t_image_s);
    }

    #[test]
    fn alexnet_overflows_bram_and_pays_weight_traffic() {
        let kernels = paper_kernels();
        let alex = kernels
            .iter()
            .find(|k| k.name == "AlexNet")
            .expect("alexnet kernel");
        assert!(!crate::memory::weights_resident(alex.weight_bytes));
        assert!(crate::memory::streamed_weight_bytes(alex.weight_bytes) > 0);
        // The other four models keep their weights fully resident.
        for k in kernels.iter().filter(|k| k.name != "AlexNet") {
            assert!(
                crate::memory::weights_resident(k.weight_bytes),
                "{} should be resident",
                k.name
            );
        }
        // Weight streaming makes AlexNet slower than pure feature traffic.
        let t = timing(alex, 333.0, 3);
        let feature_only = crate::memory::ddr_time_s(alex.total_feature_bytes());
        assert!(t.t_memory_s > feature_only);
    }

    #[test]
    fn compute_time_scales_inversely_with_clock() {
        let k = &paper_kernels()[0];
        let fast = timing(k, 333.0, 3);
        let slow = timing(k, 166.5, 3);
        assert!((slow.t_compute_s / fast.t_compute_s - 2.0).abs() < 1e-9);
        assert_eq!(slow.t_memory_s, fast.t_memory_s);
    }

    #[test]
    #[should_panic(expected = "clock must be positive")]
    fn zero_clock_panics() {
        let k = &paper_kernels()[0];
        timing(k, 0.0, 3);
    }
}

//! DNNDK-style runtime: tasks bound to a board.
//!
//! Mirrors the paper's software stack (§3.1): a kernel is created from a
//! quantized model, then tasks run batches of images on the DPU cluster.
//! The runtime publishes the running workload to the board (so power
//! telemetry reflects the live load), derives the fault injector from the
//! board's timing slack at the current operating point, and executes the
//! quantized datapath image by image. If the operating point is outside
//! the responsive region, the board hangs — exactly the paper's behaviour
//! below `Vcrash` — and the run fails until a power cycle.

use crate::compiler::{self, CompileError};
use crate::engine::{self, Timing, DEFAULT_CORES};
use crate::isa::DpuKernel;
use redvolt_faults::board_injector;
use redvolt_faults::ecc::{EccInjector, EccStats};
use redvolt_faults::model::DENSE_CRASH_SLACK_RATIO;
use redvolt_fpga::board::Zcu102Board;
use redvolt_fpga::calib::F_NOM_MHZ;
use redvolt_fpga::ecc::Scrubber;
use redvolt_fpga::power::LoadProfile;
use redvolt_nn::abft::{DefenseMode, DefensePolicy, DefenseStats};
use redvolt_nn::graph::{Graph, GraphError};
use redvolt_nn::quant::{ExecScratch, QuantizedGraph};
use redvolt_nn::tensor::Tensor;
use redvolt_num::rng::derive_substream_seed;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Derives the fault-stream seed for one image of a batch.
///
/// Every image's injector state is a pure function of
/// `(batch seed, image index, attempt)` — independent of how the batch
/// is sharded across workers, which images ran before it, and whether
/// the run is the plain or the Razor-mitigated path (the mitigated path
/// retries with `attempt` = 1, 2, …; fresh attempts draw fresh faults).
/// This is the shared seeding scheme of both [`DpuRuntime::run_batch`]
/// and [`DpuRuntime::run_batch_mitigated`].
pub fn image_stream_seed(batch_seed: u64, image_index: u64, attempt: u32) -> u64 {
    derive_substream_seed(batch_seed, image_index, u64::from(attempt))
}

/// Errors from runtime operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RunError {
    /// The board is hung (operating point below its crash boundary);
    /// power-cycle to recover.
    BoardCrashed,
    /// Kernel compilation failed.
    Compile(CompileError),
    /// Inference failed (bad image shape, etc.).
    Graph(GraphError),
    /// The runtime's simulated-cycle budget was exhausted — the watchdog's
    /// deterministic deadline for a cell that loops without converging.
    CycleBudgetExceeded {
        /// The budget that was exceeded, in DPU cycles.
        budget: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::BoardCrashed => write!(f, "board is hung; power-cycle required"),
            RunError::Compile(e) => write!(f, "compile error: {e}"),
            RunError::Graph(e) => write!(f, "inference error: {e}"),
            RunError::CycleBudgetExceeded { budget } => {
                write!(f, "simulated-cycle budget of {budget} cycles exceeded")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> Self {
        RunError::Compile(e)
    }
}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> Self {
        RunError::Graph(e)
    }
}

/// A loaded DPU task: compiled kernel + quantized model.
#[derive(Debug, Clone)]
pub struct DpuTask {
    /// The compiled kernel (timing/traffic model).
    pub kernel: DpuKernel,
    qgraph: QuantizedGraph,
    /// Throughput of this kernel at the nominal clock, used to normalize
    /// the board's activity (`ops_rate_norm = 1` at 333 MHz).
    nominal_gops: f64,
    /// Workload-dependent crash margin (pruned designs are tighter).
    crash_slack_ratio: f64,
    /// Workload critical-path factor (see `LoadProfile`): FC-heavy
    /// instruction mixes stress the DSP cascades slightly harder, giving
    /// the paper's "slight workload-to-workload variation" in Fig. 3.
    critical_path_factor: f64,
}

impl DpuTask {
    /// Creates a task from an (already batch-norm-folded) graph.
    ///
    /// # Errors
    ///
    /// Propagates compile and quantization errors.
    pub fn create(
        name: &str,
        graph: &Graph,
        bits: u32,
        calib_images: &[Tensor],
    ) -> Result<Self, RunError> {
        let kernel = compiler::compile(name, graph, bits)?;
        let qgraph = QuantizedGraph::quantize(graph, bits, calib_images)?;
        let nominal_gops = engine::timing(&kernel, F_NOM_MHZ, DEFAULT_CORES).gops;
        // FC cycle share of the kernel, mapped onto a sub-percent path
        // stress factor (at most +0.6% effective clock, a ~3 mV Vmin
        // shift -- "slight variation" in the paper's words).
        let fc_cycles: u64 = kernel
            .instrs
            .iter()
            .map(|i| match i {
                crate::isa::DpuInstr::Fc { cycles, .. } => *cycles,
                _ => 0,
            })
            .sum();
        let fc_share = fc_cycles as f64 / kernel.total_cycles().max(1) as f64;
        Ok(DpuTask {
            kernel,
            qgraph,
            nominal_gops,
            crash_slack_ratio: DENSE_CRASH_SLACK_RATIO,
            critical_path_factor: 1.0 + 0.006 * fc_share,
        })
    }

    /// Overrides the crash margin (used for pruned workloads; Fig. 8).
    pub fn with_crash_slack_ratio(mut self, ratio: f64) -> Self {
        self.crash_slack_ratio = ratio;
        self
    }

    /// The task's quantized model (e.g. for calibrated label generation).
    pub fn model_mut(&mut self) -> &mut QuantizedGraph {
        &mut self.qgraph
    }

    /// Operand precision.
    pub fn bits(&self) -> u32 {
        self.kernel.bits
    }

    /// Workload critical-path factor derived from the kernel's
    /// instruction mix (1.0 = pure-conv reference; FC-heavy mixes are
    /// slightly higher).
    pub fn critical_path_factor(&self) -> f64 {
        self.critical_path_factor
    }
}

/// Result of one batch run.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-image predicted classes.
    pub predictions: Vec<usize>,
    /// Timing at the operating point.
    pub timing: Timing,
    /// Exact on-chip power during the run, watts (telemetry via PMBus is
    /// the experiment layer's job; this is the physical value).
    pub on_chip_power_w: f64,
    /// Junction temperature during the run, °C.
    pub junction_c: f64,
    /// Transient bit flips actually delivered into the datapath during
    /// the batch (after any ECC correction).
    pub injected_faults: u64,
    /// ECC events for this batch (weight/activation upsets seen by the
    /// SECDED layer).
    pub ecc: EccStats,
    /// ABFT events for this batch (checksum checks, mismatches,
    /// re-executions, unresolved corruption).
    pub defense: DefenseStats,
}

/// Result of a Razor-mitigated batch run.
#[derive(Debug, Clone)]
pub struct MitigatedBatchResult {
    /// Per-image predicted classes (after retries).
    pub predictions: Vec<usize>,
    /// Timing with effective (retry-degraded) throughput rates.
    pub timing: Timing,
    /// On-chip power during the run, watts.
    pub on_chip_power_w: f64,
    /// Mean executions per image (1.0 = no retries).
    pub attempts_per_image: f64,
    /// Images whose final attempt still contained faults.
    pub unresolved_images: u64,
}

/// Outcome of one image's isolated execution: its prediction (or graph
/// error) plus every per-image counter, so shards can be merged in image
/// order into exactly the totals a sequential walk would produce.
struct ImageRun {
    outcome: Result<usize, GraphError>,
    ecc: EccStats,
    defense: DefenseStats,
    latent: u64,
    injected: u64,
}

/// Executes one image against the shared graph with its own derived
/// fault stream and the worker's scratch arena.
fn run_one_image(
    graph: &QuantizedGraph,
    board: &Zcu102Board,
    mode: DefenseMode,
    seed: u64,
    index: usize,
    image: &Tensor,
    scratch: &mut ExecScratch,
) -> ImageRun {
    let mut injector = EccInjector::new(
        board_injector(board, image_stream_seed(seed, index as u64, 0)),
        mode,
    );
    let mut defense = DefenseStats::default();
    let outcome = graph.predict_shared(image, &mut injector, scratch, &mut defense);
    let ecc = injector.stats();
    let latent = injector.take_latent();
    ImageRun {
        outcome,
        ecc,
        defense,
        latent,
        injected: injector.into_inner().injected_count(),
    }
}

/// Runs the first `executed` images of a batch, sharded across up to
/// `workers` threads (one scratch arena per worker, reused across
/// batches via `pool`), and returns the per-image results in image
/// order. With `workers <= 1` the walk is inline — no threads spawned.
///
/// Results are a pure function of `(graph, board, mode, seed)` per
/// image, so the returned vector is identical for every worker count.
#[allow(clippy::too_many_arguments)]
fn run_images(
    graph: &QuantizedGraph,
    board: &Zcu102Board,
    mode: DefenseMode,
    images: &[Tensor],
    executed: usize,
    seed: u64,
    workers: usize,
    pool: &mut Vec<ExecScratch>,
) -> Vec<ImageRun> {
    let workers = workers.clamp(1, executed.max(1));
    if pool.len() < workers {
        pool.resize_with(workers, ExecScratch::new);
    }
    if workers <= 1 {
        let scratch = &mut pool[0];
        return images[..executed]
            .iter()
            .enumerate()
            .map(|(i, img)| run_one_image(graph, board, mode, seed, i, img, scratch))
            .collect();
    }
    let queue = AtomicUsize::new(0);
    let mut slots: Vec<Option<ImageRun>> = Vec::with_capacity(executed);
    slots.resize_with(executed, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for scratch in pool.iter_mut().take(workers) {
            let queue = &queue;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, ImageRun)> = Vec::new();
                loop {
                    let i = queue.fetch_add(1, Ordering::Relaxed);
                    if i >= executed {
                        break;
                    }
                    local.push((
                        i,
                        run_one_image(graph, board, mode, seed, i, &images[i], scratch),
                    ));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, run) in local {
                        slots[i] = Some(run);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every claimed image produced a result"))
        .collect()
}

/// The DNNDK-style runtime bound to one board.
#[derive(Debug)]
pub struct DpuRuntime {
    board: Zcu102Board,
    f_mhz: f64,
    cores: usize,
    cycles_run: u64,
    cycle_budget: Option<u64>,
    faults_observed: u64,
    defense: DefensePolicy,
    scrubber: Scrubber,
    ecc_total: EccStats,
    defense_total: DefenseStats,
    /// Requested image-shard workers per batch (0 = available
    /// parallelism, 1 = sequential — the default).
    image_jobs: usize,
    /// Per-worker scratch arenas, reused across batches.
    scratch_pool: Vec<ExecScratch>,
}

impl DpuRuntime {
    /// Opens the runtime on a board with the default 3-core cluster at the
    /// nominal 333 MHz clock.
    pub fn open(board: Zcu102Board) -> Self {
        DpuRuntime {
            board,
            f_mhz: F_NOM_MHZ,
            cores: DEFAULT_CORES,
            cycles_run: 0,
            cycle_budget: None,
            faults_observed: 0,
            defense: DefensePolicy::off(),
            scrubber: Scrubber::default(),
            ecc_total: EccStats::default(),
            defense_total: DefenseStats::default(),
            image_jobs: 1,
            scratch_pool: Vec::new(),
        }
    }

    /// Sets how many workers shard a batch's images in
    /// [`DpuRuntime::run_batch`]: `0` means available parallelism, `1`
    /// (the default) keeps the walk sequential. Results are byte-identical
    /// for every value — per-image fault streams derive from
    /// [`image_stream_seed`], never from execution order.
    pub fn set_image_jobs(&mut self, image_jobs: usize) {
        self.image_jobs = image_jobs;
    }

    /// The configured image-shard worker count (0 = available
    /// parallelism).
    pub fn image_jobs(&self) -> usize {
        self.image_jobs
    }

    /// Sets the SDC defense policy for subsequent batches: ECC filtering
    /// of weight/activation upsets plus ABFT checksums in the executor.
    /// [`DefensePolicy::off`] restores the exact undefended path.
    pub fn set_defense(&mut self, policy: DefensePolicy) {
        self.defense = policy;
    }

    /// The active defense policy.
    pub fn defense(&self) -> DefensePolicy {
        self.defense
    }

    /// Cumulative ECC events across every batch this runtime executed.
    pub fn ecc_stats(&self) -> EccStats {
        self.ecc_total
    }

    /// Cumulative ABFT events across every batch this runtime executed.
    pub fn defense_stats(&self) -> DefenseStats {
        self.defense_total
    }

    /// The BRAM scrubbing task (latent-upset and pass counters).
    pub fn scrubber(&self) -> &Scrubber {
        &self.scrubber
    }

    /// Installs (or clears) a simulated-cycle budget: once the cumulative
    /// cycles executed by this runtime exceed it, batch runs fail with
    /// [`RunError::CycleBudgetExceeded`]. This is the watchdog's
    /// deterministic deadline — wall-clock caps depend on host load, cycle
    /// budgets do not.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.cycle_budget = budget;
    }

    /// Cumulative DPU cycles executed by this runtime.
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// Cumulative transient faults observed across every batch this
    /// runtime has executed (including mitigated retries). Telemetry's
    /// fault-rate counters read this rather than re-summing per-batch
    /// results.
    pub fn faults_observed(&self) -> u64 {
        self.faults_observed
    }

    /// Charges `cycles` against the budget, failing once it is exceeded.
    fn charge_cycles(&mut self, cycles: u64) -> Result<(), RunError> {
        self.cycles_run = self.cycles_run.saturating_add(cycles);
        match self.cycle_budget {
            Some(budget) if self.cycles_run > budget => {
                Err(RunError::CycleBudgetExceeded { budget })
            }
            _ => Ok(()),
        }
    }

    /// Charges a whole batch's cycles up front, mirroring the sequential
    /// charge-then-run walk exactly: returns how many leading images fit
    /// the budget (they execute) and the budget error, if the charge for
    /// the first non-fitting image tripped it. Charging before execution
    /// is what lets the batch shard — the budget outcome is decided
    /// deterministically, never raced by workers.
    fn charge_batch_cycles(&mut self, per_image: u64, count: usize) -> (usize, Option<RunError>) {
        let Some(budget) = self.cycle_budget else {
            self.cycles_run = self
                .cycles_run
                .saturating_add(per_image.saturating_mul(count as u64));
            return (count, None);
        };
        let over = Some(RunError::CycleBudgetExceeded { budget });
        if per_image == 0 || count == 0 {
            // Free (or empty) batches never advance the meter; they only
            // fail when the budget was already exhausted.
            if self.cycles_run > budget && count > 0 {
                return (0, over);
            }
            return (count, None);
        }
        let headroom = budget.saturating_sub(self.cycles_run);
        let fit = usize::try_from(headroom / per_image)
            .unwrap_or(usize::MAX)
            .min(count);
        if fit == count {
            self.cycles_run = self
                .cycles_run
                .saturating_add(per_image.saturating_mul(count as u64));
            (count, None)
        } else {
            // `fit` successful charges plus the one that trips — exactly
            // what the old per-image loop accumulated before failing.
            self.cycles_run = self
                .cycles_run
                .saturating_add(per_image.saturating_mul(fit as u64 + 1));
            (fit, over)
        }
    }

    /// The underlying board (telemetry, PMBus).
    pub fn board(&self) -> &Zcu102Board {
        &self.board
    }

    /// Mutable access to the board (voltage control, power cycling).
    pub fn board_mut(&mut self) -> &mut Zcu102Board {
        &mut self.board
    }

    /// Current DPU clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.f_mhz
    }

    /// Sets the DPU clock (frequency underscaling, §5).
    ///
    /// # Panics
    ///
    /// Panics if `f_mhz` is not positive.
    pub fn set_clock_mhz(&mut self, f_mhz: f64) {
        assert!(f_mhz > 0.0, "clock must be positive");
        self.f_mhz = f_mhz;
    }

    /// Timing of a task at the current clock (no execution).
    pub fn timing(&self, task: &DpuTask) -> Timing {
        engine::timing(&task.kernel, self.f_mhz, self.cores)
    }

    /// Runs a batch with Razor-style detect-and-retry fault mitigation
    /// (the paper's future-work item i, §9): shadow-latch style error
    /// detection flags any timing fault during an inference, and the
    /// image is re-executed (faults are transient, so retries draw fresh
    /// fault outcomes) up to `max_retries` times. Throughput pays for the
    /// re-executions: the returned timing's effective rates are scaled by
    /// `images / attempts`.
    ///
    /// # Errors
    ///
    /// See [`DpuRuntime::run_batch`].
    pub fn run_batch_mitigated(
        &mut self,
        task: &mut DpuTask,
        images: &[Tensor],
        seed: u64,
        max_retries: u32,
    ) -> Result<MitigatedBatchResult, RunError> {
        if self.board.is_crashed() {
            return Err(RunError::BoardCrashed);
        }
        let timing = engine::timing(&task.kernel, self.f_mhz, self.cores);
        let load = LoadProfile {
            f_mhz: self.f_mhz,
            ops_rate_norm: timing.gops / task.nominal_gops,
            energy_per_op_factor: LoadProfile::energy_factor_for_bits(task.kernel.bits),
            critical_path_factor: task.critical_path_factor,
        };
        self.board.set_crash_slack_ratio(task.crash_slack_ratio);
        self.board.set_load(load);
        if self.board.is_crashed() {
            return Err(RunError::BoardCrashed);
        }
        let mut predictions = Vec::with_capacity(images.len());
        let mut attempts_total = 0u64;
        let mut unresolved = 0u64;
        for (i, img) in images.iter().enumerate() {
            let mut attempt = 0u32;
            loop {
                attempts_total += 1;
                self.charge_cycles(task.kernel.total_cycles())?;
                let mut injector =
                    board_injector(&self.board, image_stream_seed(seed, i as u64, attempt));
                let pred = task.qgraph.predict_with(img, &mut injector)?;
                self.faults_observed += injector.event_count();
                if injector.event_count() == 0 || attempt >= max_retries {
                    if injector.event_count() > 0 {
                        unresolved += 1;
                    }
                    predictions.push(pred);
                    break;
                }
                attempt += 1;
            }
        }
        let redundancy = attempts_total as f64 / images.len().max(1) as f64;
        let mut effective = timing;
        effective.images_per_s /= redundancy;
        effective.gops /= redundancy;
        Ok(MitigatedBatchResult {
            predictions,
            timing: effective,
            on_chip_power_w: self.board.on_chip_power_w(),
            attempts_per_image: redundancy,
            unresolved_images: unresolved,
        })
    }

    /// Runs a batch of images, returning predictions and measurements.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::BoardCrashed`] when the operating point is
    /// outside the responsive region (or the board was already hung), and
    /// propagates inference errors.
    pub fn run_batch(
        &mut self,
        task: &mut DpuTask,
        images: &[Tensor],
        seed: u64,
    ) -> Result<BatchResult, RunError> {
        if self.board.is_crashed() {
            return Err(RunError::BoardCrashed);
        }
        let timing = engine::timing(&task.kernel, self.f_mhz, self.cores);
        let load = LoadProfile {
            f_mhz: self.f_mhz,
            ops_rate_norm: timing.gops / task.nominal_gops,
            energy_per_op_factor: LoadProfile::energy_factor_for_bits(task.kernel.bits),
            critical_path_factor: task.critical_path_factor,
        };
        self.board.set_crash_slack_ratio(task.crash_slack_ratio);
        self.board.set_load(load);
        if self.board.is_crashed() {
            return Err(RunError::BoardCrashed);
        }
        // Decide the budget outcome up front (identical accounting to the
        // old per-image charge loop), then shard the fitting images.
        let per_image = task.kernel.total_cycles();
        let (executed, budget_err) = self.charge_batch_cycles(per_image, images.len());
        task.qgraph.set_defense(self.defense);
        let workers = if self.image_jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.image_jobs
        };
        let runs = run_images(
            &task.qgraph,
            &self.board,
            self.defense.mode,
            images,
            executed,
            seed,
            workers,
            &mut self.scratch_pool,
        );
        task.qgraph.set_defense(DefensePolicy::off());
        // Merge in image order, stopping the accounting at the first
        // graph error — exactly what a sequential walk would have seen.
        // Account defense events even when the budget tripped mid-batch.
        let mut predictions = Vec::with_capacity(executed);
        let mut ecc = EccStats::default();
        let mut defense = DefenseStats::default();
        let mut latent = 0u64;
        let mut injected = 0u64;
        let mut graph_err: Option<GraphError> = None;
        for run in runs {
            if graph_err.is_some() {
                break;
            }
            match run.outcome {
                Ok(pred) => {
                    predictions.push(pred);
                    ecc.merge(&run.ecc);
                    defense.merge(&run.defense);
                    latent += run.latent;
                    injected += run.injected;
                }
                Err(e) => graph_err = Some(e),
            }
        }
        self.ecc_total.merge(&ecc);
        self.defense_total.merge(&defense);
        self.scrubber.record_latent(latent);
        self.scrubber
            .tick(per_image.saturating_mul(images.len() as u64));
        // Flips that ECC corrected never reached the datapath.
        let delivered = injected - ecc.dropped_flips;
        self.faults_observed += delivered;
        if let Some(e) = graph_err {
            return Err(e.into());
        }
        if let Some(e) = budget_err {
            return Err(e);
        }
        Ok(BatchResult {
            predictions,
            timing,
            on_chip_power_w: self.board.on_chip_power_w(),
            junction_c: self.board.junction_c(),
            injected_faults: delivered,
            ecc,
            defense,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redvolt_nn::dataset::SyntheticDataset;
    use redvolt_nn::models::{ModelKind, ModelScale};
    use redvolt_pmbus::adapter::PmbusAdapter;

    fn setup() -> (DpuRuntime, DpuTask, Vec<Tensor>) {
        let graph = ModelKind::VggNet.build(ModelScale::Tiny).fold_batch_norms();
        let ds = SyntheticDataset::new(32, 32, 3, 10, 42);
        let calib = ds.images(4);
        let task = DpuTask::create("vgg", &graph, 8, &calib).unwrap();
        let rt = DpuRuntime::open(Zcu102Board::new(0).with_exact_telemetry());
        (rt, task, ds.images(12))
    }

    #[test]
    fn clean_run_at_nominal() {
        let (mut rt, mut task, images) = setup();
        let r = rt.run_batch(&mut task, &images, 1).unwrap();
        assert_eq!(r.predictions.len(), 12);
        assert_eq!(r.injected_faults, 0);
        assert!((r.on_chip_power_w - 12.59).abs() < 0.1);
        assert!(r.timing.gops > 0.0);
    }

    #[test]
    fn guardband_run_is_fault_free_and_cheaper() {
        let (mut rt, mut task, images) = setup();
        let nominal = rt.run_batch(&mut task, &images, 1).unwrap();
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.570).unwrap();
        let vmin = rt.run_batch(&mut task, &images, 1).unwrap();
        assert_eq!(vmin.injected_faults, 0);
        assert_eq!(vmin.predictions, nominal.predictions);
        assert!(vmin.on_chip_power_w < nominal.on_chip_power_w / 2.0);
        assert_eq!(vmin.timing.gops, nominal.timing.gops);
    }

    #[test]
    fn critical_region_injects_faults() {
        let (mut rt, mut task, images) = setup();
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.542).unwrap();
        let r = rt.run_batch(&mut task, &images, 1).unwrap();
        assert!(r.injected_faults > 0, "expected faults at 542 mV");
    }

    #[test]
    fn crash_below_vcrash_and_power_cycle_recovers() {
        let (mut rt, mut task, images) = setup();
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.535).unwrap();
        assert!(matches!(
            rt.run_batch(&mut task, &images, 1),
            Err(RunError::BoardCrashed)
        ));
        rt.board_mut().power_cycle();
        assert!(rt.run_batch(&mut task, &images, 1).is_ok());
    }

    #[test]
    fn frequency_underscaling_restores_correctness() {
        // Table 2's flow: at 545 mV the 333 MHz run faults; 250 MHz doesn't.
        let (mut rt, mut task, images) = setup();
        let clean = rt.run_batch(&mut task, &images, 1).unwrap();
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.545).unwrap();
        rt.set_clock_mhz(250.0);
        let r = rt.run_batch(&mut task, &images, 1).unwrap();
        assert_eq!(r.injected_faults, 0);
        assert_eq!(r.predictions, clean.predictions);
        assert!(r.timing.gops < clean.timing.gops);
    }

    #[test]
    fn lower_clock_lowers_power_and_throughput() {
        let (mut rt, mut task, images) = setup();
        let fast = rt.run_batch(&mut task, &images, 1).unwrap();
        rt.set_clock_mhz(200.0);
        let slow = rt.run_batch(&mut task, &images, 1).unwrap();
        assert!(slow.timing.gops < fast.timing.gops);
        assert!(slow.on_chip_power_w < fast.on_chip_power_w);
    }

    #[test]
    fn mitigated_run_is_clean_at_nominal_with_no_retries() {
        let (mut rt, mut task, images) = setup();
        let r = rt.run_batch_mitigated(&mut task, &images, 1, 3).unwrap();
        assert_eq!(r.attempts_per_image, 1.0);
        assert_eq!(r.unresolved_images, 0);
        assert_eq!(r.predictions.len(), images.len());
    }

    #[test]
    fn mitigated_run_retries_and_recovers_in_critical_region() {
        let (mut rt, mut task, images) = setup();
        let clean = rt.run_batch(&mut task, &images, 1).unwrap();
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.542).unwrap();
        let mitigated = rt.run_batch_mitigated(&mut task, &images, 1, 8).unwrap();
        assert!(
            mitigated.attempts_per_image > 1.0,
            "retries expected at 542 mV: {mitigated:?}"
        );
        // Resolved images carry clean predictions.
        if mitigated.unresolved_images == 0 {
            assert_eq!(mitigated.predictions, clean.predictions);
        }
        // Throughput pays for redundancy.
        assert!(mitigated.timing.gops < clean.timing.gops);
    }

    #[test]
    fn fc_heavy_workloads_stress_paths_slightly_harder() {
        // AlexNet's dense-dominated mix gets a (slightly) higher
        // critical-path factor than conv-dominated GoogleNet -- the
        // paper's "slight workload-to-workload variation" (Fig. 3).
        let ds_a = SyntheticDataset::new(48, 48, 3, 2, 42);
        let alex = DpuTask::create(
            "alexnet",
            &ModelKind::AlexNet
                .build(ModelScale::Tiny)
                .fold_batch_norms(),
            8,
            &ds_a.images(2),
        )
        .unwrap();
        let ds_g = SyntheticDataset::new(32, 32, 3, 10, 42);
        let google = DpuTask::create(
            "googlenet",
            &ModelKind::GoogleNet
                .build(ModelScale::Tiny)
                .fold_batch_norms(),
            8,
            &ds_g.images(2),
        )
        .unwrap();
        assert!(alex.critical_path_factor() > google.critical_path_factor());
        assert!(alex.critical_path_factor() < 1.007);
        assert!(google.critical_path_factor() >= 1.0);
    }

    #[test]
    fn cycle_budget_trips_and_accounts() {
        let (mut rt, mut task, images) = setup();
        assert_eq!(rt.cycles_run(), 0);
        rt.run_batch(&mut task, &images, 1).unwrap();
        let after_one = rt.cycles_run();
        assert!(after_one > 0);
        // A budget below one more batch's worth must trip mid-run.
        rt.set_cycle_budget(Some(after_one + task.kernel.total_cycles()));
        let err = rt.run_batch(&mut task, &images, 1).unwrap_err();
        assert!(
            matches!(err, RunError::CycleBudgetExceeded { .. }),
            "{err:?}"
        );
        // Clearing the budget restores service.
        rt.set_cycle_budget(None);
        assert!(rt.run_batch(&mut task, &images, 1).is_ok());
    }

    #[test]
    fn defended_run_counts_events_and_rescues_when_resolved() {
        let (mut rt, mut task, images) = setup();
        let clean = rt.run_batch(&mut task, &images, 1).unwrap().predictions;
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.542).unwrap();
        let undefended = rt.run_batch(&mut task, &images, 1).unwrap();
        assert!(undefended.injected_faults > 0, "expected faults at 542 mV");
        assert_eq!(undefended.ecc, EccStats::default());
        assert_eq!(undefended.defense, DefenseStats::default());

        rt.set_defense(DefensePolicy::correct());
        let defended = rt.run_batch(&mut task, &images, 1).unwrap();
        assert!(defended.defense.checks > 0, "ABFT must have run");
        assert!(
            defended.defense.mismatches > 0,
            "542 mV faults must be detected: {:?}",
            defended.defense
        );
        // The zero-silent-corruption contract: if every mismatch resolved,
        // the defended predictions are the clean ones.
        if defended.defense.clean() {
            assert_eq!(defended.predictions, clean);
        }
        // Runtime-cumulative counters fold both batches.
        assert_eq!(rt.defense_stats(), defended.defense);
        assert_eq!(rt.ecc_stats(), defended.ecc);
        // Back off: the policy does not leak into later undefended runs.
        rt.set_defense(DefensePolicy::off());
        let again = rt.run_batch(&mut task, &images, 1).unwrap();
        assert_eq!(again.predictions, undefended.predictions);
        assert_eq!(again.defense, DefenseStats::default());
    }

    #[test]
    fn seeded_runs_reproduce() {
        let (mut rt, mut task, images) = setup();
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.545).unwrap();
        let a = rt.run_batch(&mut task, &images, 9).unwrap();
        let b = rt.run_batch(&mut task, &images, 9).unwrap();
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.injected_faults, b.injected_faults);
    }

    #[test]
    fn both_batch_paths_agree_at_zero_retries() {
        // The unified seeding contract: run_batch and run_batch_mitigated
        // draw the same per-image fault streams, so with retries disabled
        // (and no defense filtering the flips) their predictions match
        // even deep in the critical region.
        let (mut rt, mut task, images) = setup();
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.542).unwrap();
        let plain = rt.run_batch(&mut task, &images, 7).unwrap();
        assert!(plain.injected_faults > 0, "expected faults at 542 mV");
        let mitigated = rt.run_batch_mitigated(&mut task, &images, 7, 0).unwrap();
        assert_eq!(mitigated.attempts_per_image, 1.0);
        assert_eq!(plain.predictions, mitigated.predictions);
    }

    #[test]
    fn image_sharding_is_invisible_in_the_results() {
        // Per-image fault streams derive from (seed, index, attempt), so
        // any image-shard worker count reproduces the sequential batch —
        // predictions, fault counts, ECC/ABFT events and cycle meter.
        let (mut rt, mut task, images) = setup();
        let mut host = PmbusAdapter::new();
        host.set_vout(rt.board_mut(), 0x13, 0.542).unwrap();
        rt.set_defense(DefensePolicy::correct());
        let baseline = rt.run_batch(&mut task, &images, 11).unwrap();
        let baseline_cycles = rt.cycles_run();
        assert!(baseline.injected_faults > 0, "expected faults at 542 mV");
        for jobs in [2usize, 3, 8, 0] {
            let (mut rt2, mut task2, images2) = setup();
            let mut host2 = PmbusAdapter::new();
            host2.set_vout(rt2.board_mut(), 0x13, 0.542).unwrap();
            rt2.set_defense(DefensePolicy::correct());
            rt2.set_image_jobs(jobs);
            let sharded = rt2.run_batch(&mut task2, &images2, 11).unwrap();
            assert_eq!(sharded.predictions, baseline.predictions, "jobs={jobs}");
            assert_eq!(
                sharded.injected_faults, baseline.injected_faults,
                "jobs={jobs}"
            );
            assert_eq!(sharded.ecc, baseline.ecc, "jobs={jobs}");
            assert_eq!(sharded.defense, baseline.defense, "jobs={jobs}");
            assert_eq!(rt2.cycles_run(), baseline_cycles, "jobs={jobs}");
            assert_eq!(rt2.faults_observed(), rt.faults_observed(), "jobs={jobs}");
        }
    }
}

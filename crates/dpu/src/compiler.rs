//! Graph → DPU kernel compiler.
//!
//! Mirrors the DNNDK flow (§3.1): DECENT quantizes the model, then DNNC
//! maps each layer to the DPU's engines — convolutions and dense layers to
//! the MAC array, pooling / element-wise / concat to the misc engine, and
//! softmax to the PS host. The compiler computes, per layer, the
//! utilization-adjusted cycle cost and the DDR feature/weight traffic the
//! engine model charges at run time.

use crate::isa::{DpuInstr, DpuKernel};
use crate::memory;
use redvolt_nn::graph::{Graph, Op};
use std::fmt;

/// Errors from kernel compilation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The graph still contains batch-norm layers (must be folded first,
    /// as DECENT does).
    UnfoldedBatchNorm {
        /// Offending layer name.
        layer: String,
    },
    /// Unsupported precision.
    BadPrecision {
        /// Requested bits.
        bits: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnfoldedBatchNorm { layer } => {
                write!(f, "fold batch norms before compiling (layer {layer})")
            }
            CompileError::BadPrecision { bits } => write!(f, "unsupported precision INT{bits}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Bytes occupied by `codes` values of `bits`-wide operands (packed).
fn packed_bytes(codes: usize, bits: u32) -> u64 {
    ((codes as u64) * u64::from(bits)).div_ceil(8)
}

/// Compiles `graph` into a DPU kernel at `bits` precision.
///
/// # Errors
///
/// Returns [`CompileError::UnfoldedBatchNorm`] if the graph contains BN
/// layers and [`CompileError::BadPrecision`] if `bits` is not in `1..=8`.
pub fn compile(name: &str, graph: &Graph, bits: u32) -> Result<DpuKernel, CompileError> {
    if !(1..=8).contains(&bits) {
        return Err(CompileError::BadPrecision { bits });
    }
    let mut instrs = Vec::new();
    let mut weight_bytes = 0u64;
    for (id, node) in graph.nodes().iter().enumerate() {
        let out_shape = graph.shape(id);
        let out_bytes = packed_bytes(out_shape.len(), bits);
        let in_bytes: u64 = node
            .inputs
            .iter()
            .map(|&i| packed_bytes(graph.shape(i).len(), bits))
            .sum();
        match &node.op {
            Op::Input { .. } => {}
            Op::Conv {
                params, weights, ..
            } => {
                let wb = packed_bytes(weights.len(), bits);
                weight_bytes += wb;
                instrs.push(DpuInstr::LoadWeights {
                    layer: node.name.clone(),
                    bytes: wb,
                });
                let out_pixels = (out_shape.h * out_shape.w) as u64;
                let k2ic = (params.k * params.k * params.in_ch) as u64;
                let macs = out_pixels * out_shape.c as u64 * k2ic;
                instrs.push(DpuInstr::Conv {
                    layer: node.name.clone(),
                    macs,
                    cycles: memory::conv_cycles(out_pixels, out_shape.c as u64, k2ic),
                    in_bytes,
                    out_bytes,
                });
            }
            Op::Dense {
                in_len,
                out_len,
                weights,
                ..
            } => {
                let wb = packed_bytes(weights.len(), bits);
                weight_bytes += wb;
                instrs.push(DpuInstr::LoadWeights {
                    layer: node.name.clone(),
                    bytes: wb,
                });
                let macs = (*in_len * *out_len) as u64;
                instrs.push(DpuInstr::Fc {
                    layer: node.name.clone(),
                    macs,
                    cycles: memory::conv_cycles(1, *out_len as u64, *in_len as u64),
                    in_bytes,
                    out_bytes,
                });
            }
            Op::MaxPool { .. }
            | Op::AvgPool { .. }
            | Op::GlobalAvgPool
            | Op::Add { .. }
            | Op::Concat => {
                // Misc-engine layers are fused with their producers in the
                // DPU schedule: their features stay in BRAM, so they charge
                // cycles but no DDR traffic.
                let _ = (in_bytes, out_bytes);
                instrs.push(DpuInstr::Misc {
                    layer: node.name.clone(),
                    cycles: memory::misc_cycles(out_shape.len() as u64),
                    in_bytes: 0,
                    out_bytes: 0,
                });
            }
            Op::Softmax => {
                instrs.push(DpuInstr::HostOp {
                    layer: node.name.clone(),
                });
            }
            Op::BatchNorm { .. } => {
                return Err(CompileError::UnfoldedBatchNorm {
                    layer: node.name.clone(),
                })
            }
        }
    }
    Ok(DpuKernel {
        name: name.to_string(),
        bits,
        instrs,
        weight_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use redvolt_nn::models::{ModelKind, ModelScale};

    #[test]
    fn kernel_macs_match_graph_macs() {
        let g = ModelKind::VggNet.build(ModelScale::Tiny);
        let k = compile("vgg", &g, 8).unwrap();
        assert_eq!(k.total_macs(), g.mac_count());
    }

    #[test]
    fn rejects_unfolded_batch_norm() {
        let g = ModelKind::ResNet50.build(ModelScale::Tiny);
        assert!(matches!(
            compile("resnet", &g, 8),
            Err(CompileError::UnfoldedBatchNorm { .. })
        ));
        assert!(compile("resnet", &g.fold_batch_norms(), 8).is_ok());
    }

    #[test]
    fn rejects_bad_precision() {
        let g = ModelKind::VggNet.build(ModelScale::Tiny);
        assert!(matches!(
            compile("vgg", &g, 0),
            Err(CompileError::BadPrecision { .. })
        ));
        assert!(matches!(
            compile("vgg", &g, 16),
            Err(CompileError::BadPrecision { .. })
        ));
    }

    #[test]
    fn lower_precision_shrinks_traffic() {
        let g = ModelKind::VggNet.build(ModelScale::Tiny);
        let k8 = compile("vgg", &g, 8).unwrap();
        let k4 = compile("vgg", &g, 4).unwrap();
        assert_eq!(k4.total_macs(), k8.total_macs());
        assert!(k4.weight_bytes < k8.weight_bytes);
        assert!(k4.total_feature_bytes() < k8.total_feature_bytes());
    }

    #[test]
    fn every_weight_layer_gets_a_load() {
        let g = ModelKind::GoogleNet.build(ModelScale::Tiny);
        let k = compile("googlenet", &g, 8).unwrap();
        let loads = k
            .instrs
            .iter()
            .filter(|i| matches!(i, DpuInstr::LoadWeights { .. }))
            .count();
        assert_eq!(loads, g.weight_layer_count());
    }

    #[test]
    fn softmax_is_a_host_op() {
        let g = ModelKind::VggNet.build(ModelScale::Tiny);
        let k = compile("vgg", &g, 8).unwrap();
        assert!(k
            .instrs
            .iter()
            .any(|i| matches!(i, DpuInstr::HostOp { .. })));
    }
}

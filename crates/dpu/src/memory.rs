//! DDR and BRAM memory models.
//!
//! The ZCU102 carries 8 GB of 64-bit DDR4 shared by the PS host and the
//! three DPU cores (§3.3.1); each B4096 core also owns a BRAM weight/
//! feature buffer (24.3 % of the device's 32.1 Mb). The roofline split
//! between compute and DDR traffic is what makes measured GOPs scale
//! *sub-linearly* with the DPU clock (Table 2's GOPs column: 333→250 MHz
//! costs only 17 % throughput), so it is modelled explicitly.

/// Effective DDR bandwidth available to one DPU core, bytes per second.
///
/// 64-bit DDR4-2400 peaks at ≈19 GB/s; after controller efficiency,
/// AXI burst overheads and the three-way split between cores (with
/// overlap from read/write interleaving), each core sustains ≈7.5 GB/s.
/// This constant is the calibrated value that reproduces Table 2's ≈42 %
/// memory-stall share at 333 MHz averaged over the five benchmarks.
pub const DDR_BW_PER_CORE_BPS: f64 = 7.5e9;

/// Per-core BRAM weight-buffer capacity in bytes (24.3 % of 32.1 Mb).
pub const BRAM_WEIGHT_BUFFER_BYTES: u64 = 975_000;

/// Peak MAC operations per cycle of one B4096 core (4096 ops/cycle at
/// 2 ops per MAC).
pub const PEAK_MACS_PER_CYCLE: u64 = 2048;

/// MAC-array geometry used for utilization accounting: output-channel
/// lanes × pixel lanes × input-channel depth = 16 × 16 × 8 = 2048.
pub const OC_LANES: u64 = 16;
/// See [`OC_LANES`].
pub const PIXEL_LANES: u64 = 16;
/// See [`OC_LANES`].
pub const IC_DEPTH: u64 = 8;

/// Whether a model's weights stay fully resident in the BRAM weight
/// buffer (loaded once per task, no per-inference weight traffic).
pub fn weights_resident(weight_bytes: u64) -> bool {
    weight_bytes <= BRAM_WEIGHT_BUFFER_BYTES
}

/// Weight bytes that must be re-streamed from DDR on *every* inference:
/// the overflow beyond the BRAM weight buffer. Models that fit stream
/// nothing; larger models (in this study: AlexNet) re-fetch their buffer
/// overflow each run, making them more memory-bound — mirroring the real
/// DPU's weight-tiling behaviour for large models.
pub fn streamed_weight_bytes(weight_bytes: u64) -> u64 {
    weight_bytes.saturating_sub(BRAM_WEIGHT_BUFFER_BYTES)
}

/// Time to move `bytes` over one core's DDR share, in seconds.
pub fn ddr_time_s(bytes: u64) -> f64 {
    bytes as f64 / DDR_BW_PER_CORE_BPS
}

/// Utilization-adjusted MAC-array cycles for a convolution of
/// `out_pixels` output positions, `out_ch` output channels and
/// `k2ic = k² · in_ch` MACs per output.
///
/// Each of the three array dimensions rounds up to its lane count, so
/// narrow layers (3-channel stems, small widths) waste lanes exactly as
/// the real array does.
pub fn conv_cycles(out_pixels: u64, out_ch: u64, k2ic: u64) -> u64 {
    out_pixels.div_ceil(PIXEL_LANES) * out_ch.div_ceil(OC_LANES) * k2ic.div_ceil(IC_DEPTH)
}

/// Misc-engine cycles for pooling / element-wise layers over `out_elems`
/// output elements (16 lanes).
pub fn misc_cycles(out_elems: u64) -> u64 {
    out_elems.div_ceil(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_array_hits_peak_rate() {
        // 16 pixels × 16 out-channels × k2ic 8 = 2048 MACs in one cycle.
        assert_eq!(conv_cycles(16, 16, 8), 1);
        // Scale up 10x in each dimension: 1000 cycles.
        assert_eq!(conv_cycles(160, 160, 80), 1000);
    }

    #[test]
    fn narrow_layers_underutilize() {
        // A 3-channel stem (k2ic = 27) pays ceil(27/8) = 4 depth passes.
        let cycles = conv_cycles(1024, 16, 27);
        let macs = 1024 * 16 * 27;
        let per_cycle = macs as f64 / cycles as f64;
        assert!(per_cycle < PEAK_MACS_PER_CYCLE as f64);
    }

    #[test]
    fn residency_boundary() {
        assert!(weights_resident(BRAM_WEIGHT_BUFFER_BYTES));
        assert!(!weights_resident(BRAM_WEIGHT_BUFFER_BYTES + 1));
        assert_eq!(streamed_weight_bytes(BRAM_WEIGHT_BUFFER_BYTES), 0);
        assert_eq!(streamed_weight_bytes(BRAM_WEIGHT_BUFFER_BYTES + 100), 100);
    }

    #[test]
    fn ddr_time_scales_linearly() {
        assert!((ddr_time_s(7_500_000) - 1e-3).abs() < 1e-9);
        assert_eq!(ddr_time_s(0), 0.0);
    }

    #[test]
    fn misc_cycles_round_up() {
        assert_eq!(misc_cycles(1), 1);
        assert_eq!(misc_cycles(16), 1);
        assert_eq!(misc_cycles(17), 2);
    }
}

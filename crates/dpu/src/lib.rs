//! B4096-style DPU accelerator simulator with a DNNDK-like runtime.
//!
//! The paper maps its CNNs onto three B4096 Deep-learning Processing Units
//! via the Xilinx DNNDK toolchain (§3.1). This crate rebuilds that stack:
//!
//! * [`isa`] — the coarse-grained kernel instruction stream.
//! * [`compiler`] — graph → kernel mapping with utilization-adjusted MAC
//!   cycles and DDR traffic accounting.
//! * [`memory`] — DDR roofline and BRAM weight-buffer residency.
//! * [`engine`] — per-image timing (compute + memory), cluster throughput
//!   and the GOPs metric; calibrated so Table 2's sub-linear GOPs-vs-clock
//!   column emerges from the roofline.
//! * [`runtime`] — DNNDK-style tasks bound to a simulated ZCU102: runs
//!   batches through the quantized datapath with slack-derived fault
//!   injection, publishes the live load to the board's power model, and
//!   hangs past the crash boundary exactly like the real system.
//!
//! # Examples
//!
//! ```
//! use redvolt_dpu::runtime::{DpuRuntime, DpuTask};
//! use redvolt_fpga::board::Zcu102Board;
//! use redvolt_nn::dataset::SyntheticDataset;
//! use redvolt_nn::models::{ModelKind, ModelScale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = ModelKind::VggNet.build(ModelScale::Tiny).fold_batch_norms();
//! let data = SyntheticDataset::new(32, 32, 3, 10, 42);
//! let mut task = DpuTask::create("vgg", &graph, 8, &data.images(4))?;
//!
//! let mut rt = DpuRuntime::open(Zcu102Board::new(0));
//! let result = rt.run_batch(&mut task, &data.images(8), 1)?;
//! assert_eq!(result.predictions.len(), 8);
//! # Ok(())
//! # }
//! ```

pub mod compiler;
pub mod engine;
pub mod isa;
pub mod memory;
pub mod runtime;

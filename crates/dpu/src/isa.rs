//! The DPU kernel representation.
//!
//! The DNNDK toolchain compiles a CNN into a *kernel*: a sequence of
//! coarse-grained instructions the DPU micro-sequencer executes per input
//! (load weights/features, run a convolution or pooling tile schedule,
//! store features). We model the instruction stream at layer granularity —
//! the level at which cycle and DDR-traffic accounting is defined by the
//! DPU product guide's performance model.

/// One coarse-grained DPU instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum DpuInstr {
    /// Stream weights for a layer from DDR into the on-chip weight buffer.
    LoadWeights {
        /// Layer name.
        layer: String,
        /// Bytes transferred.
        bytes: u64,
    },
    /// Run a convolution layer on the MAC array.
    Conv {
        /// Layer name.
        layer: String,
        /// Multiply-accumulate operations.
        macs: u64,
        /// MAC-array cycles (utilization-adjusted).
        cycles: u64,
        /// Input feature bytes streamed.
        in_bytes: u64,
        /// Output feature bytes written.
        out_bytes: u64,
    },
    /// Run a fully-connected layer.
    Fc {
        /// Layer name.
        layer: String,
        /// Multiply-accumulate operations.
        macs: u64,
        /// MAC-array cycles.
        cycles: u64,
        /// Input feature bytes streamed.
        in_bytes: u64,
        /// Output feature bytes written.
        out_bytes: u64,
    },
    /// Pooling / element-wise / concat (misc engine) layer.
    Misc {
        /// Layer name.
        layer: String,
        /// Engine cycles.
        cycles: u64,
        /// Input feature bytes streamed.
        in_bytes: u64,
        /// Output feature bytes written.
        out_bytes: u64,
    },
    /// A layer executed on the PS host (softmax in DNNDK).
    HostOp {
        /// Layer name.
        layer: String,
    },
}

impl DpuInstr {
    /// MAC operations of this instruction.
    pub fn macs(&self) -> u64 {
        match self {
            DpuInstr::Conv { macs, .. } | DpuInstr::Fc { macs, .. } => *macs,
            _ => 0,
        }
    }

    /// Compute cycles of this instruction.
    pub fn cycles(&self) -> u64 {
        match self {
            DpuInstr::Conv { cycles, .. }
            | DpuInstr::Fc { cycles, .. }
            | DpuInstr::Misc { cycles, .. } => *cycles,
            _ => 0,
        }
    }

    /// Feature bytes moved over DDR by this instruction per inference.
    pub fn feature_bytes(&self) -> u64 {
        match self {
            DpuInstr::Conv {
                in_bytes,
                out_bytes,
                ..
            }
            | DpuInstr::Fc {
                in_bytes,
                out_bytes,
                ..
            }
            | DpuInstr::Misc {
                in_bytes,
                out_bytes,
                ..
            } => in_bytes + out_bytes,
            _ => 0,
        }
    }

    /// Weight bytes loaded by this instruction.
    pub fn weight_bytes(&self) -> u64 {
        match self {
            DpuInstr::LoadWeights { bytes, .. } => *bytes,
            _ => 0,
        }
    }
}

/// A compiled DPU kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DpuKernel {
    /// Kernel (benchmark) name.
    pub name: String,
    /// Operand precision in bits.
    pub bits: u32,
    /// Instruction stream in execution order.
    pub instrs: Vec<DpuInstr>,
    /// Total weight bytes of the model.
    pub weight_bytes: u64,
}

impl DpuKernel {
    /// Total MAC operations per inference.
    pub fn total_macs(&self) -> u64 {
        self.instrs.iter().map(DpuInstr::macs).sum()
    }

    /// Total compute cycles per inference (at full clock availability).
    pub fn total_cycles(&self) -> u64 {
        self.instrs.iter().map(DpuInstr::cycles).sum()
    }

    /// Total feature bytes over DDR per inference.
    pub fn total_feature_bytes(&self) -> u64 {
        self.instrs.iter().map(DpuInstr::feature_bytes).sum()
    }

    /// Effective operations per inference (2 ops per MAC, the GOPs
    /// convention of the paper).
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> DpuKernel {
        DpuKernel {
            name: "test".to_string(),
            bits: 8,
            instrs: vec![
                DpuInstr::LoadWeights {
                    layer: "c1".to_string(),
                    bytes: 100,
                },
                DpuInstr::Conv {
                    layer: "c1".to_string(),
                    macs: 1000,
                    cycles: 10,
                    in_bytes: 64,
                    out_bytes: 32,
                },
                DpuInstr::Misc {
                    layer: "p1".to_string(),
                    cycles: 2,
                    in_bytes: 32,
                    out_bytes: 8,
                },
                DpuInstr::Fc {
                    layer: "fc".to_string(),
                    macs: 500,
                    cycles: 5,
                    in_bytes: 8,
                    out_bytes: 4,
                },
                DpuInstr::HostOp {
                    layer: "softmax".to_string(),
                },
            ],
            weight_bytes: 100,
        }
    }

    #[test]
    fn totals_aggregate_correctly() {
        let k = kernel();
        assert_eq!(k.total_macs(), 1500);
        assert_eq!(k.total_ops(), 3000);
        assert_eq!(k.total_cycles(), 17);
        assert_eq!(k.total_feature_bytes(), 64 + 32 + 32 + 8 + 8 + 4);
    }

    #[test]
    fn host_ops_cost_nothing_on_dpu() {
        let h = DpuInstr::HostOp {
            layer: "sm".to_string(),
        };
        assert_eq!(h.macs(), 0);
        assert_eq!(h.cycles(), 0);
        assert_eq!(h.feature_bytes(), 0);
    }
}

//! Golden-file tests for the JSONL and Prometheus exporters.
//!
//! The fixture mimics a tiny campaign's telemetry; the rendered bytes
//! are pinned against files under `tests/golden/`. To regenerate after
//! an intentional format change:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p redvolt-telemetry --test golden
//! ```

use redvolt_telemetry::export::{export_jsonl, export_prometheus};
use redvolt_telemetry::{Registry, Sample, SpanRecord, SpanRing};
use std::path::Path;

fn fixture() -> (Vec<SpanRecord>, Vec<Sample>) {
    let reg = Registry::new();
    reg.counter("redvolt_attempts_total", &[("board", "0")])
        .add(5);
    reg.counter("redvolt_attempts_total", &[("board", "1")])
        .add(4);
    reg.counter("redvolt_bus_retries_total", &[]).add(7);
    reg.counter("redvolt_watchdog_reaps_total", &[]).inc();
    reg.gauge("redvolt_rail_mv", &[("rail", "vccint")])
        .set(572.5);
    reg.gauge("redvolt_rail_mv", &[("rail", "vccbram")])
        .set(850.0);
    reg.gauge("redvolt_temp_c", &[("board", "0")]).set(41.25);
    let h = reg.histogram("redvolt_cell_cycles", &[], &[1e6, 1e7, 1e8]);
    for cycles in [250_000.0, 3_000_000.0, 4_500_000.0, 90_000_000.0, 2e9] {
        h.observe(cycles);
    }

    let mut cell = SpanRing::new();
    let attempt = cell.begin("attempt", None, 0);
    let run = cell.begin("dpu_run", None, 1_000);
    cell.end(run, 2_400_000);
    cell.end(attempt, 2_500_000);

    let mut ring = SpanRing::new();
    let campaign = ring.begin("campaign", None, 0);
    let cell_span = ring.begin("cell", None, 0);
    ring.attr(cell_span, "label", "vgg/b0");
    ring.attr(cell_span, "index", "0");
    ring.end(cell_span, 2_500_000);
    ring.absorb(&cell, Some(cell_span), 0);
    ring.end(campaign, 2_500_000);

    (ring.take(), reg.samples())
}

fn check(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(actual, expected, "{name} drifted from its golden file");
}

#[test]
fn jsonl_matches_golden() {
    let (spans, samples) = fixture();
    check("events.jsonl", &export_jsonl(&spans, &samples));
}

#[test]
fn prometheus_matches_golden() {
    let (_, samples) = fixture();
    check("metrics.prom", &export_prometheus(&samples));
}

#[test]
fn jsonl_lines_are_valid_json_objects() {
    // Cheap structural check without a JSON parser: every line is a
    // single object with balanced braces and no raw control characters.
    let (spans, samples) = fixture();
    for line in export_jsonl(&spans, &samples).lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        let depth: i64 = line
            .chars()
            .map(|c| match c {
                '{' | '[' => 1,
                '}' | ']' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(depth, 0, "unbalanced: {line}");
        assert!(
            line.chars().all(|c| c as u32 >= 0x20),
            "control char: {line}"
        );
    }
}

//! Property tests for the determinism contract at the data-structure
//! level: metric contents must not depend on how work is sharded across
//! worker threads.

use proptest::collection::vec;
use proptest::prelude::*;
use redvolt_telemetry::{Registry, SpanRing};
use std::sync::Arc;

proptest! {
    /// Histogram bucket counts and sums are invariant across the number
    /// of worker threads — the data-structure half of the `--jobs 1/2/8`
    /// acceptance criterion (the campaign-level half lives in
    /// `tests/telemetry.rs` at the workspace root).
    #[test]
    fn histogram_invariant_across_worker_counts(
        raw in vec(0u32..2_000_000, 1..200),
    ) {
        let values: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
        let bounds = [1e3, 1e4, 1e5, 1e6];

        let reference = Registry::new();
        let h = reference.histogram("cycles", &[], &bounds);
        for v in &values {
            h.observe(*v);
        }
        let expected = reference.samples();

        for jobs in [1usize, 2, 8] {
            let reg = Registry::new();
            let h = reg.histogram("cycles", &[], &bounds);
            std::thread::scope(|scope| {
                for chunk in values.chunks(values.len().div_ceil(jobs)) {
                    let h = Arc::clone(&h);
                    scope.spawn(move || {
                        for v in chunk {
                            h.observe(*v);
                        }
                    });
                }
            });
            prop_assert_eq!(&reg.samples(), &expected, "jobs={}", jobs);
        }
    }

    /// Counters shard-merge exactly: splitting increments across per-cell
    /// counters and summing in plan order equals one global counter.
    #[test]
    fn counters_shard_merge_exactly(per_cell in vec(0u64..10_000, 1..64)) {
        let global = Registry::new();
        let g = global.counter("retries_total", &[]);
        for n in &per_cell {
            g.add(*n);
        }
        let merged: u64 = per_cell.iter().sum();
        prop_assert_eq!(g.get(), merged);
    }

    /// Absorbing per-cell span rings in plan order yields the same ids
    /// and timestamps no matter how many rings the spans were recorded
    /// through — the merge step cannot leak scheduling.
    #[test]
    fn span_absorb_is_schedule_independent(
        durations in vec(1u64..1_000_000, 1..40),
        split in 1usize..40,
    ) {
        let split = split.min(durations.len());

        // One ring per "cell", absorbed in plan order with prefix-summed
        // cycle bases.
        let build = |groups: &[&[u64]]| {
            let mut merged = SpanRing::new();
            let mut base = 0u64;
            for group in groups {
                let mut local = SpanRing::new();
                let mut cycle = 0u64;
                for d in *group {
                    let id = local.begin("dpu_run", None, cycle);
                    cycle += d;
                    local.end(id, cycle);
                }
                merged.absorb(&local, None, base);
                base += cycle;
            }
            merged.take()
        };

        let one = build(&[&durations]);
        let (a, b) = durations.split_at(split);
        let two = if b.is_empty() {
            build(&[a])
        } else {
            build(&[a, b])
        };
        prop_assert_eq!(one, two);
    }
}

//! Bounded flight recorder with post-mortem dumps.
//!
//! The paper's experimenters reconstructed fault chronology from logs
//! taken *around* an incident — what the board was doing in the seconds
//! before a crash or an SDC matters more than the steady state. This
//! module is that black box for the simulated stack: producers stream
//! every completed span and periodic health [`Snapshot`]s into a bounded
//! ring, and when something notable happens (a board crash, an audited
//! SDC, a governor escalation) the recorder freezes the ring's contents
//! into a [`PostMortem`] blob.
//!
//! Everything is bounded — recent spans, recent snapshots, and the dump
//! list itself — so a pathological run cannot grow the recorder without
//! limit; overflow is *counted*, never silent. All timestamps are
//! virtual cycles, so recorder output obeys the crate's determinism
//! contract: byte-identical across reruns and worker counts.

use crate::export::{json_attrs, span_to_json};
use crate::span::{AttrValue, SpanRecord};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Default bound on recent spans retained for a dump.
pub const DEFAULT_SPAN_WINDOW: usize = 64;
/// Default bound on recent health snapshots retained for a dump.
pub const DEFAULT_SNAPSHOT_WINDOW: usize = 32;
/// Default bound on post-mortem dumps kept (later triggers are counted
/// but suppressed).
pub const DEFAULT_MAX_DUMPS: usize = 32;

/// A point-in-time health reading of one tracked component (typically a
/// board), attached to post-mortems for causal context.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Virtual timestamp of the reading.
    pub cycle: u64,
    /// What was sampled, e.g. `"board0"`.
    pub source: String,
    /// Typed reading attributes (voltage, clock, rungs, queue depth...).
    pub attrs: Vec<(String, AttrValue)>,
}

/// One frozen post-mortem blob.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// Dump sequence number (0-based, in trigger order).
    pub seq: u64,
    /// What fired the dump, e.g. `"board_crash"`, `"sdc_audit"`,
    /// `"governor_escalation"`.
    pub trigger: String,
    /// Virtual timestamp of the trigger.
    pub cycle: u64,
    /// Typed trigger attributes (board index, silent flag...).
    pub attrs: Vec<(String, AttrValue)>,
    /// The spans that completed most recently before the trigger,
    /// oldest first.
    pub spans: Vec<SpanRecord>,
    /// The most recent health snapshots, oldest first.
    pub snapshots: Vec<Snapshot>,
}

/// Bounded ring of recent activity plus the dumps frozen from it.
#[derive(Debug)]
pub struct FlightRecorder {
    spans: VecDeque<SpanRecord>,
    snapshots: VecDeque<Snapshot>,
    dumps: Vec<PostMortem>,
    span_window: usize,
    snapshot_window: usize,
    max_dumps: usize,
    suppressed: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default windows.
    pub fn new() -> Self {
        Self::with_windows(
            DEFAULT_SPAN_WINDOW,
            DEFAULT_SNAPSHOT_WINDOW,
            DEFAULT_MAX_DUMPS,
        )
    }

    /// A recorder bounded to `span_window` recent spans,
    /// `snapshot_window` recent snapshots and `max_dumps` post-mortems.
    pub fn with_windows(span_window: usize, snapshot_window: usize, max_dumps: usize) -> Self {
        FlightRecorder {
            spans: VecDeque::new(),
            snapshots: VecDeque::new(),
            dumps: Vec::new(),
            span_window: span_window.max(1),
            snapshot_window: snapshot_window.max(1),
            max_dumps: max_dumps.max(1),
            suppressed: 0,
        }
    }

    /// Streams one completed span into the ring.
    pub fn push(&mut self, span: SpanRecord) {
        if self.spans.len() == self.span_window {
            self.spans.pop_front();
        }
        self.spans.push_back(span);
    }

    /// Streams one health snapshot into the ring.
    pub fn snapshot(&mut self, snapshot: Snapshot) {
        if self.snapshots.len() == self.snapshot_window {
            self.snapshots.pop_front();
        }
        self.snapshots.push_back(snapshot);
    }

    /// Freezes the current rings into a [`PostMortem`]. Returns the dump
    /// sequence number, or `None` when the dump bound is reached (the
    /// trigger is still counted in [`FlightRecorder::suppressed`]).
    pub fn dump(
        &mut self,
        trigger: &str,
        cycle: u64,
        attrs: Vec<(String, AttrValue)>,
    ) -> Option<u64> {
        if self.dumps.len() >= self.max_dumps {
            self.suppressed += 1;
            return None;
        }
        let seq = self.dumps.len() as u64;
        self.dumps.push(PostMortem {
            seq,
            trigger: trigger.to_string(),
            cycle,
            attrs,
            spans: self.spans.iter().cloned().collect(),
            snapshots: self.snapshots.iter().cloned().collect(),
        });
        Some(seq)
    }

    /// The frozen dumps, in trigger order.
    pub fn dumps(&self) -> &[PostMortem] {
        &self.dumps
    }

    /// Drains the frozen dumps, leaving the rings intact.
    pub fn take_dumps(&mut self) -> Vec<PostMortem> {
        std::mem::take(&mut self.dumps)
    }

    /// Triggers that arrived after the dump bound was hit.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

/// Renders post-mortems as a JSONL stream: one meta line, then per dump
/// a `postmortem` header line followed by its span and snapshot lines.
/// Ends with a trailing newline.
pub fn export_flight_jsonl(dumps: &[PostMortem], suppressed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"format\":\"redvolt-flight\",\"version\":1,\"postmortems\":{},\"suppressed\":{}}}",
        dumps.len(),
        suppressed
    );
    for dump in dumps {
        let _ = writeln!(
            out,
            "{{\"type\":\"postmortem\",\"seq\":{},\"trigger\":\"{}\",\"cycle\":{},\"attrs\":{},\"spans\":{},\"snapshots\":{}}}",
            dump.seq,
            crate::export::json_escape(&dump.trigger),
            dump.cycle,
            json_attrs(&dump.attrs),
            dump.spans.len(),
            dump.snapshots.len(),
        );
        for span in &dump.spans {
            out.push_str(&span_to_json(span));
            out.push('\n');
        }
        for snap in &dump.snapshots {
            let _ = writeln!(
                out,
                "{{\"type\":\"snapshot\",\"cycle\":{},\"source\":\"{}\",\"attrs\":{}}}",
                snap.cycle,
                crate::export::json_escape(&snap.source),
                json_attrs(&snap.attrs),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRing;

    fn span(id: u64, cycle: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            name: "batch".to_string(),
            start_cycle: cycle,
            end_cycle: cycle + 10,
            attrs: vec![("board".to_string(), AttrValue::U64(0))],
        }
    }

    #[test]
    fn windows_are_bounded_and_dumps_freeze_recent_history() {
        let mut rec = FlightRecorder::with_windows(2, 1, 8);
        for i in 0..5 {
            rec.push(span(i + 1, i * 100));
        }
        rec.snapshot(Snapshot {
            cycle: 390,
            source: "board0".to_string(),
            attrs: vec![("rungs".to_string(), AttrValue::U64(2))],
        });
        let seq = rec.dump("board_crash", 400, vec![]).unwrap();
        assert_eq!(seq, 0);
        let dump = &rec.dumps()[0];
        // Only the two most recent spans survive the window.
        assert_eq!(
            dump.spans.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(dump.snapshots.len(), 1);
        assert_eq!(dump.snapshots[0].attrs[0].1, AttrValue::U64(2));
    }

    #[test]
    fn dump_bound_suppresses_but_counts() {
        let mut rec = FlightRecorder::with_windows(4, 4, 2);
        assert!(rec.dump("a", 1, vec![]).is_some());
        assert!(rec.dump("b", 2, vec![]).is_some());
        assert!(rec.dump("c", 3, vec![]).is_none());
        assert!(rec.dump("d", 4, vec![]).is_none());
        assert_eq!(rec.dumps().len(), 2);
        assert_eq!(rec.suppressed(), 2);
    }

    #[test]
    fn flight_jsonl_is_framed_and_deterministic() {
        let mut ring = SpanRing::new();
        let id = ring.begin_root("execute", 50);
        ring.attr(id, "board", 1u64);
        ring.end(id, 80);

        let mut rec = FlightRecorder::new();
        rec.push(ring.last().unwrap().clone());
        rec.snapshot(Snapshot {
            cycle: 80,
            source: "board1".to_string(),
            attrs: vec![("vccint_mv".to_string(), AttrValue::F64(585.0))],
        });
        rec.dump(
            "sdc_audit",
            90,
            vec![("silent".to_string(), AttrValue::Bool(false))],
        );
        let out = export_flight_jsonl(rec.dumps(), rec.suppressed());
        assert_eq!(out, export_flight_jsonl(rec.dumps(), rec.suppressed()));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"format\":\"redvolt-flight\""));
        assert!(lines[1].contains("\"trigger\":\"sdc_audit\""));
        assert!(lines[1].contains("\"attrs\":{\"silent\":false}"));
        assert!(lines[2].contains("\"name\":\"execute\""));
        assert!(lines[3].contains("\"vccint_mv\":585.0"));
        assert!(out.ends_with('\n'));
    }
}

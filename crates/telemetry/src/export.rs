//! Exporters: JSONL event stream and Prometheus text exposition.
//!
//! Both formats are rendered from already-deterministic inputs (sorted
//! [`Sample`]s, plan-ordered [`SpanRecord`]s), so the output bytes are a
//! pure function of `(seed, plan)`. Serialisation is hand-rolled — the
//! workspace vendors no serde — and floats use `{:?}` (shortest
//! round-trip), matching the CSV payload convention in `core::report`.

use crate::metrics::{Sample, SampleValue};
use crate::span::{AttrValue, SpanRecord};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` prints integral floats as e.g. `5.0`, already valid JSON.
        s
    } else {
        // JSON has no Inf/NaN; encode as string to stay parseable.
        format!("\"{v:?}\"")
    }
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// Renders one typed attribute value as a JSON value. Strings are
/// quoted-and-escaped (byte-identical to the historical all-string attr
/// format); integers, floats and booleans render bare.
pub fn json_attr_value(value: &AttrValue) -> String {
    match value {
        AttrValue::Str(s) => format!("\"{}\"", json_escape(s)),
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::F64(v) => json_f64(*v),
        AttrValue::Bool(v) => v.to_string(),
    }
}

/// Renders a typed attribute list as a JSON object, sorted by key.
pub fn json_attrs(attrs: &[(String, AttrValue)]) -> String {
    let mut attrs: Vec<&(String, AttrValue)> = attrs.iter().collect();
    attrs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), json_attr_value(v));
    }
    out.push('}');
    out
}

/// Renders one span as a JSONL event line (no trailing newline).
pub fn span_to_json(span: &SpanRecord) -> String {
    let mut line = format!(
        "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_cycle\":{},\"end_cycle\":{},\"attrs\":{}}}",
        span.id,
        match span.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        },
        json_escape(&span.name),
        span.start_cycle,
        span.end_cycle,
        json_attrs(&span.attrs),
    );
    line.shrink_to_fit();
    line
}

/// Renders one metric sample as a JSONL event line (no trailing newline).
pub fn sample_to_json(sample: &Sample) -> String {
    let labels = json_labels(&sample.id.labels);
    match &sample.value {
        SampleValue::Counter(v) => format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            json_escape(&sample.id.name),
            labels,
            v
        ),
        SampleValue::Gauge(v) => format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            json_escape(&sample.id.name),
            labels,
            json_f64(*v)
        ),
        SampleValue::Histogram {
            bounds,
            buckets,
            count,
            sum,
        } => {
            let bounds_json: Vec<String> = bounds.iter().map(|b| json_f64(*b)).collect();
            let buckets_json: Vec<String> = buckets.iter().map(|b| b.to_string()).collect();
            format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"labels\":{},\"bounds\":[{}],\"buckets\":[{}],\"count\":{},\"sum\":{}}}",
                json_escape(&sample.id.name),
                labels,
                bounds_json.join(","),
                buckets_json.join(","),
                count,
                json_f64(*sum)
            )
        }
    }
}

/// Renders the full JSONL event stream: a schema header line, every span
/// in order, then every metric sample. Ends with a trailing newline.
pub fn export_jsonl(spans: &[SpanRecord], samples: &[Sample]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"format\":\"redvolt-telemetry\",\"version\":1,\"spans\":{},\"metrics\":{}}}",
        spans.len(),
        samples.len()
    );
    for span in spans {
        out.push_str(&span_to_json(span));
        out.push('\n');
    }
    for sample in samples {
        out.push_str(&sample_to_json(sample));
        out.push('\n');
    }
    out
}

fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{}=\"{}\"", k, prom_escape(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders samples in Prometheus text exposition format.
///
/// `# TYPE` comments are emitted once per metric family (samples sharing
/// a name), histogram buckets are cumulated with `le` labels including
/// the implicit `+Inf`, and `_sum`/`_count` series follow. Ends with a
/// trailing newline.
pub fn export_prometheus(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for sample in samples {
        let name = sample.id.name.as_str();
        let kind = match &sample.value {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram { .. } => "histogram",
        };
        if last_family != Some(name) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_family = Some(name);
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    name,
                    prom_labels(&sample.id.labels, None),
                    v
                );
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    name,
                    prom_labels(&sample.id.labels, None),
                    prom_f64(*v)
                );
            }
            SampleValue::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => {
                let mut cumulative = 0u64;
                for (i, bucket) in buckets.iter().enumerate() {
                    cumulative += bucket;
                    let le = bounds
                        .get(i)
                        .map(|b| prom_f64(*b))
                        .unwrap_or_else(|| "+Inf".to_string());
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        name,
                        prom_labels(&sample.id.labels, Some(("le", &le))),
                        cumulative
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    name,
                    prom_labels(&sample.id.labels, None),
                    prom_f64(*sum)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    name,
                    prom_labels(&sample.id.labels, None),
                    count
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::SpanRing;

    fn sample_fixture() -> Vec<Sample> {
        let reg = Registry::new();
        reg.counter("redvolt_attempts_total", &[("board", "0")])
            .add(3);
        reg.gauge("redvolt_rail_mv", &[("rail", "vccint")])
            .set(597.5);
        let h = reg.histogram("redvolt_cell_cycles", &[], &[100.0, 1000.0]);
        h.observe(50.0);
        h.observe(500.0);
        h.observe(5000.0);
        reg.samples()
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn typed_attrs_render_natively_and_sorted() {
        let mut ring = SpanRing::new();
        let id = ring.begin("route", None, 7);
        ring.attr(id, "score", 1.5f64);
        ring.attr(id, "board", 2u64);
        ring.attr(id, "degraded", true);
        ring.attr(id, "policy", "vmin");
        ring.end(id, 7);
        let line = span_to_json(ring.last().unwrap());
        assert!(
            line.contains(
                "\"attrs\":{\"board\":2,\"degraded\":true,\"policy\":\"vmin\",\"score\":1.5}"
            ),
            "{line}"
        );
    }

    #[test]
    fn jsonl_has_meta_then_events() {
        let mut ring = SpanRing::new();
        let id = ring.begin("cell", None, 0);
        ring.attr(id, "label", "vgg/b0");
        ring.end(id, 42);
        let spans: Vec<_> = ring.spans().cloned().collect();
        let out = export_jsonl(&spans, &sample_fixture());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[0].contains("\"spans\":1"));
        assert!(lines[1].contains("\"type\":\"span\""));
        assert!(lines[1].contains("\"end_cycle\":42"));
        assert!(lines[2].contains("\"redvolt_attempts_total\""));
        assert!(lines[3].contains("\"redvolt_cell_cycles\""));
        assert!(lines[3].contains("\"buckets\":[1,1,1]"));
        assert!(lines[4].contains("\"value\":597.5"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn prometheus_cumulates_buckets() {
        let out = export_prometheus(&sample_fixture());
        let expected = "\
# TYPE redvolt_attempts_total counter
redvolt_attempts_total{board=\"0\"} 3
# TYPE redvolt_cell_cycles histogram
redvolt_cell_cycles_bucket{le=\"100.0\"} 1
redvolt_cell_cycles_bucket{le=\"1000.0\"} 2
redvolt_cell_cycles_bucket{le=\"+Inf\"} 3
redvolt_cell_cycles_sum 5550.0
redvolt_cell_cycles_count 3
# TYPE redvolt_rail_mv gauge
redvolt_rail_mv{rail=\"vccint\"} 597.5
";
        assert_eq!(out, expected);
    }
}

//! Deterministic observability for undervolting campaigns.
//!
//! The paper's multi-day campaigns were babysat by hand: the experimenters
//! watched rail voltages, fault counts and reboot tallies to catch the
//! Vmin/Vcrash transition as it happened. This crate is that dashboard for
//! the simulated stack — with one extra, load-bearing constraint: **every
//! exported byte is a pure function of `(seed, plan)`**. Campaign results
//! are pinned byte-for-byte across worker counts and reruns
//! (`tests/determinism.rs`), and the telemetry must not be the side
//! channel that breaks the pin. Concretely:
//!
//! * Timestamps are **simulated DPU cycles**, never wall clock.
//! * Metric values come from seeded simulation state (retry counts, fault
//!   counts, rail voltages), never from timing or addresses.
//! * Producers record into *per-cell* collectors that the campaign layer
//!   merges in plan order, so scheduling cannot reorder anything.
//!
//! The one deliberately non-deterministic component is the
//! [`progress::ProgressReporter`], which writes wall-clock-paced status
//! lines to stderr — stderr is explicitly outside the determinism
//! contract (the `repro` binary already sends timing there).
//!
//! # Modules
//!
//! * [`metrics`] — lock-cheap registry of counters, gauges and fixed-bin
//!   histograms (atomics after registration; a lock only to register).
//! * [`span`] — structured spans (campaign → cell → attempt → bus
//!   transaction / DPU run; request → queue → execute when serving) in a
//!   bounded ring with parent/child links and typed attributes.
//! * [`export`] — JSONL event stream and Prometheus text exporters.
//! * [`trace`] — Chrome trace-event (`trace.json`) exporter; fleet
//!   timelines open directly in `chrome://tracing` / Perfetto.
//! * [`recorder`] — bounded flight recorder freezing recent spans and
//!   health snapshots into post-mortem blobs on notable triggers.
//! * [`progress`] — live campaign progress lines with a cycle-cost ETA.

pub mod export;
pub mod metrics;
pub mod progress;
pub mod recorder;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry, Sample, SampleValue};
pub use recorder::{FlightRecorder, PostMortem, Snapshot};
pub use span::{AttrValue, SpanRecord, SpanRing};
pub use trace::TraceTrack;

//! Structured spans with simulated-cycle timestamps.
//!
//! A span is one bracketed unit of campaign work — the whole campaign, a
//! cell, one supervised attempt, a PMBus voltage step, or a DPU batch
//! run — with parent/child links forming the tree
//! `campaign → cell → attempt → {bus op, dpu run}`.
//!
//! Timestamps are **simulated DPU cycles**, not wall clock, so a span
//! stream is a pure function of `(seed, plan)`. Producers record into a
//! ring that is *local to one cell attempt*; the campaign layer re-bases
//! cycle offsets and re-parents roots when merging rings in plan order
//! ([`SpanRing::absorb`]), which is what keeps ids and ordering identical
//! across `--jobs 1/2/8`.
//!
//! The ring is bounded: once `capacity` spans are held, the oldest
//! completed spans are evicted and counted in [`SpanRing::dropped`] —
//! a multi-hour campaign cannot grow telemetry without bound.

use std::collections::VecDeque;

/// Default ring capacity; enough for a full quick-profile campaign.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// A typed span-attribute value.
///
/// Producers attach what they actually measured — a count, a voltage, a
/// flag — instead of stringifying everything at the call site; the JSONL
/// and Chrome-trace exporters render each kind natively (strings quoted,
/// numbers and booleans bare). String attributes render byte-identically
/// to the pre-typed format, so existing golden streams are unaffected.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (rendered as a JSON string).
    Str(String),
    /// An unsigned integer attribute.
    U64(u64),
    /// A signed integer attribute.
    I64(i64),
    /// A float attribute (rendered in shortest-round-trip form).
    F64(f64),
    /// A boolean attribute.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<&String> for AttrValue {
    fn from(v: &String) -> Self {
        AttrValue::Str(v.clone())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Ring-assigned id, unique within one merged stream (1-based).
    pub id: u64,
    /// Parent span id, or `None` for a root.
    pub parent: Option<u64>,
    /// Span kind, e.g. `"campaign"`, `"cell"`, `"attempt"`,
    /// `"bus_set_vout"`, `"dpu_run"`.
    pub name: String,
    /// Start timestamp in simulated DPU cycles.
    pub start_cycle: u64,
    /// End timestamp in simulated DPU cycles (`>= start_cycle`).
    pub end_cycle: u64,
    /// Attribute pairs, sorted by key at export time.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Whether the span is an instant (zero-duration) event.
    pub fn is_instant(&self) -> bool {
        self.start_cycle == self.end_cycle
    }

    /// The value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The value of attribute `key` as a `u64`, if present and unsigned.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of attribute `key` as a `&str`, if present and a string.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(AttrValue::Str(v)) => Some(v.as_str()),
            _ => None,
        }
    }
}

/// A bounded buffer of completed spans plus a stack of open ones.
#[derive(Debug, Default)]
pub struct SpanRing {
    done: VecDeque<SpanRecord>,
    open: Vec<SpanRecord>,
    capacity: usize,
    next_id: u64,
    dropped: u64,
}

impl SpanRing {
    /// A ring with the [`DEFAULT_SPAN_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A ring bounded to `capacity` completed spans.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRing {
            done: VecDeque::new(),
            open: Vec::new(),
            capacity: capacity.max(1),
            next_id: 0,
            dropped: 0,
        }
    }

    /// Opens a span at `start_cycle`; returns its id. If `parent` is
    /// `None` the span parents onto the innermost open span, if any.
    pub fn begin(&mut self, name: &str, parent: Option<u64>, start_cycle: u64) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        let parent = parent.or_else(|| self.open.last().map(|s| s.id));
        self.open.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_cycle,
            end_cycle: start_cycle,
            attrs: Vec::new(),
        });
        id
    }

    /// Opens a *root* span at `start_cycle` — never auto-parented onto
    /// an open span, unlike [`SpanRing::begin`] with `parent: None`.
    /// Needed when many unrelated spans are open concurrently (e.g. one
    /// per in-flight serving request).
    pub fn begin_root(&mut self, name: &str, start_cycle: u64) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.open.push(SpanRecord {
            id,
            parent: None,
            name: name.to_string(),
            start_cycle,
            end_cycle: start_cycle,
            attrs: Vec::new(),
        });
        id
    }

    /// Records an instant (zero-duration) event span under `parent`.
    /// The event completes immediately; attach attributes via the
    /// returned id *before* the next `end`-ordering-sensitive read, or
    /// use [`SpanRing::attr_done`].
    pub fn instant(&mut self, name: &str, parent: Option<u64>, cycle: u64) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_cycle: cycle,
            end_cycle: cycle,
            attrs: Vec::new(),
        });
        id
    }

    /// Attaches an attribute to the open span `id` (no-op if closed).
    pub fn attr(&mut self, id: u64, key: &str, value: impl Into<AttrValue>) {
        if let Some(span) = self.open.iter_mut().find(|s| s.id == id) {
            span.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Attaches an attribute to an already-completed span `id` (no-op if
    /// the span was evicted). Used for instant events, which complete at
    /// creation.
    pub fn attr_done(&mut self, id: u64, key: &str, value: impl Into<AttrValue>) {
        if let Some(span) = self.done.iter_mut().rev().find(|s| s.id == id) {
            span.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Closes the open span `id` at `end_cycle`, moving it to the
    /// completed buffer. Unknown ids are ignored.
    pub fn end(&mut self, id: u64, end_cycle: u64) {
        if let Some(pos) = self.open.iter().position(|s| s.id == id) {
            let mut span = self.open.remove(pos);
            span.end_cycle = span.start_cycle.max(end_cycle);
            self.push(span);
        }
    }

    /// Inserts an already-completed span (id is reassigned by the ring).
    pub fn record(&mut self, mut span: SpanRecord) -> u64 {
        self.next_id += 1;
        span.id = self.next_id;
        let id = span.id;
        self.push(span);
        id
    }

    fn push(&mut self, span: SpanRecord) {
        if self.done.len() == self.capacity {
            self.done.pop_front();
            self.dropped += 1;
        }
        self.done.push_back(span);
    }

    /// Completed spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.done.iter()
    }

    /// The most recently completed span, if any.
    pub fn last(&self) -> Option<&SpanRecord> {
        self.done.back()
    }

    /// Number of completed spans currently held.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether no completed span is held.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Merges a cell-local ring into this one in plan order.
    ///
    /// Every absorbed span has its cycle timestamps shifted by
    /// `cycle_base`, its id remapped into this ring's id space, parent
    /// links rewritten to the remapped ids, and orphan roots re-parented
    /// under `parent` (typically the cell or attempt span). Called once
    /// per cell *in plan order*, this yields a stream independent of
    /// which worker ran which cell.
    pub fn absorb(&mut self, other: &SpanRing, parent: Option<u64>, cycle_base: u64) {
        self.absorb_records_with_id_span(other.spans(), other.next_id, parent, cycle_base);
        self.dropped += other.dropped;
    }

    /// [`SpanRing::absorb`] over a drained span list (e.g. a
    /// `SpanRing::take` result carried across a thread boundary). Ids in
    /// `records` must be self-consistent, as produced by one ring.
    pub fn absorb_records(&mut self, records: &[SpanRecord], parent: Option<u64>, cycle_base: u64) {
        let id_span = records.iter().map(|s| s.id).max().unwrap_or(0);
        self.absorb_records_with_id_span(records.iter(), id_span, parent, cycle_base);
    }

    fn absorb_records_with_id_span<'a>(
        &mut self,
        records: impl Iterator<Item = &'a SpanRecord>,
        id_span: u64,
        parent: Option<u64>,
        cycle_base: u64,
    ) {
        let base_id = self.next_id;
        for span in records {
            let mut span = span.clone();
            span.id += base_id;
            span.parent = match span.parent {
                Some(p) => Some(p + base_id),
                None => parent,
            };
            span.start_cycle += cycle_base;
            span.end_cycle += cycle_base;
            self.push(span);
        }
        self.next_id += id_span;
    }

    /// Drains all completed spans, oldest first, resetting the ring
    /// (dropped count and id counter are preserved).
    pub fn take(&mut self) -> Vec<SpanRecord> {
        self.done.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_links_parents() {
        let mut ring = SpanRing::new();
        let cell = ring.begin("cell", None, 0);
        let attempt = ring.begin("attempt", None, 10);
        let run = ring.begin("dpu_run", None, 20);
        ring.end(run, 120);
        ring.end(attempt, 130);
        ring.end(cell, 140);

        let spans: Vec<_> = ring.spans().cloned().collect();
        assert_eq!(spans.len(), 3);
        // Completed innermost-first.
        assert_eq!(spans[0].name, "dpu_run");
        assert_eq!(spans[0].parent, Some(attempt));
        assert_eq!(spans[1].parent, Some(cell));
        assert_eq!(spans[2].parent, None);
        assert_eq!(spans[0].cycles(), 100);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let mut ring = SpanRing::with_capacity(2);
        for i in 0..4u64 {
            let id = ring.begin("s", None, i);
            ring.end(id, i + 1);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        let starts: Vec<u64> = ring.spans().map(|s| s.start_cycle).collect();
        assert_eq!(starts, vec![2, 3]);
    }

    #[test]
    fn absorb_rebases_cycles_and_remaps_ids() {
        let mut cell_a = SpanRing::new();
        let a1 = cell_a.begin("attempt", None, 0);
        let r1 = cell_a.begin("dpu_run", None, 5);
        cell_a.end(r1, 50);
        cell_a.end(a1, 60);

        let mut cell_b = SpanRing::new();
        let b1 = cell_b.begin("attempt", None, 0);
        cell_b.end(b1, 40);

        let mut merged = SpanRing::new();
        let campaign = merged.begin("campaign", None, 0);
        merged.absorb(&cell_a, Some(campaign), 0);
        merged.absorb(&cell_b, Some(campaign), 60);

        let spans: Vec<_> = merged.spans().cloned().collect();
        merged.end(campaign, 100);
        assert_eq!(spans.len(), 3);
        // cell_a's spans keep internal parentage; roots hang off campaign.
        assert_eq!(spans[0].name, "dpu_run");
        assert_eq!(spans[1].name, "attempt");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, Some(campaign));
        // cell_b rebased by 60 cycles.
        assert_eq!(spans[2].start_cycle, 60);
        assert_eq!(spans[2].end_cycle, 100);
        assert_eq!(spans[2].parent, Some(campaign));
        // Ids are unique.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.push(campaign);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn attrs_attach_to_open_spans() {
        let mut ring = SpanRing::new();
        let id = ring.begin("cell", None, 0);
        ring.attr(id, "label", "vgg/b0");
        ring.end(id, 10);
        ring.attr(id, "late", "ignored");
        let span = ring.spans().next().unwrap();
        assert_eq!(
            span.attrs,
            vec![("label".into(), AttrValue::from("vgg/b0"))]
        );
    }

    #[test]
    fn typed_attrs_round_trip() {
        let mut ring = SpanRing::new();
        let id = ring.begin("route", None, 5);
        ring.attr(id, "board", 2u64);
        ring.attr(id, "degraded", false);
        ring.attr(id, "score", 1.5f64);
        ring.end(id, 5);
        let span = ring.last().unwrap();
        assert!(span.is_instant());
        assert_eq!(span.attr_u64("board"), Some(2));
        assert_eq!(span.attr("degraded"), Some(&AttrValue::Bool(false)));
        assert_eq!(span.attr("score"), Some(&AttrValue::F64(1.5)));
        assert_eq!(span.attr_str("board"), None, "board is not a string");
        assert_eq!(span.attr("missing"), None);
    }

    #[test]
    fn begin_root_ignores_the_open_stack_and_instants_complete_at_once() {
        let mut ring = SpanRing::new();
        let outer = ring.begin("request", None, 0);
        let root = ring.begin_root("request", 3);
        let hit = ring.instant("route", Some(root), 3);
        ring.attr_done(hit, "board", 1u64);
        assert_eq!(ring.len(), 1, "instant completes immediately");
        assert_eq!(ring.last().unwrap().parent, Some(root));
        assert_eq!(ring.last().unwrap().attr_u64("board"), Some(1));
        ring.end(root, 9);
        ring.end(outer, 10);
        let spans: Vec<_> = ring.spans().cloned().collect();
        assert_eq!(spans[1].parent, None, "begin_root never auto-parents");
        assert_eq!(spans[2].parent, None);
    }
}

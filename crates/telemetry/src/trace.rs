//! Chrome trace-event (`trace.json`) exporter.
//!
//! Renders a span stream in the [Trace Event Format] consumed by
//! `chrome://tracing` and [Perfetto], so a fleet-serving timeline opens
//! directly in a real trace viewer: one track (`tid`) per board plus
//! router and governor tracks, complete events for timed spans, instant
//! events for zero-duration markers, and span attributes as `args`.
//!
//! Timestamps map **reference cycles → microseconds** through exact
//! integer arithmetic: `ns = cycles * 1000 / f_mhz`, rendered as a
//! fixed-point microsecond value with three decimals. No float
//! formatting is involved, so the exported bytes are a pure function of
//! the span stream — the same determinism contract as the JSONL and
//! Prometheus exporters.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::export::json_attrs;
use crate::span::SpanRecord;

/// One named track (thread row) in the rendered trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTrack {
    /// Thread id the track renders under (rows sort by tid).
    pub tid: u64,
    /// Human-readable track name (`thread_name` metadata).
    pub name: String,
}

impl TraceTrack {
    /// A track.
    pub fn new(tid: u64, name: &str) -> Self {
        TraceTrack {
            tid,
            name: name.to_string(),
        }
    }
}

/// Converts a cycle count at `f_mhz` to a fixed-point microsecond string
/// with three decimals, via exact integer math (`ns = cycles * 1000 /
/// f_mhz`, truncating).
pub fn cycles_to_us(cycles: u64, f_mhz: u64) -> String {
    let ns = u128::from(cycles) * 1000 / u128::from(f_mhz.max(1));
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders `spans` as a Chrome trace-event JSON document.
///
/// * `process` names the single rendered process (pid 0).
/// * `tracks` declares the thread rows; each emits `thread_name` and
///   `thread_sort_index` metadata so viewers order them by tid.
/// * `tid_of` assigns each span to a track.
/// * `f_mhz` is the reference-clock frequency used to map cycles to
///   trace microseconds.
///
/// Spans with `start_cycle == end_cycle` render as thread-scoped instant
/// events (`"ph":"i"`); all others as complete events (`"ph":"X"`). Span
/// id and parent id ride in `args` (keys `"id"` / `"parent"`) next to
/// the span's own attributes, preserving the tree for post-processing.
/// One event per line; ends with a trailing newline.
pub fn export_chrome_trace(
    spans: &[SpanRecord],
    process: &str,
    tracks: &[TraceTrack],
    tid_of: &dyn Fn(&SpanRecord) -> u64,
    f_mhz: u64,
) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len() + tracks.len() * 2 + 1);
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
        crate::export::json_escape(process)
    ));
    for track in tracks {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            track.tid,
            crate::export::json_escape(&track.name)
        ));
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{}}}}}",
            track.tid, track.tid
        ));
    }
    for span in spans {
        let tid = tid_of(span);
        let ts = cycles_to_us(span.start_cycle, f_mhz);
        let mut args = vec![("id".to_string(), crate::span::AttrValue::U64(span.id))];
        if let Some(parent) = span.parent {
            args.push(("parent".to_string(), crate::span::AttrValue::U64(parent)));
        }
        args.extend(span.attrs.iter().cloned());
        let args = json_attrs(&args);
        if span.is_instant() {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"args\":{args}}}",
                crate::export::json_escape(&span.name)
            ));
        } else {
            let dur = cycles_to_us(span.cycles(), f_mhz);
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{args}}}",
                crate::export::json_escape(&span.name)
            ));
        }
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        out.push_str(event);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRing;

    #[test]
    fn cycle_mapping_is_exact_integer_math() {
        assert_eq!(cycles_to_us(0, 333), "0.000");
        assert_eq!(cycles_to_us(333, 333), "1.000");
        // 100 cycles at 333 MHz = 300.3 ns, truncating to 0.300 us.
        assert_eq!(cycles_to_us(100, 333), "0.300");
        assert_eq!(cycles_to_us(1, 333), "0.003");
        // Large counts do not overflow (u128 intermediate).
        assert_eq!(cycles_to_us(u64::MAX, 333), {
            let ns = u128::from(u64::MAX) * 1000 / 333;
            format!("{}.{:03}", ns / 1000, ns % 1000)
        });
    }

    #[test]
    fn trace_has_metadata_then_events_and_valid_framing() {
        let mut ring = SpanRing::new();
        let req = ring.begin_root("request", 0);
        let hit = ring.instant("route", Some(req), 0);
        ring.attr_done(hit, "board", 1u64);
        ring.end(req, 666);
        let spans: Vec<SpanRecord> = ring.take();

        let tracks = [TraceTrack::new(0, "router"), TraceTrack::new(2, "board 0")];
        let out = export_chrome_trace(&spans, "redvolt-serve", &tracks, &|_| 0, 333);
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(out.ends_with("]}\n"));
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("\"thread_name\",\"args\":{\"name\":\"board 0\"}"));
        // The instant event renders with ph:i, the timed span with ph:X.
        assert!(out.contains("\"name\":\"route\",\"ph\":\"i\""));
        assert!(out.contains("\"name\":\"request\",\"ph\":\"X\""));
        assert!(out.contains("\"ts\":0.000,\"dur\":2.000"), "{out}");
        // Parent linkage rides in args.
        assert!(out.contains("\"args\":{\"board\":1,\"id\":2,\"parent\":1}"));
        // Every line in the events array is comma-terminated except the last.
        let body: Vec<&str> = out.lines().collect();
        assert_eq!(body.last(), Some(&"]}"));
    }

    #[test]
    fn export_is_deterministic() {
        let mut ring = SpanRing::new();
        let id = ring.begin_root("batch", 10);
        ring.attr(id, "events", 3u64);
        ring.end(id, 500);
        let spans: Vec<SpanRecord> = ring.take();
        let tracks = [TraceTrack::new(2, "board 0")];
        let a = export_chrome_trace(&spans, "p", &tracks, &|_| 2, 333);
        let b = export_chrome_trace(&spans, "p", &tracks, &|_| 2, 333);
        assert_eq!(a, b);
    }
}

//! Live campaign progress reporting.
//!
//! The one deliberately wall-clock component of the crate: a
//! [`ProgressReporter`] counts cells as they finish and periodically
//! writes a status line to **stderr** — which the determinism contract
//! explicitly excludes (timing already goes there). The science payload
//! on stdout and in `--metrics-out`/`--prom-out` files is untouched.
//!
//! The ETA comes from *simulated cycle* costs of completed cells scaled
//! by the observed wall-clock cycle rate: with `c` cycles retired in `t`
//! seconds and `r` cells remaining at a mean cost of `c/done` cycles,
//! `eta ≈ r · (c/done) / (c/t)`. This self-corrects as slow sweep cells
//! and cheap measure cells mix.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Default, Clone, Copy)]
struct ProgressState {
    done: usize,
    aborted: usize,
    retried: usize,
    cycles_done: u64,
}

/// Periodic campaign progress lines on stderr.
#[derive(Debug)]
pub struct ProgressReporter {
    total_cells: usize,
    interval: Duration,
    started: Instant,
    state: Mutex<(ProgressState, Option<Instant>)>,
}

impl ProgressReporter {
    /// A reporter for `total_cells` cells emitting at most once per
    /// `interval` (an interval of zero emits on every completed cell).
    pub fn new(total_cells: usize, interval: Duration) -> Self {
        ProgressReporter {
            total_cells,
            interval,
            started: Instant::now(),
            // No last-emit time yet, so the first completed cell always
            // produces a line.
            state: Mutex::new((ProgressState::default(), None)),
        }
    }

    /// Records one finished cell and emits a progress line if the
    /// reporting interval has elapsed.
    ///
    /// `aborted` marks cells whose outcome is `Aborted`; `retries` is the
    /// number of extra supervised attempts the cell needed; `cycles` is
    /// its simulated-cycle cost.
    pub fn cell_done(&self, aborted: bool, retries: u32, cycles: u64) {
        let line = {
            let mut guard = self.state.lock().expect("progress lock");
            let (state, last_emit) = &mut *guard;
            state.done += 1;
            if aborted {
                state.aborted += 1;
            }
            if retries > 0 {
                state.retried += 1;
            }
            state.cycles_done += cycles;
            let now = Instant::now();
            let due = match *last_emit {
                None => true,
                Some(at) => now.duration_since(at) >= self.interval,
            };
            if due {
                *last_emit = Some(now);
                Some(self.render(*state, now.duration_since(self.started)))
            } else {
                None
            }
        };
        if let Some(line) = line {
            eprintln!("{line}");
        }
    }

    /// Emits the final summary line unconditionally.
    pub fn finish(&self) {
        let guard = self.state.lock().expect("progress lock");
        let (state, _) = *guard;
        drop(guard);
        eprintln!("{}", self.render(state, self.started.elapsed()));
    }

    /// Renders one status line from a state snapshot; pure so tests can
    /// pin the format without racing the wall clock.
    fn render(&self, state: ProgressState, elapsed: Duration) -> String {
        let mut line = format!(
            "[progress] {}/{} cells done ({} aborted, {} retried) in {:.1}s",
            state.done,
            self.total_cells,
            state.aborted,
            state.retried,
            elapsed.as_secs_f64(),
        );
        if let Some(eta) = eta_secs(state, self.total_cells, elapsed) {
            line.push_str(&format!(", eta {:.0}s", eta));
        }
        line
    }
}

/// ETA in seconds from completed-cell cycle costs, or `None` before any
/// cell has finished (or once the campaign is done).
fn eta_secs(state: ProgressState, total_cells: usize, elapsed: Duration) -> Option<f64> {
    let remaining = total_cells.checked_sub(state.done)?;
    if remaining == 0 || state.done == 0 || state.cycles_done == 0 {
        return None;
    }
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return None;
    }
    let mean_cycles = state.cycles_done as f64 / state.done as f64;
    let cycles_per_sec = state.cycles_done as f64 / secs;
    Some(remaining as f64 * mean_cycles / cycles_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_scales_with_remaining_cells() {
        let state = ProgressState {
            done: 4,
            aborted: 0,
            retried: 0,
            cycles_done: 4_000,
        };
        // 4 cells in 8s at 500 cycles/s mean 1000 cycles each ⇒ each
        // remaining cell costs 2s; 6 remain ⇒ 12s.
        let eta = eta_secs(state, 10, Duration::from_secs(8)).unwrap();
        assert!((eta - 12.0).abs() < 1e-9, "eta = {eta}");
    }

    #[test]
    fn eta_absent_without_signal() {
        let zero = ProgressState::default();
        assert_eq!(eta_secs(zero, 10, Duration::from_secs(1)), None);
        let done = ProgressState {
            done: 10,
            cycles_done: 100,
            ..ProgressState::default()
        };
        assert_eq!(eta_secs(done, 10, Duration::from_secs(1)), None);
    }

    #[test]
    fn render_pins_line_shape() {
        let reporter = ProgressReporter::new(10, Duration::from_secs(5));
        let state = ProgressState {
            done: 4,
            aborted: 1,
            retried: 2,
            cycles_done: 4_000,
        };
        let line = reporter.render(state, Duration::from_secs(8));
        assert_eq!(
            line,
            "[progress] 4/10 cells done (1 aborted, 2 retried) in 8.0s, eta 12s"
        );
    }

    #[test]
    fn counters_accumulate() {
        let reporter = ProgressReporter::new(3, Duration::from_secs(3600));
        reporter.cell_done(false, 0, 100);
        reporter.cell_done(true, 2, 200);
        let (state, _) = *reporter.state.lock().unwrap();
        assert_eq!(state.done, 2);
        assert_eq!(state.aborted, 1);
        assert_eq!(state.retried, 1);
        assert_eq!(state.cycles_done, 300);
    }
}

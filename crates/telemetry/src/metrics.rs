//! Lock-cheap metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s over
//! atomics: the registry's mutex is taken only to register or enumerate,
//! never on the hot update path. Histogram sums are accumulated in
//! integer micro-units so concurrent updates stay exactly associative —
//! no float-addition ordering can leak scheduling into the exported
//! bytes.
//!
//! Determinism contract: metric *updates* must carry values that are a
//! pure function of `(seed, plan)` — counts, cycles, simulated voltages.
//! Enumeration ([`Registry::samples`]) is sorted by `(name, labels)`, so
//! registration order (which may depend on scheduling) never shows.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Scale used to accumulate histogram sums in integer micro-units.
const SUM_SCALE: f64 = 1e6;

/// A fixed-bin histogram with cumulative-friendly bucket upper bounds.
///
/// `bounds` are the finite upper bounds (`le`); an implicit `+Inf` bucket
/// catches everything above the last bound. Bucket counts are
/// *per-bucket* (not cumulative); the Prometheus exporter cumulates.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations in micro-units, so concurrent adds commute
    /// exactly (integer addition is associative; float addition is not).
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A histogram with the given finite upper bounds (must be strictly
    /// increasing; an `+Inf` bucket is implicit).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micros = (v.max(0.0) * SUM_SCALE).round() as u64;
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// The finite upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (one per finite bound, plus the `+Inf` bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (reconstructed from the micro-unit
    /// accumulator, so it is exactly reproducible across schedules).
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket that holds the target rank — the standard
    /// fixed-bin estimator the serving layer uses for p50/p99 latency
    /// gauges. Returns 0.0 for an empty histogram; observations in the
    /// `+Inf` bucket clamp to the last finite bound (the estimator
    /// cannot see past its bins). Deterministic for fixed counts.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if (next as f64) >= target {
                let Some(&hi) = self.bounds.get(i) else {
                    // +Inf bucket: clamp to the last finite bound.
                    return self.bounds.last().copied().unwrap_or(0.0);
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let into = (target - cumulative as f64).max(0.0) / c as f64;
                return lo + (hi - lo) * into.min(1.0);
            }
            cumulative = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// Identity of a metric: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name (Prometheus-style, e.g. `redvolt_bus_retries_total`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time reading of one metric, for exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric identity.
    pub id: MetricId,
    /// The reading.
    pub value: SampleValue,
}

/// The value part of a [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading: finite bounds, per-bucket counts (`bounds.len()
    /// + 1` entries, last is `+Inf`), total count, and sum.
    Histogram {
        /// Finite upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket (non-cumulative) counts.
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
    },
}

/// Registry of named metrics. Cloneable handles do the hot-path updates;
/// the internal mutex guards only registration and enumeration.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricId, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// Returns (registering on first use) the histogram `name{labels}`
    /// with the given finite bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind or with
    /// different bounds.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => {
                assert_eq!(h.bounds(), bounds, "{name} re-registered with new bounds");
                Arc::clone(h)
            }
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// Snapshot of every metric, sorted by `(name, labels)` — the
    /// deterministic enumeration the exporters render.
    pub fn samples(&self) -> Vec<Sample> {
        let metrics = self.metrics.lock().expect("registry lock");
        metrics
            .iter()
            .map(|(id, metric)| Sample {
                id: id.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("registry lock").len()
    }

    /// Whether no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("hits_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same id returns the same underlying counter.
        reg.counter("hits_total", &[]).inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("vccint_mv", &[("cell", "vgg/b0")]);
        g.set(602.5);
        assert_eq!(g.get(), 602.5);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5556.5);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for v in [5.0, 15.0, 15.0, 35.0] {
            h.observe(v);
        }
        // Rank 2 of 4 lands at the end of the second bucket's first half.
        assert_eq!(h.quantile(0.25), 10.0);
        assert_eq!(h.quantile(0.5), 15.0);
        assert_eq!(h.quantile(1.0), 40.0);
        // +Inf observations clamp to the last finite bound.
        h.observe(1e9);
        assert_eq!(h.quantile(0.999), 40.0);
    }

    #[test]
    fn quantile_on_a_single_bucket_histogram() {
        let h = Histogram::new(&[100.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty");
        for v in [10.0, 20.0, 30.0, 40.0] {
            h.observe(v);
        }
        // All mass in the one finite bucket: interpolation runs 0..100.
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.25), 25.0);
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(1.0), 100.0);
        // One overflow observation: the top quantile clamps to the only
        // finite bound rather than inventing mass past the bins.
        h.observe(1e6);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn quantile_on_an_overflow_saturated_histogram() {
        // Every observation lands in the implicit +Inf bucket: the
        // estimator cannot see past its bins, so every quantile clamps
        // to the last finite bound instead of returning garbage.
        let h = Histogram::new(&[10.0, 20.0]);
        for _ in 0..5 {
            h.observe(1e9);
        }
        assert_eq!(h.bucket_counts(), vec![0, 0, 5]);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 20.0, "q={q}");
        }
        // Degenerate zero-bound histogram saturated the same way.
        let h = Histogram::new(&[]);
        h.observe(1.0);
        assert_eq!(h.quantile(0.5), 0.0, "no finite bound to clamp to");
    }

    #[test]
    fn samples_are_sorted_regardless_of_registration_order() {
        let reg = Registry::new();
        reg.counter("z_total", &[]).inc();
        reg.gauge("a_mv", &[("cell", "b")]).set(1.0);
        reg.gauge("a_mv", &[("cell", "a")]).set(2.0);
        let names: Vec<String> = reg
            .samples()
            .iter()
            .map(|s| format!("{}{:?}", s.id.name, s.id.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let a = MetricId::new("m", &[("x", "1"), ("y", "2")]);
        let b = MetricId::new("m", &[("y", "2"), ("x", "1")]);
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let reg = Registry::new();
        let c = reg.counter("n_total", &[]);
        let h = reg.histogram("v", &[], &[10.0]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(f64::from(i % 20));
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        // 0..=10 land in the first bucket: 11 of every 20 values.
        assert_eq!(h.bucket_counts(), vec![4 * 50 * 11, 4 * 50 * 9]);
        // Integer micro-unit accumulation: the sum is exact.
        let per_thread: f64 = (0..1000).map(|i| f64::from(i % 20)).sum();
        assert_eq!(h.sum(), 4.0 * per_thread);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_are_rejected() {
        let reg = Registry::new();
        reg.counter("m", &[]);
        reg.gauge("m", &[]);
    }
}

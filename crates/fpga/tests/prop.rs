//! Property-based tests for the board physics models.

use proptest::prelude::*;
use redvolt_fpga::board::Zcu102Board;
use redvolt_fpga::power::{LoadProfile, PowerModel};
use redvolt_fpga::thermal::ThermalModel;
use redvolt_fpga::timing::TimingModel;
use redvolt_fpga::variation::BoardCorner;
use redvolt_pmbus::adapter::PmbusAdapter;

fn load_strategy() -> impl Strategy<Value = LoadProfile> {
    (100.0f64..400.0, 0.0f64..1.2, 0.3f64..1.0).prop_map(|(f_mhz, ops, energy)| LoadProfile {
        f_mhz,
        ops_rate_norm: ops,
        energy_per_op_factor: energy,
        critical_path_factor: 1.0,
    })
}

proptest! {
    #[test]
    fn power_is_monotone_in_voltage_for_any_load(load in load_strategy(), sample in 0u32..20) {
        let pm = PowerModel::new(BoardCorner::for_sample(sample));
        let mut prev = pm.vccint_w(530.0, 40.0, &load);
        let mut mv = 540.0;
        while mv <= 850.0 {
            let p = pm.vccint_w(mv, 40.0, &load);
            prop_assert!(p >= prev, "power fell at {mv} mV");
            prev = p;
            mv += 10.0;
        }
    }

    #[test]
    fn power_is_monotone_in_activity(mv in 540.0f64..850.0, sample in 0u32..10) {
        let pm = PowerModel::new(BoardCorner::for_sample(sample));
        let at = |ops: f64| pm.vccint_w(mv, 40.0, &LoadProfile {
            f_mhz: 333.0,
            ops_rate_norm: ops,
            energy_per_op_factor: 1.0,
            critical_path_factor: 1.0,
        });
        prop_assert!(at(0.0) < at(0.5));
        prop_assert!(at(0.5) < at(1.0));
    }

    #[test]
    fn power_is_monotone_in_temperature(mv in 540.0f64..850.0, sample in 0u32..10) {
        let pm = PowerModel::new(BoardCorner::for_sample(sample));
        let load = LoadProfile::nominal();
        prop_assert!(pm.vccint_w(mv, 34.0, &load) < pm.vccint_w(mv, 52.0, &load));
    }

    #[test]
    fn fmax_is_monotone_in_voltage(sample in 0u32..20, temp in 30.0f64..55.0) {
        let tm = TimingModel::new(BoardCorner::for_sample(sample));
        let mut prev = tm.fmax_true_mhz(525.0, temp);
        let mut mv = 530.0;
        while mv <= 850.0 {
            let f = tm.fmax_true_mhz(mv, temp);
            prop_assert!(f >= prev - 1e-9, "Fmax fell at {mv} mV");
            prev = f;
            mv += 5.0;
        }
    }

    #[test]
    fn slack_deficit_is_monotone_in_frequency(
        mv in 530.0f64..700.0,
        sample in 0u32..10,
    ) {
        let tm = TimingModel::new(BoardCorner::for_sample(sample));
        let d200 = tm.slack_deficit(mv, 200.0, 34.0);
        let d333 = tm.slack_deficit(mv, 333.0, 34.0);
        prop_assert!(d333 >= d200);
    }

    #[test]
    fn crash_is_monotone_no_resurrection(sample in 0u32..10) {
        // Once a board stops responding going down in voltage, it stays
        // unresponsive at every lower voltage.
        let tm = TimingModel::new(BoardCorner::for_sample(sample));
        let mut alive_region_ended = false;
        let mut mv = 850.0;
        while mv >= 480.0 {
            let responds = tm.responds(mv, 333.0, 34.0, 0.64);
            if alive_region_ended {
                prop_assert!(!responds, "board resurrected at {mv} mV");
            }
            if !responds {
                alive_region_ended = true;
            }
            mv -= 5.0;
        }
    }

    #[test]
    fn junction_temperature_monotone_in_fan_duty(duty1 in 0.0f64..50.0, duty2 in 50.0f64..100.0) {
        let pm = PowerModel::default();
        let mut t = ThermalModel::new();
        let load = LoadProfile::nominal();
        t.set_fan_duty(duty1);
        let hot = t.junction_c(&pm, 850.0, 850.0, &load);
        t.set_fan_duty(duty2);
        let cool = t.junction_c(&pm, 850.0, 850.0, &load);
        prop_assert!(cool <= hot + 1e-9);
    }

    #[test]
    fn power_cycle_restores_nominal_from_any_reachable_crashed_state(
        sample in 0u32..10,
        target_mv in 420u32..=538,
        duty in 0.0f64..100.0,
        tight_margin in 0.64f64..0.75,
        drop_bram in any::<bool>(),
    ) {
        use redvolt_fpga::calib;

        // Reach a crashed state the way campaigns do: fan set, workload
        // published, margin tightened, rails driven down over PMBus until
        // the board hangs.
        let mut board = Zcu102Board::new(sample).with_exact_telemetry();
        let mut host = PmbusAdapter::new();
        board.thermal_mut().set_fan_duty(duty);
        board.set_crash_slack_ratio(tight_margin);
        board.set_load(LoadProfile::nominal());
        let v = f64::from(target_mv) / 1000.0;
        let _ = host.set_vout(&mut board, 0x13, v);
        if drop_bram {
            let _ = host.set_vout(&mut board, 0x14, v);
        }
        prop_assume!(board.is_crashed());

        let reboots_before = board.power_cycles();
        board.power_cycle();

        prop_assert!(!board.is_crashed());
        prop_assert_eq!(board.vccint_mv(), calib::VNOM_MV);
        prop_assert_eq!(board.vccbram_mv(), calib::VNOM_MV);
        prop_assert_eq!(board.crash_slack_ratio(), calib::CRASH_SLACK_RATIO);
        prop_assert_eq!(board.load(), LoadProfile::idle());
        prop_assert_eq!(board.power_cycles(), reboots_before + 1);
        // The rails answer PMBus again at nominal.
        let back = host.read_vout(&mut board, 0x13).unwrap();
        prop_assert!((back - calib::VNOM_MV / 1000.0).abs() < 1e-3);
        // Thermal state matches a fresh board with the same fan setting
        // (the fan is external to the FPGA and survives the cycle).
        let mut fresh = Zcu102Board::new(sample).with_exact_telemetry();
        fresh.thermal_mut().set_fan_duty(duty);
        prop_assert_eq!(board.junction_c(), fresh.junction_c());
    }

    #[test]
    fn pmbus_vout_round_trips_for_any_window_voltage(mv in 400u32..=950) {
        let mut board = Zcu102Board::new(0).with_exact_telemetry();
        let mut host = PmbusAdapter::new();
        let v = f64::from(mv) / 1000.0;
        host.set_vout(&mut board, 0x13, v).unwrap();
        // An idle board never hangs, so the read must succeed.
        let back = host.read_vout(&mut board, 0x13).unwrap();
        prop_assert!((back - v).abs() < 1e-3);
    }
}

//! Calibrated Xilinx ZCU102 board simulator.
//!
//! The DSN-2020 undervolting study measures three real ZCU102 boards; this
//! crate replaces them with a physics-based, measurement-calibrated model
//! so the paper's entire methodology can run in software:
//!
//! * [`resources`] — the XCZU9EG programmable-logic inventory and the
//!   B4096 DPU's utilization of it.
//! * [`rails`] — the PMBus-addressable voltage-rail tree (`VCCINT` at
//!   `0x13`, `VCCBRAM` at `0x14`, fixed off-focus rails).
//! * [`variation`] — per-board process corners reproducing the paper's
//!   ΔVmin ≈ 31 mV / ΔVcrash ≈ 18 mV spread across samples.
//! * [`timing`] — the multi-path `Fmax(V, T)` surface with inverse thermal
//!   dependence; source of slack deficits and crash behaviour.
//! * [`power`] — activity/clock/fixed/leakage power components anchored to
//!   the paper's 12.59 W nominal, ×2.6 guardband gain and Table-2 column.
//! * [`thermal`] — fan-duty → junction-temperature model (34–52 °C span).
//! * [`board`] — [`board::Zcu102Board`], the stateful board with PMBus
//!   front-end and crash latch.
//! * [`calib`] — every calibration constant, with provenance.
//! * [`ecc`] — the built-in SECDED(72,64) BRAM code (§4.1's reason BRAM
//!   survives deep undervolting) and the periodic scrubbing task.
//!
//! # Examples
//!
//! ```
//! use redvolt_fpga::board::Zcu102Board;
//! use redvolt_fpga::power::LoadProfile;
//! use redvolt_pmbus::adapter::PmbusAdapter;
//!
//! # fn main() -> Result<(), redvolt_pmbus::PmbusError> {
//! let mut board = Zcu102Board::new(0);
//! board.set_load(LoadProfile::nominal());
//!
//! let mut host = PmbusAdapter::new();
//! host.set_vout(&mut board, 0x13, 0.570)?; // eliminate the guardband
//! let power = host.read_pout(&mut board, 0x13)?;
//! assert!(power < 5.5); // ≈12.6 W / 2.6
//! # Ok(())
//! # }
//! ```

pub mod board;
pub mod calib;
pub mod ecc;
pub mod power;
pub mod rails;
pub mod resources;
pub mod thermal;
pub mod timing;
pub mod variation;

//! Programmable-logic resource inventory and utilization tracking.
//!
//! Models the XCZU9EG device on the ZCU102: the paper's baseline design
//! instantiates three B4096 DPU cores, each using 24.3 % of BRAMs and
//! 25.6 % of DSPs, for a total utilization above 75 % on both.

use std::fmt;

/// Resource inventory of a programmable-logic device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceResources {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flops.
    pub flip_flops: u32,
    /// DSP48 slices.
    pub dsps: u32,
    /// Block RAM capacity in kilobits.
    pub bram_kbits: u32,
    /// Number of 36 Kb BRAM blocks.
    pub bram_blocks: u32,
}

impl DeviceResources {
    /// The Zynq UltraScale+ XCZU9EG device populated on the ZCU102
    /// (600 K LUTs, 2520 DSPs, 32.1 Mb BRAM; §3.3.1).
    pub fn xczu9eg() -> Self {
        DeviceResources {
            luts: 600_000,
            flip_flops: 548_160,
            dsps: 2520,
            bram_kbits: 32_100,
            bram_blocks: 912,
        }
    }
}

/// Absolute resource demand of one mapped block (e.g. one DPU core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceDemand {
    /// Look-up tables required.
    pub luts: u32,
    /// Flip-flops required.
    pub flip_flops: u32,
    /// DSP slices required.
    pub dsps: u32,
    /// BRAM kilobits required.
    pub bram_kbits: u32,
}

impl ResourceDemand {
    /// Demand of one B4096 DPU core: 24.3 % of the device's BRAMs and
    /// 25.6 % of its DSPs (§3.1), with LUT/FF demand from the DPU product
    /// guide's B4096 row (≈ 9 % LUTs).
    pub fn dpu_b4096(device: &DeviceResources) -> Self {
        ResourceDemand {
            luts: (device.luts as f64 * 0.088) as u32,
            flip_flops: (device.flip_flops as f64 * 0.18) as u32,
            dsps: (device.dsps as f64 * 0.256) as u32,
            bram_kbits: (device.bram_kbits as f64 * 0.243) as u32,
        }
    }

    /// Component-wise sum of two demands.
    pub fn plus(self, other: ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            luts: self.luts + other.luts,
            flip_flops: self.flip_flops + other.flip_flops,
            dsps: self.dsps + other.dsps,
            bram_kbits: self.bram_kbits + other.bram_kbits,
        }
    }
}

/// Utilization of a device by a set of placed blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Fraction of LUTs in use (0..=1).
    pub luts: f64,
    /// Fraction of flip-flops in use.
    pub flip_flops: f64,
    /// Fraction of DSPs in use.
    pub dsps: f64,
    /// Fraction of BRAM capacity in use.
    pub bram: f64,
}

impl Utilization {
    /// Computes utilization of `demand` on `device`.
    pub fn of(demand: ResourceDemand, device: &DeviceResources) -> Self {
        Utilization {
            luts: f64::from(demand.luts) / f64::from(device.luts),
            flip_flops: f64::from(demand.flip_flops) / f64::from(device.flip_flops),
            dsps: f64::from(demand.dsps) / f64::from(device.dsps),
            bram: f64::from(demand.bram_kbits) / f64::from(device.bram_kbits),
        }
    }

    /// Whether the demand fits the device (no category over 100 %).
    pub fn fits(&self) -> bool {
        self.luts <= 1.0 && self.flip_flops <= 1.0 && self.dsps <= 1.0 && self.bram <= 1.0
    }

    /// The most-utilized category's fraction.
    pub fn peak(&self) -> f64 {
        self.luts.max(self.flip_flops).max(self.dsps).max(self.bram)
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:.1}% FF {:.1}% DSP {:.1}% BRAM {:.1}%",
            self.luts * 100.0,
            self.flip_flops * 100.0,
            self.dsps * 100.0,
            self.bram * 100.0
        )
    }
}

/// How many blocks of `demand` fit on `device`.
pub fn max_instances(demand: ResourceDemand, device: &DeviceResources) -> u32 {
    let mut n = 0u32;
    let mut total = ResourceDemand::default();
    loop {
        let next = total.plus(demand);
        if !Utilization::of(next, device).fits() {
            return n;
        }
        total = next;
        n += 1;
        if n > 1_000 {
            return n; // degenerate zero-demand input
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xczu9eg_matches_paper_inventory() {
        let d = DeviceResources::xczu9eg();
        assert_eq!(d.luts, 600_000);
        assert_eq!(d.dsps, 2520);
        assert_eq!(d.bram_kbits, 32_100);
    }

    #[test]
    fn one_b4096_uses_paper_fractions() {
        let d = DeviceResources::xczu9eg();
        let u = Utilization::of(ResourceDemand::dpu_b4096(&d), &d);
        assert!((u.dsps - 0.256).abs() < 0.001, "{u}");
        assert!((u.bram - 0.243).abs() < 0.001, "{u}");
    }

    #[test]
    fn exactly_three_b4096_fit() {
        // §3.1: "a maximum of three B4096 DPUs can be used".
        let d = DeviceResources::xczu9eg();
        assert_eq!(max_instances(ResourceDemand::dpu_b4096(&d), &d), 3);
    }

    #[test]
    fn three_b4096_exceed_75_percent() {
        let d = DeviceResources::xczu9eg();
        let one = ResourceDemand::dpu_b4096(&d);
        let three = one.plus(one).plus(one);
        let u = Utilization::of(three, &d);
        assert!(u.dsps > 0.75 && u.bram > 0.72, "{u}");
        assert!(u.fits());
    }

    #[test]
    fn peak_is_max_category() {
        let u = Utilization {
            luts: 0.1,
            flip_flops: 0.2,
            dsps: 0.9,
            bram: 0.5,
        };
        assert_eq!(u.peak(), 0.9);
    }
}

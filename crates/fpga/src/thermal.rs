//! Fan and package thermal model.
//!
//! The paper regulates on-board temperature between 34 °C and 52 °C by
//! commanding the fan over PMBus and reading the temperature sensor back
//! over the same bus (§7). We model the junction temperature as
//! `T = T_base + R_th(fan duty) · P_onchip`, iterated to a fixed point with
//! the power model (leakage rises with temperature, which raises
//! temperature — the loop converges in a few iterations because the
//! coupling is weak).
//!
//! Two operating modes:
//!
//! * **Fan mode** — physical behaviour: temperature follows power and duty.
//! * **Forced mode** — an environmental-chamber override that pins the
//!   junction temperature, used by the temperature campaigns to hold the
//!   paper's fixed 34–52 °C set-points across a voltage sweep (the paper
//!   re-regulates the fan at every point to achieve the same).

use crate::calib;
use crate::power::{LoadProfile, PowerModel};

/// Thermal state of the board.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    /// Commanded fan duty, percent.
    fan_duty_pct: f64,
    /// Forced junction temperature, if in chamber mode.
    forced_c: Option<f64>,
}

impl ThermalModel {
    /// Creates the model at full fan duty (the board's power-on default).
    pub fn new() -> Self {
        ThermalModel {
            fan_duty_pct: 100.0,
            forced_c: None,
        }
    }

    /// Sets the fan duty in percent and returns to physical (fan) mode.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `0..=100`.
    pub fn set_fan_duty(&mut self, duty: f64) {
        assert!((0.0..=100.0).contains(&duty), "fan duty out of range");
        self.fan_duty_pct = duty;
        self.forced_c = None;
    }

    /// Current fan duty in percent.
    pub fn fan_duty(&self) -> f64 {
        self.fan_duty_pct
    }

    /// Pins the junction temperature (environmental-chamber mode).
    pub fn force_temperature(&mut self, temp_c: f64) {
        self.forced_c = Some(temp_c);
    }

    /// Returns to physical fan mode.
    pub fn release_forced(&mut self) {
        self.forced_c = None;
    }

    /// Whether the chamber override is active.
    pub fn is_forced(&self) -> bool {
        self.forced_c.is_some()
    }

    /// Package thermal resistance at the current duty, °C/W.
    pub fn r_th(&self) -> f64 {
        let t = self.fan_duty_pct / 100.0;
        calib::R_TH_FAN_MIN_CW + (calib::R_TH_FAN_MAX_CW - calib::R_TH_FAN_MIN_CW) * t
    }

    /// Steady-state junction temperature (°C) under the given electrical
    /// operating point, solving the weak temperature↔leakage coupling by
    /// fixed-point iteration.
    pub fn junction_c(
        &self,
        power: &PowerModel,
        vccint_mv: f64,
        vccbram_mv: f64,
        load: &LoadProfile,
    ) -> f64 {
        if let Some(t) = self.forced_c {
            return t;
        }
        let r = self.r_th();
        let mut t = calib::T_BASE_C + r * calib::P_ONCHIP_NOM_W * 0.5; // initial guess
        for _ in 0..20 {
            let p = power.on_chip_w(vccint_mv, vccbram_mv, t, load);
            let next = calib::T_BASE_C + r * p;
            if (next - t).abs() < 1e-6 {
                return next;
            }
            t = next;
        }
        t
    }

    /// Finds the fan duty that achieves `target_c` at the given operating
    /// point, or `None` if the target is outside the reachable span.
    /// This is the paper's fan-based temperature regulation loop.
    pub fn duty_for_target(
        &self,
        power: &PowerModel,
        target_c: f64,
        vccint_mv: f64,
        vccbram_mv: f64,
        load: &LoadProfile,
    ) -> Option<f64> {
        let mut probe = self.clone();
        probe.set_fan_duty(100.0);
        let coolest = probe.junction_c(power, vccint_mv, vccbram_mv, load);
        probe.set_fan_duty(0.0);
        let hottest = probe.junction_c(power, vccint_mv, vccbram_mv, load);
        if target_c < coolest - 0.05 || target_c > hottest + 0.05 {
            return None;
        }
        // Bisection on duty (temperature is monotone decreasing in duty).
        let (mut lo, mut hi) = (0.0f64, 100.0f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            probe.set_fan_duty(mid);
            let t = probe.junction_c(power, vccint_mv, vccbram_mv, load);
            if t > target_c {
                lo = mid; // too hot: more fan
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::{T_REF_C, VNOM_MV};

    fn parts() -> (ThermalModel, PowerModel, LoadProfile) {
        (
            ThermalModel::new(),
            PowerModel::default(),
            LoadProfile::nominal(),
        )
    }

    #[test]
    fn full_fan_at_nominal_is_about_34c() {
        let (t, p, l) = parts();
        let j = t.junction_c(&p, VNOM_MV, VNOM_MV, &l);
        assert!((j - 34.0).abs() < 1.0, "junction = {j}");
    }

    #[test]
    fn stopped_fan_at_nominal_is_about_52c() {
        let (mut t, p, l) = parts();
        t.set_fan_duty(0.0);
        let j = t.junction_c(&p, VNOM_MV, VNOM_MV, &l);
        assert!((j - 52.0).abs() < 1.5, "junction = {j}");
    }

    #[test]
    fn temperature_monotone_in_duty() {
        let (mut t, p, l) = parts();
        let mut prev = f64::INFINITY;
        for duty in [0.0, 25.0, 50.0, 75.0, 100.0] {
            t.set_fan_duty(duty);
            let j = t.junction_c(&p, VNOM_MV, VNOM_MV, &l);
            assert!(j < prev, "temperature should fall with duty");
            prev = j;
        }
    }

    #[test]
    fn undervolted_board_runs_cooler() {
        let (t, p, l) = parts();
        let hot = t.junction_c(&p, VNOM_MV, VNOM_MV, &l);
        let cool = t.junction_c(&p, 570.0, 570.0, &l);
        assert!(cool < hot - 3.0, "{cool} vs {hot}");
    }

    #[test]
    fn forced_mode_overrides() {
        let (mut t, p, l) = parts();
        t.force_temperature(47.5);
        assert!(t.is_forced());
        assert_eq!(t.junction_c(&p, VNOM_MV, VNOM_MV, &l), 47.5);
        t.release_forced();
        assert!(!t.is_forced());
    }

    #[test]
    fn duty_for_target_hits_setpoint() {
        let (mut t, p, l) = parts();
        let duty = t
            .duty_for_target(&p, 43.0, VNOM_MV, VNOM_MV, &l)
            .expect("43°C reachable at nominal power");
        t.set_fan_duty(duty);
        let j = t.junction_c(&p, VNOM_MV, VNOM_MV, &l);
        assert!((j - 43.0).abs() < 0.1, "junction = {j} at duty {duty}");
    }

    #[test]
    fn unreachable_target_returns_none() {
        let (t, p, l) = parts();
        assert!(t.duty_for_target(&p, 90.0, VNOM_MV, VNOM_MV, &l).is_none());
        assert!(t.duty_for_target(&p, 20.0, VNOM_MV, VNOM_MV, &l).is_none());
    }

    #[test]
    fn reference_temperature_is_reachable_span_floor() {
        // The calibration reference (34 °C) is the full-fan nominal point.
        let (t, p, l) = parts();
        let j = t.junction_c(&p, VNOM_MV, VNOM_MV, &l);
        assert!((j - T_REF_C).abs() < 1.0);
    }
}

//! Calibration constants anchoring the board model to the paper.
//!
//! The DSN-2020 study measures real silicon; a software reproduction has to
//! pin its free model parameters to the published measurements. Every
//! constant in this module is either (a) a number printed in the paper, or
//! (b) a fitted value whose derivation from the paper's numbers is given in
//! the comment. `redvolt-bench`'s `calibrate` binary re-derives the fitted
//! values and checks them against these constants.
//!
//! Paper anchor set:
//!
//! * Vnom = 850 mV for both `VCCINT` and `VCCBRAM` (§3.3.2, Fig. 2).
//! * Mean guardband 280 mV (Vmin = 570 mV), mean critical region 30 mV
//!   (Vcrash = 540 mV) (§4.2, Fig. 3).
//! * ΔVmin = 31 mV, ΔVcrash = 18 mV across the three boards (§1.1, §4.4).
//! * Mean on-chip power 12.59 W at Vnom, > 99.9 % on `VCCINT` (§4.1).
//! * GOPs/W ×2.6 at Vmin and > ×3 at Vcrash relative to Vnom (§4.3).
//! * Table 2: Fmax(570..540) = {333, 300, 250, 250, 250, 250, 200} MHz at
//!   5 mV steps; normalized GOPs {1.00, .94, .83, .83, .83, .83, .70};
//!   normalized power down to 0.56 at (540 mV, 200 MHz).
//! * Power rises 0.46 % from 34→52 °C at 850 mV but only 0.15 % at 650 mV
//!   (§7.1, Fig. 9); higher temperature reduces fault rates (ITD, §7.2).

/// Nominal voltage of the PL on-chip rails (mV). Paper §3.3.2.
pub const VNOM_MV: f64 = 850.0;

/// Mean minimum safe voltage across boards/benchmarks (mV). Paper §4.2.
pub const VMIN_MEAN_MV: f64 = 570.0;

/// Mean crash voltage across boards/benchmarks (mV). Paper §4.2.
pub const VCRASH_MEAN_MV: f64 = 540.0;

/// Default DPU fabric clock (MHz); B4096 default per DPU product guide.
pub const F_NOM_MHZ: f64 = 333.0;

/// Mean on-chip (PL rails) power at Vnom across the five benchmarks, watts.
/// Paper §4.1.
pub const P_ONCHIP_NOM_W: f64 = 12.59;

/// VCCBRAM share of on-chip power at Vnom. The paper attributes < 0.1 % to
/// VCCBRAM thanks to UltraScale+ dynamic BRAM power gating; we model 0.08 %.
pub const P_BRAM_SHARE: f64 = 0.0008;

/// Maximum achievable DPU clock vs. VCCINT (mV → MHz), board sample 0 at
/// the 34 °C reference temperature.
///
/// The curve is a *multi-critical-path* surface: above the guardband the
/// binding path is the DSP cascade (shallow slope); between 560 and 545 mV
/// a second, flatter path family binds (the Table-2 Fmax plateau at
/// 250 MHz); below 540 mV the control/interconnect paths collapse toward
/// the crash point. Anchors are fitted so that quantizing the curve with
/// the paper's 25 MHz search step reproduces Table 2 exactly:
///
/// * Fmax_true(570) = 335 > 333 ⇒ Vmin = 570 mV at the default clock;
/// * Fmax_true(565) = 310 ∈ [300, 325) ⇒ search lands on 300 MHz;
/// * Fmax_true(560..545) ∈ [250, 275) ⇒ plateau at 250 MHz;
/// * Fmax_true(540) = 215 ∈ [200, 225) ⇒ 200 MHz;
/// * Fmax_true(540)/333 = 0.6456 is just above [`CRASH_SLACK_RATIO`], so
///   540 mV is the last voltage that responds at the default clock (Vcrash)
///   while still running fault-free at 200 MHz (Table 2's last row).
pub const FMAX_ANCHORS_MV_MHZ: [(f64, f64); 14] = [
    (525.0, 30.0),
    (530.0, 80.0),
    (535.0, 150.0),
    (540.0, 215.0),
    (545.0, 252.0),
    (550.0, 259.0),
    (555.0, 266.0),
    (560.0, 270.0),
    (565.0, 310.0),
    (570.0, 335.0),
    (600.0, 380.0),
    (650.0, 405.0),
    (700.0, 430.0),
    (850.0, 480.0),
];

/// The board hangs (AXI/control interface stops responding) when the true
/// maximum clock falls below this fraction of the operating clock.
///
/// 0.64 places the hang boundary between 540 mV (Fmax/f = 0.6456, alive,
/// heavily faulting — the paper's measured Vcrash) and 535 mV (0.45, hung)
/// at the default 333 MHz.
pub const CRASH_SLACK_RATIO: f64 = 0.64;

/// Inverse-thermal-dependence coefficient: fractional delay *decrease* per
/// °C above [`T_REF_C`]. Fitted so the 34→52 °C span shifts fault curves
/// by a few mV (Fig. 10 shows visible accuracy recovery at fixed V) while
/// leaving Vmin unchanged at 5 mV measurement granularity (§7.3: "negligible
/// change in the value of Vmin").
pub const ITD_PER_C: f64 = 0.0006;

/// Reference temperature for the delay and leakage models (°C). The paper's
/// ambient-temperature experiments sit at the bottom of its 34–52 °C span.
pub const T_REF_C: f64 = 34.0;

/// Measured dynamic-power scaling vs. VCCINT (mV → fraction of the dynamic
/// power at Vnom), at fixed clock and activity.
///
/// Pure CV²f scaling predicts P(570)/P(850) = (570/850)² = 0.45, but the
/// paper measures a 2.6× efficiency gain at constant throughput, i.e.
/// 0.385 — real silicon drops faster than V² (short-circuit and glitch
/// power shrink as edges slow). Anchors are fitted to Fig. 5's ×2.6 /
/// ×≈3.6 gains and Table 2's power column:
///
/// * D(570) = (P/2.6 − leak)/P_dyn0 = 0.400
/// * D(540) = 0.291 (Table 2 row (540 mV, 200 MHz) → 0.56 norm power)
pub const DYN_SCALE_ANCHORS_MV_FRAC: [(f64, f64); 9] = [
    (530.0, 0.272),
    (540.0, 0.291),
    (545.0, 0.337),
    (550.0, 0.344),
    (555.0, 0.363),
    (560.0, 0.382),
    (570.0, 0.400),
    (650.0, 0.568),
    (850.0, 1.000),
];

/// VCCINT leakage power vs. voltage (mV → watts) at [`T_REF_C`], board 0.
///
/// Fitted from the paper's temperature sensitivities: the 34→52 °C power
/// increase is 0.46 % of total at 850 mV and 0.15 % at 650 mV (§7.1). With
/// the leakage temperature factor [`LEAK_TEMP_PER_C`] this pins the leakage
/// share at 4.5 % of 12.59 W at Vnom and ≈1.5 % of on-chip power at 650 mV.
pub const LEAK_ANCHORS_MV_W: [(f64, f64); 5] = [
    (530.0, 0.016),
    (540.0, 0.020),
    (570.0, 0.035),
    (650.0, 0.102),
    (850.0, 0.566),
];

/// Exponential temperature coefficient of leakage power (per °C):
/// `leak(T) = leak(T_REF) · exp(LEAK_TEMP_PER_C · (T − T_REF))`.
///
/// Solves 0.045 · (e^{18c} − 1) = 0.0046 (the 0.46 % total-power rise over
/// the paper's 18 °C span at 850 mV).
pub const LEAK_TEMP_PER_C: f64 = 0.00541;

/// Split of nominal dynamic power among load components.
///
/// * `DYN_SHARE_ACTIVITY` — switching proportional to achieved ops/s
///   (MAC arrays, data movement).
/// * `DYN_SHARE_CLOCK` — DPU clock tree, proportional to the DPU clock.
/// * `DYN_SHARE_FIXED` — logic clocked independently of the DPU (DDR
///   controller, AXI interconnect, PS↔PL bridges).
///
/// Fitted to Table 2's power column: at (540 mV, 200 MHz, 0.70 GOPs) the
/// weighted activity is 0.50·0.70 + 0.20·0.60 + 0.30 = 0.770, which with
/// D(540) reproduces the paper's 0.56 normalized power.
pub const DYN_SHARE_ACTIVITY: f64 = 0.50;
/// See [`DYN_SHARE_ACTIVITY`].
pub const DYN_SHARE_CLOCK: f64 = 0.20;
/// See [`DYN_SHARE_ACTIVITY`].
pub const DYN_SHARE_FIXED: f64 = 0.30;

/// Per-board process-variation corners for the three ZCU102 samples.
///
/// `(voltage_offset_mv, delay_factor, leakage_factor)` — the delay curve of
/// board *i* is `delay(V − offset) · factor`. Offsets ±9 mV plus ±3.5 %
/// delay factors reproduce the paper's measured spreads: ΔVmin ≈ 31 mV
/// (slope ≈1.5 MHz/mV near 570 mV) and ΔVcrash ≈ 18 mV (slope ≈7 MHz/mV
/// near 540 mV). Boards beyond the three samples draw corners from a
/// seeded distribution of the same magnitude.
pub const BOARD_CORNERS: [(f64, f64, f64); 3] =
    [(0.0, 1.000, 1.00), (-9.0, 0.965, 0.93), (9.0, 1.035, 1.08)];

/// Energy-per-operation scaling exponent vs. operand precision:
/// `e(bits) = (bits/8)^QUANT_ENERGY_EXP`. Multiplier energy scales roughly
/// quadratically with width but wiring/control amortize it; 1.3 reproduces
/// Fig. 7b's spread between INT8 and INT4 efficiency curves.
pub const QUANT_ENERGY_EXP: f64 = 1.3;

/// Minimum safe `VCCBRAM` voltage (mV): below this, BRAM bit cells start
/// losing read margin and weight fetches see bit flips. The authors'
/// prior BRAM-undervolting characterization (MICRO'18, on 7-series parts
/// with 1.0 V nominal) measured the BRAM fault onset at ≈54 % of nominal;
/// scaled to the UltraScale+ 850 mV rail that is ≈520 mV — comfortably
/// below the logic rail's 570 mV Vmin, which is why the paper can track
/// both rails together without BRAM faults ever appearing first.
pub const BRAM_VMIN_MV: f64 = 520.0;

/// `VCCBRAM` voltage (mV) below which BRAM contents are lost entirely and
/// the design hangs (configuration/state corruption).
pub const BRAM_VCRASH_MV: f64 = 450.0;

/// Exponent of the BRAM read-margin fault law (per-mV of droop below
/// [`BRAM_VMIN_MV`], normalized by Vnom), fitted to the MICRO'18 curve
/// shape: roughly one order of magnitude per ≈25 mV.
pub const BRAM_FAULT_EXPONENT: f64 = 80.0;

/// Base BRAM fault rate per weight code per layer execution at the onset,
/// fitted so read failures become observable within a few mV of
/// [`BRAM_VMIN_MV`] on ~100k-code models.
pub const BRAM_BASE_RATE: f64 = 1.0e-7;

/// Fan / package thermal model: junction temperature is
/// `T_BASE_C + R_th(duty) · P_total`, with `R_th` falling linearly from
/// [`R_TH_FAN_MIN_CW`] (fan stopped) to [`R_TH_FAN_MAX_CW`] (full duty).
/// Solved so the paper's achievable span at 12.6 W is ≈[34, 52] °C (§7).
pub const T_BASE_C: f64 = 26.4;
/// Thermal resistance at 0 % fan duty (°C/W).
pub const R_TH_FAN_MIN_CW: f64 = 2.03;
/// Thermal resistance at 100 % fan duty (°C/W).
pub const R_TH_FAN_MAX_CW: f64 = 0.60;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmax_anchors_strictly_increasing() {
        for w in FMAX_ANCHORS_MV_MHZ.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1, "{w:?}");
        }
    }

    #[test]
    fn dyn_scale_anchors_monotone_and_normalized() {
        for w in DYN_SCALE_ANCHORS_MV_FRAC.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1, "{w:?}");
        }
        let last = DYN_SCALE_ANCHORS_MV_FRAC.last().unwrap();
        assert_eq!(last.0, VNOM_MV);
        assert_eq!(last.1, 1.0);
    }

    #[test]
    fn leak_anchors_monotone() {
        for w in LEAK_ANCHORS_MV_W.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1, "{w:?}");
        }
    }

    #[test]
    fn dyn_shares_sum_to_one() {
        let sum = DYN_SHARE_ACTIVITY + DYN_SHARE_CLOCK + DYN_SHARE_FIXED;
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // pins compile-time calibration
    fn crash_ratio_separates_540_from_535() {
        // At 333 MHz: 540 mV must respond, 535 mV must hang.
        assert!(215.0 / F_NOM_MHZ > CRASH_SLACK_RATIO);
        assert!(150.0 / F_NOM_MHZ < CRASH_SLACK_RATIO);
    }

    #[test]
    fn leakage_temperature_coefficient_matches_paper_sensitivity() {
        // 4.5% leakage share at Vnom should give ≈0.46% power rise over 18°C.
        let share = LEAK_ANCHORS_MV_W.last().unwrap().1 / P_ONCHIP_NOM_W;
        let rise = share * ((LEAK_TEMP_PER_C * 18.0).exp() - 1.0);
        assert!((rise - 0.0046).abs() < 5e-4, "rise={rise}");
    }
}

//! SECDED(72,64) BRAM error correction.
//!
//! UltraScale+ block RAMs ship a built-in 64-bit-data / 8-check-bit
//! Hamming SECDED code (single-error-correct, double-error-detect) — the
//! mechanism the paper names as the reason BRAM contents survive far
//! deeper undervolting than the logic rail tolerates (§4.1), and the one
//! its BRAM companion study leans on directly. This module models that
//! code exactly: a 72-bit codeword over each 64-bit data word, with a
//! syndrome decoder that corrects any single flipped bit (data *or*
//! check) and flags any double flip as uncorrectable.
//!
//! The layout is the classic extended-Hamming arrangement: check bits
//! `c0..c6` cover the codeword positions whose 1-based index has the
//! corresponding bit set, and `c7` is an overall parity bit that
//! disambiguates single (correctable) from double (detectable-only)
//! errors.
//!
//! ECC correction repairs the *read*, not the stored word; the stored
//! upset stays latent until a scrub pass rewrites it. [`Scrubber`] models
//! that periodic task with deterministic counters.

/// Number of data bits per codeword.
pub const DATA_BITS: u32 = 64;
/// Number of check bits per codeword (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;
/// Total codeword width.
pub const CODE_BITS: u32 = DATA_BITS + CHECK_BITS;

/// A 72-bit SECDED codeword: 64 data bits plus 8 check bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codeword {
    /// The data word.
    pub data: u64,
    /// The check byte (`c0..c6` Hamming, `c7` overall parity).
    pub check: u8,
}

/// Outcome of decoding a (possibly corrupted) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// No error detected; data returned as stored.
    Clean(u64),
    /// A single-bit error was corrected (in data or check bits).
    Corrected(u64),
    /// A double-bit error: detected, not correctable. The raw (corrupt)
    /// data bits are returned so callers can model the failed read.
    Uncorrectable(u64),
}

/// Maps a 0-based data-bit index to its 1-based codeword position
/// (positions that are powers of two hold check bits).
fn data_position(bit: u32) -> u32 {
    // Skip positions 1, 2, 4, 8, 16, 32, 64 (the 7 Hamming check slots).
    let mut pos = bit + 1;
    // Each power of two at or below `pos` shifts the data bit one slot up;
    // iterate to a fixed point (at most 7 rounds).
    loop {
        let skipped = 32 - pos.leading_zeros();
        let next = bit + 1 + skipped;
        if next == pos {
            return pos;
        }
        pos = next;
    }
}

/// Syndrome contribution of the data word: XOR of the 1-based codeword
/// positions of every set data bit.
fn data_syndrome(data: u64) -> u32 {
    let mut syn = 0u32;
    let mut rest = data;
    while rest != 0 {
        let bit = rest.trailing_zeros();
        syn ^= data_position(bit);
        rest &= rest - 1;
    }
    syn
}

/// Encodes a data word into its SECDED codeword.
pub fn encode(data: u64) -> Codeword {
    let syn = data_syndrome(data);
    let mut check = 0u8;
    for c in 0..7 {
        if syn & (1 << c) != 0 {
            check |= 1 << c;
        }
    }
    // Overall parity over data and the 7 Hamming bits.
    let ones = data.count_ones() + check.count_ones();
    if ones % 2 == 1 {
        check |= 0x80;
    }
    Codeword { data, check }
}

/// Decodes a codeword, correcting a single-bit error and detecting a
/// double-bit error.
pub fn decode(word: Codeword) -> Decode {
    let syn = data_syndrome(word.data) ^ u32::from(word.check & 0x7f);
    let parity = (word.data.count_ones() + word.check.count_ones()) % 2;
    match (syn, parity) {
        (0, 0) => Decode::Clean(word.data),
        (0, 1) => Decode::Corrected(word.data), // overall-parity bit flipped
        (_, 1) => {
            // Single-bit error at 1-based codeword position `syn`. A
            // power-of-two position is a Hamming check bit (data intact);
            // otherwise locate and repair the matching data bit. A
            // position outside the 71-slot layout is not a single-flip
            // syndrome at all — report it rather than miscorrect.
            if syn.is_power_of_two() {
                return Decode::Corrected(word.data);
            }
            for bit in 0..DATA_BITS {
                if data_position(bit) == syn {
                    return Decode::Corrected(word.data ^ (1u64 << bit));
                }
            }
            Decode::Uncorrectable(word.data)
        }
        _ => Decode::Uncorrectable(word.data),
    }
}

/// The periodic BRAM scrubbing task.
///
/// A corrected read leaves the stored bit still flipped; only a scrub
/// pass — read, correct, write back — clears it. Accumulated latent
/// upsets are dangerous because a second flip in the same word upgrades a
/// correctable error to an uncorrectable one. The scrubber walks the
/// weight store every `interval_cycles` simulated DPU cycles and retires
/// every latent upset recorded since the previous pass. All counters are
/// deterministic functions of the injected-fault schedule.
#[derive(Debug, Clone)]
pub struct Scrubber {
    /// Scrub period in simulated DPU cycles.
    pub interval_cycles: u64,
    cycles_since_scrub: u64,
    latent: u64,
    passes: u64,
    scrubbed: u64,
}

/// Default scrub period: ~30 ms of DPU time at the nominal 333 MHz clock,
/// the order of magnitude of real BRAM scrub controllers.
pub const DEFAULT_SCRUB_INTERVAL_CYCLES: u64 = 10_000_000;

impl Scrubber {
    /// Creates a scrubber with the given period in simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero.
    pub fn new(interval_cycles: u64) -> Self {
        assert!(interval_cycles > 0, "scrub interval must be positive");
        Scrubber {
            interval_cycles,
            cycles_since_scrub: 0,
            latent: 0,
            passes: 0,
            scrubbed: 0,
        }
    }

    /// Records `count` corrected-on-read upsets whose stored bits remain
    /// latent until the next pass.
    pub fn record_latent(&mut self, count: u64) {
        self.latent = self.latent.saturating_add(count);
    }

    /// Advances simulated time; every elapsed interval triggers one scrub
    /// pass, which retires all latent upsets recorded so far.
    pub fn tick(&mut self, cycles: u64) {
        self.cycles_since_scrub += cycles;
        while self.cycles_since_scrub >= self.interval_cycles {
            self.cycles_since_scrub -= self.interval_cycles;
            self.passes += 1;
            self.scrubbed += self.latent;
            self.latent = 0;
        }
    }

    /// Latent (corrected-but-not-yet-rewritten) upsets outstanding.
    pub fn latent(&self) -> u64 {
        self.latent
    }

    /// Completed scrub passes.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Total upsets retired by scrub passes.
    pub fn scrubbed(&self) -> u64 {
        self.scrubbed
    }
}

impl Default for Scrubber {
    fn default() -> Self {
        Scrubber::new(DEFAULT_SCRUB_INTERVAL_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words() -> Vec<u64> {
        vec![
            0,
            1,
            u64::MAX,
            0xdead_beef_cafe_f00d,
            0x8000_0000_0000_0001,
            0x5555_5555_5555_5555,
            0xaaaa_aaaa_aaaa_aaaa,
        ]
    }

    #[test]
    fn clean_words_decode_clean() {
        for w in words() {
            assert_eq!(decode(encode(w)), Decode::Clean(w), "word {w:#x}");
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        for w in words() {
            let cw = encode(w);
            for bit in 0..DATA_BITS {
                let corrupt = Codeword {
                    data: cw.data ^ (1u64 << bit),
                    check: cw.check,
                };
                assert_eq!(
                    decode(corrupt),
                    Decode::Corrected(w),
                    "word {w:#x}, bit {bit}"
                );
            }
        }
    }

    #[test]
    fn every_single_check_bit_flip_is_corrected() {
        for w in words() {
            let cw = encode(w);
            for bit in 0..CHECK_BITS {
                let corrupt = Codeword {
                    data: cw.data,
                    check: cw.check ^ (1 << bit),
                };
                assert_eq!(
                    decode(corrupt),
                    Decode::Corrected(w),
                    "word {w:#x}, check bit {bit}"
                );
            }
        }
    }

    #[test]
    fn every_double_data_bit_flip_is_detected_not_miscorrected() {
        // Exhaustive over a few words: all C(64,2) data-bit pairs.
        for w in [0u64, 0xdead_beef_cafe_f00d] {
            let cw = encode(w);
            for a in 0..DATA_BITS {
                for b in (a + 1)..DATA_BITS {
                    let corrupt = Codeword {
                        data: cw.data ^ (1u64 << a) ^ (1u64 << b),
                        check: cw.check,
                    };
                    assert!(
                        matches!(decode(corrupt), Decode::Uncorrectable(_)),
                        "word {w:#x}, bits {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_data_check_double_flips_are_detected() {
        let cw = encode(0x0123_4567_89ab_cdef);
        for a in 0..DATA_BITS {
            for b in 0..CHECK_BITS {
                let corrupt = Codeword {
                    data: cw.data ^ (1u64 << a),
                    check: cw.check ^ (1 << b),
                };
                assert!(
                    matches!(decode(corrupt), Decode::Uncorrectable(_)),
                    "data bit {a}, check bit {b}"
                );
            }
        }
    }

    #[test]
    fn data_positions_are_unique_and_skip_check_slots() {
        let mut seen = std::collections::BTreeSet::new();
        for bit in 0..DATA_BITS {
            let pos = data_position(bit);
            assert!(!pos.is_power_of_two(), "bit {bit} landed on a check slot");
            assert!((3..=71).contains(&pos), "bit {bit} -> position {pos}");
            assert!(seen.insert(pos), "duplicate position {pos}");
        }
    }

    #[test]
    fn scrubber_retires_latent_upsets_on_schedule() {
        let mut s = Scrubber::new(1000);
        s.record_latent(3);
        s.tick(999);
        assert_eq!(s.passes(), 0);
        assert_eq!(s.latent(), 3);
        s.tick(1);
        assert_eq!(s.passes(), 1);
        assert_eq!(s.latent(), 0);
        assert_eq!(s.scrubbed(), 3);
        // Multiple intervals in one tick run multiple passes.
        s.record_latent(2);
        s.tick(2500);
        assert_eq!(s.passes(), 3);
        assert_eq!(s.scrubbed(), 5);
        assert_eq!(s.latent(), 0);
    }
}

//! The ZCU102 voltage-rail tree.
//!
//! Three on-board regulators expose 26 PMBus-addressable rails (§3.3.2,
//! Fig. 2). The study regulates and measures the two on-chip PL rails —
//! `VCCINT` (0x13) and `VCCBRAM` (0x14) — and leaves the rest at their
//! defaults; we model those two in full physical detail and the remaining
//! rails as fixed loads with telemetry.

/// A PMBus-addressable voltage rail of the ZCU102.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RailId {
    /// PL internal logic supply: DSPs, LUTs, buffers, routing. The focus of
    /// the study — it carries > 99.9 % of on-chip power.
    Vccint,
    /// PL Block RAM supply.
    Vccbram,
    /// PL auxiliary supply (clock managers, configuration logic).
    Vccaux,
    /// 3.3 V I/O bank supply.
    Vcc3v3,
    /// PS full-power domain supply (quad-core Cortex-A53 host).
    VccPsintFp,
    /// PS low-power domain supply.
    VccPsintLp,
    /// DDR4 memory supply.
    VccoPsddr,
}

impl RailId {
    /// All modelled rails.
    pub const ALL: [RailId; 7] = [
        RailId::Vccint,
        RailId::Vccbram,
        RailId::Vccaux,
        RailId::Vcc3v3,
        RailId::VccPsintFp,
        RailId::VccPsintLp,
        RailId::VccoPsddr,
    ];

    /// The PMBus address of the regulator output for this rail (§3.3.2).
    pub fn pmbus_address(self) -> u8 {
        match self {
            RailId::Vccint => 0x13,
            RailId::Vccbram => 0x14,
            RailId::Vccaux => 0x15,
            RailId::Vcc3v3 => 0x17,
            RailId::VccPsintFp => 0x18,
            RailId::VccPsintLp => 0x19,
            RailId::VccoPsddr => 0x1A,
        }
    }

    /// Looks up a rail by PMBus address.
    pub fn from_pmbus_address(address: u8) -> Option<RailId> {
        RailId::ALL
            .iter()
            .copied()
            .find(|r| r.pmbus_address() == address)
    }

    /// Factory-default (nominal) voltage in volts. The 16 nm UltraScale+
    /// PL rails are 0.85 V (§2.2).
    pub fn nominal_v(self) -> f64 {
        match self {
            RailId::Vccint | RailId::Vccbram => 0.85,
            RailId::Vccaux => 1.8,
            RailId::Vcc3v3 => 3.3,
            RailId::VccPsintFp | RailId::VccPsintLp => 0.85,
            RailId::VccoPsddr => 1.2,
        }
    }

    /// Whether the rail supplies on-chip PL logic (the undervolting
    /// targets of the study).
    pub fn is_on_chip_pl(self) -> bool {
        matches!(self, RailId::Vccint | RailId::Vccbram)
    }

    /// Whether the study allows regulating this rail. Off-focus rails are
    /// locked at nominal (writing them would risk the host/DDR, which the
    /// paper never does).
    pub fn is_regulable(self) -> bool {
        self.is_on_chip_pl()
    }

    /// Fixed telemetry power draw for off-focus rails at their defaults,
    /// in watts. These are board-level loads (PS cluster, DDR4, I/O) that
    /// exist on the platform but are excluded from the paper's "on-chip
    /// power" number.
    pub fn fixed_load_w(self) -> f64 {
        match self {
            RailId::Vccint | RailId::Vccbram => 0.0, // modelled, not fixed
            RailId::Vccaux => 0.9,
            RailId::Vcc3v3 => 1.4,
            RailId::VccPsintFp => 2.3,
            RailId::VccPsintLp => 0.4,
            RailId::VccoPsddr => 3.1,
        }
    }

    /// Human-readable rail name as printed on the schematic.
    pub fn name(self) -> &'static str {
        match self {
            RailId::Vccint => "VCCINT",
            RailId::Vccbram => "VCCBRAM",
            RailId::Vccaux => "VCCAUX",
            RailId::Vcc3v3 => "VCC3V3",
            RailId::VccPsintFp => "VCC_PSINTFP",
            RailId::VccPsintLp => "VCC_PSINTLP",
            RailId::VccoPsddr => "VCCO_PSDDR",
        }
    }
}

/// Regulator output window for a rail: commanded voltages outside this
/// range are rejected by the device, mirroring the MAX15301's configurable
/// output range on the ZCU102.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputWindow {
    /// Lowest commandable voltage (V).
    pub min_v: f64,
    /// Highest commandable voltage (V).
    pub max_v: f64,
}

impl OutputWindow {
    /// The output window for a rail. On-chip PL rails accept the full
    /// undervolting range used in the study (down to 0.4 V — the paper
    /// sweeps to ≈0.54 V before the board hangs); fixed rails accept only
    /// their nominal value.
    pub fn for_rail(rail: RailId) -> Self {
        if rail.is_regulable() {
            OutputWindow {
                min_v: 0.40,
                max_v: 0.95,
            }
        } else {
            OutputWindow {
                min_v: rail.nominal_v(),
                max_v: rail.nominal_v(),
            }
        }
    }

    /// Whether `v` is inside the window, with half a LINEAR16 step of
    /// tolerance (commands arrive wire-quantized at 1/4096 V).
    pub fn contains(&self, v: f64) -> bool {
        const HALF_STEP: f64 = 0.5 / 4096.0;
        v >= self.min_v - HALF_STEP && v <= self.max_v + HALF_STEP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_addresses_match() {
        assert_eq!(RailId::Vccint.pmbus_address(), 0x13);
        assert_eq!(RailId::Vccbram.pmbus_address(), 0x14);
        assert_eq!(RailId::Vccaux.pmbus_address(), 0x15);
        assert_eq!(RailId::Vcc3v3.pmbus_address(), 0x17);
    }

    #[test]
    fn address_round_trip() {
        for r in RailId::ALL {
            assert_eq!(RailId::from_pmbus_address(r.pmbus_address()), Some(r));
        }
        assert_eq!(RailId::from_pmbus_address(0x77), None);
    }

    #[test]
    fn pl_rails_are_850mv_and_regulable() {
        for r in [RailId::Vccint, RailId::Vccbram] {
            assert_eq!(r.nominal_v(), 0.85);
            assert!(r.is_regulable());
            assert!(r.is_on_chip_pl());
        }
    }

    #[test]
    fn off_focus_rails_locked_at_nominal() {
        let w = OutputWindow::for_rail(RailId::Vcc3v3);
        assert!(w.contains(3.3));
        assert!(!w.contains(3.0));
    }

    #[test]
    fn vccint_window_covers_study_sweep() {
        let w = OutputWindow::for_rail(RailId::Vccint);
        assert!(w.contains(0.85));
        assert!(w.contains(0.570));
        assert!(w.contains(0.540));
        assert!(!w.contains(1.2));
    }
}

//! The ZCU102 board: rails, regulators, sensors, fan and crash behaviour.
//!
//! [`Zcu102Board`] is the single stateful object experiments interact with.
//! Control and telemetry go over PMBus exactly as in the paper —
//! [`Zcu102Board`] implements [`PmbusTarget`], routing rail addresses to
//! its regulators and the system controller address to fan/temperature —
//! while the DPU engine queries the timing surface directly (that path is
//! physics, not bus traffic).
//!
//! Crash semantics follow §4.2: when the operating point leaves the
//! responsive region (see [`TimingModel::responds`]) the board hangs — all
//! on-chip-rail PMBus traffic fails with [`PmbusError::DeviceHung`] until
//! [`Zcu102Board::power_cycle`], which also resets the rails to nominal.

use crate::calib;
use crate::power::{LoadProfile, PowerModel};
use crate::rails::{OutputWindow, RailId};
use crate::thermal::ThermalModel;
use crate::timing::TimingModel;
use crate::variation::BoardCorner;
use redvolt_num::rng::Xoshiro256StarStar;
use redvolt_pmbus::command::{status, Access, CommandCode};
use redvolt_pmbus::device::PmbusTarget;
use redvolt_pmbus::{linear, PmbusError};

/// PMBus address of the system controller (fan command, board sensors).
pub const SYSCTRL_ADDRESS: u8 = 0x52;

/// LINEAR16 exponent used by the board's regulators (1/4096 V steps).
const VOUT_MODE_EXP: i8 = -12;

/// Relative 1-σ noise on power telemetry reads. Real current sensing
/// jitters; the paper averages 10 repetitions and calls the variation
/// negligible, which this magnitude reproduces.
const TELEMETRY_NOISE_SIGMA: f64 = 0.003;

/// A point-in-time telemetry reading of one board, produced by
/// [`Zcu102Board::snapshot`] for the observability layer's rail and
/// temperature gauges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoardSnapshot {
    /// Commanded `VCCINT` in mV.
    pub vccint_mv: f64,
    /// Commanded `VCCBRAM` in mV.
    pub vccbram_mv: f64,
    /// Steady-state junction temperature, °C.
    pub junction_c: f64,
    /// Exact (noise-free) on-chip power, watts.
    pub on_chip_power_w: f64,
    /// Whether the board is hung.
    pub crashed: bool,
    /// Power cycles so far.
    pub power_cycles: u64,
}

/// A simulated ZCU102 board sample.
#[derive(Debug, Clone)]
pub struct Zcu102Board {
    corner: BoardCorner,
    timing: TimingModel,
    power: PowerModel,
    thermal: ThermalModel,
    vccint_mv: f64,
    vccbram_mv: f64,
    load: LoadProfile,
    crash_slack_ratio: f64,
    crashed: bool,
    power_cycles: u64,
    telemetry_rng: Xoshiro256StarStar,
    telemetry_noise: bool,
}

impl Zcu102Board {
    /// Brings up board `sample` at nominal rails, full fan, idle load.
    pub fn new(sample: u32) -> Self {
        let corner = BoardCorner::for_sample(sample);
        Zcu102Board {
            corner,
            timing: TimingModel::new(corner),
            power: PowerModel::new(corner),
            thermal: ThermalModel::new(),
            vccint_mv: calib::VNOM_MV,
            vccbram_mv: calib::VNOM_MV,
            load: LoadProfile::idle(),
            crash_slack_ratio: calib::CRASH_SLACK_RATIO,
            crashed: false,
            power_cycles: 0,
            telemetry_rng: Xoshiro256StarStar::seed_from(0xB0A2D).substream(u64::from(sample)),
            telemetry_noise: true,
        }
    }

    /// Disables telemetry noise (exact reads), for deterministic tests.
    pub fn with_exact_telemetry(mut self) -> Self {
        self.telemetry_noise = false;
        self
    }

    /// The board's process corner.
    pub fn corner(&self) -> BoardCorner {
        self.corner
    }

    /// The board's timing surface.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// The board's power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The thermal model (mutable access for chamber mode).
    pub fn thermal_mut(&mut self) -> &mut ThermalModel {
        &mut self.thermal
    }

    /// Current commanded `VCCINT` in mV.
    pub fn vccint_mv(&self) -> f64 {
        self.vccint_mv
    }

    /// Current commanded `VCCBRAM` in mV.
    pub fn vccbram_mv(&self) -> f64 {
        self.vccbram_mv
    }

    /// Current load profile.
    pub fn load(&self) -> LoadProfile {
        self.load
    }

    /// Whether the board has hung.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Workload-dependent crash margin (see [`TimingModel::responds`]).
    pub fn set_crash_slack_ratio(&mut self, ratio: f64) {
        self.crash_slack_ratio = ratio;
        self.evaluate_crash();
    }

    /// Current crash margin.
    pub fn crash_slack_ratio(&self) -> f64 {
        self.crash_slack_ratio
    }

    /// Publishes the running workload to the board (done by the DPU
    /// runtime); re-evaluates the crash condition at the new point.
    pub fn set_load(&mut self, load: LoadProfile) {
        self.load = load;
        self.evaluate_crash();
    }

    /// Steady-state junction temperature at the present operating point.
    pub fn junction_c(&self) -> f64 {
        self.thermal
            .junction_c(&self.power, self.vccint_mv, self.vccbram_mv, &self.load)
    }

    /// Exact (noise-free) on-chip power at the present operating point.
    pub fn on_chip_power_w(&self) -> f64 {
        let t = self.junction_c();
        self.power
            .on_chip_w(self.vccint_mv, self.vccbram_mv, t, &self.load)
    }

    /// Slack deficit of the present operating point (input to fault
    /// rates), including the workload's critical-path factor.
    pub fn slack_deficit(&self) -> f64 {
        self.timing.slack_deficit(
            self.vccint_mv,
            self.load.f_mhz * self.load.critical_path_factor,
            self.junction_c(),
        )
    }

    /// Power-cycles the board: rails to nominal, crash latch cleared,
    /// load idle. The fan setting survives (it is external to the FPGA).
    pub fn power_cycle(&mut self) {
        self.vccint_mv = calib::VNOM_MV;
        self.vccbram_mv = calib::VNOM_MV;
        self.load = LoadProfile::idle();
        self.crash_slack_ratio = calib::CRASH_SLACK_RATIO;
        self.crashed = false;
        self.power_cycles += 1;
    }

    /// Number of power cycles this board has been through — the paper's
    /// reboot bookkeeping ("requires a full power cycle to recover").
    pub fn power_cycles(&self) -> u64 {
        self.power_cycles
    }

    /// One coherent telemetry reading of the board's operating point.
    /// Everything here derives from commanded state and the seeded
    /// models, so snapshots are reproducible across runs.
    pub fn snapshot(&self) -> BoardSnapshot {
        BoardSnapshot {
            vccint_mv: self.vccint_mv,
            vccbram_mv: self.vccbram_mv,
            junction_c: self.junction_c(),
            on_chip_power_w: self.on_chip_power_w(),
            crashed: self.crashed,
            power_cycles: self.power_cycles,
        }
    }

    fn evaluate_crash(&mut self) {
        if self.crashed {
            return;
        }
        // BRAM retention collapse hangs the design regardless of activity
        // (stored state and configuration data are lost).
        if self.vccbram_mv < calib::BRAM_VCRASH_MV {
            self.crashed = true;
            return;
        }
        // An idle design (no retiring ops) does not exercise datapaths hard
        // enough to hang at the voltages the study sweeps; the paper's
        // crashes happen while inference is running.
        if self.load.ops_rate_norm <= 0.0 {
            return;
        }
        let t = self.junction_c();
        let f_eff = self.load.f_mhz * self.load.critical_path_factor;
        if !self
            .timing
            .responds(self.vccint_mv, f_eff, t, self.crash_slack_ratio)
        {
            self.crashed = true;
        }
    }

    fn noise(&mut self) -> f64 {
        if self.telemetry_noise {
            1.0 + self.telemetry_rng.next_gaussian(0.0, TELEMETRY_NOISE_SIGMA)
        } else {
            1.0
        }
    }

    fn rail_mv(&self, rail: RailId) -> f64 {
        match rail {
            RailId::Vccint => self.vccint_mv,
            RailId::Vccbram => self.vccbram_mv,
            other => other.nominal_v() * 1000.0,
        }
    }

    fn rail_power_w(&mut self, rail: RailId) -> f64 {
        let t = self.junction_c();
        let noise = self.noise();
        let exact = match rail {
            RailId::Vccint => self.power.vccint_w(self.vccint_mv, t, &self.load),
            RailId::Vccbram => self.power.vccbram_w(self.vccbram_mv),
            other => self.power.fixed_rail_w(other),
        };
        exact * noise
    }

    fn set_rail_mv(&mut self, rail: RailId, mv: f64) -> Result<(), PmbusError> {
        if !rail.is_regulable() {
            return Err(PmbusError::Rejected {
                reason: format!("{} is locked at nominal in this study", rail.name()),
            });
        }
        let window = OutputWindow::for_rail(rail);
        if !window.contains(mv / 1000.0) {
            return Err(PmbusError::Rejected {
                reason: format!(
                    "{:.0} mV outside {}..{} mV output window",
                    mv,
                    window.min_v * 1000.0,
                    window.max_v * 1000.0
                ),
            });
        }
        match rail {
            RailId::Vccint => self.vccint_mv = mv,
            RailId::Vccbram => self.vccbram_mv = mv,
            _ => unreachable!("only PL rails are regulable"),
        }
        self.evaluate_crash();
        Ok(())
    }
}

impl PmbusTarget for Zcu102Board {
    fn write_word(
        &mut self,
        address: u8,
        command: CommandCode,
        word: u16,
    ) -> Result<(), PmbusError> {
        if address == SYSCTRL_ADDRESS {
            // The system controller is on the PS side and stays reachable
            // even when the PL has hung (the paper power-cycles via it).
            return match command {
                CommandCode::FanCommand1 => {
                    let duty = linear::linear11_decode(word);
                    if !(0.0..=100.0).contains(&duty) {
                        return Err(PmbusError::Rejected {
                            reason: format!("fan duty {duty}% out of range"),
                        });
                    }
                    self.thermal.set_fan_duty(duty);
                    Ok(())
                }
                CommandCode::Page | CommandCode::Operation | CommandCode::FanConfig12 => Ok(()),
                _ => Err(PmbusError::UnsupportedCommand {
                    address,
                    command: command.raw(),
                }),
            };
        }
        let Some(rail) = RailId::from_pmbus_address(address) else {
            return Err(PmbusError::NoDevice { address });
        };
        if self.crashed && rail.is_on_chip_pl() {
            return Err(PmbusError::DeviceHung { address });
        }
        if command.access() == Access::ReadOnly {
            return Err(PmbusError::UnsupportedCommand {
                address,
                command: command.raw(),
            });
        }
        match command {
            CommandCode::VoutCommand => {
                let v = linear::linear16_decode(word, VOUT_MODE_EXP);
                self.set_rail_mv(rail, v * 1000.0)
            }
            CommandCode::Page | CommandCode::Operation => Ok(()),
            _ => Err(PmbusError::UnsupportedCommand {
                address,
                command: command.raw(),
            }),
        }
    }

    fn read_word(&mut self, address: u8, command: CommandCode) -> Result<u16, PmbusError> {
        if address == SYSCTRL_ADDRESS {
            return match command {
                CommandCode::ReadTemperature1 => linear::linear11_encode(self.junction_c()),
                CommandCode::ReadFanSpeed1 => linear::linear11_encode(self.thermal.fan_duty()),
                CommandCode::StatusByte => {
                    Ok(u16::from(if self.crashed { status::CML } else { 0 }))
                }
                _ => Err(PmbusError::UnsupportedCommand {
                    address,
                    command: command.raw(),
                }),
            };
        }
        let Some(rail) = RailId::from_pmbus_address(address) else {
            return Err(PmbusError::NoDevice { address });
        };
        if self.crashed && rail.is_on_chip_pl() {
            return Err(PmbusError::DeviceHung { address });
        }
        match command {
            CommandCode::VoutMode => Ok(u16::from(linear::vout_mode_from_exponent(VOUT_MODE_EXP))),
            CommandCode::VoutCommand | CommandCode::ReadVout => {
                linear::linear16_encode(self.rail_mv(rail) / 1000.0, VOUT_MODE_EXP)
            }
            CommandCode::ReadPout => linear::linear11_encode(self.rail_power_w(rail)),
            CommandCode::ReadIout => {
                let v = self.rail_mv(rail) / 1000.0;
                let p = self.rail_power_w(rail);
                linear::linear11_encode(if v > 0.0 { p / v } else { 0.0 })
            }
            CommandCode::ReadTemperature1 => linear::linear11_encode(self.junction_c()),
            CommandCode::StatusByte => Ok(0),
            _ => Err(PmbusError::UnsupportedCommand {
                address,
                command: command.raw(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redvolt_pmbus::adapter::PmbusAdapter;

    fn board() -> Zcu102Board {
        Zcu102Board::new(0).with_exact_telemetry()
    }

    #[test]
    fn nominal_bringup_reads_paper_power() {
        let mut b = board();
        b.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();
        let p_int = host.read_pout(&mut b, 0x13).unwrap();
        let p_bram = host.read_pout(&mut b, 0x14).unwrap();
        assert!((p_int + p_bram - 12.59).abs() < 0.05, "{p_int} + {p_bram}");
        assert!(p_bram / (p_int + p_bram) < 0.001);
    }

    #[test]
    fn undervolt_via_pmbus_reduces_power() {
        let mut b = board();
        b.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();
        let before = host.read_pout(&mut b, 0x13).unwrap();
        host.set_vout(&mut b, 0x13, 0.570).unwrap();
        let after = host.read_pout(&mut b, 0x13).unwrap();
        assert!((before / after - 2.6).abs() < 0.1, "{before}/{after}");
    }

    #[test]
    fn guardband_region_has_no_slack_deficit() {
        let mut b = board();
        b.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut b, 0x13, 0.575).unwrap();
        assert_eq!(b.slack_deficit(), 0.0);
        assert!(!b.is_crashed());
    }

    #[test]
    fn board_hangs_below_vcrash_and_recovers_on_power_cycle() {
        let mut b = board();
        b.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut b, 0x13, 0.535).unwrap_or(()); // may hang mid-write
        assert!(b.is_crashed());
        assert!(matches!(
            host.read_pout(&mut b, 0x13),
            Err(PmbusError::DeviceHung { .. })
        ));
        // System controller still answers (PS side).
        assert!(host.read_temperature(&mut b, SYSCTRL_ADDRESS).is_ok());
        b.power_cycle();
        assert!(!b.is_crashed());
        assert!((b.vccint_mv() - 850.0).abs() < 1e-9);
        assert!(host.read_pout(&mut b, 0x13).is_ok());
    }

    #[test]
    fn idle_board_does_not_crash_at_low_voltage() {
        let mut b = board();
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut b, 0x13, 0.545).unwrap();
        assert!(!b.is_crashed(), "idle design must not hang");
        // Starting inference at that voltage is fine too (540 responds).
        b.set_load(LoadProfile::nominal());
        assert!(!b.is_crashed());
    }

    #[test]
    fn out_of_window_voltage_rejected() {
        let mut b = board();
        let mut host = PmbusAdapter::new();
        assert!(matches!(
            host.set_vout(&mut b, 0x13, 1.2),
            Err(PmbusError::Rejected { .. })
        ));
        assert!(matches!(
            host.set_vout(&mut b, 0x13, 0.2),
            Err(PmbusError::Rejected { .. })
        ));
    }

    #[test]
    fn locked_rails_reject_writes() {
        let mut b = board();
        let mut host = PmbusAdapter::new();
        assert!(matches!(
            host.set_vout(&mut b, 0x17, 3.0),
            Err(PmbusError::Rejected { .. })
        ));
    }

    #[test]
    fn fan_command_changes_temperature() {
        let mut b = board();
        b.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();
        host.set_fan_percent(&mut b, SYSCTRL_ADDRESS, 100.0)
            .unwrap();
        let cool = host.read_temperature(&mut b, SYSCTRL_ADDRESS).unwrap();
        host.set_fan_percent(&mut b, SYSCTRL_ADDRESS, 0.0).unwrap();
        let hot = host.read_temperature(&mut b, SYSCTRL_ADDRESS).unwrap();
        assert!(hot > cool + 10.0, "{hot} vs {cool}");
    }

    #[test]
    fn telemetry_noise_is_small_and_seeded() {
        let mut a = Zcu102Board::new(0);
        let mut b = Zcu102Board::new(0);
        a.set_load(LoadProfile::nominal());
        b.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();
        let pa = host.read_pout(&mut a, 0x13).unwrap();
        let pb = host.read_pout(&mut b, 0x13).unwrap();
        assert_eq!(pa, pb, "same board sample, same seed, same read");
        let exact = a.on_chip_power_w();
        assert!((pa - exact).abs() / exact < 0.02);
    }

    #[test]
    fn different_samples_have_different_physics() {
        let mut b1 = Zcu102Board::new(1).with_exact_telemetry();
        let mut b2 = Zcu102Board::new(2).with_exact_telemetry();
        b1.set_load(LoadProfile::nominal());
        b2.set_load(LoadProfile::nominal());
        let f1 = b1.timing().fmax_true_mhz(560.0, 34.0);
        let f2 = b2.timing().fmax_true_mhz(560.0, 34.0);
        assert!((f1 - f2).abs() > 5.0, "{f1} vs {f2}");
    }

    #[test]
    fn unknown_address_is_no_device() {
        let mut b = board();
        assert!(matches!(
            b.read_word(0x33, CommandCode::ReadPout),
            Err(PmbusError::NoDevice { .. })
        ));
    }

    #[test]
    fn higher_crash_margin_hangs_earlier() {
        // Fig. 8: the pruned design's Vcrash is 555 mV vs the dense 540 mV.
        let mut b = board();
        b.set_crash_slack_ratio(0.80);
        b.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();
        let _ = host.set_vout(&mut b, 0x13, 0.552);
        assert!(b.is_crashed(), "fragile workload should hang above 540 mV");
    }
}

//! Critical-path timing model.
//!
//! Undervolting slows CMOS paths; once the binding critical path no longer
//! fits in the clock period, timing faults appear (bit-flips in memories,
//! logic violations in datapaths — §2.2), and far past that point the
//! control plane itself fails and the board hangs (Vcrash). This module
//! models the *true maximum clock* `Fmax(V, T)` of the mapped design as a
//! calibrated multi-path surface (see [`crate::calib::FMAX_ANCHORS_MV_MHZ`])
//! with per-board process variation and the inverse thermal dependence
//! (ITD) of contemporary nodes: higher temperature → *lower* delay (§7.2).

use crate::calib;
use crate::variation::BoardCorner;
use redvolt_num::pchip::Pchip;

/// Timing surface of the mapped design on one board sample.
#[derive(Debug, Clone)]
pub struct TimingModel {
    fmax_curve: Pchip,
    corner: BoardCorner,
}

impl TimingModel {
    /// Builds the timing model for a board corner.
    pub fn new(corner: BoardCorner) -> Self {
        let (xs, ys): (Vec<f64>, Vec<f64>) = calib::FMAX_ANCHORS_MV_MHZ.iter().copied().unzip();
        let fmax_curve = Pchip::new(&xs, &ys).expect("calibration anchors are valid knots");
        TimingModel { fmax_curve, corner }
    }

    /// The board corner this model was built for.
    pub fn corner(&self) -> BoardCorner {
        self.corner
    }

    /// True maximum clock (MHz) of the binding critical path at the given
    /// VCCINT voltage (mV) and junction temperature (°C).
    ///
    /// Applies the board's rigid voltage offset and delay factor, then the
    /// ITD correction: delay shrinks by [`calib::ITD_PER_C`] per °C above
    /// the reference temperature, so `Fmax` *rises* slightly with
    /// temperature.
    pub fn fmax_true_mhz(&self, vccint_mv: f64, temp_c: f64) -> f64 {
        let v_eff = vccint_mv - self.corner.voltage_offset_mv;
        let base = self.fmax_curve.eval(v_eff).max(0.0);
        let itd = 1.0 - calib::ITD_PER_C * (temp_c - calib::T_REF_C);
        // delay = corner.delay_factor * itd / base  =>  fmax = base/(df*itd)
        let denom = (self.corner.delay_factor * itd).max(1e-6);
        base / denom
    }

    /// Relative slack deficit of running at `f_mhz`: 0 when the clock fits
    /// (`f ≤ Fmax`), otherwise `f/Fmax − 1`. The fault model in
    /// `redvolt-faults` maps this deficit to per-operation fault rates.
    pub fn slack_deficit(&self, vccint_mv: f64, f_mhz: f64, temp_c: f64) -> f64 {
        let fmax = self.fmax_true_mhz(vccint_mv, temp_c);
        if fmax <= 0.0 {
            return f64::INFINITY;
        }
        (f_mhz / fmax - 1.0).max(0.0)
    }

    /// Whether the design still responds (has not hung) at this operating
    /// point. `crash_slack_ratio` is workload-dependent (regular dataflow
    /// designs tolerate more deficit than irregular ones; the paper's
    /// pruned VGGNet hangs 15 mV earlier than the dense one — Fig. 8).
    pub fn responds(
        &self,
        vccint_mv: f64,
        f_mhz: f64,
        temp_c: f64,
        crash_slack_ratio: f64,
    ) -> bool {
        if f_mhz <= 0.0 {
            return true;
        }
        self.fmax_true_mhz(vccint_mv, temp_c) / f_mhz >= crash_slack_ratio
    }

    /// Largest voltage (mV, within `lo..=hi` at `step_mv` granularity) at
    /// which the design hangs, i.e. the measured `Vcrash` of a downward
    /// scan — or `None` if it never hangs in the range.
    pub fn crash_voltage_mv(
        &self,
        f_mhz: f64,
        temp_c: f64,
        crash_slack_ratio: f64,
        lo_mv: f64,
        hi_mv: f64,
        step_mv: f64,
    ) -> Option<f64> {
        let mut v = hi_mv;
        while v >= lo_mv - 1e-9 {
            if !self.responds(v, f_mhz, temp_c, crash_slack_ratio) {
                return Some(v);
            }
            v -= step_mv;
        }
        None
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::new(BoardCorner::typical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::{CRASH_SLACK_RATIO, F_NOM_MHZ, T_REF_C};

    fn reference() -> TimingModel {
        TimingModel::default()
    }

    #[test]
    fn fmax_hits_calibration_anchors() {
        let t = reference();
        for &(v, f) in &calib::FMAX_ANCHORS_MV_MHZ {
            assert!(
                (t.fmax_true_mhz(v, T_REF_C) - f).abs() < 1e-6,
                "anchor ({v}, {f})"
            );
        }
    }

    #[test]
    fn no_deficit_at_or_above_vmin() {
        let t = reference();
        let mut v = 570.0;
        while v <= 850.0 {
            assert_eq!(t.slack_deficit(v, F_NOM_MHZ, T_REF_C), 0.0, "at {v}");
            v += 5.0;
        }
    }

    #[test]
    fn deficit_grows_monotonically_below_vmin() {
        let t = reference();
        let mut prev = t.slack_deficit(570.0, F_NOM_MHZ, T_REF_C);
        let mut v = 565.0;
        while v >= 530.0 {
            let d = t.slack_deficit(v, F_NOM_MHZ, T_REF_C);
            assert!(d > prev, "deficit should grow at {v}: {d} <= {prev}");
            prev = d;
            v -= 5.0;
        }
    }

    #[test]
    fn board0_crashes_just_below_540() {
        let t = reference();
        assert!(t.responds(540.0, F_NOM_MHZ, T_REF_C, CRASH_SLACK_RATIO));
        assert!(!t.responds(535.0, F_NOM_MHZ, T_REF_C, CRASH_SLACK_RATIO));
        let vcrash = t
            .crash_voltage_mv(F_NOM_MHZ, T_REF_C, CRASH_SLACK_RATIO, 500.0, 850.0, 5.0)
            .unwrap();
        assert_eq!(vcrash, 535.0);
    }

    #[test]
    fn lower_frequency_survives_lower_voltage() {
        // Table 2's last row: (540 mV, 200 MHz) runs fault-free.
        let t = reference();
        assert_eq!(t.slack_deficit(540.0, 200.0, T_REF_C), 0.0);
        assert!(t.responds(535.0, 200.0, T_REF_C, CRASH_SLACK_RATIO));
    }

    #[test]
    fn itd_raises_fmax_with_temperature() {
        let t = reference();
        let cold = t.fmax_true_mhz(560.0, 34.0);
        let hot = t.fmax_true_mhz(560.0, 52.0);
        assert!(hot > cold, "ITD: {hot} should exceed {cold}");
        // ... but only by ~1%, so Vmin is stable at 5 mV granularity (§7.3).
        assert!(hot / cold < 1.02);
    }

    #[test]
    fn board_corners_spread_vmin_by_about_31mv() {
        // Measured Vmin = lowest 5 mV step with zero deficit at 333 MHz.
        let vmin_of = |sample: u32| -> f64 {
            let t = TimingModel::new(BoardCorner::for_sample(sample));
            let mut v = 850.0;
            while t.slack_deficit(v - 5.0, F_NOM_MHZ, T_REF_C) == 0.0 {
                v -= 5.0;
            }
            v
        };
        let vmins: Vec<f64> = (0..3).map(vmin_of).collect();
        let spread = vmins.iter().cloned().fold(f64::MIN, f64::max)
            - vmins.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (20.0..=45.0).contains(&spread),
            "ΔVmin = {spread} (paper: 31 mV); vmins = {vmins:?}"
        );
        // Mean close to the paper's 570 mV.
        let mean = vmins.iter().sum::<f64>() / 3.0;
        assert!((mean - 570.0).abs() <= 10.0, "mean Vmin = {mean}");
    }

    #[test]
    fn board_corners_spread_vcrash_less_than_vmin() {
        let vcrash_of = |sample: u32| -> f64 {
            TimingModel::new(BoardCorner::for_sample(sample))
                .crash_voltage_mv(F_NOM_MHZ, T_REF_C, CRASH_SLACK_RATIO, 480.0, 850.0, 5.0)
                .unwrap()
                + 5.0 // last responding step
        };
        let vs: Vec<f64> = (0..3).map(vcrash_of).collect();
        let spread = vs.iter().cloned().fold(f64::MIN, f64::max)
            - vs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (10.0..=30.0).contains(&spread),
            "ΔVcrash = {spread} (paper: 18 mV); vcrash = {vs:?}"
        );
    }

    #[test]
    fn crash_voltage_none_when_always_responsive() {
        let t = reference();
        assert_eq!(
            t.crash_voltage_mv(100.0, T_REF_C, CRASH_SLACK_RATIO, 540.0, 850.0, 5.0),
            None
        );
    }
}

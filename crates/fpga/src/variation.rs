//! Per-board process variation.
//!
//! The paper repeats every experiment on three identical ZCU102 samples and
//! observes a 31 mV spread in Vmin and an 18 mV spread in Vcrash, which it
//! attributes to process variation. We model each board sample as a small
//! perturbation of the reference timing/leakage surfaces: a rigid voltage
//! offset plus a multiplicative delay factor (and a leakage factor for the
//! power model). The first three samples use fixed fitted corners
//! ([`crate::calib::BOARD_CORNERS`]); further samples draw corners from a
//! seeded distribution of the same magnitude, so large fleets can be
//! simulated.

use crate::calib;
use redvolt_num::rng::Xoshiro256StarStar;

/// Process-variation corner of one board sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoardCorner {
    /// Index of the physical sample (0, 1, 2 are the paper's boards).
    pub sample: u32,
    /// Rigid shift of the delay-vs-voltage curve, in mV: board delay at
    /// `V` equals reference delay at `V - voltage_offset_mv`.
    pub voltage_offset_mv: f64,
    /// Multiplicative factor on all path delays (slow corner > 1).
    pub delay_factor: f64,
    /// Multiplicative factor on leakage power (fast corners leak more).
    pub leakage_factor: f64,
}

impl BoardCorner {
    /// Returns the corner for board `sample`.
    ///
    /// Samples 0–2 are the paper's three boards with fitted corners;
    /// higher samples are drawn deterministically from the seeded
    /// distribution (σ matching the fitted spread).
    pub fn for_sample(sample: u32) -> Self {
        if let Some(&(off, df, lf)) = calib::BOARD_CORNERS.get(sample as usize) {
            return BoardCorner {
                sample,
                voltage_offset_mv: off,
                delay_factor: df,
                leakage_factor: lf,
            };
        }
        let mut rng = Xoshiro256StarStar::seed_from(0x5A_C102).substream(u64::from(sample));
        BoardCorner {
            sample,
            voltage_offset_mv: rng.next_gaussian(0.0, 6.0).clamp(-15.0, 15.0),
            delay_factor: rng.next_gaussian(1.0, 0.025).clamp(0.93, 1.07),
            leakage_factor: rng.next_gaussian(1.0, 0.05).clamp(0.85, 1.15),
        }
    }

    /// The reference (typical) corner, used when variation is disabled.
    pub fn typical() -> Self {
        BoardCorner {
            sample: 0,
            voltage_offset_mv: 0.0,
            delay_factor: 1.0,
            leakage_factor: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_boards_use_fixed_corners() {
        let b0 = BoardCorner::for_sample(0);
        assert_eq!(b0.voltage_offset_mv, 0.0);
        assert_eq!(b0.delay_factor, 1.0);
        let b1 = BoardCorner::for_sample(1);
        let b2 = BoardCorner::for_sample(2);
        assert!(b1.voltage_offset_mv < 0.0 && b2.voltage_offset_mv > 0.0);
        assert!(b1.delay_factor < 1.0 && b2.delay_factor > 1.0);
    }

    #[test]
    fn extra_samples_are_deterministic() {
        let a = BoardCorner::for_sample(7);
        let b = BoardCorner::for_sample(7);
        assert_eq!(a, b);
    }

    #[test]
    fn extra_samples_differ_from_each_other() {
        let a = BoardCorner::for_sample(3);
        let b = BoardCorner::for_sample(4);
        assert_ne!(a, b);
    }

    #[test]
    fn extra_samples_stay_in_plausible_corners() {
        for s in 3..200 {
            let c = BoardCorner::for_sample(s);
            assert!(c.voltage_offset_mv.abs() <= 15.0, "{c:?}");
            assert!((0.93..=1.07).contains(&c.delay_factor), "{c:?}");
            assert!((0.85..=1.15).contains(&c.leakage_factor), "{c:?}");
        }
    }
}

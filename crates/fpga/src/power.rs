//! Calibrated rail power model.
//!
//! On-chip power on the ZCU102 is dominated by `VCCINT` (> 99.9 %, §4.1 —
//! UltraScale+ BRAMs are dynamically power-gated, so `VCCBRAM` draws almost
//! nothing). The `VCCINT` model is a sum of
//!
//! * **activity switching** — proportional to achieved operations per
//!   second (MAC arrays, operand movement), scaled by the per-operation
//!   energy factor of the operand precision;
//! * **DPU clock tree** — proportional to the DPU clock;
//! * **fixed-clock logic** — DDR controller, interconnect, PS↔PL bridges;
//! * **leakage** — exponential in temperature, steeply falling in voltage.
//!
//! All dynamic components share the measured voltage-scaling curve
//! [`crate::calib::DYN_SCALE_ANCHORS_MV_FRAC`] (real silicon drops faster
//! than the textbook V² because short-circuit and glitch power shrink as
//! edges slow); leakage uses [`crate::calib::LEAK_ANCHORS_MV_W`]. Both are
//! anchored to the paper's Fig. 5 / Table 2 / Fig. 9 numbers.

use crate::calib;
use crate::rails::RailId;
use crate::variation::BoardCorner;
use redvolt_num::pchip::Pchip;

/// What the mapped design is currently doing, as seen by the power model.
///
/// The DPU runtime publishes this to the board so that telemetry reads
/// reflect the running workload, the way current sensors on the real board
/// see the live load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadProfile {
    /// DPU fabric clock in MHz.
    pub f_mhz: f64,
    /// Achieved operations per second, normalized to the nominal operating
    /// point (1.0 = the benchmark's throughput at 333 MHz). Zero when idle.
    pub ops_rate_norm: f64,
    /// Per-operation energy factor of the operand precision
    /// (`(bits/8)^QUANT_ENERGY_EXP`; 1.0 for INT8).
    pub energy_per_op_factor: f64,
    /// Workload critical-path factor: how much harder this workload's
    /// instruction mix drives the binding paths relative to the reference
    /// design (1.0). FC-heavy kernels exercise the long DSP cascades
    /// slightly harder, which is the paper's "slight workload-to-workload
    /// variation" of the voltage regions (Fig. 3).
    pub critical_path_factor: f64,
}

impl LoadProfile {
    /// The baseline profile: INT8 at the nominal clock, full throughput.
    pub fn nominal() -> Self {
        LoadProfile {
            f_mhz: calib::F_NOM_MHZ,
            ops_rate_norm: 1.0,
            energy_per_op_factor: 1.0,
            critical_path_factor: 1.0,
        }
    }

    /// An idle design: clocks toggling, no operations retiring.
    pub fn idle() -> Self {
        LoadProfile {
            f_mhz: calib::F_NOM_MHZ,
            ops_rate_norm: 0.0,
            energy_per_op_factor: 1.0,
            critical_path_factor: 1.0,
        }
    }

    /// Per-operation energy factor for an INT-`bits` datapath.
    pub fn energy_factor_for_bits(bits: u32) -> f64 {
        (f64::from(bits) / 8.0).powf(calib::QUANT_ENERGY_EXP)
    }
}

/// Energy of running `cycles` DPU cycles at `f_mhz` under `power_w`,
/// in joules: the per-batch integrand the serving layer charges boards
/// with (`P · t`, with `t = cycles / (f · 1e6)` seconds).
pub fn energy_j(power_w: f64, cycles: u64, f_mhz: f64) -> f64 {
    if f_mhz <= 0.0 {
        return 0.0;
    }
    power_w * (cycles as f64 / (f_mhz * 1e6))
}

/// Per-board cumulative energy meter.
///
/// Accumulates in integer microjoules so additions commute exactly —
/// the same trick the telemetry histograms use — keeping fleet energy
/// totals byte-identical regardless of how charge calls interleave.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyAccount {
    microjoules: u64,
    charges: u64,
}

impl EnergyAccount {
    /// An empty account.
    pub fn new() -> Self {
        EnergyAccount::default()
    }

    /// Charges the energy of `cycles` DPU cycles at `f_mhz` under
    /// `power_w` and returns the charged amount in joules.
    pub fn charge(&mut self, power_w: f64, cycles: u64, f_mhz: f64) -> f64 {
        let joules = energy_j(power_w, cycles, f_mhz);
        self.microjoules += (joules.max(0.0) * 1e6).round() as u64;
        self.charges += 1;
        joules
    }

    /// Total charged energy, joules (exactly reproducible: reconstructed
    /// from the integer microjoule accumulator).
    pub fn total_j(&self) -> f64 {
        self.microjoules as f64 / 1e6
    }

    /// Number of charges recorded.
    pub fn charges(&self) -> u64 {
        self.charges
    }
}

/// Power model of one board sample.
#[derive(Debug, Clone)]
pub struct PowerModel {
    dyn_scale: Pchip,
    leak_w: Pchip,
    corner: BoardCorner,
    /// Total dynamic power at the nominal point, watts.
    p_dyn_nom_w: f64,
}

impl PowerModel {
    /// Builds the power model for a board corner.
    pub fn new(corner: BoardCorner) -> Self {
        let (xs, ys): (Vec<f64>, Vec<f64>) =
            calib::DYN_SCALE_ANCHORS_MV_FRAC.iter().copied().unzip();
        let dyn_scale = Pchip::new(&xs, &ys).expect("calibration anchors are valid knots");
        let (lx, ly): (Vec<f64>, Vec<f64>) = calib::LEAK_ANCHORS_MV_W.iter().copied().unzip();
        let leak_w = Pchip::new(&lx, &ly).expect("calibration anchors are valid knots");
        let p_vccint_nom = calib::P_ONCHIP_NOM_W * (1.0 - calib::P_BRAM_SHARE);
        let leak_nom = leak_w.eval(calib::VNOM_MV);
        PowerModel {
            dyn_scale,
            leak_w,
            corner,
            p_dyn_nom_w: p_vccint_nom - leak_nom,
        }
    }

    /// Leakage power on `VCCINT` (watts) at the given voltage (mV) and
    /// junction temperature (°C), including the board's leakage corner.
    pub fn leakage_w(&self, vccint_mv: f64, temp_c: f64) -> f64 {
        let base = self.leak_w.eval(vccint_mv).max(0.0);
        let theta = (calib::LEAK_TEMP_PER_C * (temp_c - calib::T_REF_C)).exp();
        base * theta * self.corner.leakage_factor
    }

    /// Dynamic power on `VCCINT` (watts) for the given load.
    pub fn dynamic_w(&self, vccint_mv: f64, load: &LoadProfile) -> f64 {
        let scale = self.dyn_scale.eval(vccint_mv).max(0.0);
        let w = calib::DYN_SHARE_ACTIVITY * load.ops_rate_norm * load.energy_per_op_factor
            + calib::DYN_SHARE_CLOCK * (load.f_mhz / calib::F_NOM_MHZ)
            + calib::DYN_SHARE_FIXED;
        self.p_dyn_nom_w * w * scale
    }

    /// Total `VCCINT` power in watts.
    pub fn vccint_w(&self, vccint_mv: f64, temp_c: f64, load: &LoadProfile) -> f64 {
        self.dynamic_w(vccint_mv, load) + self.leakage_w(vccint_mv, temp_c)
    }

    /// `VCCBRAM` power in watts (power-gated BRAMs; CV² of a tiny load).
    pub fn vccbram_w(&self, vccbram_mv: f64) -> f64 {
        let v = vccbram_mv / calib::VNOM_MV;
        calib::P_ONCHIP_NOM_W * calib::P_BRAM_SHARE * v * v
    }

    /// Total on-chip (PL rails) power in watts — the quantity the paper
    /// reports as 12.59 W at the nominal point.
    pub fn on_chip_w(
        &self,
        vccint_mv: f64,
        vccbram_mv: f64,
        temp_c: f64,
        load: &LoadProfile,
    ) -> f64 {
        self.vccint_w(vccint_mv, temp_c, load) + self.vccbram_w(vccbram_mv)
    }

    /// Telemetry power of an off-focus rail (fixed board-level load).
    pub fn fixed_rail_w(&self, rail: RailId) -> f64 {
        rail.fixed_load_w()
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::new(BoardCorner::typical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::{P_ONCHIP_NOM_W, T_REF_C, VNOM_MV};

    fn model() -> PowerModel {
        PowerModel::default()
    }

    #[test]
    fn energy_account_accumulates_exactly() {
        let mut acct = EnergyAccount::new();
        // 10 W for 333e6 cycles at 333 MHz = 10 J.
        let j = acct.charge(10.0, 333_000_000, 333.0);
        assert!((j - 10.0).abs() < 1e-9);
        // Halving the clock doubles the time, hence the energy.
        acct.charge(10.0, 333_000_000, 166.5);
        assert!((acct.total_j() - 30.0).abs() < 1e-6);
        assert_eq!(acct.charges(), 2);
        assert_eq!(energy_j(10.0, 1000, 0.0), 0.0, "idle clock charges nothing");
    }

    #[test]
    fn nominal_on_chip_power_matches_paper() {
        let p = model().on_chip_w(VNOM_MV, VNOM_MV, T_REF_C, &LoadProfile::nominal());
        assert!((p - P_ONCHIP_NOM_W).abs() < 0.02, "P = {p}");
    }

    #[test]
    fn vccint_dominates_on_chip_power() {
        let m = model();
        let int = m.vccint_w(VNOM_MV, T_REF_C, &LoadProfile::nominal());
        let total = m.on_chip_w(VNOM_MV, VNOM_MV, T_REF_C, &LoadProfile::nominal());
        assert!(int / total > 0.999, "VCCINT share = {}", int / total);
    }

    #[test]
    fn guardband_elimination_gives_2_6x() {
        // Fig. 5: power-efficiency ×2.6 at Vmin at unchanged throughput.
        let m = model();
        let nom = m.vccint_w(VNOM_MV, T_REF_C, &LoadProfile::nominal());
        let vmin = m.vccint_w(570.0, T_REF_C, &LoadProfile::nominal());
        let gain = nom / vmin;
        assert!((gain - 2.6).abs() < 0.05, "gain = {gain}");
    }

    #[test]
    fn vcrash_gain_exceeds_3x() {
        // Fig. 5: > 3× at Vcrash = 540 mV (full clock).
        let m = model();
        let nom = m.vccint_w(VNOM_MV, T_REF_C, &LoadProfile::nominal());
        let crash = m.vccint_w(540.0, T_REF_C, &LoadProfile::nominal());
        let gain = nom / crash;
        assert!(gain > 3.0 && gain < 4.2, "gain = {gain}");
    }

    #[test]
    fn table2_last_row_power_norm() {
        // (540 mV, 200 MHz, GOPs 0.70) should draw ≈0.56 of the Vmin power.
        let m = model();
        let base = m.vccint_w(570.0, T_REF_C, &LoadProfile::nominal());
        let row = m.vccint_w(
            540.0,
            T_REF_C,
            &LoadProfile {
                f_mhz: 200.0,
                ops_rate_norm: 0.70,
                energy_per_op_factor: 1.0,
                critical_path_factor: 1.0,
            },
        );
        let norm = row / base;
        assert!((norm - 0.56).abs() < 0.02, "norm = {norm}");
    }

    #[test]
    fn power_is_monotone_in_voltage() {
        let m = model();
        let load = LoadProfile::nominal();
        let mut prev = m.vccint_w(530.0, T_REF_C, &load);
        let mut v = 535.0;
        while v <= 850.0 {
            let p = m.vccint_w(v, T_REF_C, &load);
            assert!(p > prev, "power must rise with voltage at {v}");
            prev = p;
            v += 5.0;
        }
    }

    #[test]
    fn temperature_sensitivity_shrinks_at_low_voltage() {
        // §7.1: +0.46% power over 34→52 °C at 850 mV, +0.15% at 650 mV.
        let m = model();
        let load = LoadProfile::nominal();
        let rel = |v: f64| {
            let cold = m.vccint_w(v, 34.0, &load);
            let hot = m.vccint_w(v, 52.0, &load);
            (hot - cold) / cold
        };
        let at850 = rel(850.0);
        let at650 = rel(650.0);
        assert!((at850 - 0.0046).abs() < 0.001, "at850 = {at850}");
        assert!((at650 - 0.0015).abs() < 0.001, "at650 = {at650}");
        assert!(at650 < at850);
    }

    #[test]
    fn idle_draws_less_than_active() {
        let m = model();
        let idle = m.vccint_w(VNOM_MV, T_REF_C, &LoadProfile::idle());
        let active = m.vccint_w(VNOM_MV, T_REF_C, &LoadProfile::nominal());
        assert!(idle < active);
        // Fixed + clock share remains: idle is not zero.
        assert!(idle > 0.3 * active);
    }

    #[test]
    fn lower_precision_draws_less_activity_power() {
        let m = model();
        let int8 = LoadProfile::nominal();
        let int4 = LoadProfile {
            energy_per_op_factor: LoadProfile::energy_factor_for_bits(4),
            ..LoadProfile::nominal()
        };
        assert!(m.vccint_w(VNOM_MV, T_REF_C, &int4) < m.vccint_w(VNOM_MV, T_REF_C, &int8));
    }

    #[test]
    fn leaky_corner_draws_more() {
        let slow = PowerModel::new(BoardCorner::for_sample(2));
        let fast = PowerModel::new(BoardCorner::for_sample(1));
        assert!(
            slow.leakage_w(VNOM_MV, T_REF_C) > fast.leakage_w(VNOM_MV, T_REF_C),
            "leakage corners should order the boards"
        );
    }

    #[test]
    fn energy_factor_ordering() {
        let e8 = LoadProfile::energy_factor_for_bits(8);
        let e4 = LoadProfile::energy_factor_for_bits(4);
        assert_eq!(e8, 1.0);
        assert!(e4 < e8 && e4 > 0.3);
    }

    #[test]
    fn bram_rail_scales_quadratically() {
        let m = model();
        let full = m.vccbram_w(850.0);
        let half = m.vccbram_w(425.0);
        assert!((half - full / 4.0).abs() < 1e-9);
    }

    #[test]
    fn table2_mid_rows_power_norm_shape() {
        // Normalized power at the Table-2 operating points must decrease
        // monotonically down the table and stay near the paper's column.
        let m = model();
        let base = m.vccint_w(570.0, T_REF_C, &LoadProfile::nominal());
        let rows = [
            (565.0, 300.0, 0.94),
            (560.0, 250.0, 0.83),
            (555.0, 250.0, 0.83),
            (550.0, 250.0, 0.83),
            (545.0, 250.0, 0.83),
            (540.0, 200.0, 0.70),
        ];
        let paper = [0.97, 0.84, 0.78, 0.75, 0.74, 0.56];
        let mut prev = 1.0;
        for ((v, f, g), want) in rows.iter().zip(paper) {
            let p = m.vccint_w(
                *v,
                T_REF_C,
                &LoadProfile {
                    f_mhz: *f,
                    ops_rate_norm: *g,
                    energy_per_op_factor: 1.0,
                    critical_path_factor: 1.0,
                },
            ) / base;
            assert!(p < prev + 1e-9, "power norm must not increase: {p} at {v}");
            assert!(
                (p - want).abs() < 0.06,
                "norm {p:.3} vs paper {want} at {v} mV"
            );
            prev = p;
        }
    }
}

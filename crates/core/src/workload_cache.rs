//! Process-wide cache of prepared (quantized + calibrated) workloads.
//!
//! [`crate::bench_suite::Workload::prepare`] is a pure function of its
//! [`WorkloadConfig`] — model synthesis, pruning, quantization and label
//! calibration all derive from the config's seed. Campaigns and the
//! figure harness bring up the same (benchmark, bits, seed) combination
//! over and over (every board sample and every figure shares the seed-42
//! baseline), so preparation dominated campaign start-up. This module
//! memoizes prepared workloads behind a bounded map.
//!
//! Design constraints:
//!
//! * **Determinism.** Hit/miss totals must not depend on worker
//!   scheduling. Each key owns a slot with *once* semantics: the first
//!   thread to claim a slot prepares (one miss), every other thread
//!   blocks on the slot and clones the result (one hit per lookup).
//!   Totals are then a pure function of the lookup multiset.
//! * **Isolation from campaign telemetry.** The hit/miss counters live in
//!   this module's own [`Registry`], *not* in the campaign's exported
//!   metrics: campaign exports are golden-tested byte-for-byte and must
//!   stay a pure function of (seed, plan), which per-process cache state
//!   is not. Inspect the counters via [`stats`] or [`metrics_registry`].
//! * **Bounded.** At most [`CAPACITY`] entries, evicted FIFO. Paper
//!   campaigns touch ~5 benchmarks × a few precision/pruning variants,
//!   so the bound exists only to keep pathological sweeps from pinning
//!   every model ever prepared.

use crate::bench_suite::{Workload, WorkloadConfig, WorkloadError};
use redvolt_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum cached workloads (FIFO eviction beyond this).
pub const CAPACITY: usize = 16;

/// Cache key: every [`WorkloadConfig`] field, with the float pruning
/// fraction keyed by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    benchmark: usize,
    bits: u32,
    tiny_scale: bool,
    prune_bits: u64,
    calib_images: usize,
    eval_images: usize,
    seed: u64,
}

impl Key {
    fn of(config: &WorkloadConfig) -> Self {
        Key {
            benchmark: crate::bench_suite::benchmark_index(config.benchmark),
            bits: config.bits,
            tiny_scale: config.scale == redvolt_nn::models::ModelScale::Tiny,
            prune_bits: config.prune_fraction.to_bits(),
            calib_images: config.calib_images,
            eval_images: config.eval_images,
            seed: config.seed,
        }
    }
}

/// A per-key slot: `None` until the claiming thread finishes preparing.
/// Holding the inner mutex across preparation gives once semantics —
/// concurrent lookups of the same key block here instead of preparing
/// twice (and instead of racing the miss counter).
type Slot = Mutex<Option<Arc<Workload>>>;

struct CacheState {
    slots: HashMap<Key, Arc<Slot>>,
    fifo: VecDeque<Key>,
}

struct Cache {
    state: Mutex<CacheState>,
    enabled: AtomicBool,
    registry: Registry,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    occupancy: Arc<Gauge>,
}

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let registry = Registry::new();
        let hits = registry.counter("redvolt_quant_cache_hits_total", &[]);
        let misses = registry.counter("redvolt_quant_cache_misses_total", &[]);
        let occupancy = registry.gauge("redvolt_quant_cache_occupancy", &[]);
        Cache {
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                fifo: VecDeque::new(),
            }),
            enabled: AtomicBool::new(true),
            registry,
            hits,
            misses,
            occupancy,
        }
    })
}

/// Cache hit/miss totals since process start (or the last [`reset`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a prepared workload.
    pub hits: u64,
    /// Lookups that had to prepare (including re-preparation after
    /// eviction or while the cache was disabled).
    pub misses: u64,
    /// Slots currently held (including in-flight preparations).
    pub occupancy: usize,
}

/// Returns `Workload::prepare(config)`, served from the cache when an
/// identically-configured workload was already prepared in this process.
///
/// The returned workload is a deep clone of the cached instance —
/// executor scratch state is per-clone, so cached bring-up is
/// indistinguishable from a fresh preparation.
///
/// # Errors
///
/// Propagates [`WorkloadError`] from preparation. Errors are not cached:
/// a failing config re-attempts (and re-counts a miss) on every lookup.
pub fn get_or_prepare(config: WorkloadConfig) -> Result<Workload, WorkloadError> {
    let c = cache();
    if !c.enabled.load(Ordering::Relaxed) {
        c.misses.inc();
        return Workload::prepare(config);
    }
    let key = Key::of(&config);
    let slot = {
        let mut state = c.state.lock().expect("workload cache poisoned");
        if let Some(slot) = state.slots.get(&key) {
            Arc::clone(slot)
        } else {
            while state.fifo.len() >= CAPACITY {
                let victim = state.fifo.pop_front().expect("fifo non-empty");
                state.slots.remove(&victim);
            }
            let slot: Arc<Slot> = Arc::new(Mutex::new(None));
            state.slots.insert(key, Arc::clone(&slot));
            state.fifo.push_back(key);
            c.occupancy.set(state.fifo.len() as f64);
            slot
        }
    };
    let mut guard = slot.lock().expect("workload slot poisoned");
    if let Some(prepared) = guard.as_ref() {
        c.hits.inc();
        return Ok(Workload::clone(prepared));
    }
    c.misses.inc();
    match Workload::prepare(config) {
        Ok(prepared) => {
            let prepared = Arc::new(prepared);
            *guard = Some(Arc::clone(&prepared));
            Ok(Workload::clone(&prepared))
        }
        Err(e) => {
            // Leave the slot empty so the next lookup retries; drop the
            // map entry so the empty slot does not pin a FIFO position.
            drop(guard);
            let mut state = c.state.lock().expect("workload cache poisoned");
            state.slots.remove(&key);
            state.fifo.retain(|k| k != &key);
            c.occupancy.set(state.fifo.len() as f64);
            Err(e)
        }
    }
}

/// Enables or disables the cache process-wide. Disabled lookups always
/// prepare fresh (and count as misses); already-cached entries are kept
/// and serve again once re-enabled.
pub fn set_enabled(on: bool) {
    cache().enabled.store(on, Ordering::Relaxed);
}

/// Whether the cache is currently enabled.
pub fn is_enabled() -> bool {
    cache().enabled.load(Ordering::Relaxed)
}

/// Current hit/miss totals.
pub fn stats() -> CacheStats {
    let c = cache();
    let occupancy = c.state.lock().expect("workload cache poisoned").fifo.len();
    CacheStats {
        hits: c.hits.get(),
        misses: c.misses.get(),
        occupancy,
    }
}

/// The cache's private metrics registry
/// (`redvolt_quant_cache_hits_total`, `redvolt_quant_cache_misses_total`,
/// `redvolt_quant_cache_occupancy`). Deliberately separate from the
/// campaign's golden-tested exports — see the module docs. The harness
/// appends these samples to the `--metrics-out` JSONL stream only, via
/// [`crate::telemetry::CampaignTelemetry::to_jsonl_with_cache_stats`].
pub fn metrics_registry() -> &'static Registry {
    &cache().registry
}

/// Clears cached workloads and re-enables the cache. Counters are
/// monotonic (Prometheus semantics) and are *not* reset.
pub fn reset() {
    let c = cache();
    let mut state = c.state.lock().expect("workload cache poisoned");
    state.slots.clear();
    state.fifo.clear();
    c.occupancy.set(0.0);
    c.enabled.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;

    // All tests share one process-global cache, so each asserts on
    // *deltas* with its own distinct seed space — and they serialize on
    // this lock, because the exact-delta assertions would otherwise race
    // with each other's counter updates.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn second_lookup_hits_and_matches_fresh_preparation() {
        let _guard = serial();
        reset();
        let config = WorkloadConfig {
            seed: 90001,
            ..WorkloadConfig::tiny(BenchmarkId::VggNet)
        };
        let before = stats();
        let first = get_or_prepare(config).unwrap();
        let second = get_or_prepare(config).unwrap();
        let after = stats();
        assert_eq!(after.misses - before.misses, 1, "one preparation");
        assert_eq!(after.hits - before.hits, 1, "one cached hit");
        let fresh = Workload::prepare(config).unwrap();
        assert_eq!(first.eval.labels, fresh.eval.labels);
        assert_eq!(second.eval.labels, fresh.eval.labels);
        assert_eq!(first.dense_equivalent_ops, fresh.dense_equivalent_ops);
    }

    #[test]
    fn different_configs_do_not_alias() {
        let _guard = serial();
        reset();
        let a = WorkloadConfig {
            seed: 90002,
            ..WorkloadConfig::tiny(BenchmarkId::VggNet)
        };
        let b = WorkloadConfig { bits: 6, ..a };
        let before = stats();
        get_or_prepare(a).unwrap();
        get_or_prepare(b).unwrap();
        let after = stats();
        assert_eq!(after.misses - before.misses, 2);
        assert_eq!(after.hits - before.hits, 0);
    }

    #[test]
    fn disabled_cache_prepares_fresh() {
        let _guard = serial();
        reset();
        let config = WorkloadConfig {
            seed: 90003,
            ..WorkloadConfig::tiny(BenchmarkId::VggNet)
        };
        set_enabled(false);
        let before = stats();
        get_or_prepare(config).unwrap();
        get_or_prepare(config).unwrap();
        let after = stats();
        set_enabled(true);
        assert_eq!(after.misses - before.misses, 2, "no caching while off");
        assert_eq!(after.hits - before.hits, 0);
    }

    #[test]
    fn concurrent_lookups_prepare_once() {
        let _guard = serial();
        reset();
        let config = WorkloadConfig {
            seed: 90004,
            ..WorkloadConfig::tiny(BenchmarkId::GoogleNet)
        };
        let before = stats();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || get_or_prepare(config).unwrap());
            }
        });
        let after = stats();
        assert_eq!(after.misses - before.misses, 1, "once semantics");
        assert_eq!(after.hits - before.hits, 3);
    }

    #[test]
    fn registry_exports_the_counters() {
        let _guard = serial();
        reset();
        let names: Vec<String> = metrics_registry()
            .samples()
            .iter()
            .map(|s| s.id.name.clone())
            .collect();
        assert!(names.iter().any(|n| n == "redvolt_quant_cache_hits_total"));
        assert!(names
            .iter()
            .any(|n| n == "redvolt_quant_cache_misses_total"));
        assert!(names.iter().any(|n| n == "redvolt_quant_cache_occupancy"));
    }

    #[test]
    fn occupancy_tracks_held_slots() {
        let _guard = serial();
        reset();
        assert_eq!(stats().occupancy, 0);
        let a = WorkloadConfig {
            seed: 90005,
            ..WorkloadConfig::tiny(BenchmarkId::VggNet)
        };
        get_or_prepare(a).unwrap();
        assert_eq!(stats().occupancy, 1);
        get_or_prepare(a).unwrap();
        assert_eq!(stats().occupancy, 1, "hits do not grow the cache");
        let b = WorkloadConfig { seed: 90006, ..a };
        get_or_prepare(b).unwrap();
        assert_eq!(stats().occupancy, 2);
        reset();
        assert_eq!(stats().occupancy, 0);
    }
}

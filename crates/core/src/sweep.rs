//! Voltage sweep campaigns (the backbone of Figs. 4–6).

use crate::experiment::{Accelerator, MeasureError, Measurement};

/// Configuration of a downward voltage sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// First (highest) `VCCINT` in mV.
    pub start_mv: f64,
    /// Lowest voltage to attempt, mV.
    pub stop_mv: f64,
    /// Step size, mV (the paper scans in 5 mV steps near the critical
    /// region and coarser above the guardband).
    pub step_mv: f64,
    /// Evaluation images per point.
    pub images: usize,
}

impl SweepConfig {
    /// The paper's full sweep: nominal down to past Vcrash in 5 mV steps.
    pub fn full() -> Self {
        SweepConfig {
            start_mv: 850.0,
            stop_mv: 500.0,
            step_mv: 5.0,
            images: 100,
        }
    }

    /// A coarse sweep for tests.
    pub fn coarse(images: usize) -> Self {
        SweepConfig {
            start_mv: 850.0,
            stop_mv: 520.0,
            step_mv: 20.0,
            images,
        }
    }
}

/// Result of a downward voltage sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSweep {
    /// Successful measurements, highest voltage first.
    pub points: Vec<Measurement>,
    /// Voltage at which the board hung, if the sweep reached it.
    pub crashed_at_mv: Option<f64>,
}

impl VoltageSweep {
    /// The measurement at (or nearest below) a commanded voltage.
    pub fn at_mv(&self, mv: f64) -> Option<&Measurement> {
        self.points
            .iter()
            .find(|m| (m.vccint_mv - mv).abs() < 1e-6)
    }

    /// The nominal (first) point.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn nominal(&self) -> &Measurement {
        self.points.first().expect("sweep has at least one point")
    }

    /// The last responsive voltage of the sweep (the measured `Vcrash` in
    /// the paper's terminology: the lowest voltage at which the FPGA is
    /// still functional).
    pub fn last_alive_mv(&self) -> Option<f64> {
        self.points.last().map(|m| m.vccint_mv)
    }
}

/// Runs a downward voltage sweep. Stops at the first hang (recording it)
/// or at `stop_mv`. The accelerator is power-cycled and back at nominal
/// when this returns.
///
/// # Errors
///
/// Propagates non-crash errors ([`MeasureError::Pmbus`] etc.).
pub fn voltage_sweep(
    acc: &mut Accelerator,
    cfg: &SweepConfig,
) -> Result<VoltageSweep, MeasureError> {
    let mut points = Vec::new();
    let mut crashed_at_mv = None;
    let mut mv = cfg.start_mv;
    while mv >= cfg.stop_mv - 1e-9 {
        let step_result = acc
            .set_vccint_mv(mv)
            .and_then(|()| acc.measure(cfg.images));
        match step_result {
            Ok(m) => points.push(m),
            Err(MeasureError::Crashed { vccint_mv }) => {
                crashed_at_mv = Some(vccint_mv);
                break;
            }
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        }
        mv -= cfg.step_mv;
    }
    acc.power_cycle();
    Ok(VoltageSweep {
        points,
        crashed_at_mv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;

    fn sweep() -> VoltageSweep {
        let mut acc =
            Accelerator::bring_up(&AcceleratorConfig::tiny(BenchmarkId::VggNet)).unwrap();
        voltage_sweep(
            &mut acc,
            &SweepConfig {
                start_mv: 850.0,
                stop_mv: 520.0,
                step_mv: 10.0,
                images: 16,
            },
        )
        .unwrap()
    }

    #[test]
    fn sweep_descends_and_ends_in_crash() {
        let s = sweep();
        assert!(s.points.len() > 10);
        assert!(s.crashed_at_mv.is_some(), "10 mV steps must reach Vcrash");
        let mvs: Vec<f64> = s.points.iter().map(|m| m.vccint_mv).collect();
        assert!(mvs.windows(2).all(|w| w[1] < w[0]));
        assert_eq!(s.nominal().vccint_mv, 850.0);
    }

    #[test]
    fn power_decreases_monotonically_with_voltage() {
        let s = sweep();
        for w in s.points.windows(2) {
            assert!(
                w[1].power_w < w[0].power_w + 0.08,
                "power should fall: {} -> {} at {}",
                w[0].power_w,
                w[1].power_w,
                w[1].vccint_mv
            );
        }
    }

    #[test]
    fn accuracy_flat_above_570() {
        let s = sweep();
        let nominal_acc = s.nominal().accuracy;
        for m in s.points.iter().filter(|m| m.vccint_mv >= 570.0) {
            assert_eq!(m.accuracy, nominal_acc, "at {}", m.vccint_mv);
            assert_eq!(m.injected_faults, 0);
        }
    }

    #[test]
    fn accelerator_is_restored_after_sweep() {
        let mut acc =
            Accelerator::bring_up(&AcceleratorConfig::tiny(BenchmarkId::VggNet)).unwrap();
        voltage_sweep(&mut acc, &SweepConfig::coarse(8)).unwrap();
        assert!(!acc.board().is_crashed());
        assert_eq!(acc.vccint_mv(), 850.0);
    }
}

//! Voltage sweep campaigns (the backbone of Figs. 4–6).

use crate::experiment::{Accelerator, MeasureError, Measurement};

/// Configuration of a downward voltage sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// First (highest) `VCCINT` in mV.
    pub start_mv: f64,
    /// Lowest voltage to attempt, mV.
    pub stop_mv: f64,
    /// Step size, mV (the paper scans in 5 mV steps near the critical
    /// region and coarser above the guardband).
    pub step_mv: f64,
    /// Evaluation images per point.
    pub images: usize,
}

impl SweepConfig {
    /// The paper's full sweep: nominal down to past Vcrash in 5 mV steps.
    pub fn full() -> Self {
        SweepConfig {
            start_mv: 850.0,
            stop_mv: 500.0,
            step_mv: 5.0,
            images: 100,
        }
    }

    /// A coarse sweep for tests.
    pub fn coarse(images: usize) -> Self {
        SweepConfig {
            start_mv: 850.0,
            stop_mv: 520.0,
            step_mv: 20.0,
            images,
        }
    }

    /// The voltages this sweep commands, highest first: `start_mv`,
    /// `start_mv - step_mv`, … down to the last value `>= stop_mv` (with a
    /// 1 nV slack so accumulated float error cannot drop the final point).
    ///
    /// This enumeration is the unit the campaign executor shards over, so
    /// its edge cases are pinned by tests: a stop above the start yields an
    /// empty sweep, `start == stop` yields exactly one point, and a step
    /// that does not divide the span still includes the last in-range
    /// voltage rather than overshooting below `stop_mv`.
    ///
    /// # Panics
    ///
    /// Panics if `step_mv` is not a positive finite number.
    pub fn voltages_mv(&self) -> Vec<f64> {
        assert!(
            self.step_mv > 0.0 && self.step_mv.is_finite(),
            "step_mv must be positive and finite: {}",
            self.step_mv
        );
        let mut voltages = Vec::new();
        let mut mv = self.start_mv;
        while mv >= self.stop_mv - 1e-9 {
            voltages.push(mv);
            mv -= self.step_mv;
        }
        voltages
    }

    /// Number of points [`SweepConfig::voltages_mv`] enumerates.
    pub fn point_count(&self) -> usize {
        if self.start_mv < self.stop_mv - 1e-9 {
            return 0;
        }
        ((self.start_mv - self.stop_mv) / self.step_mv + 1e-9) as usize + 1
    }
}

/// Result of a downward voltage sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSweep {
    /// Successful measurements, highest voltage first.
    pub points: Vec<Measurement>,
    /// Voltage at which the board hung, if the sweep reached it.
    pub crashed_at_mv: Option<f64>,
}

impl VoltageSweep {
    /// The measurement at (or nearest below) a commanded voltage.
    pub fn at_mv(&self, mv: f64) -> Option<&Measurement> {
        self.points.iter().find(|m| (m.vccint_mv - mv).abs() < 1e-6)
    }

    /// The nominal (first) point.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn nominal(&self) -> &Measurement {
        self.points.first().expect("sweep has at least one point")
    }

    /// The last responsive voltage of the sweep (the measured `Vcrash` in
    /// the paper's terminology: the lowest voltage at which the FPGA is
    /// still functional).
    pub fn last_alive_mv(&self) -> Option<f64> {
        self.points.last().map(|m| m.vccint_mv)
    }
}

/// Runs a downward voltage sweep. Stops at the first hang (recording it)
/// or at `stop_mv`. The accelerator is power-cycled and back at nominal
/// when this returns.
///
/// # Errors
///
/// Propagates non-crash errors ([`MeasureError::Pmbus`] etc.).
pub fn voltage_sweep(
    acc: &mut Accelerator,
    cfg: &SweepConfig,
) -> Result<VoltageSweep, MeasureError> {
    let mut points = Vec::new();
    let mut crashed_at_mv = None;
    for mv in cfg.voltages_mv() {
        let step_result = acc.set_vccint_mv(mv).and_then(|()| acc.measure(cfg.images));
        match step_result {
            Ok(m) => points.push(m),
            Err(MeasureError::Crashed { vccint_mv }) => {
                crashed_at_mv = Some(vccint_mv);
                break;
            }
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        }
    }
    acc.power_cycle();
    Ok(VoltageSweep {
        points,
        crashed_at_mv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;

    fn sweep() -> VoltageSweep {
        let mut acc = Accelerator::bring_up(&AcceleratorConfig::tiny(BenchmarkId::VggNet)).unwrap();
        voltage_sweep(
            &mut acc,
            &SweepConfig {
                start_mv: 850.0,
                stop_mv: 520.0,
                step_mv: 10.0,
                images: 16,
            },
        )
        .unwrap()
    }

    fn steps(start_mv: f64, stop_mv: f64, step_mv: f64) -> SweepConfig {
        SweepConfig {
            start_mv,
            stop_mv,
            step_mv,
            images: 1,
        }
    }

    #[test]
    fn enumeration_counts_divisible_span() {
        // 850 → 520 in 5s: 67 points, both endpoints included.
        let cfg = steps(850.0, 520.0, 5.0);
        let v = cfg.voltages_mv();
        assert_eq!(v.len(), 67);
        assert_eq!(cfg.point_count(), 67);
        assert_eq!(v[0], 850.0);
        assert_eq!(*v.last().unwrap(), 520.0);
    }

    #[test]
    fn enumeration_stop_below_start_is_empty() {
        let cfg = steps(520.0, 850.0, 5.0);
        assert!(cfg.voltages_mv().is_empty());
        assert_eq!(cfg.point_count(), 0);
    }

    #[test]
    fn enumeration_single_point_when_start_equals_stop() {
        let cfg = steps(850.0, 850.0, 5.0);
        assert_eq!(cfg.voltages_mv(), vec![850.0]);
        assert_eq!(cfg.point_count(), 1);
    }

    #[test]
    fn enumeration_non_divisible_step_keeps_last_in_range_point() {
        // 850 → 520 in 7s: the last in-range point is 850 - 47·7 = 521;
        // the next step (514) would overshoot below stop and is excluded.
        let cfg = steps(850.0, 520.0, 7.0);
        let v = cfg.voltages_mv();
        assert_eq!(v.len(), 48);
        assert_eq!(cfg.point_count(), 48);
        assert_eq!(*v.last().unwrap(), 521.0);
        assert!(v.iter().all(|&mv| mv >= 520.0));
    }

    #[test]
    fn enumeration_sub_unit_step_accumulates_no_float_drift() {
        // 0.1 is inexact in binary; 3301 accumulated subtractions must not
        // lose the final 520.0 point to rounding.
        let cfg = steps(850.0, 520.0, 0.1);
        let v = cfg.voltages_mv();
        assert_eq!(v.len(), 3301);
        assert_eq!(cfg.point_count(), 3301);
        assert!((v.last().unwrap() - 520.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "step_mv must be positive")]
    fn enumeration_rejects_non_positive_step() {
        steps(850.0, 520.0, 0.0).voltages_mv();
    }

    #[test]
    fn sweep_descends_and_ends_in_crash() {
        let s = sweep();
        assert!(s.points.len() > 10);
        assert!(s.crashed_at_mv.is_some(), "10 mV steps must reach Vcrash");
        let mvs: Vec<f64> = s.points.iter().map(|m| m.vccint_mv).collect();
        assert!(mvs.windows(2).all(|w| w[1] < w[0]));
        assert_eq!(s.nominal().vccint_mv, 850.0);
    }

    #[test]
    fn power_decreases_monotonically_with_voltage() {
        let s = sweep();
        for w in s.points.windows(2) {
            assert!(
                w[1].power_w < w[0].power_w + 0.08,
                "power should fall: {} -> {} at {}",
                w[0].power_w,
                w[1].power_w,
                w[1].vccint_mv
            );
        }
    }

    #[test]
    fn accuracy_flat_above_570() {
        let s = sweep();
        let nominal_acc = s.nominal().accuracy;
        for m in s.points.iter().filter(|m| m.vccint_mv >= 570.0) {
            assert_eq!(m.accuracy, nominal_acc, "at {}", m.vccint_mv);
            assert_eq!(m.injected_faults, 0);
        }
    }

    #[test]
    fn accelerator_is_restored_after_sweep() {
        let mut acc = Accelerator::bring_up(&AcceleratorConfig::tiny(BenchmarkId::VggNet)).unwrap();
        voltage_sweep(&mut acc, &SweepConfig::coarse(8)).unwrap();
        assert!(!acc.board().is_crashed());
        assert_eq!(acc.vccint_mv(), 850.0);
    }
}

//! The DSN-2020 undervolting measurement methodology as a library.
//!
//! Every experiment of the paper is a campaign in this crate, driven
//! against the simulated ZCU102 + DPU stack:
//!
//! * [`bench_suite`] — the five Table-1 benchmarks packaged as workloads.
//! * [`experiment`] — [`experiment::Accelerator`], the accelerator under
//!   test: PMBus voltage control, averaged telemetry measurements.
//! * [`sweep`] — downward voltage sweeps (Figs. 4–6).
//! * [`guardband`] — Vmin / Vcrash searches and region sizes (Fig. 3).
//! * [`executor`] — the parallel campaign executor: deterministic
//!   sharding of independent (board × benchmark × config) cells across
//!   `std::thread::scope` workers with per-cell derived seeds.
//! * [`supervisor`] — the crash-resilient layer over the executor: panic
//!   isolation, wall-clock/cycle-budget watchdogs, reboot-and-retry.
//! * [`journal`] — the write-ahead journal behind `--resume`.
//! * [`efficiency`] — GOPs/W gain analysis (Fig. 5 headline numbers).
//! * [`freqscale`] — the Table-2 frequency-underscaling flow (§5).
//! * [`quantexp`] — undervolting × quantization (Fig. 7, §6.1).
//! * [`mitigation`] — Razor-style detect-and-retry below the guardband
//!   (the paper's §9 future-work item i).
//! * [`governor`] — a closed-loop minimum-voltage tracker (§9 item ii).
//! * [`bramexp`] — the BRAM-rail separation study (§4.1 discussion).
//! * [`pruneexp`] — undervolting × pruning (Fig. 8, §6.2).
//! * [`tempexp`] — temperature effects (Figs. 9 & 10, §7).
//! * [`report`] — plain-text / CSV emitters used by the `repro` binary.
//! * [`telemetry`] — the deterministic observability layer: per-cell
//!   collection, plan-order aggregation into `redvolt-telemetry`
//!   metrics/spans, exporter plumbing and live progress.
//! * [`workload_cache`] — process-wide memoization of prepared
//!   (quantized + calibrated) workloads keyed on the full
//!   `WorkloadConfig`, with deterministic hit/miss counters.
//!
//! # Examples
//!
//! ```
//! use redvolt_core::bench_suite::BenchmarkId;
//! use redvolt_core::experiment::{Accelerator, AcceleratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut acc = Accelerator::bring_up(&AcceleratorConfig::tiny(
//!     BenchmarkId::GoogleNet,
//! ))?;
//!
//! let nominal = acc.measure(16)?;
//! acc.set_vccint_mv(600.0)?; // inside the guardband
//! let undervolted = acc.measure(16)?;
//!
//! assert!(undervolted.power_w < nominal.power_w);
//! assert_eq!(undervolted.accuracy, nominal.accuracy);
//! # Ok(())
//! # }
//! ```

pub mod bench_suite;
pub mod bramexp;
pub mod efficiency;
pub mod executor;
pub mod experiment;
pub mod freqscale;
pub mod governor;
pub mod guardband;
pub mod journal;
pub mod mitigation;
pub mod pruneexp;
pub mod quantexp;
pub mod report;
pub mod supervisor;
pub mod sweep;
pub mod telemetry;
pub mod tempexp;
pub mod workload_cache;

//! Write-ahead results journal for resumable campaigns.
//!
//! The paper's campaigns ran for days across three boards; losing a run to
//! a crash meant losing the day. The journal makes campaign progress
//! durable: one header line binding the file to a specific plan, then one
//! line per *completed* cell, appended and flushed before the result is
//! considered done. `--resume` replays the journal, skips every journaled
//! cell, and merges the rehydrated outcomes with the freshly-computed
//! remainder — byte-identical to an uninterrupted run, because per-cell
//! seeds derive from `(master_seed, cell_index)` alone.
//!
//! # Format
//!
//! ```text
//! redvolt-journal v1 <meta>
//! cell <index> attempts=<n> <payload>
//! ```
//!
//! `<meta>` identifies the producing plan (the supervisor uses
//! `seed=<master_seed> fingerprint=<fnv64 hex>`); a resume against a
//! journal whose meta differs is refused rather than silently merged.
//! `<payload>` is a single-line, space-free-except-aborted encoding of the
//! cell outcome (see [`encode_outcome`]). A truncated final line — the
//! writer died mid-append — is detected and ignored, so the cell it would
//! have recorded is simply re-run.

use crate::executor::{CampaignPlan, CellOutcome};
use crate::experiment::Measurement;
use crate::governor::{GovernorStep, GovernorTrace, RescueStep, RescueTrace};
use crate::sweep::VoltageSweep;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

/// Magic first token of a journal header.
const MAGIC: &str = "redvolt-journal";
/// Format version token.
const VERSION: &str = "v1";

/// FNV-1a 64-bit hash, the journal's plan-identity primitive (stable,
/// dependency-free, not cryptographic — it guards against mistakes, not
/// adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a plan: master seed plus every cell's label, derived
/// seed and debug-formatted spec. Two plans that could produce different
/// results get different fingerprints; a journal never merges across them.
pub fn plan_fingerprint(plan: &CampaignPlan) -> u64 {
    let mut desc = format!("seed={}", plan.master_seed);
    for (i, cell) in plan.cells().iter().enumerate() {
        desc.push_str(&format!(
            ";{}={}:{}:{:?}:{:?}:{:?}:{}",
            i,
            cell.label(),
            plan.cell_seed(i),
            cell.action,
            cell.force_temp_c,
            // Defense and governor change the cell's payload without
            // changing its label or action, so they must partition
            // journals: resuming a defended campaign from an undefended
            // journal would silently mix the two datapaths.
            cell.config.defense,
            cell.config.governor,
        ));
    }
    fnv1a(desc.as_bytes())
}

/// The supervisor's header meta for a plan.
pub fn plan_meta(plan: &CampaignPlan) -> String {
    format!(
        "seed={} fingerprint={:016x}",
        plan.master_seed,
        plan_fingerprint(plan)
    )
}

/// One journaled cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Plan index of the cell.
    pub index: usize,
    /// Attempts the cell took when it completed.
    pub attempts: u32,
    /// Encoded outcome payload (see [`encode_outcome`]).
    pub payload: String,
}

/// Append-only journal writer; every entry is flushed before
/// [`JournalWriter::append`] returns (write-ahead semantics).
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Creates a fresh journal at `path`, writing the header line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: &Path, meta: &str) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        writeln!(out, "{MAGIC} {VERSION} {meta}")?;
        out.flush()?;
        Ok(JournalWriter { out })
    }

    /// Opens an existing journal for appending (the resume path; the
    /// header is assumed already validated by [`read_journal`]).
    ///
    /// A torn final line — the previous writer died mid-append — is
    /// truncated away first. [`read_journal`] already ignores the
    /// fragment, but appending *after* it would fuse the fragment with
    /// the next entry into one malformed record, so the incomplete
    /// record is dropped on disk as well and its cell simply re-runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        use std::io::{Seek, SeekFrom};
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        if let Some(pos) = raw.iter().rposition(|&b| b == b'\n') {
            let keep = (pos + 1) as u64;
            if keep < raw.len() as u64 {
                file.set_len(keep)?;
            }
        }
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter {
            out: BufWriter::new(file),
        })
    }

    /// Appends one completed cell and flushes it to the OS before
    /// returning.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        debug_assert!(
            !entry.payload.contains('\n'),
            "journal payloads are single-line"
        );
        writeln!(
            self.out,
            "cell {} attempts={} {}",
            entry.index, entry.attempts, entry.payload
        )?;
        self.out.flush()
    }
}

/// Reads a journal, validating its header against `meta` and tolerating a
/// truncated final line. Returns the journaled cells keyed by plan index
/// (later duplicates win — a retried-and-rejournaled cell supersedes its
/// earlier record). A missing file reads as an empty journal.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] when the file exists but its
/// header is malformed or its meta does not match — resuming someone
/// else's journal corrupts both campaigns, so it is refused.
pub fn read_journal(path: &Path, meta: &str) -> io::Result<BTreeMap<usize, JournalEntry>> {
    let mut raw = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut raw)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(e),
    }
    // A truncated tail (writer died mid-append) is not an error: drop the
    // partial line, the cell re-runs.
    let complete = match raw.rfind('\n') {
        Some(end) => &raw[..=end],
        None if raw.is_empty() => return Ok(BTreeMap::new()),
        None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "journal has no complete header line",
            ))
        }
    };
    let mut lines = complete.lines();
    let header = lines.next().unwrap_or("");
    let expected = format!("{MAGIC} {VERSION} {meta}");
    if header != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("journal header mismatch: found {header:?}, expected {expected:?} — refusing to resume a different plan's journal"),
        ));
    }
    let mut entries = BTreeMap::new();
    for line in lines {
        if let Some(entry) = parse_entry(line) {
            entries.insert(entry.index, entry);
        }
    }
    Ok(entries)
}

fn parse_entry(line: &str) -> Option<JournalEntry> {
    let mut parts = line.splitn(4, ' ');
    if parts.next()? != "cell" {
        return None;
    }
    let index: usize = parts.next()?.parse().ok()?;
    let attempts: u32 = parts.next()?.strip_prefix("attempts=")?.parse().ok()?;
    let payload = parts.next()?.to_string();
    Some(JournalEntry {
        index,
        attempts,
        payload,
    })
}

/// Encodes a cell outcome as a single-line journal payload. The encoding
/// round-trips exactly ([`decode_outcome`]): floats use Rust's shortest
/// round-trip `{:?}` formatting, the same convention as
/// `CampaignReport::to_csv`, so a rehydrated outcome serializes to the
/// same bytes as the original.
pub fn encode_outcome(outcome: &CellOutcome) -> String {
    match outcome {
        CellOutcome::Measure(m) => format!("measure {}", m.csv_row()),
        CellOutcome::Sweep(s) => {
            let points = if s.points.is_empty() {
                "-".to_string()
            } else {
                s.points
                    .iter()
                    .map(Measurement::csv_row)
                    .collect::<Vec<_>>()
                    .join("|")
            };
            let crashed = match s.crashed_at_mv {
                Some(mv) => format!("{mv:?}"),
                None => "none".to_string(),
            };
            format!("sweep {points} crashed_at={crashed}")
        }
        CellOutcome::Governor(t) => {
            let steps = if t.steps.is_empty() {
                "-".to_string()
            } else {
                t.steps
                    .iter()
                    .map(|s| {
                        format!(
                            "{},{:?},{},{:?},{}",
                            s.batch,
                            s.vccint_mv,
                            s.faults,
                            s.power_w,
                            u8::from(s.crashed)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            };
            format!("governor {steps} settled={:?}", t.settled_mv)
        }
        CellOutcome::Degraded { measurement, trace } => {
            let steps = if trace.steps.is_empty() {
                "-".to_string()
            } else {
                trace
                    .steps
                    .iter()
                    .map(|s| format!("{},{:?},{:?},{}", s.window, s.f_mhz, s.vccint_mv, s.events))
                    .collect::<Vec<_>>()
                    .join("|")
            };
            format!(
                "degraded {steps} final={} rescued={}",
                measurement.csv_row(),
                u8::from(trace.rescued)
            )
        }
        CellOutcome::Aborted { cause } => {
            format!("aborted {}", cause.replace(['\n', '\r'], " "))
        }
    }
}

/// Decodes a journal payload back into a cell outcome. Returns `None` on
/// any malformed payload (the caller treats the cell as not journaled).
pub fn decode_outcome(payload: &str) -> Option<CellOutcome> {
    let (kind, rest) = payload.split_once(' ')?;
    match kind {
        "measure" => Some(CellOutcome::Measure(parse_measurement(rest)?)),
        "sweep" => {
            let (points_s, crashed_s) = rest.rsplit_once(' ')?;
            let crashed_s = crashed_s.strip_prefix("crashed_at=")?;
            let crashed_at_mv = if crashed_s == "none" {
                None
            } else {
                Some(crashed_s.parse().ok()?)
            };
            let points = if points_s == "-" {
                Vec::new()
            } else {
                points_s
                    .split('|')
                    .map(parse_measurement)
                    .collect::<Option<Vec<_>>>()?
            };
            Some(CellOutcome::Sweep(VoltageSweep {
                points,
                crashed_at_mv,
            }))
        }
        "governor" => {
            let (steps_s, settled_s) = rest.rsplit_once(' ')?;
            let settled_mv = settled_s.strip_prefix("settled=")?.parse().ok()?;
            let steps = if steps_s == "-" {
                Vec::new()
            } else {
                steps_s
                    .split('|')
                    .map(parse_governor_step)
                    .collect::<Option<Vec<_>>>()?
            };
            Some(CellOutcome::Governor(GovernorTrace { steps, settled_mv }))
        }
        "degraded" => {
            let (rest, rescued_s) = rest.rsplit_once(' ')?;
            let rescued = match rescued_s.strip_prefix("rescued=")? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            let (steps_s, final_s) = rest.rsplit_once(' ')?;
            let measurement = parse_measurement(final_s.strip_prefix("final=")?)?;
            let steps = if steps_s == "-" {
                Vec::new()
            } else {
                steps_s
                    .split('|')
                    .map(parse_rescue_step)
                    .collect::<Option<Vec<_>>>()?
            };
            Some(CellOutcome::Degraded {
                measurement,
                trace: RescueTrace { steps, rescued },
            })
        }
        "aborted" => Some(CellOutcome::Aborted {
            cause: rest.to_string(),
        }),
        _ => None,
    }
}

fn parse_measurement(row: &str) -> Option<Measurement> {
    let f: Vec<&str> = row.split(',').collect();
    if f.len() != 9 {
        return None;
    }
    Some(Measurement {
        vccint_mv: f[0].parse().ok()?,
        f_mhz: f[1].parse().ok()?,
        accuracy: f[2].parse().ok()?,
        power_w: f[3].parse().ok()?,
        gops: f[4].parse().ok()?,
        gops_per_w: f[5].parse().ok()?,
        junction_c: f[6].parse().ok()?,
        injected_faults: f[7].parse().ok()?,
        accuracy_std: f[8].parse().ok()?,
    })
}

fn parse_rescue_step(s: &str) -> Option<RescueStep> {
    let f: Vec<&str> = s.split(',').collect();
    if f.len() != 4 {
        return None;
    }
    Some(RescueStep {
        window: f[0].parse().ok()?,
        f_mhz: f[1].parse().ok()?,
        vccint_mv: f[2].parse().ok()?,
        events: f[3].parse().ok()?,
    })
}

fn parse_governor_step(s: &str) -> Option<GovernorStep> {
    let f: Vec<&str> = s.split(',').collect();
    if f.len() != 5 {
        return None;
    }
    Some(GovernorStep {
        batch: f[0].parse().ok()?,
        vccint_mv: f[1].parse().ok()?,
        faults: f[2].parse().ok()?,
        power_w: f[3].parse().ok()?,
        crashed: match f[4] {
            "0" => false,
            "1" => true,
            _ => return None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::executor::{CellAction, CellSpec};
    use crate::experiment::AcceleratorConfig;

    fn sample_measurement(seed: f64) -> Measurement {
        Measurement {
            vccint_mv: 850.0 - seed,
            f_mhz: 333.0,
            accuracy: 0.8633333333333333 + seed * 1e-6,
            power_w: 12.591234 + seed,
            gops: 1234.5678,
            gops_per_w: 98.0321,
            junction_c: 41.25,
            injected_faults: 17,
            accuracy_std: 0.001953125,
        }
    }

    #[test]
    fn outcome_codec_round_trips_every_kind() {
        let outcomes = vec![
            CellOutcome::Measure(sample_measurement(0.0)),
            CellOutcome::Sweep(VoltageSweep {
                points: vec![sample_measurement(1.0), sample_measurement(2.0)],
                crashed_at_mv: Some(540.0),
            }),
            CellOutcome::Sweep(VoltageSweep {
                points: Vec::new(),
                crashed_at_mv: None,
            }),
            CellOutcome::Governor(GovernorTrace {
                steps: vec![
                    GovernorStep {
                        batch: 0,
                        vccint_mv: 850.0,
                        faults: 0,
                        power_w: 12.5,
                        crashed: false,
                    },
                    GovernorStep {
                        batch: 1,
                        vccint_mv: 545.5,
                        faults: 3,
                        power_w: 4.321,
                        crashed: true,
                    },
                ],
                settled_mv: 570.0,
            }),
            CellOutcome::Degraded {
                measurement: sample_measurement(3.0),
                trace: RescueTrace {
                    steps: vec![
                        RescueStep {
                            window: 0,
                            f_mhz: 333.0,
                            vccint_mv: 550.0,
                            events: 12,
                        },
                        RescueStep {
                            window: 1,
                            f_mhz: 308.0,
                            vccint_mv: 550.0,
                            events: 0,
                        },
                    ],
                    rescued: true,
                },
            },
            CellOutcome::Degraded {
                measurement: sample_measurement(4.0),
                trace: RescueTrace {
                    steps: Vec::new(),
                    rescued: false,
                },
            },
            CellOutcome::Aborted {
                cause: "panic: step_mv must be positive and finite".to_string(),
            },
        ];
        for outcome in outcomes {
            let encoded = encode_outcome(&outcome);
            assert!(!encoded.contains('\n'));
            let decoded = decode_outcome(&encoded).expect(&encoded);
            assert_eq!(decoded, outcome, "payload: {encoded}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_plans() {
        let mk = |seed: u64, images: usize| {
            let mut plan = CampaignPlan::new(seed);
            plan.push(CellSpec {
                config: AcceleratorConfig::tiny(BenchmarkId::VggNet),
                action: CellAction::Measure {
                    vccint_mv: None,
                    images,
                },
                force_temp_c: None,
            });
            plan
        };
        assert_eq!(plan_fingerprint(&mk(1, 8)), plan_fingerprint(&mk(1, 8)));
        assert_ne!(plan_fingerprint(&mk(1, 8)), plan_fingerprint(&mk(2, 8)));
        assert_ne!(plan_fingerprint(&mk(1, 8)), plan_fingerprint(&mk(1, 9)));
    }

    #[test]
    fn fingerprint_partitions_defense_and_governor() {
        use redvolt_nn::abft::DefenseMode;
        let mk = |defense: DefenseMode, governor: bool| {
            let mut plan = CampaignPlan::new(1);
            plan.push(CellSpec {
                config: AcceleratorConfig {
                    defense,
                    governor,
                    ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
                },
                action: CellAction::Measure {
                    vccint_mv: Some(550.0),
                    images: 8,
                },
                force_temp_c: None,
            });
            plan
        };
        let off = plan_fingerprint(&mk(DefenseMode::Off, false));
        assert_ne!(off, plan_fingerprint(&mk(DefenseMode::Detect, false)));
        assert_ne!(off, plan_fingerprint(&mk(DefenseMode::Correct, false)));
        assert_ne!(off, plan_fingerprint(&mk(DefenseMode::Off, true)));
    }

    #[test]
    fn journal_write_read_round_trip_with_truncated_tail() {
        let dir = std::env::temp_dir().join("redvolt-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt-{}.journal", std::process::id()));
        let meta = "seed=7 fingerprint=00000000deadbeef";

        let mut w = JournalWriter::create(&path, meta).unwrap();
        let e0 = JournalEntry {
            index: 0,
            attempts: 1,
            payload: encode_outcome(&CellOutcome::Measure(sample_measurement(0.0))),
        };
        let e2 = JournalEntry {
            index: 2,
            attempts: 3,
            payload: encode_outcome(&CellOutcome::Aborted {
                cause: "watchdog: wall-clock cap exceeded".to_string(),
            }),
        };
        w.append(&e0).unwrap();
        w.append(&e2).unwrap();
        drop(w);

        // Simulate a writer killed mid-append: partial line, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "cell 3 attempts=1 measure 850.0,333.0,0.8").unwrap();
        }

        let entries = read_journal(&path, meta).unwrap();
        assert_eq!(entries.len(), 2, "truncated tail line must be dropped");
        assert_eq!(entries[&0], e0);
        assert_eq!(entries[&2], e2);
        assert_eq!(
            decode_outcome(&entries[&0].payload),
            Some(CellOutcome::Measure(sample_measurement(0.0)))
        );

        // Wrong meta is refused, not merged.
        let err = read_journal(&path, "seed=8 fingerprint=0000000000000000").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Missing file reads as empty.
        let missing = dir.join("does-not-exist.journal");
        assert!(read_journal(&missing, meta).unwrap().is_empty());

        std::fs::remove_file(&path).ok();
    }

    /// Regression for torn-tail recovery on the *writer* path: appending
    /// to a journal whose final record was truncated mid-write used to
    /// glue the fresh entry onto the fragment, producing one malformed
    /// record that poisoned the *next* resume. Truncate the journal at
    /// every byte offset of its last record and prove that resuming —
    /// read, then append a replacement — always yields a clean journal.
    #[test]
    fn torn_tail_is_repaired_before_appending() {
        let dir = std::env::temp_dir().join("redvolt-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let meta = "seed=7 fingerprint=00000000deadbeef";

        let e0 = JournalEntry {
            index: 0,
            attempts: 1,
            payload: encode_outcome(&CellOutcome::Measure(sample_measurement(0.0))),
        };
        let e1 = JournalEntry {
            index: 1,
            attempts: 2,
            payload: encode_outcome(&CellOutcome::Measure(sample_measurement(1.0))),
        };
        let reference = {
            let path = dir.join(format!("torn-ref-{}.journal", std::process::id()));
            let mut w = JournalWriter::create(&path, meta).unwrap();
            w.append(&e0).unwrap();
            w.append(&e1).unwrap();
            drop(w);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            bytes
        };
        let last_record_start = reference[..reference.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .unwrap()
            + 1;

        for cut in last_record_start..reference.len() {
            let path = dir.join(format!("torn-{}-{}.journal", std::process::id(), cut));
            std::fs::write(&path, &reference[..cut]).unwrap();

            // Resume: the torn record is invisible to the reader...
            let entries = read_journal(&path, meta).unwrap();
            assert_eq!(entries.len(), 1, "cut at {cut}");
            assert_eq!(entries[&0], e0);

            // ...and the writer drops it before appending, so the re-run
            // cell's fresh record lands on a clean line.
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&e1).unwrap();
            drop(w);

            let recovered = read_journal(&path, meta).unwrap();
            assert_eq!(recovered.len(), 2, "cut at {cut}");
            assert_eq!(recovered[&0], e0);
            assert_eq!(recovered[&1], e1, "cut at {cut}");
            assert_eq!(
                decode_outcome(&recovered[&1].payload),
                Some(CellOutcome::Measure(sample_measurement(1.0))),
                "cut at {cut}"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

//! The paper's benchmark suite, packaged for experiments.
//!
//! Couples each Table-1 benchmark with its synthetic dataset, quantized
//! task and calibrated evaluation set, so campaign code can say "bring up
//! GoogleNet on board 2 at INT8" in one call.

use redvolt_dpu::runtime::{DpuTask, RunError};
use redvolt_nn::dataset::{EvalSet, SyntheticDataset};
use redvolt_nn::graph::Graph;
use redvolt_nn::models::{ModelKind, ModelScale, ModelSpec};
use redvolt_nn::prune;

/// A benchmark identifier (the five Table-1 CNNs).
pub type BenchmarkId = ModelKind;

/// Stable position of a benchmark in [`BenchmarkId::ALL`] — the canonical
/// ordering campaign plans, sweep caches and cell labels all key on.
///
/// # Panics
///
/// Panics if `id` is not in `ALL` (cannot happen for the paper's suite).
pub fn benchmark_index(id: BenchmarkId) -> usize {
    BenchmarkId::ALL
        .iter()
        .position(|k| *k == id)
        .expect("benchmark is one of the Table-1 CNNs")
}

/// How to prepare a benchmark workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Which benchmark.
    pub benchmark: BenchmarkId,
    /// Operand precision (the paper's baseline is INT8; Fig. 7 sweeps
    /// down to INT4).
    pub bits: u32,
    /// Model scale (Paper for experiments, Tiny for unit tests).
    pub scale: ModelScale,
    /// Structured channel-pruning fraction (0 = dense baseline; Fig. 8
    /// evaluates a pruned VGGNet).
    pub prune_fraction: f64,
    /// Number of calibration images for the quantizer.
    pub calib_images: usize,
    /// Number of evaluation images.
    pub eval_images: usize,
    /// Master seed for dataset synthesis and label calibration.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's baseline configuration for a benchmark: INT8, dense,
    /// 100-image evaluation.
    pub fn baseline(benchmark: BenchmarkId) -> Self {
        WorkloadConfig {
            benchmark,
            bits: 8,
            scale: ModelScale::Paper,
            prune_fraction: 0.0,
            calib_images: 8,
            eval_images: 100,
            seed: 42,
        }
    }

    /// A fast configuration for unit tests (tiny models, few images).
    pub fn tiny(benchmark: BenchmarkId) -> Self {
        WorkloadConfig {
            scale: ModelScale::Tiny,
            calib_images: 4,
            eval_images: 24,
            ..WorkloadConfig::baseline(benchmark)
        }
    }
}

/// A prepared workload: task + calibrated evaluation set.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark's Table-1 metadata.
    pub spec: ModelSpec,
    /// The configuration it was built with.
    pub config: WorkloadConfig,
    /// The compiled, quantized DPU task.
    pub task: DpuTask,
    /// Evaluation images + labels calibrated to the paper's Vnom accuracy.
    pub eval: EvalSet,
    /// Dense-equivalent operations per image (for pruned models this is
    /// the *unpruned* operation count, the work-equivalent GOPs basis the
    /// paper's Fig. 8b uses).
    pub dense_equivalent_ops: u64,
}

/// Errors preparing a workload.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Task creation / quantization failed.
    Run(RunError),
    /// Pruning failed (non-sequential model or bad fraction).
    Prune(prune::PruneError),
    /// Inference failed while calibrating labels.
    Graph(redvolt_nn::graph::GraphError),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Run(e) => write!(f, "workload task error: {e}"),
            WorkloadError::Prune(e) => write!(f, "workload prune error: {e}"),
            WorkloadError::Graph(e) => write!(f, "workload calibration error: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<RunError> for WorkloadError {
    fn from(e: RunError) -> Self {
        WorkloadError::Run(e)
    }
}

impl From<prune::PruneError> for WorkloadError {
    fn from(e: prune::PruneError) -> Self {
        WorkloadError::Prune(e)
    }
}

impl From<redvolt_nn::graph::GraphError> for WorkloadError {
    fn from(e: redvolt_nn::graph::GraphError) -> Self {
        WorkloadError::Graph(e)
    }
}

impl Workload {
    /// Prepares a workload: builds the model, applies pruning if
    /// requested, folds batch norms, compiles + quantizes the task, and
    /// calibrates evaluation labels to the paper's "@Vnom" accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if any stage fails.
    pub fn prepare(config: WorkloadConfig) -> Result<Self, WorkloadError> {
        let spec = config.benchmark.spec();
        let dense_graph = config.benchmark.build(config.scale).fold_batch_norms();
        let dense_equivalent_ops = 2 * dense_graph.mac_count();
        let graph: Graph = if config.prune_fraction > 0.0 {
            prune::channel_prune(&dense_graph, config.prune_fraction)?
        } else {
            dense_graph
        };
        let dataset =
            SyntheticDataset::new(spec.input_hw, spec.input_hw, 3, spec.classes, config.seed);
        let calib = dataset.images(config.calib_images);
        let mut task = DpuTask::create(spec.kind.name(), &graph, config.bits, &calib)?;
        if config.prune_fraction > 0.0 {
            task = task.with_crash_slack_ratio(redvolt_faults::model::PRUNED_CRASH_SLACK_RATIO);
        }
        // Labels are always calibrated against the INT8 reference design
        // (the paper's Table-1 baseline), so lower-precision variants show
        // their quantization loss at Vnom, as in Fig. 7a. Lower precisions
        // additionally get the DECENT-style quantize-then-finetune step:
        // the readout is refitted on the quantized backbone's features to
        // reproduce the reference design's predictions (held-out images,
        // disjoint from the eval set).
        let eval = if config.bits == 8 {
            EvalSet::calibrated(
                task.model_mut(),
                &dataset,
                config.eval_images,
                spec.paper_accuracy_at_vnom,
                config.seed,
            )?
        } else {
            let mut reference = redvolt_nn::quant::QuantizedGraph::quantize(&graph, 8, &calib)?;
            let n_fit = (spec.classes * 8).max(360);
            let n_check = 80;
            let mut fit_images = Vec::with_capacity(n_fit);
            let mut fit_labels = Vec::with_capacity(n_fit);
            for i in 0..n_fit + n_check {
                let (img, _) = dataset.image(config.eval_images + i);
                fit_labels.push(reference.predict(&img)?);
                fit_images.push(img);
            }
            let (check_images, check_labels) = (&fit_images[n_fit..], &fit_labels[n_fit..]);
            let agreement =
                |m: &mut redvolt_nn::quant::QuantizedGraph| -> Result<f64, WorkloadError> {
                    let mut hits = 0usize;
                    for (img, &want) in check_images.iter().zip(check_labels) {
                        if m.predict(img)? == want {
                            hits += 1;
                        }
                    }
                    Ok(hits as f64 / n_check as f64)
                };
            // Validated finetune: keep the refitted readout only when it
            // actually tracks the reference better on held-out images
            // (at mild precisions the shared weights already agree well).
            let before = agreement(task.model_mut())?;
            let original = task.model_mut().clone();
            task.model_mut()
                .refit_readout(&fit_images[..n_fit], &fit_labels[..n_fit], 250, 0.8)?;
            if agreement(task.model_mut())? < before {
                *task.model_mut() = original;
            }
            EvalSet::calibrated(
                &mut reference,
                &dataset,
                config.eval_images,
                spec.paper_accuracy_at_vnom,
                config.seed,
            )?
        };
        Ok(Workload {
            spec,
            config,
            task,
            eval,
            dense_equivalent_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_workload_prepares() {
        let w = Workload::prepare(WorkloadConfig::tiny(BenchmarkId::VggNet)).unwrap();
        assert_eq!(w.eval.len(), 24);
        assert_eq!(w.task.bits(), 8);
        assert_eq!(w.spec.classes, 10);
    }

    #[test]
    fn pruned_workload_has_fewer_ops_and_tighter_margin() {
        let dense = Workload::prepare(WorkloadConfig::tiny(BenchmarkId::VggNet)).unwrap();
        let pruned = Workload::prepare(WorkloadConfig {
            prune_fraction: 0.5,
            ..WorkloadConfig::tiny(BenchmarkId::VggNet)
        })
        .unwrap();
        assert!(pruned.task.kernel.total_macs() < dense.task.kernel.total_macs());
        assert_eq!(pruned.dense_equivalent_ops, dense.dense_equivalent_ops);
    }

    #[test]
    fn pruning_a_dag_model_errors() {
        let r = Workload::prepare(WorkloadConfig {
            prune_fraction: 0.5,
            ..WorkloadConfig::tiny(BenchmarkId::GoogleNet)
        });
        assert!(matches!(r, Err(WorkloadError::Prune(_))));
    }

    #[test]
    fn low_precision_workload_prepares() {
        let w = Workload::prepare(WorkloadConfig {
            bits: 4,
            ..WorkloadConfig::tiny(BenchmarkId::VggNet)
        })
        .unwrap();
        assert_eq!(w.task.bits(), 4);
    }
}

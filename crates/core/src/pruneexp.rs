//! Undervolting × pruning study (Fig. 8, §6.2).
//!
//! Compares the dense baseline against a structured channel-pruned model:
//! the pruned design performs fewer operations per image (higher
//! work-equivalent GOPs/W — Fig. 8b) but is more fragile: its irregular
//! dataflow hangs the board earlier (the paper measures Vcrash = 555 mV
//! pruned vs 540 mV dense) and it is more vulnerable to undervolting
//! faults below Vmin (Fig. 8a).

use crate::experiment::{Accelerator, AcceleratorConfig, MeasureError};
use crate::sweep::{voltage_sweep, SweepConfig, VoltageSweep};

/// One arm of the Fig. 8 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneArm {
    /// Channel-pruning fraction (0 for the dense baseline).
    pub prune_fraction: f64,
    /// The voltage sweep.
    pub sweep: VoltageSweep,
    /// Work-equivalent efficiency multiplier: dense-equivalent ops per
    /// image divided by actually executed ops. The pruned model's Fig. 8b
    /// GOPs/W is `gops_per_w × this`.
    pub work_equivalence: f64,
}

/// The Fig. 8 study: dense vs pruned.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneStudy {
    /// Dense baseline arm.
    pub dense: PruneArm,
    /// Pruned arm.
    pub pruned: PruneArm,
}

/// Runs the Fig. 8 campaign on one board.
///
/// # Errors
///
/// Propagates preparation and non-crash errors.
pub fn pruning_study(
    base: &AcceleratorConfig,
    prune_fraction: f64,
    sweep_cfg: &SweepConfig,
) -> Result<PruneStudy, MeasureError> {
    let run_arm = |fraction: f64| -> Result<PruneArm, MeasureError> {
        let mut acc = Accelerator::bring_up(&AcceleratorConfig {
            prune_fraction: fraction,
            ..*base
        })?;
        let work_equivalence = acc.workload().dense_equivalent_ops as f64
            / acc.workload().task.kernel.total_ops() as f64;
        let sweep = voltage_sweep(&mut acc, sweep_cfg)?;
        Ok(PruneArm {
            prune_fraction: fraction,
            sweep,
            work_equivalence,
        })
    };
    Ok(PruneStudy {
        dense: run_arm(0.0)?,
        pruned: run_arm(prune_fraction)?,
    })
}

impl PruneArm {
    /// Work-equivalent GOPs/W series: `(mV, dense-equivalent GOPs/W)`.
    pub fn equivalent_efficiency_series(&self) -> Vec<(f64, f64)> {
        self.sweep
            .points
            .iter()
            .map(|m| (m.vccint_mv, m.gops_per_w * self.work_equivalence))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;

    fn study() -> PruneStudy {
        pruning_study(
            &AcceleratorConfig::tiny(BenchmarkId::VggNet),
            0.5,
            &SweepConfig {
                start_mv: 850.0,
                stop_mv: 530.0,
                step_mv: 10.0,
                images: 16,
            },
        )
        .unwrap()
    }

    #[test]
    fn pruned_model_crashes_earlier() {
        // Fig. 8: pruned Vcrash ≈ 555 mV vs dense ≈ 540 mV.
        let s = study();
        let dense_alive = s.dense.sweep.last_alive_mv().unwrap();
        let pruned_alive = s.pruned.sweep.last_alive_mv().unwrap();
        assert!(
            pruned_alive > dense_alive,
            "pruned should hang earlier: {pruned_alive} vs {dense_alive}"
        );
    }

    #[test]
    fn pruned_model_is_more_work_efficient() {
        let s = study();
        assert!(s.pruned.work_equivalence > 1.5);
        assert!((s.dense.work_equivalence - 1.0).abs() < 1e-9);
        let dense_eff = s.dense.equivalent_efficiency_series()[0].1;
        let pruned_eff = s.pruned.equivalent_efficiency_series()[0].1;
        assert!(
            pruned_eff > dense_eff,
            "work-equivalent efficiency: pruned {pruned_eff} vs dense {dense_eff}"
        );
    }

    #[test]
    fn both_arms_keep_nominal_accuracy_in_guardband() {
        let s = study();
        for arm in [&s.dense, &s.pruned] {
            let nominal = arm.sweep.nominal().accuracy;
            for m in arm.sweep.points.iter().filter(|m| m.vccint_mv >= 600.0) {
                assert_eq!(m.accuracy, nominal);
            }
        }
    }
}

//! Parallel campaign executor with deterministic sharding.
//!
//! The paper's contribution is a measurement *campaign*: three boards ×
//! six benchmarks × a 5 mV-step voltage scan past Vcrash, every point
//! averaging repeated measurements. Each cell of that grid — one
//! `(board_sample, benchmark, config)` combination driven through one
//! action — is independent of every other cell, so the grid parallelizes
//! perfectly across cores. This module provides:
//!
//! * [`CampaignPlan`] — an ordered list of [`CellSpec`]s. The plan order
//!   is the public contract: results always come back merged in plan
//!   order, whatever the scheduling.
//! * Deterministic seeding — cell `i` runs with
//!   [`redvolt_num::rng::derive_stream_seed`]`(master_seed, i)`, so its
//!   randomness is a pure function of the plan, independent of worker
//!   count and of which worker picked it up. `tests/determinism.rs` pins
//!   byte-identical serialized results for `jobs ∈ {1, 2, 8}`.
//! * [`CampaignPlan::run`] — shards cells across `std::thread::scope`
//!   workers (no dependencies beyond std; the registry is offline-hostile)
//!   pulling from an atomic work queue, and records per-cell wall-clock
//!   timing so campaign speedups can be tracked in benchmarks.
//! * [`run_indexed`] — the bare deterministic fork/join primitive the
//!   executor is built on, reusable for any index-addressed fan-out (the
//!   `calibrate` binary shards its per-board model fits through it).

use crate::bench_suite::{benchmark_index, BenchmarkId};
use crate::experiment::{Accelerator, AcceleratorConfig, MeasureError, Measurement};
use crate::governor::{
    run_adaptive_rescue, run_governor, AdaptiveConfig, GovernorConfig, GovernorTrace, RescueTrace,
};
use crate::report::Table;
use crate::sweep::{voltage_sweep, SweepConfig, VoltageSweep};
use crate::telemetry::CellTelemetry;
use redvolt_num::rng::derive_stream_seed;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What one campaign cell does with its accelerator.
#[derive(Debug, Clone, PartialEq)]
pub enum CellAction {
    /// Run a downward voltage sweep.
    Sweep(SweepConfig),
    /// Run the closed-loop voltage governor for a number of batches.
    Governor {
        /// Governor tuning.
        config: GovernorConfig,
        /// Batches to run.
        batches: u32,
    },
    /// Take one averaged measurement, optionally at a commanded voltage
    /// (nominal when `None`).
    Measure {
        /// Voltage to command first, mV.
        vccint_mv: Option<f64>,
        /// Evaluation images.
        images: usize,
    },
}

/// One independent unit of campaign work.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Accelerator to bring up. The `seed` field is treated as a default:
    /// [`CampaignPlan::run`] overrides it with the seed derived from
    /// `(master_seed, cell_index)`.
    pub config: AcceleratorConfig,
    /// The work to perform.
    pub action: CellAction,
    /// Board temperature to force before running (chamber mode), if any.
    pub force_temp_c: Option<f64>,
}

impl CellSpec {
    /// Human-readable cell label, e.g. `googlenet/b0`.
    pub fn label(&self) -> String {
        format!(
            "{}/b{}",
            self.config.benchmark.name(),
            self.config.board_sample
        )
    }
}

/// What a cell produced.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// From [`CellAction::Sweep`].
    Sweep(VoltageSweep),
    /// From [`CellAction::Governor`].
    Governor(GovernorTrace),
    /// From [`CellAction::Measure`].
    Measure(Measurement),
    /// From [`CellAction::Measure`] under an armed adaptive governor
    /// ([`AcceleratorConfig::governor`]): the commanded operating point
    /// produced SDC/ECC events, so the governor walked it along the
    /// mitigation ladder and reports a *clean* measurement at the
    /// degraded point together with the rescue trace — graceful
    /// degradation instead of a silently-corrupted payload.
    Degraded {
        /// The measurement at the settled (rescued) operating point.
        measurement: Measurement,
        /// The probe windows that led there.
        trace: RescueTrace,
    },
    /// The cell did not complete: it panicked, exhausted its retry
    /// budget, or hit its watchdog deadline. Recorded in the report (with
    /// a deterministic cause string) instead of poisoning the campaign —
    /// the supervisor's contract (see `core::supervisor`).
    Aborted {
        /// Deterministic, single-line description of why the cell died.
        cause: String,
    },
}

impl CellOutcome {
    /// The sweep, if this outcome is one.
    pub fn as_sweep(&self) -> Option<&VoltageSweep> {
        match self {
            CellOutcome::Sweep(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical CSV rows for the deterministic fields of the outcome
    /// (no timing — wall clock is reported separately, precisely so the
    /// science payload can be compared byte-for-byte across runs).
    fn csv_rows(&self) -> Vec<String> {
        match self {
            CellOutcome::Sweep(s) => {
                let mut rows: Vec<String> = s.points.iter().map(Measurement::csv_row).collect();
                match s.crashed_at_mv {
                    Some(mv) => rows.push(format!("crashed_at,{mv:?}")),
                    None => rows.push("crashed_at,none".to_string()),
                }
                rows
            }
            CellOutcome::Governor(t) => t.csv_rows(),
            CellOutcome::Measure(m) => vec![m.csv_row()],
            CellOutcome::Degraded { measurement, trace } => {
                let mut rows = trace.csv_rows();
                rows.push(format!("degraded,{}", measurement.csv_row()));
                rows
            }
            CellOutcome::Aborted { cause } => {
                vec![format!("aborted,{}", cause.replace(['\n', '\r'], " "))]
            }
        }
    }
}

/// One executed cell: its plan position, payload, and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Position in the plan (results are always merged in this order).
    pub index: usize,
    /// The spec that ran (with the derived seed stamped into `config`).
    pub spec: CellSpec,
    /// What the cell produced.
    pub outcome: CellOutcome,
    /// Wall-clock time the cell took.
    pub elapsed: Duration,
    /// Which worker executed it (informational; never affects results).
    pub worker: usize,
    /// How many attempts the cell took (1 = first try; >1 means the
    /// supervisor retried it after crashes, hangs, or bus-fault
    /// exhaustion).
    pub attempts: u32,
    /// Deterministic per-cell telemetry (cycles, faults, bus health,
    /// spans), drained from the cell's accelerator. Default (all zero)
    /// when the cell never brought up.
    pub telemetry: CellTelemetry,
}

/// A campaign cell failed with a non-crash error.
#[derive(Debug)]
pub struct CampaignError {
    /// Plan index of the failing cell.
    pub index: usize,
    /// Label of the failing cell.
    pub label: String,
    /// The underlying error.
    pub source: MeasureError,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "campaign cell {} ({}): {}",
            self.index, self.label, self.source
        )
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// An ordered set of independent campaign cells plus the master seed their
/// per-cell seeds derive from.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Master seed; cell `i` runs with `derive_stream_seed(master_seed, i)`.
    pub master_seed: u64,
    cells: Vec<CellSpec>,
}

impl CampaignPlan {
    /// An empty plan.
    pub fn new(master_seed: u64) -> Self {
        CampaignPlan {
            master_seed,
            cells: Vec::new(),
        }
    }

    /// Appends a cell, returning its plan index.
    pub fn push(&mut self, cell: CellSpec) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// The full (benchmark × board) sweep grid the paper's Figs. 3–6 scan,
    /// enumerated benchmark-major in [`BenchmarkId::ALL`] order then board
    /// order — the canonical cell ordering the sweep cache and the figure
    /// tables share.
    pub fn sweep_grid(
        master_seed: u64,
        benchmarks: &[BenchmarkId],
        boards: &[u32],
        base: AcceleratorConfig,
        sweep: SweepConfig,
    ) -> Self {
        let mut plan = CampaignPlan::new(master_seed);
        let mut ordered = benchmarks.to_vec();
        ordered.sort_by_key(|&k| benchmark_index(k));
        for benchmark in ordered {
            for &board in boards {
                plan.push(CellSpec {
                    config: AcceleratorConfig {
                        benchmark,
                        board_sample: board,
                        ..base
                    },
                    action: CellAction::Sweep(sweep),
                    force_temp_c: None,
                });
            }
        }
        plan
    }

    /// The cells, in plan order.
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The derived seed cell `index` runs with.
    pub fn cell_seed(&self, index: usize) -> u64 {
        derive_stream_seed(self.master_seed, index as u64)
    }

    /// Executes every cell across `jobs` workers and merges the results in
    /// plan order. `jobs == 0` means the host's available parallelism;
    /// other values are clamped to `[1, len]`. Results are identical
    /// for every value of `jobs` because each cell's seed depends only on
    /// `(master_seed, index)` and cells share no state.
    ///
    /// # Errors
    ///
    /// If cells fail with non-crash errors, the first failure *in plan
    /// order* is returned (also independent of scheduling). A board hang
    /// during a sweep is not an error — it is recorded in the sweep.
    pub fn run(&self, jobs: usize) -> Result<CampaignReport, CampaignError> {
        self.run_sharded(jobs, 0)
    }

    /// [`CampaignPlan::run`] with an explicit image-shard worker count per
    /// cell — the second level of the two-level scheduler. `image_jobs ==
    /// 0` derives it automatically: whatever share of the requested worker
    /// budget the cell level leaves idle (`total / cell_jobs`), so a
    /// 4-cell sweep on a 16-core host runs 4 cells × 4 image shards
    /// instead of idling 12 cores. Payloads are byte-identical for every
    /// `(jobs, image_jobs)` combination — per-image fault streams derive
    /// from `(cell seed, image index, attempt)`, never from scheduling.
    ///
    /// # Errors
    ///
    /// See [`CampaignPlan::run`].
    pub fn run_sharded(
        &self,
        jobs: usize,
        image_jobs: usize,
    ) -> Result<CampaignReport, CampaignError> {
        let started = Instant::now();
        let (jobs, image_jobs) = two_level_jobs(jobs, self.cells.len(), image_jobs);
        let outcomes = run_indexed(self.cells.len(), jobs, |index, worker| {
            let cell_started = Instant::now();
            let spec = CellSpec {
                config: self.cells[index].config.with_seed(self.cell_seed(index)),
                ..self.cells[index].clone()
            };
            let (outcome, telemetry) = execute_cell_with(&spec, None, image_jobs);
            (spec, outcome, telemetry, cell_started.elapsed(), worker)
        });
        let mut results = Vec::with_capacity(outcomes.len());
        for (index, (spec, outcome, telemetry, elapsed, worker)) in outcomes.into_iter().enumerate()
        {
            match outcome {
                Ok(outcome) => results.push(CellResult {
                    index,
                    spec,
                    outcome,
                    elapsed,
                    worker,
                    attempts: 1,
                    telemetry,
                }),
                Err(source) => {
                    return Err(CampaignError {
                        index,
                        label: spec.label(),
                        source,
                    })
                }
            }
        }
        Ok(CampaignReport {
            jobs,
            image_jobs,
            elapsed: started.elapsed(),
            results,
        })
    }
}

/// Resolves a user-facing `jobs` request against a work-item count:
/// `0` means the host's available parallelism; the result is clamped to
/// `[1, count]` (min 1 so an empty plan still "runs" on one no-op worker).
pub fn resolve_jobs(jobs: usize, count: usize) -> usize {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    };
    jobs.max(1).min(count.max(1))
}

/// Splits a worker budget across the two scheduling levels. The cell
/// level takes [`resolve_jobs`] workers (preserving every historical
/// `jobs` contract); an explicit `image_jobs` passes through, and `0`
/// derives it as the per-cell share of the *requested* budget the cell
/// level cannot use — `max(1, total / cell_jobs)` — so surplus workers
/// shard images instead of idling.
pub fn two_level_jobs(jobs: usize, cells: usize, image_jobs: usize) -> (usize, usize) {
    let total = if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    };
    let cell_jobs = resolve_jobs(jobs, cells);
    let image_jobs = if image_jobs == 0 {
        (total / cell_jobs).max(1)
    } else {
        image_jobs
    };
    (cell_jobs, image_jobs)
}

/// Brings up the cell's accelerator and drives its action once — the unit
/// of work both [`CampaignPlan::run`] and the supervisor's per-attempt
/// worker execute — with a simulated-cycle budget installed before the
/// action runs (the supervisor's deterministic watchdog deadline) and an
/// image-shard worker count for the cell's batches (1 = sequential; an
/// execution parameter, never part of the cell's identity). Alongside the
/// outcome it returns the attempt's drained telemetry (default when
/// bring-up itself failed, so there is nothing to drain).
pub(crate) fn execute_cell_with(
    spec: &CellSpec,
    cycle_budget: Option<u64>,
    image_jobs: usize,
) -> (Result<CellOutcome, MeasureError>, CellTelemetry) {
    let mut acc = match Accelerator::bring_up(&spec.config) {
        Ok(acc) => acc,
        Err(e) => return (Err(e), CellTelemetry::default()),
    };
    acc.set_cycle_budget(cycle_budget);
    acc.set_image_jobs(image_jobs);
    if let Some(temp) = spec.force_temp_c {
        acc.board_mut().thermal_mut().force_temperature(temp);
    }
    let outcome = match &spec.action {
        CellAction::Sweep(cfg) => voltage_sweep(&mut acc, cfg).map(CellOutcome::Sweep),
        CellAction::Governor { config, batches } => {
            run_governor(&mut acc, config, *batches).map(CellOutcome::Governor)
        }
        CellAction::Measure { vccint_mv, images } => {
            let set = match vccint_mv {
                Some(mv) => acc.set_vccint_mv(*mv),
                None => Ok(()),
            };
            set.and_then(|()| {
                if spec.config.governor {
                    run_adaptive_rescue(&mut acc, &AdaptiveConfig::default(), *images).map(
                        |(measurement, trace)| {
                            if trace.intervened() {
                                CellOutcome::Degraded { measurement, trace }
                            } else {
                                CellOutcome::Measure(measurement)
                            }
                        },
                    )
                } else {
                    acc.measure(*images).map(CellOutcome::Measure)
                }
            })
        }
    };
    let telemetry = acc.take_telemetry();
    (outcome, telemetry)
}

/// A finished campaign: per-cell results in plan order plus timing.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Cell-level worker count the campaign ran with.
    pub jobs: usize,
    /// Image-shard workers per cell (1 = sequential batches).
    pub image_jobs: usize,
    /// Wall-clock time of the whole campaign.
    pub elapsed: Duration,
    /// Per-cell results, merged in plan order.
    pub results: Vec<CellResult>,
}

impl CampaignReport {
    /// Sum of per-cell times — what a single worker would have spent.
    pub fn serial_time(&self) -> Duration {
        self.results.iter().map(|r| r.elapsed).sum()
    }

    /// Observed speedup over a serial execution of the same cells.
    pub fn speedup(&self) -> f64 {
        self.serial_time().as_secs_f64() / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Canonical CSV serialization of every cell's *deterministic* payload
    /// (plan index, label, seed, then outcome rows — no timing). Two runs
    /// of the same plan produce byte-identical output regardless of `jobs`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!(
                "cell,{},{},{}\n",
                r.index,
                r.spec.label(),
                r.spec.config.seed
            ));
            for row in r.outcome.csv_rows() {
                out.push_str(&row);
                out.push('\n');
            }
        }
        out
    }

    /// Per-cell wall-clock report (worker, seconds) plus the campaign
    /// total — the numbers BENCH_*.json speedup entries track. Kept out of
    /// [`CampaignReport::to_csv`] so timing noise never pollutes the
    /// deterministic payload.
    pub fn timing_table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Campaign timing: {} cells, {} jobs, {:.2}s wall ({:.2}s serial, {:.2}x)",
                self.results.len(),
                self.jobs,
                self.elapsed.as_secs_f64(),
                self.serial_time().as_secs_f64(),
                self.speedup(),
            ),
            &["Cell", "Label", "Worker", "Seconds"],
        );
        for r in &self.results {
            t.row(&[
                r.index.to_string(),
                r.spec.label(),
                r.worker.to_string(),
                format!("{:.3}", r.elapsed.as_secs_f64()),
            ]);
        }
        t
    }
}

/// Deterministic fork/join: computes `f(index, worker)` for every index in
/// `0..count` across `jobs` scoped threads, returning results ordered by
/// index. Workers pull indices from a shared atomic queue, so load
/// balances dynamically while the output order stays fixed. `jobs == 0`
/// means the host's available parallelism (see [`resolve_jobs`]); with a
/// resolved single job everything runs inline on the caller's thread.
///
/// `f` must not depend on `worker` for its result — the id is provided for
/// telemetry only.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread.
pub fn run_indexed<T, F>(count: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let jobs = resolve_jobs(jobs, count);
    if jobs == 1 || count == 0 {
        return (0..count).map(|i| f(i, 0)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        produced.push((index, f(index, worker)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (index, value) in produced {
                        slots[index] = Some(value);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redvolt_nn::models::ModelScale;

    fn tiny_cell(benchmark: BenchmarkId, board: u32, action: CellAction) -> CellSpec {
        CellSpec {
            config: AcceleratorConfig {
                board_sample: board,
                ..AcceleratorConfig::tiny(benchmark)
            },
            action,
            force_temp_c: None,
        }
    }

    fn small_sweep() -> SweepConfig {
        SweepConfig {
            start_mv: 850.0,
            stop_mv: 560.0,
            step_mv: 50.0,
            images: 8,
        }
    }

    #[test]
    fn run_indexed_orders_results_and_covers_every_index() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = run_indexed(17, jobs, |i, _w| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
        assert!(run_indexed(0, 4, |i, _| i).is_empty());
    }

    #[test]
    fn plan_results_arrive_in_plan_order_with_derived_seeds() {
        let mut plan = CampaignPlan::new(42);
        for board in 0..3 {
            plan.push(tiny_cell(
                BenchmarkId::VggNet,
                board,
                CellAction::Measure {
                    vccint_mv: None,
                    images: 8,
                },
            ));
        }
        let report = plan.run(2).unwrap();
        assert_eq!(report.results.len(), 3);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.spec.config.board_sample, i as u32);
            assert_eq!(r.spec.config.seed, plan.cell_seed(i));
        }
        // Derived seeds differ across cells even though the specs share a
        // master seed.
        assert_ne!(
            report.results[0].spec.config.seed,
            report.results[1].spec.config.seed
        );
    }

    #[test]
    fn parallel_run_matches_serial_run_exactly() {
        let mut plan = CampaignPlan::new(7);
        plan.push(tiny_cell(
            BenchmarkId::VggNet,
            0,
            CellAction::Sweep(small_sweep()),
        ));
        plan.push(tiny_cell(
            BenchmarkId::GoogleNet,
            1,
            CellAction::Sweep(small_sweep()),
        ));
        plan.push(tiny_cell(
            BenchmarkId::VggNet,
            2,
            CellAction::Measure {
                vccint_mv: Some(600.0),
                images: 8,
            },
        ));
        let serial = plan.run(1).unwrap();
        let parallel = plan.run(3).unwrap();
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }

    #[test]
    fn sweep_grid_enumerates_benchmark_major() {
        let plan = CampaignPlan::sweep_grid(
            1,
            &[BenchmarkId::GoogleNet, BenchmarkId::VggNet],
            &[0, 2],
            AcceleratorConfig::tiny(BenchmarkId::VggNet),
            small_sweep(),
        );
        let labels: Vec<String> = plan.cells().iter().map(CellSpec::label).collect();
        // VGGNet precedes GoogleNet in BenchmarkId::ALL order even though
        // the arguments listed GoogleNet first; boards nest inside each
        // benchmark.
        assert_eq!(
            labels,
            vec!["VGGNet/b0", "VGGNet/b2", "GoogleNet/b0", "GoogleNet/b2"]
        );
    }

    #[test]
    fn forced_temperature_reaches_the_cell_board() {
        let mut plan = CampaignPlan::new(3);
        let mut hot = tiny_cell(
            BenchmarkId::GoogleNet,
            0,
            CellAction::Measure {
                vccint_mv: None,
                images: 8,
            },
        );
        hot.force_temp_c = Some(52.0);
        plan.push(hot.clone());
        hot.force_temp_c = Some(34.0);
        plan.push(hot);
        let report = plan.run(2).unwrap();
        let temp = |i: usize| match &report.results[i].outcome {
            CellOutcome::Measure(m) => m.junction_c,
            other => panic!("unexpected outcome {other:?}"),
        };
        assert!(temp(0) > temp(1), "hot {} vs cold {}", temp(0), temp(1));
    }

    #[test]
    fn governor_cells_run_in_parallel() {
        let mut plan = CampaignPlan::new(11);
        for board in [0u32, 1] {
            plan.push(CellSpec {
                config: AcceleratorConfig {
                    board_sample: board,
                    eval_images: 32,
                    repetitions: 1,
                    scale: ModelScale::Paper,
                    ..AcceleratorConfig::tiny(BenchmarkId::GoogleNet)
                },
                action: CellAction::Governor {
                    config: GovernorConfig::default(),
                    batches: 40,
                },
                force_temp_c: None,
            });
        }
        let report = plan.run(2).unwrap();
        for r in &report.results {
            match &r.outcome {
                CellOutcome::Governor(t) => assert_eq!(t.steps.len(), 40),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(plan.run(1).unwrap().to_csv(), report.to_csv());
    }

    #[test]
    fn timing_table_reports_every_cell() {
        let mut plan = CampaignPlan::new(5);
        for board in 0..2 {
            plan.push(tiny_cell(
                BenchmarkId::VggNet,
                board,
                CellAction::Measure {
                    vccint_mv: None,
                    images: 8,
                },
            ));
        }
        let report = plan.run(2).unwrap();
        assert_eq!(report.timing_table().len(), 2);
        assert!(report.serial_time() >= Duration::ZERO);
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn empty_plan_runs_cleanly_for_any_jobs() {
        let plan = CampaignPlan::new(9);
        for jobs in [0, 1, 4] {
            let report = plan.run(jobs).unwrap();
            assert!(report.results.is_empty(), "jobs={jobs}");
            assert_eq!(report.jobs, 1, "empty plan resolves to one worker");
            assert_eq!(report.to_csv(), "");
        }
    }

    #[test]
    fn jobs_zero_means_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(resolve_jobs(0, 1000), cores.min(1000));
        assert_eq!(resolve_jobs(0, 1), 1);
        assert_eq!(resolve_jobs(3, 2), 2, "jobs clamps to cell count");
        assert_eq!(resolve_jobs(5, 0), 1, "empty work resolves to one");
    }

    #[test]
    fn two_level_split_divides_surplus_workers_across_images() {
        // Explicit budgets: cell jobs clamp to the cell count and the surplus
        // becomes image shards when the caller asks for auto (0).
        assert_eq!(two_level_jobs(8, 2, 0), (2, 4));
        assert_eq!(two_level_jobs(8, 8, 0), (8, 1));
        assert_eq!(two_level_jobs(3, 8, 0), (3, 1));
        // An explicit image-shard count passes through untouched.
        assert_eq!(two_level_jobs(8, 2, 3), (2, 3));
        assert_eq!(two_level_jobs(1, 4, 8), (1, 8));
        // jobs == 0 resolves against available parallelism for both levels.
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let (cell_jobs, image_jobs) = two_level_jobs(0, 2, 0);
        assert_eq!(cell_jobs, resolve_jobs(0, 2));
        assert_eq!(image_jobs, (cores / cell_jobs).max(1));
    }

    #[test]
    fn more_jobs_than_cells_runs_cleanly() {
        let mut plan = CampaignPlan::new(13);
        plan.push(tiny_cell(
            BenchmarkId::VggNet,
            0,
            CellAction::Measure {
                vccint_mv: None,
                images: 8,
            },
        ));
        let wide = plan.run(64).unwrap();
        assert_eq!(wide.jobs, 1, "jobs clamped to cell count");
        assert_eq!(wide.to_csv(), plan.run(1).unwrap().to_csv());
    }

    #[test]
    fn governed_measure_cell_degrades_instead_of_corrupting() {
        use redvolt_nn::abft::DefenseMode;
        let mut plan = CampaignPlan::new(17);
        plan.push(CellSpec {
            config: AcceleratorConfig {
                eval_images: 16,
                repetitions: 1,
                scale: ModelScale::Paper,
                defense: DefenseMode::Correct,
                governor: true,
                ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
            },
            action: CellAction::Measure {
                vccint_mv: Some(550.0),
                images: 16,
            },
            force_temp_c: None,
        });
        let report = plan.run(1).unwrap();
        match &report.results[0].outcome {
            CellOutcome::Degraded { measurement, trace } => {
                assert!(trace.rescued);
                assert!(trace.intervened());
                assert_eq!(
                    measurement.injected_faults, 0,
                    "degraded payload must be clean"
                );
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        let csv = report.to_csv();
        assert!(csv.contains("\nrescue,"), "rescue trace rows missing");
        assert!(csv.contains("\ndegraded,"), "degraded row missing");
    }

    #[test]
    fn aborted_outcome_serializes_single_line() {
        let outcome = CellOutcome::Aborted {
            cause: "panic: step_mv must be\npositive and finite".to_string(),
        };
        let rows = outcome.csv_rows();
        assert_eq!(
            rows,
            vec!["aborted,panic: step_mv must be positive and finite"]
        );
        assert!(outcome.as_sweep().is_none());
    }

    #[test]
    fn out_of_window_cell_reports_plan_ordered_error() {
        let mut plan = CampaignPlan::new(1);
        plan.push(tiny_cell(
            BenchmarkId::VggNet,
            0,
            CellAction::Measure {
                vccint_mv: Some(1200.0), // rejected by the PMBus window
                images: 8,
            },
        ));
        plan.push(tiny_cell(
            BenchmarkId::VggNet,
            1,
            CellAction::Measure {
                vccint_mv: Some(2000.0), // also rejected, but later in plan
                images: 8,
            },
        ));
        for jobs in [1, 2] {
            let err = plan.run(jobs).unwrap_err();
            assert_eq!(err.index, 0, "first failure in plan order, jobs={jobs}");
            assert!(matches!(err.source, MeasureError::Pmbus(_)));
        }
    }
}

//! Crash-resilient campaign supervisor.
//!
//! [`CampaignPlan::run`] is fast but brittle in exactly the ways the
//! paper's physical campaign was not allowed to be: a panicking cell
//! poisons the whole run, a hung cell stalls a worker forever, and an
//! interrupted campaign restarts from zero. [`run_supervised`] wraps the
//! same deterministic executor in the supervision the real experimenters
//! provided by hand while babysitting three ZCU102s through days of
//! reboots:
//!
//! * **Panic isolation** — each cell attempt runs under
//!   [`std::panic::catch_unwind`] on its own thread; a panic becomes a
//!   recorded [`CellOutcome::Aborted`] while every other cell completes.
//! * **Watchdog** — each attempt gets a wall-clock cap and (optionally) a
//!   simulated-cycle budget. A hung attempt is reaped and the cell
//!   retried; the fresh attempt brings up a fresh board — the simulation's
//!   power cycle.
//! * **Retry** — crash-region hangs ([`MeasureError::Crashed`]),
//!   transient bus errors that exhausted the adapter's own retry budget,
//!   and watchdog deadlines are retried up to
//!   [`SupervisorConfig::max_attempts`], with the attempt count recorded
//!   in [`CellResult::attempts`]. Everything else aborts the cell (not
//!   the campaign) immediately.
//! * **Journaled resume** — with a journal attached, every completed cell
//!   is appended and flushed *before* it counts as done; a resumed run
//!   skips journaled cells and merges to the exact bytes of an
//!   uninterrupted one (`CampaignReport::to_csv` excludes timing, and
//!   per-cell seeds derive from `(master_seed, index)` alone).
//!
//! ## State machine (per cell)
//!
//! ```text
//!           ┌────────────┐ journaled?  ┌─────────┐
//!  pending ─┤  scheduled ├────────────►│ resumed │ (rehydrated, no run)
//!           └─────┬──────┘             └─────────┘
//!                 ▼
//!           ┌────────────┐ ok          ┌───────────┐
//!       ┌──►│  attempt n ├────────────►│ completed │──► journal + merge
//!       │   └─────┬──────┘             └───────────┘
//!       │         │ crash / transient bus / deadline
//!       │         ▼
//!       │   n < max_attempts ──► power-cycle (fresh board), retry
//!       └─────────┘
//!                 │ n == max_attempts, or panic / hard error
//!                 ▼
//!           ┌───────────┐
//!           │  aborted  │──► journal + merge (cause recorded)
//!           └───────────┘
//! ```

use crate::executor::{
    execute_cell_with, run_indexed, two_level_jobs, CampaignPlan, CampaignReport, CellOutcome,
    CellResult, CellSpec,
};
use crate::experiment::MeasureError;
use crate::journal::{
    decode_outcome, encode_outcome, plan_meta, read_journal, JournalEntry, JournalWriter,
};
use crate::telemetry::{split_telem, CampaignObserver, CellTelemetry};
use redvolt_dpu::runtime::RunError;
use redvolt_telemetry::SpanRing;
use std::fmt;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Supervision policy for a campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Attempts per cell (min 1). The paper's scripts rebooted and
    /// retried a crashed point a few times before giving up on it.
    pub max_attempts: u32,
    /// Wall-clock cap per attempt; a slower attempt is reaped and
    /// retried. Generous by default — it is a hang detector, not a
    /// performance budget.
    pub wall_cap: Duration,
    /// Simulated-cycle budget per attempt (deterministic deadline), if
    /// any.
    pub cycle_budget: Option<u64>,
    /// Stop the campaign after this many *newly executed* cells have been
    /// journaled (test/CI hook for killing a run mid-flight in a
    /// controlled, deterministic place).
    pub halt_after: Option<usize>,
    /// Image-shard workers per cell batch: `0` (the default) derives the
    /// count from whatever share of the requested worker budget the cell
    /// level leaves idle, `1` keeps batches sequential. Results are
    /// byte-identical for every value.
    pub image_jobs: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_attempts: 3,
            wall_cap: Duration::from_secs(300),
            cycle_budget: None,
            halt_after: None,
            image_jobs: 0,
        }
    }
}

/// Where (and whether) to journal campaign progress.
#[derive(Debug, Clone)]
pub struct JournalSpec {
    /// Journal file path.
    pub path: PathBuf,
    /// Resume from the journal if it exists (otherwise it is truncated).
    pub resume: bool,
}

impl JournalSpec {
    /// A journal at `path`, fresh (`resume = false`) or resuming.
    pub fn new(path: impl Into<PathBuf>, resume: bool) -> Self {
        JournalSpec {
            path: path.into(),
            resume,
        }
    }
}

/// A supervised campaign's result.
#[derive(Debug)]
pub struct SupervisedReport {
    /// The merged campaign report (journaled + freshly executed cells, in
    /// plan order). Rehydrated cells carry zero elapsed time and worker 0.
    pub report: CampaignReport,
    /// Cells skipped because the journal already held them.
    pub resumed_cells: usize,
    /// Cells whose final outcome is [`CellOutcome::Aborted`].
    pub aborted_cells: usize,
    /// Cells the adaptive governor settled at a degraded operating point
    /// ([`CellOutcome::Degraded`]): the payload is clean, the commanded
    /// point was not.
    pub degraded_cells: usize,
    /// Freshly executed cells that needed more than one attempt.
    pub retried_cells: usize,
    /// Whether the run stopped early at [`SupervisorConfig::halt_after`].
    /// When true, the report covers only the journaled prefix.
    pub interrupted: bool,
}

/// Supervisor failures — journal I/O only; cell failures are *outcomes*,
/// not errors.
#[derive(Debug)]
pub enum SupervisorError {
    /// The journal could not be read, written, or did not match the plan.
    Journal(io::Error),
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::Journal(e) => write!(f, "campaign journal: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SupervisorError::Journal(e) => Some(e),
        }
    }
}

impl From<io::Error> for SupervisorError {
    fn from(e: io::Error) -> Self {
        SupervisorError::Journal(e)
    }
}

/// Whether a failed attempt is worth a power-cycle-and-retry.
fn is_retryable(err: &MeasureError) -> bool {
    match err {
        // The paper's reboot case: the board hung at this point.
        MeasureError::Crashed { .. } => true,
        // The bus was too marginal even for the adapter's retry budget.
        MeasureError::Pmbus(e) => e.is_transient(),
        // The deterministic watchdog deadline.
        MeasureError::Run(RunError::CycleBudgetExceeded { .. }) => true,
        _ => false,
    }
}

/// What one watchdogged attempt produced.
enum Attempt {
    // Boxed: `CellOutcome::Degraded` carries a full rescue trace, which
    // would otherwise bloat every `Attempt` on the channel.
    Done(Box<Result<CellOutcome, MeasureError>>, CellTelemetry),
    Panicked(String),
    DeadlineExceeded,
}

/// Runs one attempt on its own thread under `catch_unwind`, reaping it if
/// it outlives `wall_cap`. A reaped thread is detached, not joined — the
/// OS thread finishes (or leaks) on its own; the supervisor moves on, as
/// the real campaign moved on by power-cycling a wedged board.
fn run_attempt(
    spec: &CellSpec,
    wall_cap: Duration,
    cycle_budget: Option<u64>,
    image_jobs: usize,
) -> Attempt {
    let spec = spec.clone();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            execute_cell_with(&spec, cycle_budget, image_jobs)
        }));
        // The receiver may be gone (deadline fired); that is fine.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(wall_cap) {
        Ok(Ok((result, telemetry))) => Attempt::Done(Box::new(result), telemetry),
        Ok(Err(payload)) => Attempt::Panicked(panic_message(payload.as_ref())),
        Err(mpsc::RecvTimeoutError::Timeout) => Attempt::DeadlineExceeded,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker died without reporting — treat like a panic with
            // an unknown payload.
            Attempt::Panicked("worker thread died without reporting".to_string())
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Per-cell telemetry accumulator: folds attempt telemetry into a cell
/// total, wrapping each attempt's spans in an `attempt` span and
/// prefix-summing simulated-cycle offsets so the merged stream reads as
/// one timeline per cell.
struct CellFold {
    total: CellTelemetry,
    ring: SpanRing,
    cycle_base: u64,
}

impl CellFold {
    fn new() -> Self {
        CellFold {
            total: CellTelemetry::default(),
            ring: SpanRing::new(),
            cycle_base: 0,
        }
    }

    fn fold(&mut self, attempt_no: u32, telemetry: &CellTelemetry) {
        let span = self.ring.begin("attempt", None, self.cycle_base);
        self.ring.attr(span, "n", attempt_no.to_string());
        self.ring
            .absorb_records(&telemetry.spans, Some(span), self.cycle_base);
        self.ring.end(span, self.cycle_base + telemetry.cycles);
        self.cycle_base += telemetry.cycles;
        self.total.merge_attempt(telemetry);
    }

    /// The supervisor's reboot-between-attempts is the simulation's power
    /// cycle; count it like the paper's operators counted theirs.
    fn power_cycle(&mut self) {
        self.total.power_cycles += 1;
    }

    fn finish(mut self) -> CellTelemetry {
        self.total.spans = self.ring.take();
        self.total
    }
}

/// Drives one cell to a final outcome, retrying per `config`. Returns the
/// outcome, the number of attempts consumed, and the cell's aggregated
/// telemetry (attempt counters summed, gauges from the final attempt,
/// spans wrapped per attempt). Cause strings are deterministic (no
/// timing, no addresses), so aborted outcomes serialize identically
/// across runs.
fn supervise_cell(
    spec: &CellSpec,
    config: &SupervisorConfig,
    image_jobs: usize,
) -> (CellOutcome, u32, CellTelemetry) {
    let max_attempts = config.max_attempts.max(1);
    let mut fold = CellFold::new();
    for attempt in 1..=max_attempts {
        match run_attempt(spec, config.wall_cap, config.cycle_budget, image_jobs) {
            Attempt::Done(result, telemetry) => match *result {
                Ok(outcome) => {
                    fold.fold(attempt, &telemetry);
                    return (outcome, attempt, fold.finish());
                }
                Err(err) => {
                    fold.fold(attempt, &telemetry);
                    if is_retryable(&err) && attempt < max_attempts {
                        fold.power_cycle();
                        continue; // fresh bring-up = power cycle
                    }
                    let cause = if is_retryable(&err) {
                        format!("retry budget exhausted after {attempt} attempts: {err}")
                    } else {
                        format!("{err}")
                    };
                    return (CellOutcome::Aborted { cause }, attempt, fold.finish());
                }
            },
            Attempt::Panicked(msg) => {
                // Panics are deterministic bugs, not operational flakes:
                // retrying reproduces them, so abort immediately. The
                // attempt's telemetry died with the unwound thread.
                return (
                    CellOutcome::Aborted {
                        cause: format!("panic: {msg}"),
                    },
                    attempt,
                    fold.finish(),
                );
            }
            Attempt::DeadlineExceeded => {
                // The reaped thread kept its accelerator — nothing to fold.
                if attempt < max_attempts {
                    fold.power_cycle();
                    continue;
                }
                return (
                    CellOutcome::Aborted {
                        cause: "watchdog: wall-clock cap exceeded".to_string(),
                    },
                    attempt,
                    fold.finish(),
                );
            }
        }
    }
    unreachable!("loop returns on every branch of the final attempt")
}

/// Runs `plan` under supervision across `jobs` workers (0 = available
/// parallelism), optionally journaling progress for resume.
///
/// The merged report is byte-identical (via `CampaignReport::to_csv`) to
/// an uninterrupted, unjournaled supervised run of the same plan at any
/// worker count — including runs that were halted and resumed, and runs
/// with a nonzero injected PMBus fault rate in their cells' configs.
///
/// # Errors
///
/// Only journal I/O fails the call; cell-level failures are recorded as
/// [`CellOutcome::Aborted`] outcomes inside the report.
pub fn run_supervised(
    plan: &CampaignPlan,
    jobs: usize,
    config: &SupervisorConfig,
    journal: Option<&JournalSpec>,
) -> Result<SupervisedReport, SupervisorError> {
    run_supervised_observed(plan, jobs, config, journal, None)
}

/// [`run_supervised`] with a progress observer. The observer is called
/// once per freshly executed cell, from the worker that finished it, in
/// completion order — it sees progress live but must never feed anything
/// back into the deterministic payload (see
/// [`CampaignObserver`]).
///
/// # Errors
///
/// See [`run_supervised`].
pub fn run_supervised_observed(
    plan: &CampaignPlan,
    jobs: usize,
    config: &SupervisorConfig,
    journal: Option<&JournalSpec>,
    observer: Option<&dyn CampaignObserver>,
) -> Result<SupervisedReport, SupervisorError> {
    let started = Instant::now();
    let meta = plan_meta(plan);

    // Load the journaled prefix (resume) and open the writer.
    let (journaled, writer) = match journal {
        Some(spec) => {
            let existing = if spec.resume {
                read_journal(&spec.path, &meta)?
            } else {
                Default::default()
            };
            let writer = if spec.resume && spec.path.exists() {
                JournalWriter::append_to(&spec.path)?
            } else {
                JournalWriter::create(&spec.path, &meta)?
            };
            (existing, Some(writer))
        }
        None => (Default::default(), None),
    };

    // Cells still to execute, in plan order; `halt_after` truncates the
    // schedule at a deterministic point regardless of worker count.
    let mut pending: Vec<usize> = (0..plan.len())
        .filter(|i| !journaled.contains_key(i))
        .collect();
    let interrupted = match config.halt_after {
        Some(k) if pending.len() > k => {
            pending.truncate(k);
            true
        }
        _ => false,
    };

    let (jobs, image_jobs) = two_level_jobs(jobs, pending.len(), config.image_jobs);
    let writer = Mutex::new(writer);
    let journal_err: Mutex<Option<io::Error>> = Mutex::new(None);
    let fresh = run_indexed(pending.len(), jobs, |qi, worker| {
        let index = pending[qi];
        let cell_started = Instant::now();
        let spec = CellSpec {
            config: plan.cells()[index].config.with_seed(plan.cell_seed(index)),
            ..plan.cells()[index].clone()
        };
        let (outcome, attempts, telemetry) = supervise_cell(&spec, config, image_jobs);
        // Write-ahead: the cell is not "done" until its line is flushed.
        // The scalar telemetry rides along as a space-free trailing token
        // so a resumed campaign reports the same metrics.
        if let Some(w) = writer.lock().unwrap().as_mut() {
            let entry = JournalEntry {
                index,
                attempts,
                payload: format!(
                    "{} telem={}",
                    encode_outcome(&outcome),
                    telemetry.encode_compact()
                ),
            };
            if let Err(e) = w.append(&entry) {
                journal_err.lock().unwrap().get_or_insert(e);
            }
        }
        let result = CellResult {
            index,
            spec,
            outcome,
            elapsed: cell_started.elapsed(),
            worker,
            attempts,
            telemetry,
        };
        if let Some(obs) = observer {
            obs.cell_completed(&result);
        }
        result
    });
    if let Some(e) = journal_err.into_inner().unwrap() {
        return Err(SupervisorError::Journal(e));
    }

    // Merge journaled + fresh results in plan order.
    let resumed_cells = journaled.len();
    let mut results: Vec<CellResult> = Vec::with_capacity(journaled.len() + fresh.len());
    for (&index, entry) in &journaled {
        // Telemetry scalars round-trip through the journal; spans do not
        // (the resume contract covers metrics, not span streams).
        let (payload, telemetry) = split_telem(&entry.payload);
        let outcome = decode_outcome(payload).ok_or_else(|| {
            SupervisorError::Journal(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal entry for cell {index} is malformed"),
            ))
        })?;
        results.push(CellResult {
            index,
            spec: CellSpec {
                config: plan.cells()[index].config.with_seed(plan.cell_seed(index)),
                ..plan.cells()[index].clone()
            },
            outcome,
            elapsed: Duration::ZERO,
            worker: 0,
            attempts: entry.attempts,
            telemetry: telemetry.unwrap_or_default(),
        });
    }
    results.extend(fresh);
    results.sort_by_key(|r| r.index);

    let aborted_cells = results
        .iter()
        .filter(|r| matches!(r.outcome, CellOutcome::Aborted { .. }))
        .count();
    let degraded_cells = results
        .iter()
        .filter(|r| matches!(r.outcome, CellOutcome::Degraded { .. }))
        .count();
    let retried_cells = results.iter().filter(|r| r.attempts > 1).count();
    Ok(SupervisedReport {
        report: CampaignReport {
            jobs,
            image_jobs,
            elapsed: started.elapsed(),
            results,
        },
        resumed_cells,
        aborted_cells,
        degraded_cells,
        retried_cells,
        interrupted,
    })
}

/// Convenience: supervised run journaling to `path`, resuming if asked.
///
/// # Errors
///
/// See [`run_supervised`].
pub fn run_supervised_journaled(
    plan: &CampaignPlan,
    jobs: usize,
    config: &SupervisorConfig,
    path: &Path,
    resume: bool,
) -> Result<SupervisedReport, SupervisorError> {
    run_supervised(plan, jobs, config, Some(&JournalSpec::new(path, resume)))
}

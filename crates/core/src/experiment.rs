//! The accelerator-under-test abstraction.
//!
//! [`Accelerator`] bundles one board sample, the DPU runtime, a workload
//! and its calibrated evaluation set — the unit every campaign in this
//! crate drives. Control and telemetry go through PMBus exactly as the
//! paper's scripts did: voltages are written to `0x13`/`0x14`, power and
//! temperature are read back from the same addresses, and each reported
//! data point averages repeated measurements (the paper uses 10).

use crate::bench_suite::{BenchmarkId, Workload, WorkloadConfig, WorkloadError};
use crate::telemetry::CellTelemetry;
use redvolt_dpu::runtime::{DpuRuntime, RunError};
use redvolt_faults::bus::{BusFaultProfile, PmbusFaultModel};
use redvolt_fpga::board::{Zcu102Board, SYSCTRL_ADDRESS};
use redvolt_fpga::calib::F_NOM_MHZ;
use redvolt_nn::abft::{DefenseMode, DefensePolicy};
use redvolt_nn::models::ModelScale;
use redvolt_num::rng::derive_stream_seed;
use redvolt_num::stats::Summary;
use redvolt_pmbus::adapter::{BusStats, PmbusAdapter, RetryPolicy, TransactionLog};
use redvolt_pmbus::PmbusError;
use redvolt_telemetry::SpanRing;
use std::fmt;

/// Seed-stream index reserved for the PMBus fault model, so the bus-fault
/// schedule never aliases the workload's own seed streams.
const BUS_FAULT_STREAM: u64 = 0xB05;

/// PMBus address of the `VCCINT` regulator output.
pub const VCCINT_ADDR: u8 = 0x13;
/// PMBus address of the `VCCBRAM` regulator output.
pub const VCCBRAM_ADDR: u8 = 0x14;

/// Configuration of an accelerator-under-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Which physical board sample (0–2 are the paper's boards).
    pub board_sample: u32,
    /// Which benchmark to load.
    pub benchmark: BenchmarkId,
    /// Operand precision.
    pub bits: u32,
    /// Model scale.
    pub scale: ModelScale,
    /// Structured pruning fraction (0 = dense).
    pub prune_fraction: f64,
    /// Evaluation images prepared.
    pub eval_images: usize,
    /// Measurement repetitions averaged per data point (the paper uses 10).
    pub repetitions: usize,
    /// Master seed.
    pub seed: u64,
    /// Undervolt `VCCBRAM` together with `VCCINT` (the paper regulates
    /// both on-chip rails; `VCCINT` dominates the power).
    pub track_bram_rail: bool,
    /// Transient PMBus fault profile injected into the host adapter. A
    /// non-zero profile also arms the adapter's resilient retry policy, so
    /// measurements converge despite the injected faults. The fault
    /// schedule derives from `seed`, keeping faulted campaigns exactly as
    /// reproducible as clean ones.
    pub bus_faults: BusFaultProfile,
    /// SDC defense armed on the DPU runtime: ECC filtering of BRAM
    /// upsets plus ABFT checksums in the quantized executor. `Off`
    /// preserves the historical bit-identical undefended datapath.
    pub defense: DefenseMode,
    /// Arm the adaptive undervolt governor: measurement cells probe the
    /// operating point and, on SDC/ECC events, walk it along the paper's
    /// mitigation axes (frequency underscaling, then voltage backoff)
    /// instead of emitting corrupted payloads.
    pub governor: bool,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            board_sample: 0,
            benchmark: BenchmarkId::VggNet,
            bits: 8,
            scale: ModelScale::Paper,
            prune_fraction: 0.0,
            eval_images: 100,
            repetitions: 10,
            seed: 42,
            track_bram_rail: true,
            bus_faults: BusFaultProfile::none(),
            defense: DefenseMode::Off,
            governor: false,
        }
    }
}

impl AcceleratorConfig {
    /// A fast configuration for unit tests.
    pub fn tiny(benchmark: BenchmarkId) -> Self {
        AcceleratorConfig {
            benchmark,
            scale: ModelScale::Tiny,
            eval_images: 24,
            repetitions: 2,
            ..AcceleratorConfig::default()
        }
    }

    /// The same configuration with a different master seed (the campaign
    /// executor stamps each cell's derived seed through this).
    pub fn with_seed(self, seed: u64) -> Self {
        AcceleratorConfig { seed, ..self }
    }
}

/// One averaged measurement at an operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Commanded `VCCINT` in mV.
    pub vccint_mv: f64,
    /// DPU clock in MHz.
    pub f_mhz: f64,
    /// Classification accuracy on the calibrated evaluation set.
    pub accuracy: f64,
    /// Mean on-chip power over PMBus (`VCCINT` + `VCCBRAM`), watts.
    pub power_w: f64,
    /// Effective throughput, giga-ops/s.
    pub gops: f64,
    /// Power-efficiency, GOPs per watt.
    pub gops_per_w: f64,
    /// Junction temperature, °C.
    pub junction_c: f64,
    /// Total injected transient bit flips across repetitions.
    pub injected_faults: u64,
    /// Spread of the accuracy across repetitions (std dev).
    pub accuracy_std: f64,
}

impl Measurement {
    /// Column names matching [`Measurement::csv_row`].
    pub const CSV_HEADER: &'static str =
        "vccint_mv,f_mhz,accuracy,power_w,gops,gops_per_w,junction_c,injected_faults,accuracy_std";

    /// Canonical CSV serialization. Floats use Rust's shortest round-trip
    /// formatting, so two bit-identical measurements serialize to the same
    /// bytes — the property `tests/determinism.rs` pins across job counts.
    pub fn csv_row(&self) -> String {
        format!(
            "{:?},{:?},{:?},{:?},{:?},{:?},{:?},{},{:?}",
            self.vccint_mv,
            self.f_mhz,
            self.accuracy,
            self.power_w,
            self.gops,
            self.gops_per_w,
            self.junction_c,
            self.injected_faults,
            self.accuracy_std,
        )
    }
}

/// Errors from accelerator operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum MeasureError {
    /// The board hung at this operating point (Vcrash reached).
    Crashed {
        /// The commanded `VCCINT` at the hang, mV.
        vccint_mv: f64,
    },
    /// Workload preparation failed.
    Workload(WorkloadError),
    /// A PMBus transaction failed.
    Pmbus(PmbusError),
    /// A run failed for a non-crash reason.
    Run(RunError),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Crashed { vccint_mv } => {
                write!(f, "board hung at {vccint_mv:.0} mV (Vcrash reached)")
            }
            MeasureError::Workload(e) => write!(f, "{e}"),
            MeasureError::Pmbus(e) => write!(f, "{e}"),
            MeasureError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<WorkloadError> for MeasureError {
    fn from(e: WorkloadError) -> Self {
        MeasureError::Workload(e)
    }
}

impl From<PmbusError> for MeasureError {
    fn from(e: PmbusError) -> Self {
        MeasureError::Pmbus(e)
    }
}

/// The accelerator under test.
#[derive(Debug)]
pub struct Accelerator {
    runtime: DpuRuntime,
    host: PmbusAdapter,
    workload: Workload,
    config: AcceleratorConfig,
    vccint_mv: f64,
    seed_counter: u64,
    /// Local span recording for the observability layer: bus voltage
    /// steps, DPU runs and power cycles, timestamped in simulated cycles.
    /// Drained (and re-parented under the cell/attempt span) by
    /// [`Accelerator::take_telemetry`].
    spans: SpanRing,
}

impl Accelerator {
    /// Brings up the accelerator: board at nominal rails, workload
    /// prepared and loaded.
    ///
    /// # Errors
    ///
    /// Returns [`MeasureError::Workload`] if preparation fails.
    pub fn bring_up(config: &AcceleratorConfig) -> Result<Self, MeasureError> {
        let workload = crate::workload_cache::get_or_prepare(WorkloadConfig {
            benchmark: config.benchmark,
            bits: config.bits,
            scale: config.scale,
            prune_fraction: config.prune_fraction,
            calib_images: 8,
            eval_images: config.eval_images,
            seed: config.seed,
        })?;
        let board = Zcu102Board::new(config.board_sample);
        // A marginal bus needs the resilient policy; a clean one keeps the
        // historical fail-fast behaviour.
        let host = if config.bus_faults.is_zero() {
            PmbusAdapter::new()
        } else {
            PmbusAdapter::new()
                .with_retry_policy(RetryPolicy::resilient())
                .with_fault_model(Box::new(PmbusFaultModel::new(
                    config.bus_faults,
                    derive_stream_seed(config.seed, BUS_FAULT_STREAM),
                )))
        };
        let mut runtime = DpuRuntime::open(board);
        runtime.set_defense(DefensePolicy::for_mode(config.defense));
        Ok(Accelerator {
            runtime,
            host,
            workload,
            config: *config,
            vccint_mv: redvolt_fpga::calib::VNOM_MV,
            seed_counter: config.seed,
            spans: SpanRing::new(),
        })
    }

    /// The loaded workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The configuration used at bring-up.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The board (telemetry / thermal access).
    pub fn board(&self) -> &Zcu102Board {
        self.runtime.board()
    }

    /// Split borrow of the runtime and workload, for campaigns that drive
    /// the runtime directly (e.g. mitigated runs).
    pub fn runtime_and_workload_mut(&mut self) -> (&mut DpuRuntime, &mut Workload) {
        (&mut self.runtime, &mut self.workload)
    }

    /// Mutable board access (chamber mode, fan control).
    pub fn board_mut(&mut self) -> &mut Zcu102Board {
        self.runtime.board_mut()
    }

    /// Currently commanded `VCCINT` in mV.
    pub fn vccint_mv(&self) -> f64 {
        self.vccint_mv
    }

    /// Current DPU clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.runtime.clock_mhz()
    }

    /// Sets the DPU clock in MHz (frequency underscaling, §5).
    pub fn set_clock_mhz(&mut self, f_mhz: f64) {
        self.runtime.set_clock_mhz(f_mhz);
    }

    /// Commands `VCCINT` (and, per config, `VCCBRAM`) over PMBus.
    ///
    /// # Errors
    ///
    /// Propagates PMBus rejections (out-of-window voltages) and reports a
    /// hang as [`MeasureError::Crashed`].
    pub fn set_vccint_mv(&mut self, mv: f64) -> Result<(), MeasureError> {
        let result = self.set_vccint_mv_inner(mv);
        self.record_bus_span("vccint", mv, result.is_ok());
        result
    }

    fn set_vccint_mv_inner(&mut self, mv: f64) -> Result<(), MeasureError> {
        let volts = mv / 1000.0;
        let track = self.config.track_bram_rail;
        let board = self.runtime.board_mut();
        match self.host.set_vout(board, VCCINT_ADDR, volts) {
            Ok(()) => {}
            Err(PmbusError::DeviceHung { .. }) => {
                return Err(MeasureError::Crashed { vccint_mv: mv })
            }
            Err(e) => return Err(e.into()),
        }
        self.vccint_mv = mv;
        if track {
            match self.host.set_vout(board, VCCBRAM_ADDR, volts) {
                Ok(()) => {}
                Err(PmbusError::DeviceHung { .. }) => {
                    return Err(MeasureError::Crashed { vccint_mv: mv })
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Records a zero-duration `bus_set_vout` span at the current
    /// simulated cycle (bus transactions consume no DPU cycles).
    fn record_bus_span(&mut self, rail: &str, mv: f64, ok: bool) {
        let cycle = self.runtime.cycles_run();
        let id = self.spans.begin("bus_set_vout", None, cycle);
        self.spans.attr(id, "rail", rail);
        self.spans.attr(id, "mv", format!("{mv:?}"));
        self.spans.attr(id, "ok", if ok { "1" } else { "0" });
        self.spans.end(id, cycle);
    }

    /// Commands `VCCBRAM` alone over PMBus (the rail-separation study:
    /// the paper tracks both rails together, but the BRAM rail can be
    /// driven independently to probe its own fault floor).
    ///
    /// # Errors
    ///
    /// See [`Accelerator::set_vccint_mv`].
    pub fn set_vccbram_mv(&mut self, mv: f64) -> Result<(), MeasureError> {
        let board = self.runtime.board_mut();
        let result = match self.host.set_vout(board, VCCBRAM_ADDR, mv / 1000.0) {
            Ok(()) => Ok(()),
            Err(PmbusError::DeviceHung { .. }) => Err(MeasureError::Crashed { vccint_mv: mv }),
            Err(e) => Err(e.into()),
        };
        self.record_bus_span("vccbram", mv, result.is_ok());
        result
    }

    /// Power-cycles the board and restores the nominal operating point.
    pub fn power_cycle(&mut self) {
        self.runtime.board_mut().power_cycle();
        self.vccint_mv = redvolt_fpga::calib::VNOM_MV;
        self.runtime.set_clock_mhz(F_NOM_MHZ);
        let cycle = self.runtime.cycles_run();
        let id = self.spans.begin("power_cycle", None, cycle);
        self.spans.end(id, cycle);
    }

    /// Runs one measurement over the first `images` evaluation images,
    /// averaging [`AcceleratorConfig::repetitions`] repetitions when the
    /// operating point is in the faulting region (fault-free points are
    /// deterministic, so one repetition suffices — the paper likewise
    /// notes negligible variation).
    ///
    /// # Errors
    ///
    /// Returns [`MeasureError::Crashed`] if the board hangs.
    pub fn measure(&mut self, images: usize) -> Result<Measurement, MeasureError> {
        let start_cycle = self.runtime.cycles_run();
        let id = self.spans.begin("measure", None, start_cycle);
        self.spans
            .attr(id, "vccint_mv", format!("{:?}", self.vccint_mv));
        let result = self.measure_inner(images);
        self.spans
            .attr(id, "ok", if result.is_ok() { "1" } else { "0" });
        self.spans.end(id, self.runtime.cycles_run());
        result
    }

    fn measure_inner(&mut self, images: usize) -> Result<Measurement, MeasureError> {
        let n = images.min(self.workload.eval.len()).max(1);
        let eval_images = &self.workload.eval.images[..n];
        let labels = &self.workload.eval.labels[..n];
        let board = self.runtime.board();
        let faulting = board.slack_deficit() > 0.0
            || redvolt_faults::model::bram_weight_rate(board.vccbram_mv()) > 0.0;
        let reps = if faulting {
            self.config.repetitions.max(1)
        } else {
            1
        };
        let mut accs = Vec::with_capacity(reps);
        let mut powers = Vec::with_capacity(reps);
        let mut faults = 0u64;
        let mut gops = 0.0;
        let mut junction = 0.0;
        for _ in 0..reps {
            self.seed_counter = self.seed_counter.wrapping_add(1);
            let run_start = self.runtime.cycles_run();
            let batch =
                self.runtime
                    .run_batch(&mut self.workload.task, eval_images, self.seed_counter);
            let run_id = self.spans.begin("dpu_run", None, run_start);
            self.spans
                .attr(run_id, "ok", if batch.is_ok() { "1" } else { "0" });
            if let Ok(r) = &batch {
                self.spans
                    .attr(run_id, "faults", r.injected_faults.to_string());
            }
            self.spans.end(run_id, self.runtime.cycles_run());
            let result = match batch {
                Ok(r) => r,
                Err(RunError::BoardCrashed) => {
                    return Err(MeasureError::Crashed {
                        vccint_mv: self.vccint_mv,
                    })
                }
                Err(e) => return Err(MeasureError::Run(e)),
            };
            let hits = result
                .predictions
                .iter()
                .zip(labels)
                .filter(|(p, l)| p == l)
                .count();
            accs.push(hits as f64 / n as f64);
            faults += result.injected_faults;
            gops = result.timing.gops;
            junction = result.junction_c;
            // Telemetry over PMBus, like the paper's measurement scripts.
            let board = self.runtime.board_mut();
            let mut p = self.host.read_pout(board, VCCINT_ADDR)?;
            p += self.host.read_pout(board, VCCBRAM_ADDR)?;
            powers.push(p);
        }
        let acc = Summary::of(&accs).expect("reps >= 1");
        let power = Summary::of(&powers).expect("reps >= 1").mean;
        Ok(Measurement {
            vccint_mv: self.vccint_mv,
            f_mhz: self.runtime.clock_mhz(),
            accuracy: acc.mean,
            power_w: power,
            gops,
            gops_per_w: gops / power,
            junction_c: junction,
            injected_faults: faults,
            accuracy_std: acc.std_dev,
        })
    }

    /// Reads the junction temperature over PMBus (system controller).
    ///
    /// # Errors
    ///
    /// Propagates PMBus errors.
    pub fn read_temperature_c(&mut self) -> Result<f64, MeasureError> {
        let board = self.runtime.board_mut();
        Ok(self.host.read_temperature(board, SYSCTRL_ADDRESS)?)
    }

    /// Commands the fan duty over PMBus (the paper's §7 temperature knob).
    ///
    /// # Errors
    ///
    /// Propagates PMBus errors.
    pub fn set_fan_percent(&mut self, duty: f64) -> Result<(), MeasureError> {
        let board = self.runtime.board_mut();
        Ok(self.host.set_fan_percent(board, SYSCTRL_ADDRESS, duty)?)
    }

    /// The PMBus transaction log since bring-up (bounded ring; see
    /// [`TransactionLog::total`] for the monotonic count).
    pub fn bus_log(&self) -> &TransactionLog {
        self.host.log()
    }

    /// The host adapter's fault-handling counters (retries, injected
    /// faults, PEC failures, scheduled backoff).
    pub fn bus_stats(&self) -> BusStats {
        self.host.stats()
    }

    /// Installs (or clears) a simulated-cycle budget on the runtime — the
    /// supervisor's deterministic watchdog deadline.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.runtime.set_cycle_budget(budget);
    }

    /// Sets the image-shard worker count for this accelerator's batches
    /// (0 = available parallelism, 1 = sequential). An execution
    /// parameter only: measurements are byte-identical for every value,
    /// so it lives outside [`AcceleratorConfig`] and never reaches the
    /// journal's plan fingerprint.
    pub fn set_image_jobs(&mut self, image_jobs: usize) {
        self.runtime.set_image_jobs(image_jobs);
    }

    /// Cumulative simulated DPU cycles this accelerator has executed.
    pub fn cycles_run(&self) -> u64 {
        self.runtime.cycles_run()
    }

    /// Cumulative transient faults the DPU observed across every batch.
    pub fn faults_observed(&self) -> u64 {
        self.runtime.faults_observed()
    }

    /// Cumulative SDC/ECC defense events since bring-up: BRAM words the
    /// SECDED layer touched (corrected or uncorrectable) plus ABFT
    /// checksum mismatches. The adaptive governor snapshots this before
    /// and after each probe window — a non-zero delta means the current
    /// operating point is stressing the defenses even when every event
    /// was absorbed.
    pub fn defense_events(&self) -> u64 {
        let ecc = self.runtime.ecc_stats();
        let abft = self.runtime.defense_stats();
        ecc.corrected_words + ecc.uncorrectable_words + abft.mismatches
    }

    /// Drains this accelerator's telemetry: scalar counters/gauges plus
    /// the recorded spans (ids local to this accelerator; the campaign
    /// layer re-parents and re-bases them in plan order). Everything here
    /// is a pure function of `(seed, config)` — simulated cycles, seeded
    /// fault schedules, commanded rails — never wall clock.
    pub fn take_telemetry(&mut self) -> CellTelemetry {
        let snap = self.runtime.board().snapshot();
        let ecc = self.runtime.ecc_stats();
        let abft = self.runtime.defense_stats();
        let scrub = self.runtime.scrubber();
        CellTelemetry {
            cycles: self.runtime.cycles_run(),
            dpu_faults: self.runtime.faults_observed(),
            bus: self.host.stats(),
            bus_transactions: self.host.log().total(),
            power_cycles: snap.power_cycles,
            vccint_mv: snap.vccint_mv,
            vccbram_mv: snap.vccbram_mv,
            junction_c: snap.junction_c,
            ecc_corrected: ecc.corrected_words,
            ecc_uncorrectable: ecc.uncorrectable_words,
            abft_checks: abft.checks,
            abft_mismatches: abft.mismatches,
            abft_reexecutions: abft.reexecutions,
            abft_unresolved: abft.unresolved,
            scrub_passes: scrub.passes(),
            scrub_retired: scrub.scrubbed(),
            spans: self.spans.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> Accelerator {
        Accelerator::bring_up(&AcceleratorConfig::tiny(BenchmarkId::VggNet)).unwrap()
    }

    #[test]
    fn nominal_measurement_matches_calibration() {
        let mut a = acc();
        let m = a.measure(24).unwrap();
        assert!((m.power_w - 12.59).abs() < 0.2, "power {}", m.power_w);
        // Calibrated accuracy: round(0.86*24)/24.
        let want = (0.86f64 * 24.0).round() / 24.0;
        assert!((m.accuracy - want).abs() < 1e-9, "acc {}", m.accuracy);
        assert_eq!(m.injected_faults, 0);
        assert!(m.gops > 0.0 && m.gops_per_w > 0.0);
    }

    #[test]
    fn guardband_improves_efficiency_without_accuracy_loss() {
        let mut a = acc();
        let nom = a.measure(24).unwrap();
        a.set_vccint_mv(570.0).unwrap();
        let vmin = a.measure(24).unwrap();
        assert_eq!(vmin.accuracy, nom.accuracy);
        let gain = vmin.gops_per_w / nom.gops_per_w;
        assert!((gain - 2.6).abs() < 0.2, "gain {gain}");
    }

    #[test]
    fn crash_reported_and_power_cycle_recovers() {
        let mut a = acc();
        let r = a.set_vccint_mv(530.0);
        assert!(
            matches!(r, Err(MeasureError::Crashed { .. })) || {
                // The write may land before the hang is latched; the
                // measurement then reports the crash.
                matches!(a.measure(8), Err(MeasureError::Crashed { .. }))
            }
        );
        a.power_cycle();
        assert!(a.measure(8).is_ok());
        assert_eq!(a.vccint_mv(), 850.0);
    }

    #[test]
    fn out_of_window_voltage_is_rejected_not_crash() {
        let mut a = acc();
        assert!(matches!(
            a.set_vccint_mv(1200.0),
            Err(MeasureError::Pmbus(PmbusError::Rejected { .. }))
        ));
    }

    #[test]
    fn bus_log_records_the_methodology() {
        let mut a = acc();
        a.set_vccint_mv(600.0).unwrap();
        a.measure(8).unwrap();
        let log = a.bus_log();
        assert!(log.iter().any(|t| t.address == VCCINT_ADDR));
        assert!(log.iter().any(|t| t.address == VCCBRAM_ADDR));
    }

    #[test]
    fn faulted_bus_measurements_reproduce_and_count_retries() {
        let cfg = AcceleratorConfig {
            bus_faults: BusFaultProfile::heavy(),
            ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
        };
        let mut a1 = Accelerator::bring_up(&cfg).unwrap();
        let mut a2 = Accelerator::bring_up(&cfg).unwrap();
        a1.set_vccint_mv(600.0).unwrap();
        a2.set_vccint_mv(600.0).unwrap();
        let m1 = a1.measure(8).unwrap();
        let m2 = a2.measure(8).unwrap();
        assert_eq!(m1.csv_row(), m2.csv_row(), "faulted runs must reproduce");
        assert!(
            a1.bus_stats().injected_faults > 0,
            "heavy profile must fault"
        );
        assert_eq!(a1.bus_stats(), a2.bus_stats());
        assert_eq!(a1.bus_stats().exhausted, 0, "resilient policy absorbs them");
    }

    #[test]
    fn defended_accelerator_surfaces_defense_telemetry() {
        let cfg = AcceleratorConfig {
            defense: DefenseMode::Correct,
            ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
        };
        let mut a = Accelerator::bring_up(&cfg).unwrap();
        a.set_vccint_mv(550.0).unwrap();
        a.measure(8).unwrap();
        let t = a.take_telemetry();
        assert!(t.abft_checks > 0, "defended runs must execute checks");
        assert_eq!(
            a.defense_events(),
            t.ecc_corrected + t.ecc_uncorrectable + t.abft_mismatches,
            "governor signal must match the exported counters"
        );

        // An undefended accelerator at the same point stays silent.
        let mut off = acc();
        off.set_vccint_mv(550.0).unwrap();
        off.measure(8).unwrap();
        let t_off = off.take_telemetry();
        assert_eq!(t_off.abft_checks, 0);
        assert_eq!(off.defense_events(), 0);
    }

    #[test]
    fn fan_and_temperature_via_pmbus() {
        let mut a = acc();
        a.measure(8).unwrap(); // publish load
        a.set_fan_percent(0.0).unwrap();
        let hot = a.read_temperature_c().unwrap();
        a.set_fan_percent(100.0).unwrap();
        let cool = a.read_temperature_c().unwrap();
        assert!(hot > cool);
    }
}

//! Undervolting × quantization study (Fig. 7, §6.1).
//!
//! Repeats the voltage sweep at INT8..INT4 operand precisions (the paper
//! finds INT3 and below unusable even at Vnom). Lower precisions draw less
//! activity power (narrower datapaths) but lose more accuracy both to
//! quantization noise at Vnom and to undervolting faults below Vmin —
//! each flipped bit carries more relative magnitude.

use crate::bench_suite::BenchmarkId;
use crate::experiment::{Accelerator, AcceleratorConfig, MeasureError};
use crate::sweep::{voltage_sweep, SweepConfig, VoltageSweep};

/// Precisions evaluated in Fig. 7 (INT3 and below lose accuracy at Vnom
/// and are excluded, as in the paper).
pub const FIG7_PRECISIONS: [u32; 5] = [8, 7, 6, 5, 4];

/// One precision's sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantCurve {
    /// Operand precision.
    pub bits: u32,
    /// The voltage sweep at this precision.
    pub sweep: VoltageSweep,
}

/// The full Fig. 7 study for one benchmark on one board.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantStudy {
    /// Benchmark studied (the paper reports VGGNet).
    pub benchmark: BenchmarkId,
    /// One curve per precision, highest bits first.
    pub curves: Vec<QuantCurve>,
}

/// Runs the Fig. 7 campaign: one accelerator bring-up per precision, each
/// swept over the same voltage schedule.
///
/// # Errors
///
/// Propagates preparation and non-crash measurement errors.
pub fn quantization_study(
    base: &AcceleratorConfig,
    precisions: &[u32],
    sweep_cfg: &SweepConfig,
) -> Result<QuantStudy, MeasureError> {
    let mut curves = Vec::with_capacity(precisions.len());
    for &bits in precisions {
        let mut acc = Accelerator::bring_up(&AcceleratorConfig { bits, ..*base })?;
        let sweep = voltage_sweep(&mut acc, sweep_cfg)?;
        curves.push(QuantCurve { bits, sweep });
    }
    Ok(QuantStudy {
        benchmark: base.benchmark,
        curves,
    })
}

impl QuantStudy {
    /// The curve at a precision.
    pub fn at_bits(&self, bits: u32) -> Option<&QuantCurve> {
        self.curves.iter().find(|c| c.bits == bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> QuantStudy {
        let base = AcceleratorConfig::tiny(BenchmarkId::VggNet);
        quantization_study(
            &base,
            &[8, 4],
            &SweepConfig {
                start_mv: 850.0,
                stop_mv: 540.0,
                step_mv: 70.0,
                images: 16,
            },
        )
        .unwrap()
    }

    #[test]
    fn lower_precision_draws_less_power() {
        let s = study();
        let p8 = s.at_bits(8).unwrap().sweep.nominal().power_w;
        let p4 = s.at_bits(4).unwrap().sweep.nominal().power_w;
        assert!(p4 < p8, "INT4 {p4} should be below INT8 {p8}");
    }

    #[test]
    fn lower_precision_loses_accuracy_at_vnom() {
        let s = study();
        let a8 = s.at_bits(8).unwrap().sweep.nominal().accuracy;
        let a4 = s.at_bits(4).unwrap().sweep.nominal().accuracy;
        assert!(a4 <= a8, "INT4 {a4} must not beat INT8 {a8}");
    }

    #[test]
    fn lower_precision_is_more_power_efficient() {
        let s = study();
        for curve in &s.curves {
            let nominal = curve.sweep.nominal();
            // GOPs equal across precisions (same ops), power lower for
            // narrow operands => higher GOPs/W.
            assert!(nominal.gops > 0.0);
        }
        let e8 = s.at_bits(8).unwrap().sweep.nominal().gops_per_w;
        let e4 = s.at_bits(4).unwrap().sweep.nominal().gops_per_w;
        assert!(e4 > e8);
    }
}

//! BRAM-rail separation study (§4.1 discussion + the authors' prior
//! BRAM-undervolting work).
//!
//! The paper tracks `VCCBRAM` together with `VCCINT` and notes that BRAMs
//! draw under 0.1 % of on-chip power on UltraScale+ (dynamic power
//! gating), so BRAM undervolting — the subject of the authors' earlier
//! 7-series studies — no longer buys meaningful power. This campaign
//! reproduces that conclusion by driving `VCCBRAM` *alone*: power stays
//! flat to within telemetry noise while weight-fetch faults appear once
//! the rail drops below the BRAM read-margin floor (≈520 mV), far below
//! the logic rail's 570 mV Vmin.

use crate::experiment::{Accelerator, MeasureError, Measurement};

/// One point of the BRAM-rail sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BramPoint {
    /// Commanded `VCCBRAM`, mV.
    pub vccbram_mv: f64,
    /// The measurement at that point (`VCCINT` stays at nominal).
    pub measurement: Measurement,
}

/// Result of the BRAM-rail sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BramStudy {
    /// Points, highest voltage first.
    pub points: Vec<BramPoint>,
    /// Voltage at which the BRAM contents collapsed and the board hung.
    pub crashed_at_mv: Option<f64>,
}

impl BramStudy {
    /// Lowest BRAM voltage with zero injected faults (the BRAM Vmin).
    pub fn bram_vmin_mv(&self) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.measurement.injected_faults == 0)
            .last()
            .map(|p| p.vccbram_mv)
    }

    /// Total on-chip power spread across the fault-free points (how much
    /// power BRAM undervolting actually saves — §4.1 says almost none).
    pub fn fault_free_power_spread_w(&self) -> f64 {
        let powers: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.measurement.injected_faults == 0)
            .map(|p| p.measurement.power_w)
            .collect();
        if powers.is_empty() {
            return 0.0;
        }
        powers.iter().cloned().fold(f64::MIN, f64::max)
            - powers.iter().cloned().fold(f64::MAX, f64::min)
    }
}

/// Sweeps `VCCBRAM` downward with `VCCINT` held at nominal.
///
/// # Errors
///
/// Propagates non-crash errors; ends at the BRAM collapse. The
/// accelerator is power-cycled on return.
pub fn bram_rail_study(
    acc: &mut Accelerator,
    start_mv: f64,
    stop_mv: f64,
    step_mv: f64,
    images: usize,
) -> Result<BramStudy, MeasureError> {
    acc.power_cycle();
    let mut points = Vec::new();
    let mut crashed_at_mv = None;
    let mut mv = start_mv;
    while mv >= stop_mv - 1e-9 {
        let result = acc.set_vccbram_mv(mv).and_then(|()| acc.measure(images));
        match result {
            Ok(measurement) => points.push(BramPoint {
                vccbram_mv: mv,
                measurement,
            }),
            Err(MeasureError::Crashed { .. }) => {
                crashed_at_mv = Some(mv);
                break;
            }
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        }
        mv -= step_mv;
    }
    acc.power_cycle();
    Ok(BramStudy {
        points,
        crashed_at_mv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;
    use redvolt_nn::models::ModelScale;

    fn study() -> &'static BramStudy {
        // The sweep is expensive at paper scale; share it across tests.
        static STUDY: std::sync::OnceLock<BramStudy> = std::sync::OnceLock::new();
        STUDY.get_or_init(|| {
            let mut acc = Accelerator::bring_up(&AcceleratorConfig {
                eval_images: 32,
                repetitions: 2,
                scale: ModelScale::Paper,
                ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
            })
            .unwrap();
            bram_rail_study(&mut acc, 850.0, 430.0, 10.0, 32).unwrap()
        })
    }

    #[test]
    fn bram_rail_alone_saves_almost_no_power() {
        // §4.1: BRAMs draw <0.1% of on-chip power on UltraScale+.
        let s = study();
        assert!(
            s.fault_free_power_spread_w() < 0.2,
            "spread = {} W",
            s.fault_free_power_spread_w()
        );
    }

    #[test]
    fn bram_faults_appear_far_below_logic_vmin() {
        let s = study();
        let vmin = s.bram_vmin_mv().expect("some fault-free points");
        assert!(
            (480.0..=530.0).contains(&vmin),
            "BRAM Vmin = {vmin} (expected ≈520, well below the logic 570)"
        );
    }

    #[test]
    fn bram_collapse_hangs_the_board() {
        let s = study();
        let crash = s.crashed_at_mv.expect("sweep reaches BRAM collapse");
        assert!(crash < 460.0, "collapse at {crash}");
    }

    #[test]
    fn accuracy_degrades_only_below_bram_vmin() {
        let s = study();
        let nominal = s.points.first().unwrap().measurement.accuracy;
        for p in &s.points {
            if p.vccbram_mv >= 530.0 {
                assert_eq!(p.measurement.accuracy, nominal, "at {}", p.vccbram_mv);
            }
        }
        let deepest = s.points.last().unwrap();
        assert!(
            deepest.measurement.injected_faults > 0,
            "deepest point should fault: {deepest:?}"
        );
    }
}

//! Razor-style fault mitigation below the guardband (§9 future work i).
//!
//! The paper's §5 rescue (frequency underscaling) trades throughput for
//! correctness *statically*. This extension evaluates the alternative the
//! paper proposes as future work: keep the full clock and *detect-and-
//! retry* timing faults (Razor shadow latches detect violations; the
//! affected inference re-executes). In the upper critical region faults
//! are rare enough that retries are cheap and accuracy returns to nominal;
//! approaching Vcrash the per-inference fault probability saturates and
//! the scheme collapses — retries stop converging.

use crate::experiment::{Accelerator, MeasureError};
use redvolt_dpu::runtime::RunError;
use redvolt_num::stats::Summary;

/// One voltage point of the mitigation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationPoint {
    /// `VCCINT` in mV.
    pub vccint_mv: f64,
    /// Accuracy with mitigation enabled.
    pub accuracy: f64,
    /// Accuracy without mitigation (same operating point).
    pub unmitigated_accuracy: f64,
    /// Mean executions per image (the redundancy cost).
    pub attempts_per_image: f64,
    /// Effective GOPs/W after paying the redundancy.
    pub effective_gops_per_w: f64,
    /// Fraction of images still faulty after the retry budget.
    pub unresolved_fraction: f64,
}

/// Result of the mitigation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationStudy {
    /// Points from the guardband edge down to the last responsive voltage.
    pub points: Vec<MitigationPoint>,
}

/// Sweeps the critical region with Razor mitigation at the full clock.
///
/// # Errors
///
/// Propagates non-crash measurement errors; the sweep ends at the first
/// hang. The accelerator is power-cycled on return.
pub fn mitigation_study(
    acc: &mut Accelerator,
    start_mv: f64,
    stop_mv: f64,
    step_mv: f64,
    images: usize,
    max_retries: u32,
) -> Result<MitigationStudy, MeasureError> {
    acc.power_cycle();
    let mut points = Vec::new();
    let mut mv = start_mv;
    while mv >= stop_mv - 1e-9 {
        if acc.set_vccint_mv(mv).is_err() {
            break;
        }
        // Unmitigated reference at the same point.
        let plain = match acc.measure(images) {
            Ok(m) => m,
            Err(MeasureError::Crashed { .. }) => break,
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        };
        let reps = acc.config().repetitions.max(1);
        let n = images.min(acc.workload().eval.len()).max(1);
        let mut accs = Vec::with_capacity(reps);
        let mut attempts = Vec::with_capacity(reps);
        let mut unresolved = 0u64;
        let mut eff_gops_per_w = 0.0;
        let mut crashed = false;
        for rep in 0..reps {
            let eval_images: Vec<_> = acc.workload().eval.images[..n].to_vec();
            let labels: Vec<usize> = acc.workload().eval.labels[..n].to_vec();
            let seed = acc.config().seed ^ ((rep as u64 + 1) << 32) ^ mv.to_bits();
            let outcome = {
                let (runtime, workload) = acc.runtime_and_workload_mut();
                runtime.run_batch_mitigated(&mut workload.task, &eval_images, seed, max_retries)
            };
            match outcome {
                Ok(r) => {
                    let hits = r
                        .predictions
                        .iter()
                        .zip(&labels)
                        .filter(|(p, l)| p == l)
                        .count();
                    accs.push(hits as f64 / n as f64);
                    attempts.push(r.attempts_per_image);
                    unresolved += r.unresolved_images;
                    eff_gops_per_w = r.timing.gops / r.on_chip_power_w;
                }
                Err(RunError::BoardCrashed) => {
                    crashed = true;
                    break;
                }
                Err(e) => {
                    acc.power_cycle();
                    return Err(MeasureError::Run(e));
                }
            }
        }
        if crashed || accs.is_empty() {
            break;
        }
        points.push(MitigationPoint {
            vccint_mv: mv,
            accuracy: Summary::of(&accs).expect("reps >= 1").mean,
            unmitigated_accuracy: plain.accuracy,
            attempts_per_image: Summary::of(&attempts).expect("reps >= 1").mean,
            effective_gops_per_w: eff_gops_per_w,
            unresolved_fraction: unresolved as f64 / (reps * n) as f64,
        });
        mv -= step_mv;
    }
    acc.power_cycle();
    Ok(MitigationStudy { points })
}

/// The escalation policy of the adaptive governor: where to move the
/// operating point when the current one keeps producing SDC/ECC events.
///
/// The order follows the paper's mitigation axes. Frequency underscaling
/// comes first (§5: a lower clock restores timing slack at the same
/// voltage, and Table 2 shows 250 MHz rescuing every measured sub-Vmin
/// point while keeping ≥ 75 % of nominal throughput — more in practice,
/// since the DDR roofline caps the full-clock rate anyway). Only when the
/// clock floor is reached does the governor back the voltage off toward
/// the guardband, where fault rates vanish by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationLadder {
    /// Clock decrement, MHz (the paper's 25 MHz reconfiguration grid).
    pub f_step_mhz: f64,
    /// Clock floor, MHz — below this the throughput band is violated.
    pub f_floor_mhz: f64,
    /// Voltage increment, mV, once the clock floor is reached.
    pub v_step_mv: f64,
    /// Voltage ceiling, mV (Vmin plus margin): reaching it means the
    /// undervolting experiment has been fully backed out.
    pub v_ceiling_mv: f64,
}
impl Default for MitigationLadder {
    fn default() -> Self {
        MitigationLadder {
            f_step_mhz: 25.0,
            f_floor_mhz: 250.0,
            v_step_mv: 10.0,
            v_ceiling_mv: 580.0,
        }
    }
}

/// The next rung of a [`MitigationLadder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LadderMove {
    /// Underscale the clock to this frequency, MHz.
    Underscale(f64),
    /// Back the voltage off to this level, mV.
    Backoff(f64),
    /// Both axes exhausted: the point cannot be rescued within policy.
    Exhausted,
}

impl MitigationLadder {
    /// The move to try from the operating point `(f_mhz, vccint_mv)`.
    /// Pure and total, so the escalation path is a deterministic function
    /// of the starting point alone.
    pub fn next(&self, f_mhz: f64, vccint_mv: f64) -> LadderMove {
        let f_next = f_mhz - self.f_step_mhz;
        if f_next >= self.f_floor_mhz - 1e-9 {
            return LadderMove::Underscale(f_next);
        }
        let v_next = vccint_mv + self.v_step_mv;
        if v_next <= self.v_ceiling_mv + 1e-9 {
            return LadderMove::Backoff(v_next);
        }
        LadderMove::Exhausted
    }

    /// How many rungs separate the operating point `(f_mhz, vccint_mv)`
    /// from the commanded baseline `(base_f_mhz, base_mv)`: frequency
    /// underscaling steps plus voltage backoff steps. The serving
    /// router uses this as its "how degraded is this board" distance —
    /// zero means the governor never had to intervene.
    pub fn rungs_walked(&self, base_f_mhz: f64, base_mv: f64, f_mhz: f64, vccint_mv: f64) -> u32 {
        let f_steps = ((base_f_mhz - f_mhz).max(0.0) / self.f_step_mhz).round() as u32;
        let v_steps = ((vccint_mv - base_mv).max(0.0) / self.v_step_mv).round() as u32;
        f_steps + v_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;
    use redvolt_nn::models::ModelScale;

    fn study() -> MitigationStudy {
        // Paper scale so the critical region actually faults.
        let mut acc = Accelerator::bring_up(&AcceleratorConfig {
            eval_images: 40,
            repetitions: 2,
            scale: ModelScale::Paper,
            ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
        })
        .unwrap();
        mitigation_study(&mut acc, 570.0, 540.0, 10.0, 40, 6).unwrap()
    }

    #[test]
    fn mitigation_recovers_accuracy_in_upper_critical_region() {
        let s = study();
        let p560 = s
            .points
            .iter()
            .find(|p| (p.vccint_mv - 560.0).abs() < 1e-6)
            .expect("560 mV measured");
        assert!(p560.accuracy > p560.unmitigated_accuracy + 0.05, "{p560:?}");
        assert!(p560.attempts_per_image > 1.0);
    }

    #[test]
    fn mitigation_cost_grows_toward_vcrash() {
        let s = study();
        let first = s.points.first().unwrap();
        let last = s.points.last().unwrap();
        assert!(last.attempts_per_image > first.attempts_per_image);
    }

    #[test]
    fn ladder_underscales_to_the_floor_then_backs_voltage_off() {
        let ladder = MitigationLadder::default();
        // From nominal clock the grid descends 333 -> 308 -> ... -> 258.
        let mut f = 333.0;
        let mut moves = 0;
        while let LadderMove::Underscale(next) = ladder.next(f, 545.0) {
            assert!(next >= ladder.f_floor_mhz);
            assert!(next < f);
            f = next;
            moves += 1;
        }
        assert_eq!(moves, 3);
        assert!((f - 258.0).abs() < 1e-9);
        // Floor reached: voltage escalates toward the ceiling.
        assert_eq!(ladder.next(f, 545.0), LadderMove::Backoff(555.0));
        assert_eq!(ladder.next(f, 575.0), LadderMove::Exhausted);
    }

    #[test]
    fn rungs_walked_counts_both_axes() {
        let ladder = MitigationLadder::default();
        assert_eq!(ladder.rungs_walked(333.0, 545.0, 333.0, 545.0), 0);
        assert_eq!(ladder.rungs_walked(333.0, 545.0, 283.0, 545.0), 2);
        assert_eq!(ladder.rungs_walked(333.0, 545.0, 258.0, 565.0), 5);
        // Moves in the healthy direction never count as rungs.
        assert_eq!(ladder.rungs_walked(333.0, 545.0, 333.0, 540.0), 0);
    }
}

//! Razor-style fault mitigation below the guardband (§9 future work i).
//!
//! The paper's §5 rescue (frequency underscaling) trades throughput for
//! correctness *statically*. This extension evaluates the alternative the
//! paper proposes as future work: keep the full clock and *detect-and-
//! retry* timing faults (Razor shadow latches detect violations; the
//! affected inference re-executes). In the upper critical region faults
//! are rare enough that retries are cheap and accuracy returns to nominal;
//! approaching Vcrash the per-inference fault probability saturates and
//! the scheme collapses — retries stop converging.

use crate::experiment::{Accelerator, MeasureError};
use redvolt_dpu::runtime::RunError;
use redvolt_num::stats::Summary;

/// One voltage point of the mitigation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationPoint {
    /// `VCCINT` in mV.
    pub vccint_mv: f64,
    /// Accuracy with mitigation enabled.
    pub accuracy: f64,
    /// Accuracy without mitigation (same operating point).
    pub unmitigated_accuracy: f64,
    /// Mean executions per image (the redundancy cost).
    pub attempts_per_image: f64,
    /// Effective GOPs/W after paying the redundancy.
    pub effective_gops_per_w: f64,
    /// Fraction of images still faulty after the retry budget.
    pub unresolved_fraction: f64,
}

/// Result of the mitigation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationStudy {
    /// Points from the guardband edge down to the last responsive voltage.
    pub points: Vec<MitigationPoint>,
}

/// Sweeps the critical region with Razor mitigation at the full clock.
///
/// # Errors
///
/// Propagates non-crash measurement errors; the sweep ends at the first
/// hang. The accelerator is power-cycled on return.
pub fn mitigation_study(
    acc: &mut Accelerator,
    start_mv: f64,
    stop_mv: f64,
    step_mv: f64,
    images: usize,
    max_retries: u32,
) -> Result<MitigationStudy, MeasureError> {
    acc.power_cycle();
    let mut points = Vec::new();
    let mut mv = start_mv;
    while mv >= stop_mv - 1e-9 {
        if acc.set_vccint_mv(mv).is_err() {
            break;
        }
        // Unmitigated reference at the same point.
        let plain = match acc.measure(images) {
            Ok(m) => m,
            Err(MeasureError::Crashed { .. }) => break,
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        };
        let reps = acc.config().repetitions.max(1);
        let n = images.min(acc.workload().eval.len()).max(1);
        let mut accs = Vec::with_capacity(reps);
        let mut attempts = Vec::with_capacity(reps);
        let mut unresolved = 0u64;
        let mut eff_gops_per_w = 0.0;
        let mut crashed = false;
        for rep in 0..reps {
            let eval_images: Vec<_> = acc.workload().eval.images[..n].to_vec();
            let labels: Vec<usize> = acc.workload().eval.labels[..n].to_vec();
            let seed = acc.config().seed ^ ((rep as u64 + 1) << 32) ^ mv.to_bits();
            let outcome = {
                let (runtime, workload) = acc.runtime_and_workload_mut();
                runtime.run_batch_mitigated(&mut workload.task, &eval_images, seed, max_retries)
            };
            match outcome {
                Ok(r) => {
                    let hits = r
                        .predictions
                        .iter()
                        .zip(&labels)
                        .filter(|(p, l)| p == l)
                        .count();
                    accs.push(hits as f64 / n as f64);
                    attempts.push(r.attempts_per_image);
                    unresolved += r.unresolved_images;
                    eff_gops_per_w = r.timing.gops / r.on_chip_power_w;
                }
                Err(RunError::BoardCrashed) => {
                    crashed = true;
                    break;
                }
                Err(e) => {
                    acc.power_cycle();
                    return Err(MeasureError::Run(e));
                }
            }
        }
        if crashed || accs.is_empty() {
            break;
        }
        points.push(MitigationPoint {
            vccint_mv: mv,
            accuracy: Summary::of(&accs).expect("reps >= 1").mean,
            unmitigated_accuracy: plain.accuracy,
            attempts_per_image: Summary::of(&attempts).expect("reps >= 1").mean,
            effective_gops_per_w: eff_gops_per_w,
            unresolved_fraction: unresolved as f64 / (reps * n) as f64,
        });
        mv -= step_mv;
    }
    acc.power_cycle();
    Ok(MitigationStudy { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;
    use redvolt_nn::models::ModelScale;

    fn study() -> MitigationStudy {
        // Paper scale so the critical region actually faults.
        let mut acc = Accelerator::bring_up(&AcceleratorConfig {
            eval_images: 40,
            repetitions: 2,
            scale: ModelScale::Paper,
            ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
        })
        .unwrap();
        mitigation_study(&mut acc, 570.0, 540.0, 10.0, 40, 6).unwrap()
    }

    #[test]
    fn mitigation_recovers_accuracy_in_upper_critical_region() {
        let s = study();
        let p560 = s
            .points
            .iter()
            .find(|p| (p.vccint_mv - 560.0).abs() < 1e-6)
            .expect("560 mV measured");
        assert!(p560.accuracy > p560.unmitigated_accuracy + 0.05, "{p560:?}");
        assert!(p560.attempts_per_image > 1.0);
    }

    #[test]
    fn mitigation_cost_grows_toward_vcrash() {
        let s = study();
        let first = s.points.first().unwrap();
        let last = s.points.last().unwrap();
        assert!(last.attempts_per_image > first.attempts_per_image);
    }
}

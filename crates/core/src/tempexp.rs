//! Environmental-temperature study (Figs. 9 & 10, §7).
//!
//! The paper regulates the on-board temperature between 34 °C and 52 °C
//! via PMBus fan control and repeats the voltage characterization at each
//! set-point. Two effects interact:
//!
//! * **power** — leakage rises with temperature, so power rises, but the
//!   effect shrinks at low voltage (Fig. 9);
//! * **reliability** — inverse thermal dependence makes paths *faster*
//!   when hot, so a fixed sub-Vmin voltage shows fewer faults and higher
//!   accuracy at higher temperature (Fig. 10).

use crate::experiment::{Accelerator, AcceleratorConfig, MeasureError};
use crate::sweep::{voltage_sweep, SweepConfig, VoltageSweep};

/// Temperature set-points used by the reproduction (the paper's span).
pub const SETPOINTS_C: [f64; 3] = [34.0, 43.0, 52.0];

/// One temperature's voltage sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TempCurve {
    /// Junction temperature set-point, °C.
    pub temp_c: f64,
    /// The voltage sweep at that temperature.
    pub sweep: VoltageSweep,
}

/// The Figs. 9/10 study.
#[derive(Debug, Clone, PartialEq)]
pub struct TempStudy {
    /// One curve per set-point, coolest first.
    pub curves: Vec<TempCurve>,
}

/// Runs the temperature campaign: for each set-point, pin the junction
/// temperature (the paper re-regulates the fan at every operating point to
/// hold its set-point; our chamber override does the same exactly) and
/// sweep the voltage schedule.
///
/// # Errors
///
/// Propagates preparation and non-crash errors.
pub fn temperature_study(
    base: &AcceleratorConfig,
    setpoints_c: &[f64],
    sweep_cfg: &SweepConfig,
) -> Result<TempStudy, MeasureError> {
    let mut curves = Vec::with_capacity(setpoints_c.len());
    for &t in setpoints_c {
        let mut acc = Accelerator::bring_up(base)?;
        acc.board_mut().thermal_mut().force_temperature(t);
        let sweep = voltage_sweep(&mut acc, sweep_cfg)?;
        curves.push(TempCurve { temp_c: t, sweep });
    }
    Ok(TempStudy { curves })
}

impl TempStudy {
    /// The curve at a set-point.
    pub fn at_temp(&self, temp_c: f64) -> Option<&TempCurve> {
        self.curves
            .iter()
            .find(|c| (c.temp_c - temp_c).abs() < 1e-6)
    }

    /// The §7.3 optimal operating point: the (temperature, voltage) pair
    /// with the lowest power whose accuracy is within `tolerance` of the
    /// nominal accuracy. The paper finds (50 °C, 565 mV)-class points:
    /// high temperature "heals" timing at low voltage for a small power
    /// cost.
    pub fn optimal_point(&self, tolerance: f64) -> Option<(f64, f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None;
        for curve in &self.curves {
            let nominal = curve.sweep.nominal().accuracy;
            for m in &curve.sweep.points {
                if m.accuracy >= nominal - tolerance {
                    match best {
                        Some((_, _, p)) if p <= m.power_w => {}
                        _ => best = Some((curve.temp_c, m.vccint_mv, m.power_w)),
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;

    fn study() -> TempStudy {
        temperature_study(
            &AcceleratorConfig::tiny(BenchmarkId::GoogleNet),
            &[34.0, 52.0],
            &SweepConfig {
                start_mv: 850.0,
                stop_mv: 540.0,
                step_mv: 50.0,
                images: 12,
            },
        )
        .unwrap()
    }

    #[test]
    fn power_rises_with_temperature_at_high_voltage() {
        let s = study();
        let cold = s.at_temp(34.0).unwrap().sweep.nominal().power_w;
        let hot = s.at_temp(52.0).unwrap().sweep.nominal().power_w;
        assert!(hot > cold, "{hot} vs {cold}");
        // ... by the paper's ≈0.46%.
        let rise = (hot - cold) / cold;
        assert!((0.001..0.01).contains(&rise), "rise = {rise}");
    }

    #[test]
    fn temperature_effect_shrinks_at_low_voltage() {
        let s = study();
        let rel = |t: f64, mv: f64| {
            let c = s.at_temp(t).unwrap();
            c.sweep.at_mv(mv).map(|m| m.power_w)
        };
        let rise_at = |mv: f64| {
            let cold = rel(34.0, mv).unwrap();
            let hot = rel(52.0, mv).unwrap();
            (hot - cold) / cold
        };
        assert!(rise_at(650.0) < rise_at(850.0));
    }

    #[test]
    fn vmin_stable_across_temperature() {
        // §7.3: negligible change in the guardband over the span.
        let s = study();
        for curvein in &s.curves {
            let nominal = curvein_nominal(curvein);
            for m in curvein.sweep.points.iter().filter(|m| m.vccint_mv >= 600.0) {
                assert_eq!(m.accuracy, nominal, "at {} mV", m.vccint_mv);
            }
        }
    }

    fn curvein_nominal(c: &TempCurve) -> f64 {
        c.sweep.nominal().accuracy
    }

    #[test]
    fn optimal_point_prefers_heat_and_low_voltage() {
        let s = study();
        let (t, mv, p) = s.optimal_point(0.02).expect("some safe point exists");
        assert!(mv < 700.0, "optimal voltage {mv} should be deep");
        assert!(p < 6.0, "optimal power {p}");
        let _ = t; // any set-point is acceptable at 50 mV granularity
    }
}

//! Frequency underscaling in the critical region (Table 2, §5).
//!
//! For each voltage below Vmin, find the largest clock (in 25 MHz steps)
//! at which the accelerator shows no accuracy loss, then report GOPs,
//! power, GOPs/W and GOPs/J normalized to the (Vmin, 333 MHz) baseline.

use crate::experiment::{Accelerator, MeasureError, Measurement};
use redvolt_fpga::calib::F_NOM_MHZ;

/// Search configuration for the Table-2 flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqScaleConfig {
    /// Highest voltage of the scan (the paper starts at Vmin = 570 mV).
    pub start_mv: f64,
    /// Lowest voltage of the scan (the paper's Vcrash = 540 mV).
    pub stop_mv: f64,
    /// Voltage step (the paper uses 5 mV).
    pub v_step_mv: f64,
    /// Frequency step (the paper uses 25 MHz).
    pub f_step_mhz: f64,
    /// Evaluation images per probe.
    pub images: usize,
    /// Accuracy loss tolerated before a clock is declared unsafe.
    pub accuracy_tolerance: f64,
}

impl Default for FreqScaleConfig {
    fn default() -> Self {
        FreqScaleConfig {
            start_mv: 570.0,
            stop_mv: 540.0,
            v_step_mv: 5.0,
            f_step_mhz: 25.0,
            images: 100,
            accuracy_tolerance: 0.01,
        }
    }
}

/// One row of the Table-2 reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqScaleRow {
    /// `VCCINT` in mV.
    pub vccint_mv: f64,
    /// Largest accuracy-safe clock found, MHz.
    pub fmax_mhz: f64,
    /// Throughput normalized to the (start_mv, 333 MHz) baseline.
    pub gops_norm: f64,
    /// Power normalized to the baseline.
    pub power_norm: f64,
    /// Power-efficiency (GOPs/W) normalized to the baseline.
    pub gops_per_w_norm: f64,
    /// Energy-efficiency (GOPs/J = GOPs · GOPs/W, the paper's
    /// performance-weighted energy metric) normalized to the baseline.
    pub gops_per_j_norm: f64,
}

/// Runs the Table-2 campaign on one accelerator. Returns rows from
/// `start_mv` down to `stop_mv`; the first row is the baseline (norms 1.0).
/// The accelerator is power-cycled and back at nominal on return.
///
/// # Errors
///
/// Propagates non-crash errors; a voltage where even the lowest probed
/// clock crashes ends the scan.
pub fn frequency_underscaling(
    acc: &mut Accelerator,
    cfg: &FreqScaleConfig,
) -> Result<Vec<FreqScaleRow>, MeasureError> {
    acc.power_cycle();
    let nominal_acc = acc.measure(cfg.images)?.accuracy;

    let mut rows: Vec<FreqScaleRow> = Vec::new();
    let mut baseline: Option<Measurement> = None;
    let mut mv = cfg.start_mv;
    let mut last_fmax = F_NOM_MHZ;
    'voltages: while mv >= cfg.stop_mv - 1e-9 {
        // Fmax is monotone in voltage: start the search at the previous
        // voltage's Fmax (the paper's search does the same walk-down).
        // Clocks probe the nominal 333 MHz first, then round multiples of
        // the frequency step (325, 300, 275, … — the paper's grid).
        let mut f = last_fmax;
        while f > 0.0 {
            acc.power_cycle();
            acc.set_clock_mhz(f);
            let result = acc.set_vccint_mv(mv).and_then(|()| acc.measure(cfg.images));
            // "No accuracy loss" over the paper's long soak runs means no
            // timing faults at all: the probe must be fault-free (zero
            // slack deficit) and match nominal accuracy.
            let fault_free =
                |m: &Measurement| m.injected_faults == 0 && acc.board().slack_deficit() == 0.0;
            match result {
                Ok(m) if fault_free(&m) && m.accuracy >= nominal_acc - cfg.accuracy_tolerance => {
                    let base = baseline.get_or_insert(m);
                    rows.push(FreqScaleRow {
                        vccint_mv: mv,
                        fmax_mhz: f,
                        gops_norm: m.gops / base.gops,
                        power_norm: m.power_w / base.power_w,
                        gops_per_w_norm: m.gops_per_w / base.gops_per_w,
                        gops_per_j_norm: (m.gops / base.gops) * (m.gops_per_w / base.gops_per_w),
                    });
                    last_fmax = f;
                    mv -= cfg.v_step_mv;
                    continue 'voltages;
                }
                Ok(_) | Err(MeasureError::Crashed { .. }) => {
                    // Step down onto the round 25 MHz grid below 333.
                    let grid = (f / cfg.f_step_mhz).ceil() * cfg.f_step_mhz;
                    f = grid - cfg.f_step_mhz;
                }
                Err(e) => {
                    acc.power_cycle();
                    return Err(e);
                }
            }
        }
        break; // no safe clock at this voltage
    }
    acc.power_cycle();
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;

    fn run_table2() -> Vec<FreqScaleRow> {
        let mut acc = Accelerator::bring_up(&AcceleratorConfig::tiny(BenchmarkId::VggNet)).unwrap();
        frequency_underscaling(
            &mut acc,
            &FreqScaleConfig {
                images: 20,
                ..FreqScaleConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn covers_the_critical_region() {
        let rows = run_table2();
        assert_eq!(rows.len(), 7, "570..=540 in 5 mV steps: {rows:?}");
        assert_eq!(rows[0].vccint_mv, 570.0);
        assert_eq!(rows.last().unwrap().vccint_mv, 540.0);
    }

    #[test]
    fn baseline_row_is_unity_at_full_clock() {
        let rows = run_table2();
        let b = rows[0];
        assert_eq!(b.fmax_mhz, F_NOM_MHZ);
        assert!((b.gops_norm - 1.0).abs() < 1e-9);
        assert!((b.power_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fmax_matches_paper_column() {
        // Paper Table 2: 333, 300, 250, 250, 250, 250, 200 MHz.
        let rows = run_table2();
        let fmax: Vec<f64> = rows.iter().map(|r| r.fmax_mhz).collect();
        assert_eq!(fmax, vec![333.0, 300.0, 250.0, 250.0, 250.0, 250.0, 200.0]);
    }

    #[test]
    fn power_falls_and_gops_per_w_rises_down_the_table() {
        let rows = run_table2();
        let last = rows.last().unwrap();
        assert!(last.power_norm < 0.7, "power_norm = {}", last.power_norm);
        assert!(
            last.gops_per_w_norm > 1.1,
            "gops_per_w_norm = {}",
            last.gops_per_w_norm
        );
        for w in rows.windows(2) {
            assert!(w[1].power_norm <= w[0].power_norm + 1e-6);
        }
    }

    #[test]
    fn best_energy_efficiency_is_the_baseline() {
        // §5's conclusion: GOPs/J is maximized at (Vmin, Fmax). The exact
        // inequality is verified at paper scale by the repro harness; the
        // tiny test model's compute/memory split allows a small slack.
        let rows = run_table2();
        for r in &rows[1..] {
            assert!(
                r.gops_per_j_norm < 1.06,
                "GOPs/J must not beat the baseline materially: {r:?}"
            );
        }
        let deepest = rows.last().unwrap();
        assert!(deepest.gops_per_j_norm < 1.0, "{deepest:?}");
    }
}

//! Power-efficiency analysis (Fig. 5, §4.3).

use crate::sweep::VoltageSweep;

/// Power-efficiency gain series: `(VCCINT mV, GOPs/W relative to Vnom)`.
///
/// # Panics
///
/// Panics if the sweep is empty.
pub fn gain_series(sweep: &VoltageSweep) -> Vec<(f64, f64)> {
    let nominal = sweep.nominal().gops_per_w;
    sweep
        .points
        .iter()
        .map(|m| (m.vccint_mv, m.gops_per_w / nominal))
        .collect()
}

/// Gain at (or interpolated nearest-below) a specific voltage.
pub fn gain_at(sweep: &VoltageSweep, mv: f64) -> Option<f64> {
    let nominal = sweep.nominal().gops_per_w;
    sweep.at_mv(mv).map(|m| m.gops_per_w / nominal)
}

/// The headline numbers of §4.3 for one benchmark sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyHeadline {
    /// GOPs/W gain at Vmin (the guardband-elimination gain; paper ≈2.6×).
    pub gain_at_vmin: f64,
    /// GOPs/W gain at the last responsive voltage (paper > 3×).
    pub gain_at_vcrash: f64,
    /// The extra gain from undervolting below the guardband
    /// (paper ≈ +43 %).
    pub extra_gain_below_guardband: f64,
}

/// Computes the headline gains from a sweep that reached the crash point.
///
/// Returns `None` if the sweep lacks a point at `vmin_mv` or never went
/// below it.
pub fn headline(sweep: &VoltageSweep, vmin_mv: f64) -> Option<EfficiencyHeadline> {
    let at_vmin = gain_at(sweep, vmin_mv)?;
    let last = sweep.points.last()?;
    if last.vccint_mv >= vmin_mv {
        return None;
    }
    let at_crash = last.gops_per_w / sweep.nominal().gops_per_w;
    Some(EfficiencyHeadline {
        gain_at_vmin: at_vmin,
        gain_at_vcrash: at_crash,
        extra_gain_below_guardband: at_crash / at_vmin - 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::{Accelerator, AcceleratorConfig};
    use crate::sweep::{voltage_sweep, SweepConfig};

    fn sweep() -> VoltageSweep {
        let mut acc =
            Accelerator::bring_up(&AcceleratorConfig::tiny(BenchmarkId::GoogleNet)).unwrap();
        voltage_sweep(
            &mut acc,
            &SweepConfig {
                start_mv: 850.0,
                stop_mv: 530.0,
                step_mv: 10.0,
                images: 12,
            },
        )
        .unwrap()
    }

    #[test]
    fn gain_rises_monotonically_as_voltage_falls() {
        let series = gain_series(&sweep());
        assert!((series[0].1 - 1.0).abs() < 1e-9);
        for w in series.windows(2) {
            assert!(w[1].1 > w[0].1 - 0.02, "{w:?}");
        }
    }

    #[test]
    fn headline_matches_paper_shape() {
        let s = sweep();
        let h = headline(&s, 570.0).expect("sweep crosses Vmin");
        assert!((h.gain_at_vmin - 2.6).abs() < 0.2, "{h:?}");
        assert!(h.gain_at_vcrash > 3.0, "{h:?}");
        assert!(
            (0.15..0.60).contains(&h.extra_gain_below_guardband),
            "{h:?}"
        );
    }

    #[test]
    fn headline_none_when_sweep_stops_early() {
        let mut acc =
            Accelerator::bring_up(&AcceleratorConfig::tiny(BenchmarkId::GoogleNet)).unwrap();
        let shallow = voltage_sweep(
            &mut acc,
            &SweepConfig {
                start_mv: 850.0,
                stop_mv: 700.0,
                step_mv: 50.0,
                images: 8,
            },
        )
        .unwrap();
        assert!(headline(&shallow, 570.0).is_none());
    }
}

//! Plain-text table/series emitters for campaign results.
//!
//! The `repro` binary prints every reproduced table and figure through
//! these helpers; they also render to CSV for plotting.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// A mismatched cell count is an emitter bug, so debug builds panic
    /// on it; release builds normalize the row instead — padding with
    /// empty cells or truncating — rather than abort a multi-hour
    /// campaign at print time. Use [`Table::try_row`] to surface the
    /// mismatch as a value.
    ///
    /// # Panics
    ///
    /// With debug assertions enabled, panics if the cell count does not
    /// match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        let mut row = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row, rejecting a column-count mismatch instead of
    /// panicking or padding.
    ///
    /// # Errors
    ///
    /// Returns [`RowError`] when the cell count does not match the
    /// header count; the table is left unchanged.
    pub fn try_row(&mut self, cells: &[String]) -> Result<&mut Self, RowError> {
        if cells.len() != self.headers.len() {
            return Err(RowError {
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells.to_vec());
        Ok(self)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// A [`Table::try_row`] cell count that does not match the headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowError {
    /// Header (column) count of the table.
    pub expected: usize,
    /// Cell count of the rejected row.
    pub got: usize,
}

impl std::fmt::Display for RowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "table row has {} cells, expected {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for RowError {}

/// Formats a float with the given decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a normalized value (2 decimals, the paper's Table-2 style).
pub fn norm(v: f64) -> String {
    fmt(v, 2)
}

/// Formats an accuracy as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["V (mV)", "Acc"]);
        t.row(&["850".to_string(), pct(0.86)]);
        t.row(&["540".to_string(), pct(0.07)]);
        t
    }

    #[test]
    fn text_render_is_aligned() {
        let text = table().to_text();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("V (mV)"));
        assert!(text.contains("86.0%"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_render() {
        let csv = table().to_csv();
        assert_eq!(csv.lines().next().unwrap(), "V (mV),Acc");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked_in_debug() {
        Table::new("t", &["a", "b"]).row(&["x".to_string()]);
    }

    #[test]
    fn try_row_rejects_mismatch_and_keeps_table_intact() {
        let mut t = Table::new("t", &["a", "b"]);
        let err = t.try_row(&["x".to_string()]).unwrap_err();
        assert_eq!(
            err,
            RowError {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(err.to_string(), "table row has 1 cells, expected 2");
        assert!(t.is_empty());
        t.try_row(&["x".to_string(), "y".to_string()]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(norm(1.256), "1.26");
        assert_eq!(pct(0.925), "92.5%");
        assert_eq!(fmt(12.589, 1), "12.6");
    }
}

//! Dynamic voltage adjustment (§9 future work ii).
//!
//! A closed-loop governor that discovers and tracks the minimum safe
//! voltage at run time, instead of trusting a static calibration: after
//! every batch it reads the fault-detection counters (Razor-style error
//! flags — the same observability [`crate::mitigation`] relies on) and
//!
//! * steps **down** one notch after `clean_streak` consecutive clean
//!   batches (still above the configured floor);
//! * steps **up** one larger notch immediately when faults are detected;
//! * power-cycles and backs off when it overshoots into a hang.
//!
//! Because the fault boundary follows the inverse thermal dependence, the
//! governor automatically reaches deeper voltages on a hot board — the
//! §7.3 observation turned into a controller.

use crate::experiment::{Accelerator, MeasureError, Measurement};
use crate::mitigation::{LadderMove, MitigationLadder};
use redvolt_fpga::calib::VNOM_MV;

/// A point-in-time health reading of one accelerator, for fleet-level
/// consumers (the serving router scores boards with this). Everything
/// here derives from commanded state and seeded simulation counters, so
/// snapshots are pure functions of `(seed, config, history)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoardHealth {
    /// Commanded `VCCINT`, mV.
    pub vccint_mv: f64,
    /// DPU clock, MHz.
    pub f_mhz: f64,
    /// Steady-state junction temperature, °C.
    pub junction_c: f64,
    /// Exact on-chip power at the present operating point, watts.
    pub power_w: f64,
    /// Whether the board is hung.
    pub crashed: bool,
    /// Power cycles so far.
    pub power_cycles: u64,
    /// Cumulative SDC/ECC defense events (see
    /// [`Accelerator::defense_events`]).
    pub defense_events: u64,
    /// Cumulative transient faults delivered into the datapath.
    pub dpu_faults: u64,
    /// Cumulative simulated DPU cycles executed.
    pub cycles_run: u64,
}

impl BoardHealth {
    /// Snapshots an accelerator's health.
    pub fn of(acc: &Accelerator) -> BoardHealth {
        let snap = acc.board().snapshot();
        BoardHealth {
            vccint_mv: snap.vccint_mv,
            f_mhz: acc.clock_mhz(),
            junction_c: snap.junction_c,
            power_w: snap.on_chip_power_w,
            crashed: snap.crashed,
            power_cycles: snap.power_cycles,
            defense_events: acc.defense_events(),
            dpu_faults: acc.faults_observed(),
            cycles_run: acc.cycles_run(),
        }
    }

    /// Mitigation rungs this operating point sits away from a commanded
    /// baseline, per `ladder` — the router's degradation distance.
    pub fn rungs_from(&self, ladder: &MitigationLadder, base_f_mhz: f64, base_mv: f64) -> u32 {
        ladder.rungs_walked(base_f_mhz, base_mv, self.f_mhz, self.vccint_mv)
    }

    /// The reading as typed attributes, for flight-recorder snapshots
    /// and trace spans. Keys are stable export names.
    pub fn attrs(&self) -> Vec<(String, redvolt_telemetry::AttrValue)> {
        use redvolt_telemetry::AttrValue;
        vec![
            ("vccint_mv".to_string(), AttrValue::F64(self.vccint_mv)),
            ("f_mhz".to_string(), AttrValue::F64(self.f_mhz)),
            ("junction_c".to_string(), AttrValue::F64(self.junction_c)),
            ("power_w".to_string(), AttrValue::F64(self.power_w)),
            ("crashed".to_string(), AttrValue::Bool(self.crashed)),
            (
                "power_cycles".to_string(),
                AttrValue::U64(self.power_cycles),
            ),
            (
                "defense_events".to_string(),
                AttrValue::U64(self.defense_events),
            ),
            ("dpu_faults".to_string(), AttrValue::U64(self.dpu_faults)),
            ("cycles_run".to_string(), AttrValue::U64(self.cycles_run)),
        ]
    }
}

/// Governor tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Downward step after a clean streak, mV.
    pub step_down_mv: f64,
    /// Upward step on detected faults, mV.
    pub step_up_mv: f64,
    /// Clean batches required before stepping down.
    pub clean_streak: u32,
    /// Lowest voltage the governor may command, mV.
    pub floor_mv: f64,
    /// Images per batch.
    pub batch_images: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            step_down_mv: 5.0,
            step_up_mv: 10.0,
            clean_streak: 2,
            floor_mv: 520.0,
            batch_images: 32,
        }
    }
}

/// One governor step record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorStep {
    /// Batch index.
    pub batch: u32,
    /// Voltage commanded for this batch, mV.
    pub vccint_mv: f64,
    /// Faults detected during the batch.
    pub faults: u64,
    /// Power during the batch, watts.
    pub power_w: f64,
    /// Whether the board hung and was power-cycled after this batch.
    pub crashed: bool,
}

/// Trace of a governor run.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorTrace {
    /// Per-batch records.
    pub steps: Vec<GovernorStep>,
    /// Voltage at the end of the run, mV.
    pub settled_mv: f64,
}

impl GovernorTrace {
    /// Mean power over the run's batches, watts.
    pub fn mean_power_w(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.power_w).sum::<f64>() / self.steps.len() as f64
    }

    /// Number of crash/power-cycle events.
    pub fn crash_count(&self) -> usize {
        self.steps.iter().filter(|s| s.crashed).count()
    }

    /// Canonical CSV serialization of the trace (one row per batch, plus a
    /// terminal `settled` row). Uses shortest round-trip float formatting,
    /// like [`crate::experiment::Measurement::csv_row`], so byte equality
    /// of two serialized traces means bit-identical results.
    pub fn csv_rows(&self) -> Vec<String> {
        let mut rows: Vec<String> = self
            .steps
            .iter()
            .map(|s| {
                format!(
                    "{},{:?},{},{:?},{}",
                    s.batch, s.vccint_mv, s.faults, s.power_w, s.crashed
                )
            })
            .collect();
        rows.push(format!("settled,{:?},,,", self.settled_mv));
        rows
    }
}

/// Runs the governor for `batches` batches on an accelerator.
///
/// # Errors
///
/// Propagates non-crash errors (crashes are handled by backing off).
pub fn run_governor(
    acc: &mut Accelerator,
    cfg: &GovernorConfig,
    batches: u32,
) -> Result<GovernorTrace, MeasureError> {
    let mut steps = Vec::with_capacity(batches as usize);
    let mut target_mv = acc.vccint_mv();
    let mut streak = 0u32;
    for batch in 0..batches {
        let commanded = target_mv;
        let result = acc
            .set_vccint_mv(commanded)
            .and_then(|()| acc.measure(cfg.batch_images));
        match result {
            Ok(m) => {
                let faulty = m.injected_faults > 0;
                steps.push(GovernorStep {
                    batch,
                    vccint_mv: commanded,
                    faults: m.injected_faults,
                    power_w: m.power_w,
                    crashed: false,
                });
                if faulty {
                    streak = 0;
                    target_mv = (commanded + cfg.step_up_mv).min(VNOM_MV);
                } else {
                    streak += 1;
                    if streak >= cfg.clean_streak && commanded - cfg.step_down_mv >= cfg.floor_mv {
                        streak = 0;
                        target_mv = commanded - cfg.step_down_mv;
                    }
                }
            }
            Err(MeasureError::Crashed { .. }) => {
                steps.push(GovernorStep {
                    batch,
                    vccint_mv: commanded,
                    faults: 0,
                    power_w: 0.0,
                    crashed: true,
                });
                acc.power_cycle();
                streak = 0;
                // Back well off from the hang point.
                target_mv = (commanded + 3.0 * cfg.step_up_mv).min(VNOM_MV);
            }
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        }
    }
    Ok(GovernorTrace {
        settled_mv: target_mv,
        steps,
    })
}

/// Tuning of the adaptive SDC governor.
///
/// Where [`run_governor`] *hunts* for the deepest safe voltage, the
/// adaptive governor *defends* a commanded operating point: it watches the
/// per-window SDC/ECC event rate and, while events keep arriving, walks
/// the point along the [`MitigationLadder`] — frequency underscaling
/// first, voltage backoff toward the guardband second — until
/// `clean_windows` consecutive probe windows are event-free (the
/// hysteresis that keeps a single lucky window from settling the loop).
/// The streak's last window runs at full batch size and becomes the
/// returned measurement, so a settled rescue is clean by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Escalation policy.
    pub ladder: MitigationLadder,
    /// Images per probe window.
    pub probe_images: usize,
    /// Consecutive clean windows required before settling.
    pub clean_windows: u32,
    /// Probe-window budget (a backstop; the ladder is finite, so the loop
    /// terminates long before this in practice).
    pub max_windows: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            ladder: MitigationLadder::default(),
            probe_images: 8,
            clean_windows: 2,
            max_windows: 32,
        }
    }
}

/// One probe window of an adaptive-governor run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RescueStep {
    /// Window index.
    pub window: u32,
    /// DPU clock during the window, MHz.
    pub f_mhz: f64,
    /// `VCCINT` during the window, mV.
    pub vccint_mv: f64,
    /// SDC/ECC events observed: faults delivered into the datapath plus
    /// defense-layer events (ECC words touched, ABFT mismatches).
    pub events: u64,
}

/// Trace of an adaptive-governor rescue.
#[derive(Debug, Clone, PartialEq)]
pub struct RescueTrace {
    /// Per-window records, in probe order.
    pub steps: Vec<RescueStep>,
    /// Whether the loop settled on an event-free operating point (false
    /// only when the ladder and window budget were both exhausted).
    pub rescued: bool,
}

impl RescueTrace {
    /// Whether the governor had to act at all: a clean commanded point
    /// settles without a single event and stays a plain measurement.
    pub fn intervened(&self) -> bool {
        self.steps.iter().any(|s| s.events > 0)
    }

    /// Canonical CSV rows (`rescue,window,f_mhz,vccint_mv,events`), using
    /// shortest round-trip float formatting like every campaign payload.
    pub fn csv_rows(&self) -> Vec<String> {
        self.steps
            .iter()
            .map(|s| {
                format!(
                    "rescue,{},{:?},{:?},{}",
                    s.window, s.f_mhz, s.vccint_mv, s.events
                )
            })
            .collect()
    }
}

/// Probes the accelerator's current operating point and rescues it if it
/// produces SDC/ECC events, then takes the final measurement over
/// `images` images at the settled point.
///
/// The event signal combines the faults delivered into the datapath with
/// the defense counters ([`Accelerator::defense_events`]), so the
/// governor escalates even when ECC/ABFT absorbed every corruption —
/// sustained correction traffic means the margin is gone, which is
/// exactly the paper's cue to underscale.
///
/// The last of the `clean_windows` hysteresis windows runs over the full
/// `images` batch and doubles as the returned measurement. Marginal
/// points fault in rare bursts that a short probe can miss, so settling
/// on probes alone would hand back a payload the governor never actually
/// watched; confirming on the full batch means `rescued == true` implies
/// the returned measurement itself produced zero events.
///
/// # Errors
///
/// Propagates measurement errors, including crashes (the supervisor owns
/// power-cycle-and-retry).
pub fn run_adaptive_rescue(
    acc: &mut Accelerator,
    cfg: &AdaptiveConfig,
    images: usize,
) -> Result<(Measurement, RescueTrace), MeasureError> {
    let mut steps = Vec::new();
    let mut clean = 0u32;
    for window in 0..cfg.max_windows {
        // The confirmation window closes the hysteresis streak at full
        // batch size; earlier windows are cheap short probes.
        let confirm = clean + 1 >= cfg.clean_windows;
        let before = acc.defense_events();
        let n = if confirm { images } else { cfg.probe_images };
        let m = acc.measure(n)?;
        let events = m.injected_faults + (acc.defense_events() - before);
        steps.push(RescueStep {
            window,
            f_mhz: acc.clock_mhz(),
            vccint_mv: acc.vccint_mv(),
            events,
        });
        if events == 0 {
            if confirm {
                return Ok((
                    m,
                    RescueTrace {
                        steps,
                        rescued: true,
                    },
                ));
            }
            clean += 1;
        } else {
            clean = 0;
            match cfg.ladder.next(acc.clock_mhz(), acc.vccint_mv()) {
                LadderMove::Underscale(f_mhz) => acc.set_clock_mhz(f_mhz),
                LadderMove::Backoff(mv) => acc.set_vccint_mv(mv)?,
                LadderMove::Exhausted => break,
            }
        }
    }
    // Windows or ladder exhausted: measure where we stand and report the
    // rescue as failed so the caller can see the payload was never
    // confirmed clean.
    let measurement = acc.measure(images)?;
    Ok((
        measurement,
        RescueTrace {
            steps,
            rescued: false,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;
    use proptest::prelude::*;
    use redvolt_nn::models::ModelScale;

    fn accelerator() -> Accelerator {
        Accelerator::bring_up(&AcceleratorConfig {
            eval_images: 32,
            repetitions: 1,
            scale: ModelScale::Paper,
            ..AcceleratorConfig::tiny(BenchmarkId::GoogleNet)
        })
        .unwrap()
    }

    #[test]
    fn board_health_snapshot_tracks_the_operating_point() {
        let mut acc = accelerator();
        acc.set_vccint_mv(600.0).unwrap();
        acc.set_clock_mhz(283.0);
        acc.measure(8).unwrap();
        let h = BoardHealth::of(&acc);
        // The PMBus VOUT command quantizes to the regulator's LSB, so the
        // snapshot reads back near — not exactly at — the requested point.
        assert!((h.vccint_mv - 600.0).abs() < 0.5, "vccint {}", h.vccint_mv);
        assert_eq!(h.f_mhz, 283.0);
        assert!(!h.crashed);
        assert!(h.cycles_run > 0);
        assert!(h.power_w > 0.0);
        assert_eq!(h.rungs_from(&MitigationLadder::default(), 333.0, 600.0), 2);
    }

    #[test]
    fn governor_descends_into_the_guardband() {
        let mut acc = accelerator();
        let trace = run_governor(&mut acc, &GovernorConfig::default(), 120).unwrap();
        assert!(
            trace.settled_mv < 620.0,
            "should dive deep into the guardband: {}",
            trace.settled_mv
        );
        // It saves energy vs static nominal operation.
        let nominal_power = trace.steps.first().unwrap().power_w;
        assert!(trace.steps.last().unwrap().power_w < nominal_power / 1.8);
    }

    #[test]
    fn governor_hovers_near_vmin_without_repeated_crashes() {
        let mut acc = accelerator();
        let trace = run_governor(&mut acc, &GovernorConfig::default(), 160).unwrap();
        // Late-phase voltages stay in a tight band around Vmin (570).
        let late: Vec<f64> = trace.steps.iter().skip(120).map(|s| s.vccint_mv).collect();
        let lo = late.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (545.0..=575.0).contains(&lo),
            "governor should probe near Vmin: lo = {lo}"
        );
        assert!(trace.crash_count() <= 2, "crashes: {}", trace.crash_count());
    }

    fn paper_scale(board: u32) -> AcceleratorConfig {
        AcceleratorConfig {
            board_sample: board,
            eval_images: 16,
            repetitions: 1,
            scale: ModelScale::Paper,
            ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
        }
    }

    #[test]
    fn adaptive_rescue_underscales_before_backing_voltage_off() {
        let mut acc = Accelerator::bring_up(&paper_scale(0)).unwrap();
        acc.set_vccint_mv(550.0).unwrap();
        assert!(
            acc.measure(16).unwrap().injected_faults > 0,
            "550 mV at the full clock must fault, or this test probes nothing"
        );
        let (m, trace) = run_adaptive_rescue(&mut acc, &AdaptiveConfig::default(), 16).unwrap();
        assert!(trace.rescued);
        assert!(trace.intervened());
        assert_eq!(m.injected_faults, 0, "settled point must be clean");
        assert!(m.f_mhz < 333.0, "rescue should underscale: {}", m.f_mhz);
        // Frequency moves strictly before voltage: every window at the
        // commanded 550 mV until the clock floor is reached.
        let first_backoff = trace.steps.iter().position(|s| s.vccint_mv > 550.0);
        if let Some(i) = first_backoff {
            assert!(
                (trace.steps[i].f_mhz - 258.0).abs() < 1e-9,
                "voltage must not move before the clock floor: {:?}",
                trace.steps[i]
            );
        }
    }

    #[test]
    fn adaptive_rescue_is_a_no_op_at_clean_points() {
        let mut acc = Accelerator::bring_up(&paper_scale(0)).unwrap();
        acc.set_vccint_mv(600.0).unwrap();
        let cfg = AdaptiveConfig::default();
        let (m, trace) = run_adaptive_rescue(&mut acc, &cfg, 16).unwrap();
        assert!(trace.rescued);
        assert!(!trace.intervened());
        assert_eq!(trace.steps.len(), cfg.clean_windows as usize);
        assert_eq!(m.vccint_mv, 600.0);
        assert_eq!(m.f_mhz, 333.0);
        assert_eq!(m.injected_faults, 0);
    }

    proptest! {
        /// The issue's mitigation property: for any board sample (process
        /// corner) and any commanded sub-Vmin voltage, the operating
        /// point the governor settles on yields zero injected faults
        /// while staying inside the paper's throughput band (Table 2
        /// keeps >= 70 % of nominal GOPs at every rescued point).
        #[test]
        fn rescue_lands_clean_within_the_throughput_band(
            board in 0u32..64,
            mv in 109u32..=113, // 545..=565 mV on the 5 mV grid
        ) {
            let mv = f64::from(mv) * 5.0;
            let mut acc = Accelerator::bring_up(&paper_scale(board)).unwrap();
            let nominal = acc.measure(16).unwrap();
            // Weak corners hang below their Vcrash at the deepest
            // commanded points; rescuing a hung board is the
            // supervisor's job (power-cycle + retry), not the governor's.
            if acc.set_vccint_mv(mv).is_ok() {
                match run_adaptive_rescue(&mut acc, &AdaptiveConfig::default(), 16) {
                    Ok((m, trace)) => {
                        prop_assert!(trace.rescued, "ladder must converge");
                        prop_assert_eq!(m.injected_faults, 0);
                        prop_assert!(
                            m.gops / nominal.gops >= 0.70,
                            "throughput band violated: {} vs {}",
                            m.gops,
                            nominal.gops
                        );
                    }
                    Err(MeasureError::Crashed { .. }) => {} // as above
                    Err(e) => panic!("unexpected measure error: {e}"),
                }
            }
        }
    }

    #[test]
    fn hot_board_settles_deeper_than_cold_board() {
        // ITD: the fault boundary moves down when hot, and the governor
        // follows it — §7.3 as a control loop.
        let settle = |temp: f64| {
            let mut acc = accelerator();
            acc.board_mut().thermal_mut().force_temperature(temp);
            let trace = run_governor(&mut acc, &GovernorConfig::default(), 160).unwrap();
            let late: Vec<f64> = trace.steps.iter().skip(100).map(|s| s.vccint_mv).collect();
            late.iter().sum::<f64>() / late.len() as f64
        };
        let cold = settle(34.0);
        let hot = settle(52.0);
        // ITD moves the fault boundary by only a few mV, below the
        // governor's 5 mV step; assert the hot board is no *worse* than
        // one control step above the cold one.
        assert!(
            hot <= cold + 5.0,
            "hot board should not run above the cold board: {hot} vs {cold}"
        );
    }
}

//! Dynamic voltage adjustment (§9 future work ii).
//!
//! A closed-loop governor that discovers and tracks the minimum safe
//! voltage at run time, instead of trusting a static calibration: after
//! every batch it reads the fault-detection counters (Razor-style error
//! flags — the same observability [`crate::mitigation`] relies on) and
//!
//! * steps **down** one notch after `clean_streak` consecutive clean
//!   batches (still above the configured floor);
//! * steps **up** one larger notch immediately when faults are detected;
//! * power-cycles and backs off when it overshoots into a hang.
//!
//! Because the fault boundary follows the inverse thermal dependence, the
//! governor automatically reaches deeper voltages on a hot board — the
//! §7.3 observation turned into a controller.

use crate::experiment::{Accelerator, MeasureError};
use redvolt_fpga::calib::VNOM_MV;

/// Governor tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Downward step after a clean streak, mV.
    pub step_down_mv: f64,
    /// Upward step on detected faults, mV.
    pub step_up_mv: f64,
    /// Clean batches required before stepping down.
    pub clean_streak: u32,
    /// Lowest voltage the governor may command, mV.
    pub floor_mv: f64,
    /// Images per batch.
    pub batch_images: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            step_down_mv: 5.0,
            step_up_mv: 10.0,
            clean_streak: 2,
            floor_mv: 520.0,
            batch_images: 32,
        }
    }
}

/// One governor step record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorStep {
    /// Batch index.
    pub batch: u32,
    /// Voltage commanded for this batch, mV.
    pub vccint_mv: f64,
    /// Faults detected during the batch.
    pub faults: u64,
    /// Power during the batch, watts.
    pub power_w: f64,
    /// Whether the board hung and was power-cycled after this batch.
    pub crashed: bool,
}

/// Trace of a governor run.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorTrace {
    /// Per-batch records.
    pub steps: Vec<GovernorStep>,
    /// Voltage at the end of the run, mV.
    pub settled_mv: f64,
}

impl GovernorTrace {
    /// Mean power over the run's batches, watts.
    pub fn mean_power_w(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.power_w).sum::<f64>() / self.steps.len() as f64
    }

    /// Number of crash/power-cycle events.
    pub fn crash_count(&self) -> usize {
        self.steps.iter().filter(|s| s.crashed).count()
    }

    /// Canonical CSV serialization of the trace (one row per batch, plus a
    /// terminal `settled` row). Uses shortest round-trip float formatting,
    /// like [`crate::experiment::Measurement::csv_row`], so byte equality
    /// of two serialized traces means bit-identical results.
    pub fn csv_rows(&self) -> Vec<String> {
        let mut rows: Vec<String> = self
            .steps
            .iter()
            .map(|s| {
                format!(
                    "{},{:?},{},{:?},{}",
                    s.batch, s.vccint_mv, s.faults, s.power_w, s.crashed
                )
            })
            .collect();
        rows.push(format!("settled,{:?},,,", self.settled_mv));
        rows
    }
}

/// Runs the governor for `batches` batches on an accelerator.
///
/// # Errors
///
/// Propagates non-crash errors (crashes are handled by backing off).
pub fn run_governor(
    acc: &mut Accelerator,
    cfg: &GovernorConfig,
    batches: u32,
) -> Result<GovernorTrace, MeasureError> {
    let mut steps = Vec::with_capacity(batches as usize);
    let mut target_mv = acc.vccint_mv();
    let mut streak = 0u32;
    for batch in 0..batches {
        let commanded = target_mv;
        let result = acc
            .set_vccint_mv(commanded)
            .and_then(|()| acc.measure(cfg.batch_images));
        match result {
            Ok(m) => {
                let faulty = m.injected_faults > 0;
                steps.push(GovernorStep {
                    batch,
                    vccint_mv: commanded,
                    faults: m.injected_faults,
                    power_w: m.power_w,
                    crashed: false,
                });
                if faulty {
                    streak = 0;
                    target_mv = (commanded + cfg.step_up_mv).min(VNOM_MV);
                } else {
                    streak += 1;
                    if streak >= cfg.clean_streak && commanded - cfg.step_down_mv >= cfg.floor_mv {
                        streak = 0;
                        target_mv = commanded - cfg.step_down_mv;
                    }
                }
            }
            Err(MeasureError::Crashed { .. }) => {
                steps.push(GovernorStep {
                    batch,
                    vccint_mv: commanded,
                    faults: 0,
                    power_w: 0.0,
                    crashed: true,
                });
                acc.power_cycle();
                streak = 0;
                // Back well off from the hang point.
                target_mv = (commanded + 3.0 * cfg.step_up_mv).min(VNOM_MV);
            }
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        }
    }
    Ok(GovernorTrace {
        settled_mv: target_mv,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;
    use redvolt_nn::models::ModelScale;

    fn accelerator() -> Accelerator {
        Accelerator::bring_up(&AcceleratorConfig {
            eval_images: 32,
            repetitions: 1,
            scale: ModelScale::Paper,
            ..AcceleratorConfig::tiny(BenchmarkId::GoogleNet)
        })
        .unwrap()
    }

    #[test]
    fn governor_descends_into_the_guardband() {
        let mut acc = accelerator();
        let trace = run_governor(&mut acc, &GovernorConfig::default(), 120).unwrap();
        assert!(
            trace.settled_mv < 620.0,
            "should dive deep into the guardband: {}",
            trace.settled_mv
        );
        // It saves energy vs static nominal operation.
        let nominal_power = trace.steps.first().unwrap().power_w;
        assert!(trace.steps.last().unwrap().power_w < nominal_power / 1.8);
    }

    #[test]
    fn governor_hovers_near_vmin_without_repeated_crashes() {
        let mut acc = accelerator();
        let trace = run_governor(&mut acc, &GovernorConfig::default(), 160).unwrap();
        // Late-phase voltages stay in a tight band around Vmin (570).
        let late: Vec<f64> = trace.steps.iter().skip(120).map(|s| s.vccint_mv).collect();
        let lo = late.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (545.0..=575.0).contains(&lo),
            "governor should probe near Vmin: lo = {lo}"
        );
        assert!(trace.crash_count() <= 2, "crashes: {}", trace.crash_count());
    }

    #[test]
    fn hot_board_settles_deeper_than_cold_board() {
        // ITD: the fault boundary moves down when hot, and the governor
        // follows it — §7.3 as a control loop.
        let settle = |temp: f64| {
            let mut acc = accelerator();
            acc.board_mut().thermal_mut().force_temperature(temp);
            let trace = run_governor(&mut acc, &GovernorConfig::default(), 160).unwrap();
            let late: Vec<f64> = trace.steps.iter().skip(100).map(|s| s.vccint_mv).collect();
            late.iter().sum::<f64>() / late.len() as f64
        };
        let cold = settle(34.0);
        let hot = settle(52.0);
        // ITD moves the fault boundary by only a few mV, below the
        // governor's 5 mV step; assert the hot board is no *worse* than
        // one control step above the cold one.
        assert!(
            hot <= cold + 5.0,
            "hot board should not run above the cold board: {hot} vs {cold}"
        );
    }
}

//! Campaign observability: per-cell collection, plan-order aggregation.
//!
//! The bridge between the campaign machinery in this crate and the
//! generic `redvolt-telemetry` primitives. The layering is what keeps
//! the determinism contract honest under parallelism:
//!
//! 1. Each cell attempt records into *its own* [`CellTelemetry`] (the
//!    accelerator's counters plus a local span ring) — no cross-thread
//!    shared state, so scheduling cannot interleave anything.
//! 2. The supervisor folds attempts into one [`CellTelemetry`] per cell
//!    (counters summed, gauges from the final attempt, spans wrapped in
//!    `attempt` spans).
//! 3. [`CampaignTelemetry::collect`] merges the per-cell telemetry **in
//!    plan order** into one registry and span stream, prefix-summing
//!    simulated-cycle offsets. The result is a pure function of
//!    `(seed, plan)` — byte-identical across `--jobs 1/2/8` and reruns.
//!
//! Scalar per-cell telemetry is journaled alongside each outcome (see
//! [`CellTelemetry::encode_compact`]), so a `--resume`d campaign reports
//! the same final metrics as an uninterrupted one. Spans are not
//! journaled: the resume contract covers metrics; full span-stream
//! byte-identity holds for straight runs.

use crate::executor::{CampaignReport, CellOutcome, CellResult};
use crate::report::Table;
use redvolt_pmbus::adapter::BusStats;
use redvolt_telemetry::export::{export_jsonl, export_prometheus};
use redvolt_telemetry::progress::ProgressReporter;
use redvolt_telemetry::{Registry, SpanRecord, SpanRing};
use std::io;
use std::path::Path;
use std::time::Duration;

/// Bucket bounds (simulated cycles) for the per-cell cycle-cost
/// histogram.
const CELL_CYCLE_BOUNDS: [f64; 5] = [1e6, 1e7, 1e8, 1e9, 1e10];

/// Bucket bounds for the per-cell attempt-count histogram.
const CELL_ATTEMPT_BOUNDS: [f64; 3] = [1.0, 2.0, 4.0];

/// Telemetry of one campaign cell: deterministic counters and gauges from
/// the seeded simulation, plus the cell's local span stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellTelemetry {
    /// Simulated DPU cycles the cell consumed (all attempts).
    pub cycles: u64,
    /// Transient faults the DPU observed (all attempts).
    pub dpu_faults: u64,
    /// PMBus fault-handling counters (all attempts).
    pub bus: BusStats,
    /// PMBus transactions issued (all attempts).
    pub bus_transactions: u64,
    /// Board power cycles, counting the supervisor's reboot-between-
    /// attempts as one each (the paper's "requires a full power cycle").
    pub power_cycles: u64,
    /// Final commanded `VCCINT`, mV (0 when the cell never brought up).
    pub vccint_mv: f64,
    /// Final commanded `VCCBRAM`, mV.
    pub vccbram_mv: f64,
    /// Final junction temperature, °C.
    pub junction_c: f64,
    /// BRAM words whose single-bit upset SECDED corrected (all attempts).
    pub ecc_corrected: u64,
    /// BRAM words with a detectable-but-uncorrectable multi-bit pattern.
    pub ecc_uncorrectable: u64,
    /// ABFT checksum verifications executed.
    pub abft_checks: u64,
    /// ABFT checksum mismatches flagged.
    pub abft_mismatches: u64,
    /// Corrupted tiles re-executed under [`redvolt_nn::abft::DefenseMode::Correct`].
    pub abft_reexecutions: u64,
    /// Mismatches still present after the re-execution budget.
    pub abft_unresolved: u64,
    /// BRAM scrub passes completed.
    pub scrub_passes: u64,
    /// Latent corrected-on-read upsets retired by scrubbing.
    pub scrub_retired: u64,
    /// Cell-local spans (ids self-consistent within the cell; empty for
    /// journal-rehydrated cells).
    pub spans: Vec<SpanRecord>,
}

impl CellTelemetry {
    /// Folds one attempt into the cell total: counters sum, gauges take
    /// the attempt's (last-write-wins) values. Spans are merged
    /// separately by the supervisor so they can nest under `attempt`
    /// spans.
    pub fn merge_attempt(&mut self, attempt: &CellTelemetry) {
        self.cycles += attempt.cycles;
        self.dpu_faults += attempt.dpu_faults;
        self.bus.accumulate(attempt.bus);
        self.bus_transactions += attempt.bus_transactions;
        self.power_cycles += attempt.power_cycles;
        self.vccint_mv = attempt.vccint_mv;
        self.vccbram_mv = attempt.vccbram_mv;
        self.junction_c = attempt.junction_c;
        self.ecc_corrected += attempt.ecc_corrected;
        self.ecc_uncorrectable += attempt.ecc_uncorrectable;
        self.abft_checks += attempt.abft_checks;
        self.abft_mismatches += attempt.abft_mismatches;
        self.abft_reexecutions += attempt.abft_reexecutions;
        self.abft_unresolved += attempt.abft_unresolved;
        self.scrub_passes += attempt.scrub_passes;
        self.scrub_retired += attempt.scrub_retired;
    }

    /// Encodes the scalar telemetry as a single space-free token for the
    /// campaign journal (spans are deliberately excluded). Floats use
    /// `{:?}` shortest round-trip formatting, so
    /// [`CellTelemetry::decode_compact`] reproduces the exact values and
    /// a resumed campaign's metrics match an uninterrupted run's.
    pub fn encode_compact(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{:?},{:?},{:?},{},{},{},{},{},{},{},{}",
            self.cycles,
            self.dpu_faults,
            self.bus.retries,
            self.bus.injected_faults,
            self.bus.pec_failures,
            self.bus.backoff.as_micros(),
            self.bus.exhausted,
            self.bus_transactions,
            self.power_cycles,
            self.vccint_mv,
            self.vccbram_mv,
            self.junction_c,
            self.ecc_corrected,
            self.ecc_uncorrectable,
            self.abft_checks,
            self.abft_mismatches,
            self.abft_reexecutions,
            self.abft_unresolved,
            self.scrub_passes,
            self.scrub_retired,
        )
    }

    /// Decodes [`CellTelemetry::encode_compact`]; `None` on any
    /// malformed blob (the caller treats the cell as telemetry-less).
    /// Blobs written before the SDC-defense counters existed carry 12
    /// fields instead of 20 and decode with zeroed defense counters, so
    /// old journals stay resumable.
    pub fn decode_compact(blob: &str) -> Option<CellTelemetry> {
        let f: Vec<&str> = blob.split(',').collect();
        if f.len() != 12 && f.len() != 20 {
            return None;
        }
        let defense = |i: usize| -> Option<u64> {
            if f.len() == 12 {
                Some(0)
            } else {
                f[i].parse().ok()
            }
        };
        Some(CellTelemetry {
            cycles: f[0].parse().ok()?,
            dpu_faults: f[1].parse().ok()?,
            bus: BusStats {
                retries: f[2].parse().ok()?,
                injected_faults: f[3].parse().ok()?,
                pec_failures: f[4].parse().ok()?,
                backoff: Duration::from_micros(f[5].parse().ok()?),
                exhausted: f[6].parse().ok()?,
            },
            bus_transactions: f[7].parse().ok()?,
            power_cycles: f[8].parse().ok()?,
            vccint_mv: f[9].parse().ok()?,
            vccbram_mv: f[10].parse().ok()?,
            junction_c: f[11].parse().ok()?,
            ecc_corrected: defense(12)?,
            ecc_uncorrectable: defense(13)?,
            abft_checks: defense(14)?,
            abft_mismatches: defense(15)?,
            abft_reexecutions: defense(16)?,
            abft_unresolved: defense(17)?,
            scrub_passes: defense(18)?,
            scrub_retired: defense(19)?,
            spans: Vec::new(),
        })
    }
}

/// Splits a journal payload into the outcome payload proper and the
/// appended telemetry token, if one is present and well-formed. Journals
/// written before the telemetry layer (or whose blob fails to decode)
/// yield `None`, keeping resume backward-compatible.
pub fn split_telem(payload: &str) -> (&str, Option<CellTelemetry>) {
    if let Some((rest, blob)) = payload.rsplit_once(" telem=") {
        if let Some(t) = CellTelemetry::decode_compact(blob) {
            return (rest, Some(t));
        }
    }
    (payload, None)
}

/// Observer of supervised campaign progress. Implementations must be
/// callable from any worker thread; calls arrive in completion order
/// (which is scheduling-dependent), so observers must not feed anything
/// back into the deterministic payload — they exist for progress
/// reporting and live dashboards.
pub trait CampaignObserver: Sync {
    /// Called once per cell, after its final outcome is known (and
    /// journaled, when a journal is attached).
    fn cell_completed(&self, result: &CellResult);
}

impl CampaignObserver for ProgressReporter {
    fn cell_completed(&self, result: &CellResult) {
        self.cell_done(
            matches!(result.outcome, CellOutcome::Aborted { .. }),
            result.attempts.saturating_sub(1),
            result.telemetry.cycles,
        );
    }
}

/// The merged, deterministic telemetry of one finished campaign.
#[derive(Debug)]
pub struct CampaignTelemetry {
    /// Counters, gauges and histograms, aggregated in plan order.
    pub registry: Registry,
    /// The campaign → cell → attempt → bus/DPU span tree, cycle offsets
    /// prefix-summed in plan order.
    pub spans: SpanRing,
}

impl CampaignTelemetry {
    /// Aggregates every cell's telemetry in plan order. The output is
    /// identical for any worker count because the inputs are per-cell
    /// values merged in a fixed order — scheduling never shows.
    pub fn collect(report: &CampaignReport) -> CampaignTelemetry {
        let registry = Registry::new();
        let mut ring = SpanRing::new();

        let cells = registry.counter("redvolt_cells_total", &[]);
        let aborted = registry.counter("redvolt_cells_aborted_total", &[]);
        let degraded = registry.counter("redvolt_cells_degraded_total", &[]);
        let retried = registry.counter("redvolt_cells_retried_total", &[]);
        let attempts = registry.counter("redvolt_attempts_total", &[]);
        let cycles = registry.counter("redvolt_dpu_cycles_total", &[]);
        let dpu_faults = registry.counter("redvolt_dpu_faults_total", &[]);
        let bus_txn = registry.counter("redvolt_bus_transactions_total", &[]);
        let bus_retries = registry.counter("redvolt_bus_retries_total", &[]);
        let bus_injected = registry.counter("redvolt_bus_injected_faults_total", &[]);
        let bus_pec = registry.counter("redvolt_bus_pec_failures_total", &[]);
        let bus_exhausted = registry.counter("redvolt_bus_exhausted_total", &[]);
        let bus_backoff = registry.counter("redvolt_bus_backoff_micros_total", &[]);
        let power_cycles = registry.counter("redvolt_power_cycles_total", &[]);
        let ecc_corrected = registry.counter("redvolt_ecc_corrected_words_total", &[]);
        let ecc_uncorrectable = registry.counter("redvolt_ecc_uncorrectable_words_total", &[]);
        let abft_checks = registry.counter("redvolt_abft_checks_total", &[]);
        let abft_mismatches = registry.counter("redvolt_abft_mismatches_total", &[]);
        let abft_reexec = registry.counter("redvolt_abft_reexecutions_total", &[]);
        let abft_unresolved = registry.counter("redvolt_abft_unresolved_total", &[]);
        let scrub_passes = registry.counter("redvolt_scrub_passes_total", &[]);
        let scrub_retired = registry.counter("redvolt_scrub_retired_upsets_total", &[]);
        let cell_cycles = registry.histogram("redvolt_cell_cycles", &[], &CELL_CYCLE_BOUNDS);
        let cell_attempts = registry.histogram("redvolt_cell_attempts", &[], &CELL_ATTEMPT_BOUNDS);

        let total_cycles: u64 = report.results.iter().map(|r| r.telemetry.cycles).sum();
        let campaign = ring.begin("campaign", None, 0);
        let mut base = 0u64;
        for r in &report.results {
            let t = &r.telemetry;
            cells.inc();
            if matches!(r.outcome, CellOutcome::Aborted { .. }) {
                aborted.inc();
            }
            if matches!(r.outcome, CellOutcome::Degraded { .. }) {
                degraded.inc();
            }
            if r.attempts > 1 {
                retried.inc();
            }
            attempts.add(u64::from(r.attempts));
            cycles.add(t.cycles);
            dpu_faults.add(t.dpu_faults);
            bus_txn.add(t.bus_transactions);
            bus_retries.add(t.bus.retries);
            bus_injected.add(t.bus.injected_faults);
            bus_pec.add(t.bus.pec_failures);
            bus_exhausted.add(t.bus.exhausted);
            bus_backoff.add(t.bus.backoff.as_micros() as u64);
            power_cycles.add(t.power_cycles);
            ecc_corrected.add(t.ecc_corrected);
            ecc_uncorrectable.add(t.ecc_uncorrectable);
            abft_checks.add(t.abft_checks);
            abft_mismatches.add(t.abft_mismatches);
            abft_reexec.add(t.abft_reexecutions);
            abft_unresolved.add(t.abft_unresolved);
            scrub_passes.add(t.scrub_passes);
            scrub_retired.add(t.scrub_retired);
            cell_cycles.observe(t.cycles as f64);
            cell_attempts.observe(f64::from(r.attempts));

            // Rail/temperature gauges per board: plan order makes the
            // last cell touching a board the deterministic winner. Cells
            // that never brought up (default telemetry) are skipped so
            // they cannot zero a live gauge.
            if t.vccint_mv > 0.0 {
                let board = r.spec.config.board_sample.to_string();
                registry
                    .gauge("redvolt_rail_mv", &[("board", &board), ("rail", "vccint")])
                    .set(t.vccint_mv);
                registry
                    .gauge("redvolt_rail_mv", &[("board", &board), ("rail", "vccbram")])
                    .set(t.vccbram_mv);
                registry
                    .gauge("redvolt_temp_c", &[("board", &board)])
                    .set(t.junction_c);
            }

            let cell_span = ring.begin("cell", None, base);
            ring.attr(cell_span, "index", r.index.to_string());
            ring.attr(cell_span, "label", r.spec.label());
            ring.attr(cell_span, "attempts", r.attempts.to_string());
            ring.absorb_records(&t.spans, Some(cell_span), base);
            ring.end(cell_span, base + t.cycles);
            base += t.cycles;
        }
        ring.end(campaign, total_cycles);
        // Surfaced so a truncated span stream is visible in the exports,
        // not silently shorter.
        registry
            .counter("redvolt_spans_dropped_total", &[])
            .add(ring.dropped());

        CampaignTelemetry {
            registry,
            spans: ring,
        }
    }

    /// The JSONL event stream (spans then metrics; see
    /// `redvolt_telemetry::export::export_jsonl`).
    pub fn to_jsonl(&self) -> String {
        let spans: Vec<SpanRecord> = self.spans.spans().cloned().collect();
        export_jsonl(&spans, &self.registry.samples())
    }

    /// The JSONL event stream with the process-wide
    /// [`crate::workload_cache`] effectiveness samples (hits, misses,
    /// occupancy) appended after the campaign's own metrics.
    ///
    /// Cache totals depend on process history (a warm cache serves hits
    /// where a cold one counted misses), so they are *not* a pure
    /// function of `(seed, plan)`. They are therefore appended only
    /// here, for the operator-facing `--metrics-out` stream — never in
    /// [`CampaignTelemetry::to_prometheus`] or the golden-tested
    /// campaign payloads, which stay byte-identical across runs.
    pub fn to_jsonl_with_cache_stats(&self) -> String {
        let spans: Vec<SpanRecord> = self.spans.spans().cloned().collect();
        let mut samples = self.registry.samples();
        samples.extend(crate::workload_cache::metrics_registry().samples());
        export_jsonl(&spans, &samples)
    }

    /// The Prometheus text exposition of the metrics.
    pub fn to_prometheus(&self) -> String {
        export_prometheus(&self.registry.samples())
    }

    /// Writes [`CampaignTelemetry::to_jsonl`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Writes [`CampaignTelemetry::to_prometheus`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_prometheus(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_prometheus())
    }

    /// End-of-run summary of the headline counters — deterministic and
    /// resume-invariant (built from journaled scalars only), so the
    /// `repro` binary can print it on stdout.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new("Telemetry summary", &["Metric", "Total"]);
        for sample in self.registry.samples() {
            if let redvolt_telemetry::SampleValue::Counter(v) = sample.value {
                t.row(&[sample.id.name.clone(), v.to_string()]);
            }
        }
        t
    }
}

/// The PMBus health summary the `repro` binary appends to its output —
/// the `BusStats` that used to be dropped on the floor. Integer-only and
/// journal-round-tripped, so straight and resumed runs print identical
/// bytes.
pub fn bus_stats_table(report: &CampaignReport) -> Table {
    let mut bus = BusStats::default();
    let mut transactions = 0u64;
    for r in &report.results {
        bus.accumulate(r.telemetry.bus);
        transactions += r.telemetry.bus_transactions;
    }
    let mut t = Table::new("PMBus bus health", &["Metric", "Total"]);
    t.row(&["transactions".to_string(), transactions.to_string()]);
    t.row(&["retries".to_string(), bus.retries.to_string()]);
    t.row(&[
        "injected faults".to_string(),
        bus.injected_faults.to_string(),
    ]);
    t.row(&["PEC failures".to_string(), bus.pec_failures.to_string()]);
    t.row(&[
        "retry budget exhausted".to_string(),
        bus.exhausted.to_string(),
    ]);
    t.row(&[
        "scheduled backoff (us)".to_string(),
        bus.backoff.as_micros().to_string(),
    ]);
    t
}

/// The SDC-defense summary the `repro` binary appends when a defense is
/// armed: what ECC, ABFT and the scrubber absorbed, plus how many cells
/// the governor settled at a degraded operating point. Integer-only and
/// journal-round-tripped, like [`bus_stats_table`].
pub fn defense_stats_table(report: &CampaignReport) -> Table {
    let mut sum = CellTelemetry::default();
    let mut degraded = 0u64;
    for r in &report.results {
        sum.merge_attempt(&r.telemetry);
        if matches!(r.outcome, CellOutcome::Degraded { .. }) {
            degraded += 1;
        }
    }
    let mut t = Table::new("SDC defense", &["Metric", "Total"]);
    t.row(&[
        "ECC corrected words".to_string(),
        sum.ecc_corrected.to_string(),
    ]);
    t.row(&[
        "ECC uncorrectable words".to_string(),
        sum.ecc_uncorrectable.to_string(),
    ]);
    t.row(&["ABFT checks".to_string(), sum.abft_checks.to_string()]);
    t.row(&[
        "ABFT mismatches".to_string(),
        sum.abft_mismatches.to_string(),
    ]);
    t.row(&[
        "ABFT re-executions".to_string(),
        sum.abft_reexecutions.to_string(),
    ]);
    t.row(&[
        "ABFT unresolved".to_string(),
        sum.abft_unresolved.to_string(),
    ]);
    t.row(&["scrub passes".to_string(), sum.scrub_passes.to_string()]);
    t.row(&[
        "scrub retired upsets".to_string(),
        sum.scrub_retired.to_string(),
    ]);
    t.row(&["cells degraded".to_string(), degraded.to_string()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_telem() -> CellTelemetry {
        CellTelemetry {
            cycles: 123_456_789,
            dpu_faults: 42,
            bus: BusStats {
                retries: 7,
                injected_faults: 9,
                pec_failures: 2,
                backoff: Duration::from_micros(350),
                exhausted: 1,
            },
            bus_transactions: 512,
            power_cycles: 3,
            vccint_mv: 572.5,
            vccbram_mv: 850.0,
            junction_c: 41.25,
            ecc_corrected: 11,
            ecc_uncorrectable: 2,
            abft_checks: 96,
            abft_mismatches: 5,
            abft_reexecutions: 4,
            abft_unresolved: 1,
            scrub_passes: 6,
            scrub_retired: 9,
            spans: Vec::new(),
        }
    }

    #[test]
    fn compact_codec_round_trips() {
        let t = sample_telem();
        let blob = t.encode_compact();
        assert!(!blob.contains(' '), "journal tokens must be space-free");
        assert_eq!(CellTelemetry::decode_compact(&blob), Some(t));
    }

    #[test]
    fn split_telem_recovers_payload_and_blob() {
        let t = sample_telem();
        let payload = format!("measure 850.0,333.0 telem={}", t.encode_compact());
        let (rest, decoded) = split_telem(&payload);
        assert_eq!(rest, "measure 850.0,333.0");
        assert_eq!(decoded, Some(t));

        // Pre-telemetry journals pass through untouched.
        let legacy = "sweep - crashed_at=none";
        assert_eq!(split_telem(legacy), (legacy, None));

        // A malformed blob is not stripped (treated as outcome text).
        let bad = "aborted something telem=notnumbers";
        assert_eq!(split_telem(bad), (bad, None));
    }

    #[test]
    fn merge_attempt_sums_counters_keeps_last_gauges() {
        let mut total = CellTelemetry::default();
        let mut a1 = sample_telem();
        a1.vccint_mv = 600.0;
        let a2 = sample_telem();
        total.merge_attempt(&a1);
        total.merge_attempt(&a2);
        assert_eq!(total.cycles, 2 * 123_456_789);
        assert_eq!(total.bus.retries, 14);
        assert_eq!(total.vccint_mv, 572.5, "gauge from the final attempt");
        assert_eq!(total.ecc_corrected, 22);
        assert_eq!(total.abft_unresolved, 2);
        assert_eq!(total.scrub_retired, 18);
    }

    #[test]
    fn legacy_12_field_blob_decodes_with_zeroed_defense_counters() {
        let t = sample_telem();
        let blob = t.encode_compact();
        let legacy: String = blob.split(',').take(12).collect::<Vec<_>>().join(",");
        let decoded = CellTelemetry::decode_compact(&legacy).expect("legacy blob must decode");
        assert_eq!(decoded.cycles, t.cycles);
        assert_eq!(decoded.bus, t.bus);
        assert_eq!(decoded.ecc_corrected, 0);
        assert_eq!(decoded.abft_checks, 0);
        assert_eq!(decoded.scrub_passes, 0);
        // Any other field count is rejected outright.
        assert_eq!(CellTelemetry::decode_compact("1,2,3"), None);
        let thirteen: String = blob.split(',').take(13).collect::<Vec<_>>().join(",");
        assert_eq!(CellTelemetry::decode_compact(&thirteen), None);
    }

    #[test]
    fn cache_stats_appear_in_jsonl_but_not_prometheus() {
        let telem = CampaignTelemetry {
            registry: redvolt_telemetry::Registry::new(),
            spans: redvolt_telemetry::SpanRing::new(),
        };
        let jsonl = telem.to_jsonl_with_cache_stats();
        assert!(jsonl.contains("redvolt_quant_cache_hits_total"));
        assert!(jsonl.contains("redvolt_quant_cache_misses_total"));
        assert!(jsonl.contains("redvolt_quant_cache_occupancy"));
        // The meta line's metric count covers the appended samples.
        let metrics = jsonl.lines().count() - 1;
        assert!(jsonl
            .lines()
            .next()
            .expect("meta line")
            .contains(&format!("\"metrics\":{metrics}")));
        // The plain exports stay pure functions of (seed, plan).
        assert!(!telem.to_jsonl().contains("quant_cache"));
        assert!(!telem.to_prometheus().contains("quant_cache"));
    }
}

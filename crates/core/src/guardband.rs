//! Voltage-region characterization (Fig. 3 and §4.2).
//!
//! Measures, per (board, benchmark), the paper's three regions:
//!
//! * **guardband** — Vnom down to Vmin: no accuracy loss;
//! * **critical** — Vmin down to Vcrash: accuracy degrades;
//! * **crash** — below Vcrash: the board does not respond.

use crate::experiment::{Accelerator, MeasureError};
use redvolt_fpga::calib::VNOM_MV;

/// The measured voltage regions of one accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageRegions {
    /// Nominal voltage, mV.
    pub vnom_mv: f64,
    /// Minimum safe voltage: lowest step with no accuracy loss, mV.
    pub vmin_mv: f64,
    /// Lowest responsive voltage, mV.
    pub vcrash_mv: f64,
}

impl VoltageRegions {
    /// Guardband size in mV (the paper measures ≈280 mV on average).
    pub fn guardband_mv(&self) -> f64 {
        self.vnom_mv - self.vmin_mv
    }

    /// Guardband as a fraction of Vnom (the paper's ≈33 %).
    pub fn guardband_fraction(&self) -> f64 {
        self.guardband_mv() / self.vnom_mv
    }

    /// Critical-region size in mV (the paper measures ≈30 mV).
    pub fn critical_mv(&self) -> f64 {
        self.vmin_mv - self.vcrash_mv
    }
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSearchConfig {
    /// Scan step, mV.
    pub step_mv: f64,
    /// Evaluation images per probe.
    pub images: usize,
    /// Accuracy loss below which a point still counts as "safe".
    pub accuracy_tolerance: f64,
}

impl Default for RegionSearchConfig {
    fn default() -> Self {
        RegionSearchConfig {
            step_mv: 5.0,
            images: 100,
            accuracy_tolerance: 0.01,
        }
    }
}

impl VoltageRegions {
    /// Derives the regions from an already-measured downward sweep (same
    /// criterion as [`find_regions`], without re-measuring): `Vmin` is the
    /// lowest fault-free point with nominal accuracy, `Vcrash` the lowest
    /// responsive point.
    ///
    /// Returns `None` for an empty sweep.
    pub fn from_sweep(
        sweep: &crate::sweep::VoltageSweep,
        accuracy_tolerance: f64,
    ) -> Option<VoltageRegions> {
        let nominal = sweep.points.first()?;
        let mut vmin_mv = nominal.vccint_mv;
        for m in &sweep.points {
            if m.injected_faults == 0 && m.accuracy >= nominal.accuracy - accuracy_tolerance {
                vmin_mv = m.vccint_mv;
            } else {
                break;
            }
        }
        Some(VoltageRegions {
            vnom_mv: nominal.vccint_mv,
            vmin_mv,
            vcrash_mv: sweep.last_alive_mv()?,
        })
    }
}

/// Finds the voltage regions, like the paper's measurement flow: establish
/// nominal accuracy, lower the rails, mark `Vmin` at the first accuracy
/// loss and `Vcrash` at the last responsive step. The descent is
/// coarse-to-fine (4× the step until the first unsafe point, then back up
/// one coarse step and down at full resolution) — the practical scan any
/// measurement campaign uses inside a 280 mV guardband. Returns with the
/// board power-cycled.
///
/// # Errors
///
/// Propagates non-crash measurement errors.
pub fn find_regions(
    acc: &mut Accelerator,
    cfg: &RegionSearchConfig,
) -> Result<VoltageRegions, MeasureError> {
    acc.power_cycle();
    let nominal = acc.measure(cfg.images)?;
    let nominal_acc = nominal.accuracy;

    // "Safe" means no accuracy loss over the paper's long soak runs, i.e.
    // a fault-free operating point: zero observed faults, zero
    // timing-slack deficit, nominal accuracy.
    let probe = |acc: &mut Accelerator, mv: f64| -> Result<Option<bool>, MeasureError> {
        match acc.set_vccint_mv(mv).and_then(|()| acc.measure(cfg.images)) {
            Ok(m) => {
                let safe = m.injected_faults == 0
                    && acc.board().slack_deficit() == 0.0
                    && m.accuracy >= nominal_acc - cfg.accuracy_tolerance;
                Ok(Some(safe))
            }
            Err(MeasureError::Crashed { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    };

    // Phase 1: coarse descent until the first unsafe/crashed probe.
    let coarse = cfg.step_mv * 4.0;
    let mut last_safe_mv = VNOM_MV;
    let mut mv = VNOM_MV;
    loop {
        mv -= coarse;
        if mv < 450.0 {
            break;
        }
        match probe(acc, mv) {
            Ok(Some(true)) => last_safe_mv = mv,
            Ok(Some(false)) | Ok(None) => break,
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        }
    }
    acc.power_cycle();

    // Phase 2: fine descent from the last coarse-safe voltage.
    let mut vmin_mv = last_safe_mv;
    let mut vcrash_mv = last_safe_mv;
    let mut degraded = false;
    let mut mv = last_safe_mv;
    loop {
        mv -= cfg.step_mv;
        if mv < 450.0 {
            break;
        }
        match probe(acc, mv) {
            Ok(Some(safe)) => {
                vcrash_mv = mv;
                if !degraded && safe {
                    vmin_mv = mv;
                } else {
                    degraded = true;
                }
            }
            Ok(None) => break,
            Err(e) => {
                acc.power_cycle();
                return Err(e);
            }
        }
    }
    acc.power_cycle();
    Ok(VoltageRegions {
        vnom_mv: VNOM_MV,
        vmin_mv,
        vcrash_mv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::BenchmarkId;
    use crate::experiment::AcceleratorConfig;

    fn regions(board: u32) -> VoltageRegions {
        let mut acc = Accelerator::bring_up(&AcceleratorConfig {
            board_sample: board,
            ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
        })
        .unwrap();
        find_regions(
            &mut acc,
            &RegionSearchConfig {
                step_mv: 5.0,
                images: 20,
                accuracy_tolerance: 0.01,
            },
        )
        .unwrap()
    }

    #[test]
    fn board0_matches_paper_regions() {
        let r = regions(0);
        assert_eq!(r.vnom_mv, 850.0);
        assert!(
            (565.0..=575.0).contains(&r.vmin_mv),
            "Vmin = {} (paper: 570)",
            r.vmin_mv
        );
        assert!(
            (535.0..=545.0).contains(&r.vcrash_mv),
            "Vcrash = {} (paper: 540)",
            r.vcrash_mv
        );
        assert!((0.30..0.36).contains(&r.guardband_fraction()));
        assert!((20.0..=40.0).contains(&r.critical_mv()));
    }

    #[test]
    fn three_boards_spread_like_the_paper() {
        let rs: Vec<VoltageRegions> = (0..3).map(regions).collect();
        let vmins: Vec<f64> = rs.iter().map(|r| r.vmin_mv).collect();
        let spread = vmins.iter().cloned().fold(f64::MIN, f64::max)
            - vmins.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (15.0..=45.0).contains(&spread),
            "ΔVmin = {spread} (paper: 31 mV), vmins = {vmins:?}"
        );
        let mean = vmins.iter().sum::<f64>() / 3.0;
        assert!((mean - 570.0).abs() <= 10.0, "mean Vmin = {mean}");
    }
}

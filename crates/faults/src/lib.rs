//! Undervolting fault models and injection.
//!
//! Bridges the board physics to the CNN datapath: the board's timing model
//! yields a relative slack deficit at the current (V, f, T) point;
//! [`model`] maps the deficit to per-site fault rates (exponential in the
//! deficit, as the paper's measured accuracy curves imply); and
//! [`injector::SlackFaultInjector`] turns rates into deterministic,
//! Poisson-sampled transient bit flips inside the quantized executor of
//! `redvolt-nn`.
//!
//! [`bus`] models a different failure surface: transient PMBus-transaction
//! faults (NACKs, timeouts, read bit flips) on the *control plane*, which
//! the host adapter's retry/verify policy must absorb.
//!
//! [`ecc`] layers the board's built-in SECDED(72,64) BRAM protection over
//! weight/activation fault plans — the first stage of the SDC defense.
//!
//! # Examples
//!
//! ```
//! use redvolt_faults::board_injector;
//! use redvolt_fpga::board::Zcu102Board;
//! use redvolt_fpga::power::LoadProfile;
//!
//! let mut board = Zcu102Board::new(0);
//! board.set_load(LoadProfile::nominal());
//! // At nominal voltage there is slack to spare: a clean injector.
//! let inj = board_injector(&board, 42);
//! assert!(inj.rates().is_zero());
//! ```

pub mod bus;
pub mod ecc;
pub mod injector;
pub mod model;

use injector::SlackFaultInjector;
use model::FaultRates;
use redvolt_fpga::board::Zcu102Board;

/// Builds a seeded injector for the board's *current* operating point
/// (voltage, clock, junction temperature), combining logic-rail timing
/// faults with BRAM read-margin faults when `VCCBRAM` is driven below its
/// own safe floor (see [`model::bram_weight_rate`]).
pub fn board_injector(board: &Zcu102Board, seed: u64) -> SlackFaultInjector {
    let mut rates = FaultRates::for_deficit(board.slack_deficit());
    rates.per_weight += model::bram_weight_rate(board.vccbram_mv());
    SlackFaultInjector::new(rates, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redvolt_fpga::power::LoadProfile;
    use redvolt_pmbus::adapter::PmbusAdapter;

    #[test]
    fn injector_tracks_board_voltage() {
        let mut board = Zcu102Board::new(0).with_exact_telemetry();
        board.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();

        host.set_vout(&mut board, 0x13, 0.600).unwrap();
        assert!(board_injector(&board, 1).rates().is_zero());

        host.set_vout(&mut board, 0x13, 0.550).unwrap();
        let critical = board_injector(&board, 1);
        assert!(critical.rates().per_mac > 0.0);

        host.set_vout(&mut board, 0x13, 0.545).unwrap();
        let deeper = board_injector(&board, 1);
        assert!(deeper.rates().per_mac > critical.rates().per_mac);
    }

    #[test]
    fn lower_clock_removes_faults() {
        // Table 2: (540 mV, 200 MHz) runs without accuracy loss.
        let mut board = Zcu102Board::new(0).with_exact_telemetry();
        board.set_load(LoadProfile {
            f_mhz: 200.0,
            ..LoadProfile::nominal()
        });
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut board, 0x13, 0.540).unwrap();
        assert!(board_injector(&board, 1).rates().is_zero());
    }

    #[test]
    fn higher_temperature_reduces_rates() {
        // ITD (§7.2): at a fixed sub-Vmin voltage, heat reduces fault rates.
        let mut board = Zcu102Board::new(0).with_exact_telemetry();
        board.set_load(LoadProfile::nominal());
        let mut host = PmbusAdapter::new();
        host.set_vout(&mut board, 0x13, 0.550).unwrap();

        board.thermal_mut().force_temperature(34.0);
        let cold = board_injector(&board, 1).rates().per_mac;
        board.thermal_mut().force_temperature(52.0);
        let hot = board_injector(&board, 1).rates().per_mac;
        assert!(hot < cold, "hot {hot} should be below cold {cold}");
    }
}

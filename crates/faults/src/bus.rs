//! PMBus transient-transaction fault model.
//!
//! The paper's campaigns run the control plane over a physical I²C/PMBus
//! link whose reliability degrades exactly when the experiment gets
//! interesting: near and below `Vcrash`, the board browns out
//! mid-transaction, the dongle times out, and read data picks up bit
//! flips. [`PmbusFaultModel`] reproduces those three transient failure
//! modes against the host adapter's
//! [`BusFaultInjector`](redvolt_pmbus::adapter::BusFaultInjector) hook,
//! so the retry/verify policy can be exercised — and campaigns proven
//! byte-reproducible — under a nonzero fault rate.
//!
//! Determinism: the model draws from a [`Xoshiro256StarStar`] stream
//! seeded per cell (`derive_stream_seed(master_seed, cell)`), so a given
//! cell sees the same fault schedule whether it runs alone, in a parallel
//! campaign, or in a resumed one.

use redvolt_num::rng::Xoshiro256StarStar;
use redvolt_pmbus::adapter::{BusFaultInjector, Direction, TransientFault};
use redvolt_pmbus::command::CommandCode;

/// Seed-domain separator for bus-fault streams (distinct from the slack
/// injector's `0xFA017`).
const BUS_SEED_SALT: u64 = 0xB0_55ED;

/// Per-transaction fault probabilities for the simulated bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusFaultProfile {
    /// Probability a transaction is NACKed before reaching the device.
    pub nack_rate: f64,
    /// Probability a transaction times out before reaching the device.
    pub timeout_rate: f64,
    /// Probability a completed read has one mantissa bit flipped in
    /// flight (detected by the adapter's packet error check).
    pub read_flip_rate: f64,
}

impl BusFaultProfile {
    /// A clean bus: no injected faults.
    pub fn none() -> Self {
        BusFaultProfile {
            nack_rate: 0.0,
            timeout_rate: 0.0,
            read_flip_rate: 0.0,
        }
    }

    /// A mildly marginal bus (~3% of transactions disturbed) — the CI
    /// smoke profile.
    pub fn light() -> Self {
        BusFaultProfile {
            nack_rate: 0.01,
            timeout_rate: 0.005,
            read_flip_rate: 0.015,
        }
    }

    /// A badly marginal bus (~15% of transactions disturbed) — stresses
    /// the retry budget without exhausting `RetryPolicy::resilient()`.
    pub fn heavy() -> Self {
        BusFaultProfile {
            nack_rate: 0.05,
            timeout_rate: 0.03,
            read_flip_rate: 0.07,
        }
    }

    /// Whether the profile injects no faults at all.
    pub fn is_zero(&self) -> bool {
        self.nack_rate == 0.0 && self.timeout_rate == 0.0 && self.read_flip_rate == 0.0
    }

    /// Parses a named profile (`none`, `light`, `heavy`), as accepted by
    /// the bench binaries' `--fault-profile` flag.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "none" => Some(BusFaultProfile::none()),
            "light" => Some(BusFaultProfile::light()),
            "heavy" => Some(BusFaultProfile::heavy()),
            _ => None,
        }
    }

    /// The preset's name (`none`, `light`, `heavy`), or `custom` for
    /// hand-built rate combinations — the inverse of [`parse`].
    ///
    /// [`parse`]: BusFaultProfile::parse
    pub fn name(&self) -> &'static str {
        if *self == BusFaultProfile::none() {
            "none"
        } else if *self == BusFaultProfile::light() {
            "light"
        } else if *self == BusFaultProfile::heavy() {
            "heavy"
        } else {
            "custom"
        }
    }

    /// The profile's identity as raw bit patterns — usable as a hash/cache
    /// key where `f64` itself is not hashable.
    pub fn key_bits(&self) -> (u64, u64, u64) {
        (
            self.nack_rate.to_bits(),
            self.timeout_rate.to_bits(),
            self.read_flip_rate.to_bits(),
        )
    }
}

impl Default for BusFaultProfile {
    fn default() -> Self {
        BusFaultProfile::none()
    }
}

/// Deterministic transient-fault injector for the PMBus control plane.
#[derive(Debug, Clone)]
pub struct PmbusFaultModel {
    profile: BusFaultProfile,
    rng: Xoshiro256StarStar,
}

impl PmbusFaultModel {
    /// A model drawing from a dedicated stream of `seed`. Pass the cell's
    /// derived seed so the fault schedule is a pure function of
    /// `(master_seed, cell_index)`.
    pub fn new(profile: BusFaultProfile, seed: u64) -> Self {
        PmbusFaultModel {
            profile,
            rng: Xoshiro256StarStar::seed_from(seed ^ BUS_SEED_SALT),
        }
    }

    /// The profile this model draws from.
    pub fn profile(&self) -> BusFaultProfile {
        self.profile
    }
}

impl BusFaultInjector for PmbusFaultModel {
    fn pre_transaction(
        &mut self,
        _address: u8,
        _command: CommandCode,
        _direction: Direction,
    ) -> Option<TransientFault> {
        if self.profile.is_zero() {
            return None;
        }
        // One draw per transaction keeps the stream's consumption
        // independent of the profile's rates.
        let u = self.rng.next_f64();
        if u < self.profile.nack_rate {
            Some(TransientFault::Nack)
        } else if u < self.profile.nack_rate + self.profile.timeout_rate {
            Some(TransientFault::Timeout)
        } else {
            None
        }
    }

    fn corrupt_read(&mut self, _address: u8, _command: CommandCode, word: u16) -> Option<u16> {
        if self.profile.read_flip_rate == 0.0 {
            return None;
        }
        if self.rng.next_f64() < self.profile.read_flip_rate {
            // Flip a mantissa bit (LINEAR11 keeps its 11-bit mantissa in
            // bits 0..11; LINEAR16 is all mantissa) — a plausible data-line
            // glitch that perturbs the value without touching the exponent.
            let bit = self.rng.next_bounded_u32(11);
            Some(word ^ (1u16 << bit))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redvolt_pmbus::adapter::{PmbusAdapter, RetryPolicy};
    use redvolt_pmbus::device::SimpleRegulator;

    fn drive(model: PmbusFaultModel, reads: usize) -> Vec<u16> {
        let mut reg = SimpleRegulator::new(0x13, 0.85);
        let mut host = PmbusAdapter::new()
            .with_retry_policy(RetryPolicy::resilient())
            .with_fault_model(Box::new(model));
        (0..reads)
            .map(|_| {
                host.read_word(&mut reg, 0x13, CommandCode::ReadPout)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let a = drive(PmbusFaultModel::new(BusFaultProfile::heavy(), 7), 200);
        let b = drive(PmbusFaultModel::new(BusFaultProfile::heavy(), 7), 200);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_profile_injects_nothing() {
        let mut model = PmbusFaultModel::new(BusFaultProfile::none(), 3);
        for _ in 0..100 {
            assert!(model
                .pre_transaction(0x13, CommandCode::ReadPout, Direction::Read)
                .is_none());
            assert!(model
                .corrupt_read(0x13, CommandCode::ReadPout, 0x1234)
                .is_none());
        }
    }

    #[test]
    fn heavy_profile_actually_faults() {
        let mut model = PmbusFaultModel::new(BusFaultProfile::heavy(), 11);
        let mut pre = 0;
        let mut flips = 0;
        for _ in 0..1000 {
            if model
                .pre_transaction(0x13, CommandCode::ReadPout, Direction::Read)
                .is_some()
            {
                pre += 1;
            }
            if model
                .corrupt_read(0x13, CommandCode::ReadPout, 0x0400)
                .is_some()
            {
                flips += 1;
            }
        }
        assert!(pre > 20, "expected ~80 pre-transaction faults, saw {pre}");
        assert!(flips > 20, "expected ~70 read flips, saw {flips}");
    }

    #[test]
    fn flips_stay_in_the_mantissa() {
        let mut model = PmbusFaultModel::new(BusFaultProfile::heavy(), 13);
        for _ in 0..1000 {
            if let Some(corrupted) = model.corrupt_read(0x13, CommandCode::ReadPout, 0) {
                assert!(corrupted.trailing_zeros() < 11, "bit 0..11 only");
            }
        }
    }

    #[test]
    fn parse_named_profiles() {
        assert_eq!(
            BusFaultProfile::parse("none"),
            Some(BusFaultProfile::none())
        );
        assert_eq!(
            BusFaultProfile::parse("light"),
            Some(BusFaultProfile::light())
        );
        assert_eq!(
            BusFaultProfile::parse("heavy"),
            Some(BusFaultProfile::heavy())
        );
        assert_eq!(BusFaultProfile::parse("sideways"), None);
        assert!(BusFaultProfile::none().is_zero());
        assert!(!BusFaultProfile::light().is_zero());
    }

    #[test]
    fn faulted_reads_converge_to_clean_values() {
        // The acceptance property at the adapter level: with retry+PEC the
        // *returned* values under a heavy fault profile equal the fault-free
        // ones (telemetry noise aside — SimpleRegulator is noiseless).
        let clean = drive(PmbusFaultModel::new(BusFaultProfile::none(), 5), 50);
        let faulty = drive(PmbusFaultModel::new(BusFaultProfile::heavy(), 5), 50);
        assert_eq!(clean, faulty);
    }
}

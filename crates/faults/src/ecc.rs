//! SECDED filtering of BRAM-resident fault plans.
//!
//! Weight and activation buffers live in block RAM, which ships the
//! built-in SECDED(72,64) code modeled in [`redvolt_fpga::ecc`]; MAC
//! accumulators live in DSP slices and carry no ECC. [`EccInjector`]
//! wraps any [`FaultInjector`] and pushes every planned weight/activation
//! flip through the real codec: flips are grouped into the 64-bit ECC
//! word their storage falls in (eight 8-bit codes per word), the word's
//! error pattern is encoded and decoded, and the decode outcome decides
//! the flip's fate:
//!
//! * `Corrected` — a single-bit upset; under [`DefenseMode::Correct`] the
//!   flip is dropped (the hardware fixed the read) and recorded as a
//!   latent stored upset for the scrubber; under `Detect` it is counted
//!   but still delivered (monitoring without correction).
//! * `Uncorrectable` — a multi-bit pattern; the flips are delivered and
//!   the event is counted, feeding the governor's escalation signal.
//!
//! Accumulator plans pass through untouched — defending those is ABFT's
//! job (`redvolt_nn::abft`). With [`DefenseMode::Off`] the wrapper is
//! fully transparent.

use redvolt_fpga::ecc::{self, Decode};
use redvolt_nn::abft::DefenseMode;
use redvolt_nn::quant::{BitFlip, FaultInjector};

/// Quantized weight/activation codes stored per 64-bit ECC word.
pub const CODES_PER_WORD: usize = 8;

/// ECC event counters for one injector lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Words whose single-bit upset the code corrected.
    pub corrected_words: u64,
    /// Words with a multi-bit (detectable, uncorrectable) pattern.
    pub uncorrectable_words: u64,
    /// Individual flips dropped by correction.
    pub dropped_flips: u64,
    /// Individual flips delivered despite ECC (uncorrectable words, or
    /// all flips when not correcting).
    pub delivered_flips: u64,
}

impl EccStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &EccStats) {
        self.corrected_words += other.corrected_words;
        self.uncorrectable_words += other.uncorrectable_words;
        self.dropped_flips += other.dropped_flips;
        self.delivered_flips += other.delivered_flips;
    }
}

/// A [`FaultInjector`] adapter applying SECDED(72,64) to weight and
/// activation fault plans.
#[derive(Debug)]
pub struct EccInjector<I> {
    inner: I,
    mode: DefenseMode,
    stats: EccStats,
    /// Corrected-on-read upsets not yet retired by a scrub pass; drained
    /// by the runtime into its [`redvolt_fpga::ecc::Scrubber`].
    latent: u64,
}

impl<I: FaultInjector> EccInjector<I> {
    /// Wraps `inner`, filtering per `mode`.
    pub fn new(inner: I, mode: DefenseMode) -> Self {
        EccInjector {
            inner,
            mode,
            stats: EccStats::default(),
            latent: 0,
        }
    }

    /// Accumulated ECC event counters.
    pub fn stats(&self) -> EccStats {
        self.stats
    }

    /// Drains the corrected-upset count destined for the scrubber.
    pub fn take_latent(&mut self) -> u64 {
        std::mem::take(&mut self.latent)
    }

    /// The wrapped injector.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Consumes the adapter, returning the wrapped injector.
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// Runs one plan through the codec. Flips are grouped by the ECC word
    /// containing their target code; each faulted word's error pattern is
    /// decoded with the real SECDED implementation.
    fn filter(&mut self, mut flips: Vec<BitFlip>) -> Vec<BitFlip> {
        if self.mode == DefenseMode::Off || flips.is_empty() {
            return flips;
        }
        // Group flips by word without allocating a map: sort by word
        // index (stable on the original order within a word).
        flips.sort_by_key(|f| f.index / CODES_PER_WORD);
        let mut out = Vec::with_capacity(flips.len());
        let mut i = 0;
        while i < flips.len() {
            let word = flips[i].index / CODES_PER_WORD;
            let mut j = i;
            // Build the word's error pattern: code k, bit b lands on data
            // bit (k mod 8)*8 + b of the 64-bit ECC word.
            let mut pattern = 0u64;
            while j < flips.len() && flips[j].index / CODES_PER_WORD == word {
                let data_bit = (flips[j].index % CODES_PER_WORD) as u32 * 8 + (flips[j].bit % 8);
                pattern ^= 1u64 << data_bit;
                j += 1;
            }
            // The decode outcome depends only on the error pattern, never
            // on the stored value — encode any word and corrupt it.
            let clean = ecc::encode(0);
            let read = ecc::Codeword {
                data: clean.data ^ pattern,
                check: clean.check,
            };
            match ecc::decode(read) {
                Decode::Clean(_) => {
                    // Paired flips cancelled (same code, same bit twice):
                    // nothing to deliver and nothing stored.
                    self.stats.dropped_flips += (j - i) as u64;
                }
                Decode::Corrected(_) => {
                    self.stats.corrected_words += 1;
                    if self.mode == DefenseMode::Correct {
                        self.stats.dropped_flips += (j - i) as u64;
                        self.latent += 1;
                    } else {
                        self.stats.delivered_flips += (j - i) as u64;
                        out.extend_from_slice(&flips[i..j]);
                    }
                }
                Decode::Uncorrectable(_) => {
                    self.stats.uncorrectable_words += 1;
                    self.stats.delivered_flips += (j - i) as u64;
                    out.extend_from_slice(&flips[i..j]);
                }
            }
            i = j;
        }
        out
    }
}

impl<I: FaultInjector> FaultInjector for EccInjector<I> {
    fn plan_weight_faults(&mut self, layer: &str, len: usize, bits: u32) -> Vec<BitFlip> {
        let flips = self.inner.plan_weight_faults(layer, len, bits);
        self.filter(flips)
    }

    fn plan_accumulator_faults(&mut self, layer: &str, len: usize, macs: usize) -> Vec<BitFlip> {
        // DSP accumulators carry no ECC.
        self.inner.plan_accumulator_faults(layer, len, macs)
    }

    fn plan_activation_faults(&mut self, layer: &str, len: usize, bits: u32) -> Vec<BitFlip> {
        let flips = self.inner.plan_activation_faults(layer, len, bits);
        self.filter(flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted injector: returns the queued plans in order.
    struct Scripted {
        weight: Vec<Vec<BitFlip>>,
        activation: Vec<Vec<BitFlip>>,
    }

    impl FaultInjector for Scripted {
        fn plan_weight_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
            if self.weight.is_empty() {
                Vec::new()
            } else {
                self.weight.remove(0)
            }
        }
        fn plan_accumulator_faults(&mut self, _: &str, _: usize, _: usize) -> Vec<BitFlip> {
            vec![BitFlip { index: 9, bit: 20 }]
        }
        fn plan_activation_faults(&mut self, _: &str, _: usize, _: u32) -> Vec<BitFlip> {
            if self.activation.is_empty() {
                Vec::new()
            } else {
                self.activation.remove(0)
            }
        }
    }

    fn single() -> Vec<BitFlip> {
        vec![BitFlip { index: 3, bit: 6 }]
    }

    fn double_same_word() -> Vec<BitFlip> {
        // Codes 16 and 19 share ECC word 2.
        vec![BitFlip { index: 16, bit: 1 }, BitFlip { index: 19, bit: 7 }]
    }

    #[test]
    fn correct_mode_drops_single_bit_upsets_and_records_latency() {
        let mut ecc = EccInjector::new(
            Scripted {
                weight: vec![single()],
                activation: vec![],
            },
            DefenseMode::Correct,
        );
        assert!(ecc.plan_weight_faults("l", 64, 8).is_empty());
        let stats = ecc.stats();
        assert_eq!(stats.corrected_words, 1);
        assert_eq!(stats.dropped_flips, 1);
        assert_eq!(stats.delivered_flips, 0);
        assert_eq!(ecc.take_latent(), 1);
        assert_eq!(ecc.take_latent(), 0, "latent drains once");
    }

    #[test]
    fn double_flips_in_one_word_pass_through_as_uncorrectable() {
        let mut ecc = EccInjector::new(
            Scripted {
                weight: vec![double_same_word()],
                activation: vec![],
            },
            DefenseMode::Correct,
        );
        let delivered = ecc.plan_weight_faults("l", 64, 8);
        assert_eq!(delivered, double_same_word());
        let stats = ecc.stats();
        assert_eq!(stats.uncorrectable_words, 1);
        assert_eq!(stats.delivered_flips, 2);
        assert_eq!(ecc.take_latent(), 0);
    }

    #[test]
    fn singles_in_different_words_are_each_corrected() {
        let plan = vec![
            BitFlip { index: 0, bit: 0 },
            BitFlip { index: 8, bit: 3 },
            BitFlip { index: 100, bit: 5 },
        ];
        let mut ecc = EccInjector::new(
            Scripted {
                weight: vec![plan],
                activation: vec![],
            },
            DefenseMode::Correct,
        );
        assert!(ecc.plan_weight_faults("l", 128, 8).is_empty());
        assert_eq!(ecc.stats().corrected_words, 3);
        assert_eq!(ecc.take_latent(), 3);
    }

    #[test]
    fn detect_mode_counts_but_delivers_everything() {
        let mut ecc = EccInjector::new(
            Scripted {
                weight: vec![single()],
                activation: vec![double_same_word()],
            },
            DefenseMode::Detect,
        );
        assert_eq!(ecc.plan_weight_faults("l", 64, 8), single());
        assert_eq!(ecc.plan_activation_faults("l", 64, 8), double_same_word());
        let stats = ecc.stats();
        assert_eq!(stats.corrected_words, 1);
        assert_eq!(stats.uncorrectable_words, 1);
        assert_eq!(stats.dropped_flips, 0);
        assert_eq!(stats.delivered_flips, 3);
        assert_eq!(ecc.take_latent(), 0, "detect mode fixes nothing");
    }

    #[test]
    fn off_mode_is_transparent() {
        let mut ecc = EccInjector::new(
            Scripted {
                weight: vec![double_same_word()],
                activation: vec![single()],
            },
            DefenseMode::Off,
        );
        assert_eq!(ecc.plan_weight_faults("l", 64, 8), double_same_word());
        assert_eq!(ecc.plan_activation_faults("l", 64, 8), single());
        assert_eq!(ecc.stats(), EccStats::default());
    }

    #[test]
    fn accumulator_plans_bypass_ecc() {
        let mut ecc = EccInjector::new(
            Scripted {
                weight: vec![],
                activation: vec![],
            },
            DefenseMode::Correct,
        );
        assert_eq!(
            ecc.plan_accumulator_faults("l", 64, 9),
            vec![BitFlip { index: 9, bit: 20 }]
        );
        assert_eq!(ecc.stats(), EccStats::default());
    }

    #[test]
    fn cancelled_flip_pairs_are_dropped_silently() {
        // The same (index, bit) twice XOR-cancels: the stored word is
        // untouched and the decode is Clean.
        let plan = vec![BitFlip { index: 5, bit: 2 }, BitFlip { index: 5, bit: 2 }];
        let mut ecc = EccInjector::new(
            Scripted {
                weight: vec![plan],
                activation: vec![],
            },
            DefenseMode::Correct,
        );
        assert!(ecc.plan_weight_faults("l", 64, 8).is_empty());
        let stats = ecc.stats();
        assert_eq!(stats.corrected_words, 0);
        assert_eq!(stats.dropped_flips, 2);
    }
}

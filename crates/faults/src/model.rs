//! Slack-deficit → fault-rate model.
//!
//! Below the guardband, the binding critical paths of the design no longer
//! fit the clock period and timing faults appear (§2.2, §4.4). The paper
//! observes an *exponential* growth of CNN accuracy loss with decreasing
//! voltage across the ≈30 mV critical region, ending in near-random
//! classification at Vcrash. We model the per-operation fault probability
//! as an exponential function of the relative slack deficit
//! `δ = f / Fmax(V, T) − 1` produced by [`redvolt_fpga::timing`]:
//!
//! ```text
//! λ(δ) = λ0 · (e^{β·δ} − 1),   δ > 0      (zero at or above Vmin)
//! ```
//!
//! Three fault-site classes share the exponent but have separate base
//! rates: MAC-datapath faults (per multiply-accumulate), weight-fetch
//! faults (per weight code read from BRAM/DDR per layer execution), and
//! activation-buffer faults (per activation code written).
//!
//! A fault *event* is not an independent single-bit upset: a physical path
//! that misses timing fails *systematically* for the tile it is processing,
//! corrupting a correlated burst of outputs in one MAC lane (see
//! [`crate::injector`]). Rates below are therefore *event* rates.
//!
//! Calibration: with the benchmarks' ≈5 M MACs per inference, the Fig. 6
//! anchors give ≈0.01 expected datapath fault events per inference at
//! 565 mV (δ ≈ 0.074: accuracy barely dips), ≈0.4 at 560 mV (clearly
//! degraded), and hundreds at 540 mV (δ ≈ 0.55: near-random
//! classification). Solving the anchor equations yields β = 22 and
//! λ0 ≈ 4.6 × 10⁻¹⁰.

/// Exponent of the slack-deficit fault law (fitted; see module docs).
pub const FAULT_EXPONENT: f64 = 22.0;

/// Base rate of MAC-datapath fault events, per MAC operation.
pub const MAC_BASE_RATE: f64 = 4.6e-10;

/// Base rate of weight-fetch faults, per weight code per layer execution.
pub const WEIGHT_BASE_RATE: f64 = 4.6e-10;

/// Base rate of activation-buffer fault events, per activation code written.
pub const ACTIVATION_BASE_RATE: f64 = 4.6e-10;

/// Crash margin of the dense (regular dataflow) DPU designs: the board
/// hangs when `Fmax/f` falls below this (see `redvolt_fpga::calib`).
pub const DENSE_CRASH_SLACK_RATIO: f64 = 0.64;

/// Crash margin of the channel-pruned designs. Pruned networks produce a
/// more irregular, less pipeline-friendly dataflow; the paper measures the
/// pruned VGGNet hanging at 555 mV instead of 540 mV (Fig. 8), which this
/// margin reproduces on the calibrated Fmax surface: at 555 mV the margin
/// holds (Fmax(555)/333 = 0.799 ≥ 0.79) and at 550 mV it does not
/// (0.778 < 0.79), so the last responsive 5 mV step is 555 mV.
pub const PRUNED_CRASH_SLACK_RATIO: f64 = 0.79;

/// BRAM read-margin fault rate per weight code per layer execution, for a
/// `VCCBRAM` level of `vccbram_mv`.
///
/// Zero at or above [`redvolt_fpga::calib::BRAM_VMIN_MV`]; below it, read
/// failures grow exponentially with the droop (see
/// `redvolt_fpga::calib::BRAM_FAULT_EXPONENT`). This mechanism is
/// independent of the logic rail's timing slack: it models the authors'
/// prior BRAM-undervolting characterization and only matters when
/// `VCCBRAM` is driven below the logic rail (the §4.1 scenario where BRAM
/// undervolting buys almost no power on UltraScale+ but still risks
/// weight corruption).
pub fn bram_weight_rate(vccbram_mv: f64) -> f64 {
    use redvolt_fpga::calib::{BRAM_BASE_RATE, BRAM_FAULT_EXPONENT, BRAM_VMIN_MV, VNOM_MV};
    if vccbram_mv >= BRAM_VMIN_MV {
        return 0.0;
    }
    let droop = (BRAM_VMIN_MV - vccbram_mv) / VNOM_MV;
    BRAM_BASE_RATE * ((BRAM_FAULT_EXPONENT * droop.min(0.25)).exp() - 1.0)
}

/// Per-site-class fault rates at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability of a datapath fault per MAC operation.
    pub per_mac: f64,
    /// Probability of a fetch fault per weight code per layer execution.
    pub per_weight: f64,
    /// Probability of a write fault per activation code.
    pub per_activation: f64,
}

impl FaultRates {
    /// Rates for a relative slack deficit `δ` (0 ⇒ all rates 0).
    pub fn for_deficit(deficit: f64) -> Self {
        if deficit <= 0.0 {
            return FaultRates::default();
        }
        // Saturate the exponent: far past crash the board hangs anyway and
        // unbounded rates would only overflow the Poisson sampler.
        let growth = (FAULT_EXPONENT * deficit.min(0.8)).exp() - 1.0;
        FaultRates {
            per_mac: MAC_BASE_RATE * growth,
            per_weight: WEIGHT_BASE_RATE * growth,
            per_activation: ACTIVATION_BASE_RATE * growth,
        }
    }

    /// Whether all rates are zero (fault-free operating point).
    pub fn is_zero(&self) -> bool {
        self.per_mac == 0.0 && self.per_weight == 0.0 && self.per_activation == 0.0
    }

    /// Expected datapath faults for an inference of `macs` MAC operations.
    pub fn expected_mac_faults(&self, macs: u64) -> f64 {
        self.per_mac * macs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_deficit_is_fault_free() {
        let r = FaultRates::for_deficit(0.0);
        assert!(r.is_zero());
        assert!(FaultRates::for_deficit(-1.0).is_zero());
    }

    #[test]
    fn rates_grow_exponentially() {
        let small = FaultRates::for_deficit(0.074);
        let large = FaultRates::for_deficit(0.549);
        assert!(large.per_mac / small.per_mac > 100.0);
    }

    #[test]
    fn calibration_anchor_565mv() {
        // δ(565 mV) = 333/310 − 1 ≈ 0.074: ≈0.1 faults per 5M-MAC inference.
        let r = FaultRates::for_deficit(333.0 / 310.0 - 1.0);
        let expected = r.expected_mac_faults(5_000_000);
        assert!((0.003..0.04).contains(&expected), "expected = {expected}");
    }

    #[test]
    fn calibration_anchor_540mv() {
        // δ(540 mV) = 333/215 − 1 ≈ 0.549: hundreds of fault events per
        // inference — near-random classification.
        let r = FaultRates::for_deficit(333.0 / 215.0 - 1.0);
        let expected = r.expected_mac_faults(5_000_000);
        assert!((100.0..1500.0).contains(&expected), "expected = {expected}");
    }

    #[test]
    fn rates_saturate_far_past_crash() {
        let a = FaultRates::for_deficit(2.0);
        let b = FaultRates::for_deficit(10.0);
        assert_eq!(a.per_mac, b.per_mac, "exponent must saturate");
        assert!(a.per_mac.is_finite());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // pins compile-time calibration
    fn pruned_crash_margin_is_tighter() {
        assert!(PRUNED_CRASH_SLACK_RATIO > DENSE_CRASH_SLACK_RATIO);
    }

    #[test]
    fn rates_are_monotone_in_deficit() {
        let mut prev = 0.0;
        for i in 1..40 {
            let d = i as f64 * 0.02;
            let r = FaultRates::for_deficit(d);
            assert!(r.per_mac > prev, "rate must grow at δ={d}");
            prev = r.per_mac;
        }
    }
}

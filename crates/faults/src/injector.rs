//! Deterministic burst bit-flip injector.
//!
//! Implements [`redvolt_nn::quant::FaultInjector`] by sampling, for each
//! layer execution, a Poisson-distributed number of *fault events* at the
//! rates of a [`FaultRates`] operating point.
//!
//! A timing-fault event is **correlated**, not an isolated upset: a
//! physical path that misses timing fails for the whole tile it is
//! streaming, so one datapath event corrupts a *burst* of consecutive
//! outputs in one MAC lane, all at the same bit position. And because the
//! most-significant accumulator bits arrive last through the carry chain,
//! the bits that miss timing first are the *high* bits — which is why
//! undervolting faults are so damaging to CNN accuracy (§4.4) compared to
//! random soft errors. Weight-fetch faults (BRAM read upsets) remain
//! independent single-bit flips.

use crate::model::FaultRates;
use redvolt_nn::quant::{BitFlip, FaultInjector};
use redvolt_num::rng::Xoshiro256StarStar;

/// Accumulator bit range hit by datapath fault events: the late-arriving
/// carry-chain bits of the 32-bit MAC accumulator.
pub const ACC_FAULT_BIT_LO: u32 = 12;
/// Exclusive upper end of the accumulator fault-bit range.
pub const ACC_FAULT_BIT_HI: u32 = 25;

/// Log2 of the minimum datapath burst length (16 outputs).
const BURST_LOG2_MIN: u32 = 4;
/// Log2 of the maximum datapath burst length (512 outputs).
const BURST_LOG2_MAX: u32 = 9;

/// Burst length of activation-buffer write events.
const ACT_BURST: usize = 32;

/// Cap on expected events per layer call: past this everything is
/// corrupted anyway and larger plans only waste memory (reachable only
/// below the crash boundary, where the board hangs first).
const MAX_EXPECTED_EVENTS: f64 = 2000.0;

/// A seeded injector bound to one operating point's fault rates.
///
/// # Examples
///
/// ```
/// use redvolt_faults::injector::SlackFaultInjector;
/// use redvolt_faults::model::FaultRates;
/// use redvolt_nn::quant::FaultInjector;
///
/// let rates = FaultRates::for_deficit(0.3);
/// let mut inj = SlackFaultInjector::new(rates, 42);
/// let plan = inj.plan_accumulator_faults("conv1", 4096, 288);
/// // Deterministic given the seed.
/// let mut inj2 = SlackFaultInjector::new(rates, 42);
/// assert_eq!(plan, inj2.plan_accumulator_faults("conv1", 4096, 288));
/// ```
#[derive(Debug, Clone)]
pub struct SlackFaultInjector {
    rates: FaultRates,
    rng: Xoshiro256StarStar,
    injected: u64,
    events: u64,
}

impl SlackFaultInjector {
    /// Creates an injector for the given rates and seed.
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        SlackFaultInjector {
            rates,
            rng: Xoshiro256StarStar::seed_from(seed ^ 0xFA017),
            injected: 0,
            events: 0,
        }
    }

    /// The operating point's rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Total bit flips injected so far (across all site classes).
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    /// Total fault events so far (each event may flip many bits).
    pub fn event_count(&self) -> u64 {
        self.events
    }

    fn sample_events(&mut self, expected: f64) -> u64 {
        if expected <= 0.0 {
            return 0;
        }
        let n = self.rng.next_poisson(expected.min(MAX_EXPECTED_EVENTS));
        self.events += n;
        n
    }

    /// One correlated datapath burst: consecutive indices, one high bit.
    fn burst(
        &mut self,
        len: usize,
        bit_lo: u32,
        bit_hi: u32,
        max_burst_log2: u32,
        out: &mut Vec<BitFlip>,
    ) {
        let start = self.rng.next_index(len);
        let burst_len = 1usize
            << self
                .rng
                .next_bounded_u32(max_burst_log2 - BURST_LOG2_MIN + 1)
                .saturating_add(BURST_LOG2_MIN);
        let bit = bit_lo + self.rng.next_bounded_u32(bit_hi - bit_lo);
        push_wrapped_burst(start, burst_len, len, bit, out);
    }
}

impl FaultInjector for SlackFaultInjector {
    fn plan_weight_faults(&mut self, _layer: &str, len: usize, bits: u32) -> Vec<BitFlip> {
        if len == 0 {
            return Vec::new();
        }
        let n = self.sample_events(self.rates.per_weight * len as f64);
        let mut flips = Vec::with_capacity(n as usize);
        for _ in 0..n {
            flips.push(BitFlip {
                index: self.rng.next_index(len),
                bit: self.rng.next_bounded_u32(bits),
            });
        }
        self.injected += flips.len() as u64;
        flips
    }

    fn plan_accumulator_faults(
        &mut self,
        _layer: &str,
        len: usize,
        macs_per_out: usize,
    ) -> Vec<BitFlip> {
        if len == 0 {
            return Vec::new();
        }
        let expected = self.rates.per_mac * (len * macs_per_out) as f64;
        let n = self.sample_events(expected);
        let mut flips = Vec::new();
        for _ in 0..n {
            self.burst(
                len,
                ACC_FAULT_BIT_LO,
                ACC_FAULT_BIT_HI,
                BURST_LOG2_MAX,
                &mut flips,
            );
        }
        self.injected += flips.len() as u64;
        flips
    }

    fn plan_activation_faults(&mut self, _layer: &str, len: usize, bits: u32) -> Vec<BitFlip> {
        if len == 0 {
            return Vec::new();
        }
        let n = self.sample_events(self.rates.per_activation * len as f64);
        let mut flips = Vec::new();
        for _ in 0..n {
            let start = self.rng.next_index(len);
            let bit = self.rng.next_bounded_u32(bits);
            push_wrapped_burst(start, ACT_BURST, len, bit, &mut flips);
        }
        self.injected += flips.len() as u64;
        flips
    }
}

/// Emits one burst of flips starting at `start`, wrapping past the buffer
/// end back to index 0 instead of dropping the overflow: the failing lane
/// keeps streaming from the start of the buffer, so the tail of the burst
/// lands there. The burst is capped at `len` distinct indices (a longer
/// burst would revisit sites, and XOR-applied revisits cancel, which would
/// make `injected_count` overstate the corrupted sites). Bursts that fit
/// entirely in-bounds are emitted exactly as before the wrap fix.
fn push_wrapped_burst(
    start: usize,
    burst_len: usize,
    len: usize,
    bit: u32,
    out: &mut Vec<BitFlip>,
) {
    for i in 0..burst_len.min(len) {
        out.push(BitFlip {
            index: (start + i) % len,
            bit,
        });
    }
}

/// An *ablation* injector: same event rates as [`SlackFaultInjector`] but
/// every event is a single independent uniform bit flip (the naive
/// soft-error-style model). Exists to demonstrate why the correlated
/// burst model is necessary: CNNs absorb independent single-bit upsets
/// almost entirely, which would contradict the paper's measured accuracy
/// collapse below Vmin.
#[derive(Debug, Clone)]
pub struct SingleBitFaultInjector {
    rates: FaultRates,
    rng: Xoshiro256StarStar,
    injected: u64,
}

impl SingleBitFaultInjector {
    /// Creates the ablation injector for the given rates and seed.
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        SingleBitFaultInjector {
            rates,
            rng: Xoshiro256StarStar::seed_from(seed ^ 0x51B17),
            injected: 0,
        }
    }

    /// Total bit flips injected so far.
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    fn plan(&mut self, expected: f64, len: usize, bits: u32) -> Vec<BitFlip> {
        if expected <= 0.0 || len == 0 {
            return Vec::new();
        }
        let n = self.rng.next_poisson(expected.min(MAX_EXPECTED_EVENTS));
        let mut flips = Vec::with_capacity(n as usize);
        for _ in 0..n {
            flips.push(BitFlip {
                index: self.rng.next_index(len),
                bit: self.rng.next_bounded_u32(bits),
            });
        }
        self.injected += n;
        flips
    }
}

impl FaultInjector for SingleBitFaultInjector {
    fn plan_weight_faults(&mut self, _layer: &str, len: usize, bits: u32) -> Vec<BitFlip> {
        let expected = self.rates.per_weight * len as f64;
        self.plan(expected, len, bits)
    }

    fn plan_accumulator_faults(
        &mut self,
        _layer: &str,
        len: usize,
        macs_per_out: usize,
    ) -> Vec<BitFlip> {
        let expected = self.rates.per_mac * (len * macs_per_out) as f64;
        self.plan(expected, len, 31)
    }

    fn plan_activation_faults(&mut self, _layer: &str, len: usize, bits: u32) -> Vec<BitFlip> {
        let expected = self.rates.per_activation * len as f64;
        self.plan(expected, len, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_plan_nothing() {
        let mut inj = SlackFaultInjector::new(FaultRates::default(), 1);
        assert!(inj.plan_weight_faults("l", 1000, 8).is_empty());
        assert!(inj.plan_accumulator_faults("l", 1000, 100).is_empty());
        assert!(inj.plan_activation_faults("l", 1000, 8).is_empty());
        assert_eq!(inj.injected_count(), 0);
        assert_eq!(inj.event_count(), 0);
    }

    #[test]
    fn event_counts_follow_expectation() {
        let rates = FaultRates {
            per_mac: 1e-4,
            per_weight: 0.0,
            per_activation: 0.0,
        };
        let mut inj = SlackFaultInjector::new(rates, 7);
        let trials = 3000;
        for _ in 0..trials {
            inj.plan_accumulator_faults("l", 100, 100); // expected 1 event
        }
        let mean = inj.event_count() as f64 / trials as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn datapath_bursts_are_correlated_high_bit_runs() {
        let rates = FaultRates {
            per_mac: 5e-5,
            per_weight: 0.0,
            per_activation: 0.0,
        };
        let mut inj = SlackFaultInjector::new(rates, 3);
        let mut saw_burst = false;
        for _ in 0..200 {
            let plan = inj.plan_accumulator_faults("l", 10_000, 100);
            if plan.len() >= 2 {
                saw_burst = true;
                // Same bit, consecutive indices within an event's run.
                let bit = plan[0].bit;
                assert!((ACC_FAULT_BIT_LO..ACC_FAULT_BIT_HI).contains(&bit));
                // Consecutive within the run, modulo the buffer length
                // (a burst starting at the last index wraps to 0).
                assert_eq!(plan[1].index, (plan[0].index + 1) % 10_000);
            }
            for f in &plan {
                assert!(f.index < 10_000);
            }
        }
        assert!(saw_burst, "expected at least one multi-flip burst");
    }

    #[test]
    fn bursts_clip_at_buffer_end() {
        // Historically flips past the buffer end were silently dropped,
        // which made `injected_count` overstate the corruption the model
        // actually applied. Bursts now wrap deterministically: every flip
        // stays in bounds, an event's flips are distinct sites, and the
        // count matches the emitted plan exactly.
        let rates = FaultRates {
            per_mac: 1.0, // guarantee events
            per_weight: 0.0,
            per_activation: 0.0,
        };
        let mut inj = SlackFaultInjector::new(rates, 5);
        let mut total = 0u64;
        let mut saw_wrap = false;
        for _ in 0..50 {
            // A 10-element buffer is smaller than the minimum burst, so
            // every event wraps into exactly one full cover of the buffer
            // — which also means plan chunks align with events.
            let plan = inj.plan_accumulator_faults("l", 10, 1);
            total += plan.len() as u64;
            assert_eq!(plan.len() % 10, 0, "events must cover the buffer");
            for event in plan.chunks(10) {
                let mut seen = [false; 10];
                for f in event {
                    assert!(f.index < 10);
                    if f.index < event[0].index {
                        saw_wrap = true;
                    }
                    assert!(!seen[f.index], "event revisits index {}", f.index);
                    seen[f.index] = true;
                }
            }
        }
        assert_eq!(inj.injected_count(), total, "count must match the plan");
        assert!(saw_wrap, "expected at least one wrapped burst");
    }

    #[test]
    fn weight_faults_are_single_flips_within_width() {
        let rates = FaultRates {
            per_mac: 0.0,
            per_weight: 1e-2,
            per_activation: 0.0,
        };
        let mut inj = SlackFaultInjector::new(rates, 9);
        for _ in 0..100 {
            for f in inj.plan_weight_faults("l", 500, 4) {
                assert!(f.index < 500);
                assert!(f.bit < 4);
            }
        }
        assert!(inj.injected_count() > 0);
        assert_eq!(inj.injected_count(), inj.event_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let rates = FaultRates::for_deficit(0.4);
        let mut a = SlackFaultInjector::new(rates, 11);
        let mut b = SlackFaultInjector::new(rates, 11);
        for _ in 0..10 {
            assert_eq!(
                a.plan_accumulator_faults("x", 256, 512),
                b.plan_accumulator_faults("x", 256, 512)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let rates = FaultRates::for_deficit(0.5);
        let mut a = SlackFaultInjector::new(rates, 1);
        let mut b = SlackFaultInjector::new(rates, 2);
        let pa: Vec<_> = (0..20)
            .flat_map(|_| a.plan_accumulator_faults("x", 1024, 512))
            .collect();
        let pb: Vec<_> = (0..20)
            .flat_map(|_| b.plan_accumulator_faults("x", 1024, 512))
            .collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn single_bit_injector_spreads_flips() {
        let rates = FaultRates {
            per_mac: 1e-4,
            per_weight: 0.0,
            per_activation: 0.0,
        };
        let mut inj = SingleBitFaultInjector::new(rates, 7);
        let mut total = 0usize;
        for _ in 0..2000 {
            let plan = inj.plan_accumulator_faults("l", 100, 100);
            // One flip per event, never bursts.
            total += plan.len();
        }
        assert_eq!(total as u64, inj.injected_count());
        let mean = total as f64 / 2000.0;
        assert!((mean - 1.0).abs() < 0.12, "mean = {mean}");
    }

    #[test]
    fn expected_events_are_capped() {
        // Absurd rates (reachable only past crash) must not blow memory.
        let rates = FaultRates {
            per_mac: 1e6,
            per_weight: 0.0,
            per_activation: 0.0,
        };
        let mut inj = SlackFaultInjector::new(rates, 13);
        let plan = inj.plan_accumulator_faults("l", 1000, 1000);
        assert!(plan.len() < 3000 * 512, "plan len = {}", plan.len());
    }
}

//! Criterion benches: one per table of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use redvolt_bench::harness::{self, Settings};
use std::time::Duration;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    let s = Settings::tiny();
    group.bench_function("table1_benchmarks", |b| b.iter(|| harness::table1(&s)));
    group.bench_function("table2_freq_underscaling", |b| {
        b.iter(|| harness::table2(&s))
    });
    group.bench_function("power_breakdown", |b| {
        b.iter(|| harness::power_breakdown(&s))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

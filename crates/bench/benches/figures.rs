//! Criterion benches: one per figure of the paper.
//!
//! Each bench times a reduced (tiny-scale, board 0) run of the same
//! campaign code the `repro` binary uses at full scale, so regressions in
//! the simulation stack show up as timing changes here.

use criterion::{criterion_group, criterion_main, Criterion};
use redvolt_bench::harness::{self, Settings};
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    let s = Settings::tiny();
    group.bench_function("fig3_regions", |b| b.iter(|| harness::fig3(&s)));
    group.bench_function("fig4_overall_behaviour", |b| b.iter(|| harness::fig4(&s)));
    group.bench_function("fig5_efficiency", |b| b.iter(|| harness::fig5(&s)));
    group.bench_function("fig6_reliability", |b| b.iter(|| harness::fig6(&s)));
    group.bench_function("fig7_quantization", |b| b.iter(|| harness::fig7(&s)));
    group.bench_function("fig8_pruning", |b| b.iter(|| harness::fig8(&s)));
    group.bench_function("fig9_temp_power", |b| b.iter(|| harness::fig9(&s)));
    group.bench_function("fig10_temp_accuracy", |b| b.iter(|| harness::fig10(&s)));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

//! Criterion micro-benches of the simulation substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use redvolt_dpu::runtime::{DpuRuntime, DpuTask};
use redvolt_faults::board_injector;
use redvolt_fpga::board::Zcu102Board;
use redvolt_fpga::power::{LoadProfile, PowerModel};
use redvolt_fpga::thermal::ThermalModel;
use redvolt_nn::dataset::SyntheticDataset;
use redvolt_nn::models::{ModelKind, ModelScale};
use redvolt_nn::quant::QuantizedGraph;
use redvolt_pmbus::adapter::PmbusAdapter;
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));

    // Quantized inference at paper scale (the inner loop of every figure).
    let graph = ModelKind::VggNet
        .build(ModelScale::Paper)
        .fold_batch_norms();
    let ds = SyntheticDataset::new(32, 32, 3, 10, 42);
    let mut q = QuantizedGraph::quantize(&graph, 8, &ds.images(4)).unwrap();
    let img = ds.image(0).0;
    group.bench_function("int8_inference_vggnet", |b| {
        b.iter(|| q.predict(black_box(&img)).unwrap())
    });

    // Faulty inference at 545 mV (burst injection overhead).
    let mut board = Zcu102Board::new(0).with_exact_telemetry();
    board.set_load(LoadProfile::nominal());
    let mut host = PmbusAdapter::new();
    host.set_vout(&mut board, 0x13, 0.545).unwrap();
    group.bench_function("faulty_inference_545mv", |b| {
        b.iter(|| {
            let mut inj = board_injector(&board, 7);
            q.predict_with(black_box(&img), &mut inj).unwrap()
        })
    });

    // Full DPU batch run.
    let mut task = DpuTask::create("vgg", &graph, 8, &ds.images(4)).unwrap();
    let mut rt = DpuRuntime::open(Zcu102Board::new(0));
    let batch = ds.images(8);
    group.bench_function("dpu_run_batch_8", |b| {
        b.iter(|| rt.run_batch(&mut task, black_box(&batch), 1).unwrap())
    });

    // Board physics: power evaluation and thermal fixed point.
    let pm = PowerModel::default();
    group.bench_function("power_model_eval", |b| {
        b.iter(|| pm.vccint_w(black_box(570.0), 34.0, &LoadProfile::nominal()))
    });
    let thermal = ThermalModel::new();
    group.bench_function("thermal_fixed_point", |b| {
        b.iter(|| thermal.junction_c(&pm, black_box(850.0), 850.0, &LoadProfile::nominal()))
    });

    // PMBus transaction round trip.
    let mut board2 = Zcu102Board::new(0);
    let mut host2 = PmbusAdapter::new();
    group.bench_function("pmbus_read_pout", |b| {
        b.iter(|| host2.read_pout(&mut board2, black_box(0x13)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

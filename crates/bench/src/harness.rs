//! Campaign drivers, one per table/figure of the paper.

use redvolt_core::bench_suite::{benchmark_index, BenchmarkId};
use redvolt_core::executor::{CampaignPlan, CampaignReport};
use redvolt_core::experiment::{Accelerator, AcceleratorConfig, MeasureError};
use redvolt_core::freqscale::{frequency_underscaling, FreqScaleConfig, FreqScaleRow};
use redvolt_core::guardband::VoltageRegions;
use redvolt_core::pruneexp::{pruning_study, PruneStudy};
use redvolt_core::quantexp::{quantization_study, QuantStudy, FIG7_PRECISIONS};
use redvolt_core::report::{fmt, norm, pct, Table};
use redvolt_core::supervisor::{
    run_supervised_observed, JournalSpec, SupervisedReport, SupervisorConfig, SupervisorError,
};
use redvolt_core::sweep::{voltage_sweep, SweepConfig, VoltageSweep};
use redvolt_core::telemetry::{CampaignObserver, CampaignTelemetry};
use redvolt_core::tempexp::{temperature_study, TempStudy, SETPOINTS_C};
use redvolt_core::{efficiency, experiment::Measurement};
use redvolt_faults::bus::BusFaultProfile;
use redvolt_nn::abft::DefenseMode;
use redvolt_nn::models::ModelScale;
use redvolt_num::stats;
use redvolt_telemetry::progress::ProgressReporter;
use std::path::PathBuf;

/// Campaign settings shared by every reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Settings {
    /// Board samples to measure (the paper uses three).
    pub boards: Vec<u32>,
    /// Evaluation images per measurement.
    pub images: usize,
    /// Measurement repetitions per faulting point (the paper uses 10).
    pub reps: usize,
    /// Model scale.
    pub scale: ModelScale,
    /// Injected PMBus fault profile (`--fault-profile`); the adapter's
    /// retry/PEC machinery absorbs these, so results stay byte-identical
    /// for a given (profile, seed) pair.
    pub bus_faults: BusFaultProfile,
    /// SDC defense (`--defense off|detect|correct`): ABFT checksums on
    /// the kernels plus ECC SECDED on the BRAM weight store.
    pub defense: DefenseMode,
    /// Adaptive undervolt governor (`--governor`): rescue faulting cells
    /// along the mitigation ladder instead of reporting corrupt payloads.
    pub governor: bool,
}

impl Settings {
    /// Full paper-fidelity settings (three boards, 100 images, 10 reps).
    pub fn full() -> Self {
        Settings {
            boards: vec![0, 1, 2],
            images: 100,
            reps: 10,
            scale: ModelScale::Paper,
            bus_faults: BusFaultProfile::none(),
            defense: DefenseMode::Off,
            governor: false,
        }
    }

    /// Quick settings for a fast end-to-end pass (board 0 only).
    pub fn quick() -> Self {
        Settings {
            boards: vec![0],
            images: 32,
            reps: 3,
            scale: ModelScale::Paper,
            bus_faults: BusFaultProfile::none(),
            defense: DefenseMode::Off,
            governor: false,
        }
    }

    /// Tiny settings for criterion benches and smoke tests.
    pub fn tiny() -> Self {
        Settings {
            boards: vec![0],
            images: 12,
            reps: 2,
            scale: ModelScale::Tiny,
            bus_faults: BusFaultProfile::none(),
            defense: DefenseMode::Off,
            governor: false,
        }
    }

    fn config(&self, benchmark: BenchmarkId, board: u32) -> AcceleratorConfig {
        AcceleratorConfig {
            board_sample: board,
            benchmark,
            scale: self.scale,
            eval_images: self.images,
            repetitions: self.reps,
            bus_faults: self.bus_faults,
            defense: self.defense,
            governor: self.governor,
            ..AcceleratorConfig::default()
        }
    }
}

fn bring_up(cfg: &AcceleratorConfig) -> Accelerator {
    Accelerator::bring_up(cfg).expect("workload preparation is infallible for built-in benchmarks")
}

/// Sweep-cache key: (benchmark index, board, images, reps, paper scale?,
/// fault-profile rate bits, defense index, governor?). The fault profile
/// changes how many bus transactions each measurement issues, and the
/// defense/governor settings change both the measured payloads and the
/// seed draws, so sweeps taken under different configurations must never
/// satisfy each other's cache lookups.
type SweepKey = (u8, u32, usize, usize, bool, (u64, u64, u64), u8, bool);
type SweepCache = std::sync::Mutex<std::collections::HashMap<SweepKey, VoltageSweep>>;

/// Deterministic sweeps are shared across figures (Figs. 3-6 all consume
/// the same downward scans), keyed by (benchmark, board, settings).
fn sweep_cache() -> &'static SweepCache {
    static CACHE: std::sync::OnceLock<SweepCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()))
}

fn cache_key(s: &Settings, kind: BenchmarkId, board: u32) -> SweepKey {
    (
        benchmark_index(kind) as u8,
        board,
        s.images,
        s.reps,
        s.scale == ModelScale::Paper,
        s.bus_faults.key_bits(),
        s.defense as u8,
        s.governor,
    )
}

/// Runs the full (benchmark × board) sweep grid for `s` through the
/// parallel campaign executor and seeds the shared sweep cache with the
/// results, so every subsequent figure/table draws from the same sweeps.
///
/// Cell seeds derive from `(master seed 42, cell index)` — see
/// `redvolt_core::executor` — so the cache contents (and therefore all
/// downstream tables) are byte-identical for every `jobs` value. Run this
/// *before* the figures (the `repro` binary does); mixing prefetched and
/// lazily-computed sweeps in one process would select different seeds
/// depending on call order.
pub fn prefetch_sweeps(s: &Settings, jobs: usize) -> CampaignReport {
    prefetch_sweeps_with(s, jobs, &SupervisorConfig::default(), None)
        .expect("no journal in use, so no I/O error is reachable")
        .report
}

/// [`prefetch_sweeps`] routed through the crash-resilient supervisor:
/// cells run under panic isolation and the watchdog, are retried per
/// `config`, and — when `journal` is given — each completed cell is
/// journaled write-ahead so an interrupted prefetch can `--resume`.
///
/// Successfully swept cells seed the shared cache exactly as the plain
/// path does; aborted cells are skipped (their figures fall back to the
/// lazy per-figure sweep).
///
/// # Errors
///
/// Fails only on journal I/O problems or a meta mismatch between the
/// journal on disk and this plan (wrong seed or cell list).
pub fn prefetch_sweeps_with(
    s: &Settings,
    jobs: usize,
    config: &SupervisorConfig,
    journal: Option<&JournalSpec>,
) -> Result<SupervisedReport, SupervisorError> {
    prefetch_sweeps_observed(s, jobs, config, journal, None)
}

/// The sweep-grid campaign plan [`prefetch_sweeps`] executes — exposed so
/// callers can size progress reporters before the run starts.
pub fn sweep_plan(s: &Settings) -> CampaignPlan {
    let base = s.config(BenchmarkId::VggNet, s.boards[0]);
    CampaignPlan::sweep_grid(
        base.seed,
        &BenchmarkId::ALL,
        &s.boards,
        base,
        fig_sweep(s.images),
    )
}

/// [`prefetch_sweeps_with`] plus a live progress observer (the `repro`
/// binary's `--progress` reporter). The observer sees cells in completion
/// order on stderr; the returned report and cache are unaffected by it.
///
/// # Errors
///
/// See [`prefetch_sweeps_with`].
pub fn prefetch_sweeps_observed(
    s: &Settings,
    jobs: usize,
    config: &SupervisorConfig,
    journal: Option<&JournalSpec>,
    observer: Option<&dyn CampaignObserver>,
) -> Result<SupervisedReport, SupervisorError> {
    let plan = sweep_plan(s);
    let sup = run_supervised_observed(&plan, jobs, config, journal, observer)?;
    let mut cache = sweep_cache().lock().expect("cache lock");
    for r in &sup.report.results {
        if let Some(sweep) = r.outcome.as_sweep() {
            cache.insert(
                cache_key(s, r.spec.config.benchmark, r.spec.config.board_sample),
                sweep.clone(),
            );
        }
    }
    drop(cache);
    Ok(sup)
}

/// The experiments [`prefetch_sweeps`] accelerates (they consume the
/// shared sweep cache).
pub const SWEEP_CACHED_EXPERIMENTS: [&str; 5] = ["fig3", "fig4", "fig5", "fig6", "table2"];

/// Parses a `--jobs N` / `--jobs=N` argument, defaulting to the machine's
/// available parallelism when absent and to 1 when malformed.
pub fn parse_jobs(args: &[String]) -> usize {
    let mut jobs = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            jobs = it.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse().ok();
        }
    }
    jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
    .max(1)
}

/// Flags that consume the following argument. The binaries use this to
/// tell option values apart from experiment names when filtering argv.
pub const VALUE_FLAGS: [&str; 10] = [
    "--jobs",
    "--image-jobs",
    "--journal",
    "--max-attempts",
    "--fault-profile",
    "--halt-after-cells",
    "--metrics-out",
    "--prom-out",
    "--progress",
    "--defense",
];

/// Campaign-level options shared by the `repro` and `calibrate` binaries:
/// parallelism, the write-ahead journal, the retry budget, the injected
/// PMBus fault profile and the SDC defense configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOptions {
    /// Worker threads (`--jobs N`, 0 or absent = available parallelism).
    pub jobs: usize,
    /// Image-shard workers per cell (`--image-jobs N`; 0 or absent =
    /// divide surplus workers across a cell's image batch, 1 =
    /// sequential batches). Results are byte-identical for any value.
    pub image_jobs: usize,
    /// Write-ahead journal path (`--journal PATH`).
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal (`--resume`, needs `--journal`).
    pub resume: bool,
    /// Per-cell attempt budget (`--max-attempts N`).
    pub max_attempts: u32,
    /// Injected PMBus fault profile (`--fault-profile none|light|heavy`).
    pub fault_profile: BusFaultProfile,
    /// Stop after journaling this many new cells (`--halt-after-cells K`)
    /// — a deterministic kill switch for resume testing.
    pub halt_after: Option<usize>,
    /// Write the campaign's telemetry JSONL event stream here
    /// (`--metrics-out PATH`).
    pub metrics_out: Option<PathBuf>,
    /// Write the campaign's Prometheus text exposition here
    /// (`--prom-out PATH`).
    pub prom_out: Option<PathBuf>,
    /// Emit live progress to stderr at most every this many seconds
    /// (`--progress SECS`; 0 = on every completed cell).
    pub progress: Option<u64>,
    /// SDC defense mode (`--defense off|detect|correct`).
    pub defense: DefenseMode,
    /// Adaptive undervolt governor (`--governor`).
    pub governor: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            jobs: parse_jobs(&[]),
            image_jobs: 0,
            journal: None,
            resume: false,
            max_attempts: SupervisorConfig::default().max_attempts,
            fault_profile: BusFaultProfile::none(),
            halt_after: None,
            metrics_out: None,
            prom_out: None,
            progress: None,
            defense: DefenseMode::Off,
            governor: false,
        }
    }
}

impl CampaignOptions {
    /// Parses the shared campaign flags out of `args`, accepting both the
    /// `--flag VALUE` and `--flag=VALUE` spellings. Non-flag arguments
    /// (experiment names, `--csv`, `--quick`) are ignored.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a missing or malformed value,
    /// an unknown fault profile, or `--resume` without `--journal`.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut opts = CampaignOptions {
            jobs: parse_jobs(args),
            ..CampaignOptions::default()
        };
        let mut i = 0;
        while i < args.len() {
            let (flag, inline) = match args[i].split_once('=') {
                Some((f, v)) => (f, Some(v.to_string())),
                None => (args[i].as_str(), None),
            };
            let value = if VALUE_FLAGS.contains(&flag) {
                match inline {
                    Some(v) => Some(v),
                    None => {
                        i += 1;
                        args.get(i).cloned()
                    }
                }
            } else {
                None
            };
            match flag {
                "--image-jobs" => {
                    opts.image_jobs = value
                        .as_deref()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--image-jobs needs a worker count (0 = auto)")?;
                }
                "--journal" => {
                    let path = value.ok_or("--journal needs a file path")?;
                    opts.journal = Some(PathBuf::from(path));
                }
                "--resume" => opts.resume = true,
                "--max-attempts" => {
                    opts.max_attempts = value
                        .as_deref()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or("--max-attempts needs a positive integer")?;
                }
                "--fault-profile" => {
                    let name = value.ok_or("--fault-profile needs none, light or heavy")?;
                    opts.fault_profile = BusFaultProfile::parse(&name)
                        .ok_or_else(|| format!("unknown fault profile `{name}`"))?;
                }
                "--halt-after-cells" => {
                    opts.halt_after = Some(
                        value
                            .as_deref()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--halt-after-cells needs a cell count")?,
                    );
                }
                "--metrics-out" => {
                    let path = value.ok_or("--metrics-out needs a file path")?;
                    opts.metrics_out = Some(PathBuf::from(path));
                }
                "--prom-out" => {
                    let path = value.ok_or("--prom-out needs a file path")?;
                    opts.prom_out = Some(PathBuf::from(path));
                }
                "--progress" => {
                    opts.progress = Some(
                        value
                            .as_deref()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--progress needs an interval in whole seconds")?,
                    );
                }
                "--defense" => {
                    let name = value.ok_or("--defense needs off, detect or correct")?;
                    opts.defense = DefenseMode::parse(&name)
                        .ok_or_else(|| format!("unknown defense mode `{name}`"))?;
                }
                "--governor" => opts.governor = true,
                _ => {}
            }
            i += 1;
        }
        if opts.resume && opts.journal.is_none() {
            return Err("--resume requires --journal PATH".to_string());
        }
        Ok(opts)
    }

    /// The supervisor configuration these options select.
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            max_attempts: self.max_attempts,
            halt_after: self.halt_after,
            image_jobs: self.image_jobs,
            ..SupervisorConfig::default()
        }
    }

    /// The journal spec these options select, if `--journal` was given.
    pub fn journal_spec(&self) -> Option<JournalSpec> {
        self.journal
            .as_ref()
            .map(|path| JournalSpec::new(path.clone(), self.resume))
    }

    /// The live stderr progress reporter `--progress` selects, sized for
    /// a campaign of `total_cells`.
    pub fn progress_reporter(&self, total_cells: usize) -> Option<ProgressReporter> {
        self.progress
            .map(|secs| ProgressReporter::new(total_cells, std::time::Duration::from_secs(secs)))
    }

    /// Writes the telemetry exports `--metrics-out` / `--prom-out`
    /// request (no-op when neither flag was given). The JSONL stream
    /// additionally carries the process-wide workload cache
    /// effectiveness samples (hits, misses, occupancy); the Prometheus
    /// exposition stays a pure function of `(seed, plan)`.
    ///
    /// # Errors
    ///
    /// Propagates file-write errors.
    pub fn export_telemetry(&self, telemetry: &CampaignTelemetry) -> std::io::Result<()> {
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, telemetry.to_jsonl_with_cache_stats())?;
        }
        if let Some(path) = &self.prom_out {
            telemetry.write_prometheus(path)?;
        }
        Ok(())
    }
}

/// The paper's critical-region voltage schedule plus guardband anchors.
fn fig_sweep(images: usize) -> SweepConfig {
    SweepConfig {
        start_mv: 850.0,
        stop_mv: 520.0,
        step_mv: 5.0,
        images,
    }
}

/// **Table 1** — benchmarks and inference accuracy at Vnom.
pub fn table1(s: &Settings) -> Table {
    let mut t = Table::new(
        "Table 1: Evaluated CNN benchmarks (accuracy at Vnom)",
        &[
            "Model",
            "Dataset",
            "Classes",
            "#Layers",
            "Params",
            "MACs/img",
            "Paper acc",
            "Paper @Vnom",
            "Ours @Vnom",
        ],
    );
    for kind in BenchmarkId::ALL {
        let mut acc = bring_up(&s.config(kind, s.boards[0]));
        let m = acc.measure(s.images).expect("nominal point never crashes");
        let spec = acc.workload().spec;
        let graph = kind.build(s.scale);
        t.row(&[
            kind.name().to_string(),
            spec.dataset.to_string(),
            spec.classes.to_string(),
            spec.paper_layers.to_string(),
            graph.param_count().to_string(),
            graph.mac_count().to_string(),
            pct(spec.paper_accuracy),
            pct(spec.paper_accuracy_at_vnom),
            pct(m.accuracy),
        ]);
    }
    t
}

/// **§4.1** — on-chip power breakdown at Vnom.
pub fn power_breakdown(s: &Settings) -> Table {
    let mut t = Table::new(
        "Power breakdown at Vnom (paper: 12.59 W mean, >99.9% on VCCINT)",
        &[
            "Model",
            "On-chip W",
            "VCCINT W",
            "VCCBRAM W",
            "VCCINT share",
        ],
    );
    for kind in BenchmarkId::ALL {
        let mut acc = bring_up(&s.config(kind, s.boards[0]));
        acc.measure(s.images).expect("nominal point");
        let board = acc.board();
        let temp = board.junction_c();
        let pm = board.power_model();
        let int = pm.vccint_w(board.vccint_mv(), temp, &board.load());
        let bram = pm.vccbram_w(board.vccbram_mv());
        t.row(&[
            kind.name().to_string(),
            fmt(int + bram, 2),
            fmt(int, 2),
            fmt(bram, 4),
            pct(int / (int + bram)),
        ]);
    }
    t
}

/// Regions for one (benchmark, board), derived from the shared downward
/// sweep (same criterion as `find_regions`, which remains the standalone
/// search API used by the `guardband_scan` example and tests).
fn regions_for(s: &Settings, kind: BenchmarkId, board: u32) -> VoltageRegions {
    VoltageRegions::from_sweep(&sweep_for(s, kind, board), 0.01).expect("non-empty sweep")
}

/// **Figure 3** — voltage regions per benchmark and board.
pub fn fig3(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 3: Voltage regions (paper: Vmin=570, Vcrash=540, guardband 33%)",
        &[
            "Model",
            "Board",
            "Vmin mV",
            "Vcrash mV",
            "Guardband mV",
            "Guardband %",
            "Critical mV",
        ],
    );
    let mut vmins = Vec::new();
    let mut vcrashes = Vec::new();
    for kind in BenchmarkId::ALL {
        for &board in &s.boards {
            let r = regions_for(s, kind, board);
            vmins.push(r.vmin_mv);
            vcrashes.push(r.vcrash_mv);
            t.row(&[
                kind.name().to_string(),
                board.to_string(),
                fmt(r.vmin_mv, 0),
                fmt(r.vcrash_mv, 0),
                fmt(r.guardband_mv(), 0),
                pct(r.guardband_fraction()),
                fmt(r.critical_mv(), 0),
            ]);
        }
    }
    let mean = |v: &[f64]| stats::mean(v).expect("non-empty");
    t.row(&[
        "MEAN".to_string(),
        "-".to_string(),
        fmt(mean(&vmins), 0),
        fmt(mean(&vcrashes), 0),
        fmt(850.0 - mean(&vmins), 0),
        pct((850.0 - mean(&vmins)) / 850.0),
        fmt(mean(&vmins) - mean(&vcrashes), 0),
    ]);
    t
}

fn sweep_for(s: &Settings, kind: BenchmarkId, board: u32) -> VoltageSweep {
    let key = cache_key(s, kind, board);
    if let Some(hit) = sweep_cache().lock().expect("cache lock").get(&key) {
        return hit.clone();
    }
    let mut acc = bring_up(&s.config(kind, board));
    let sweep = voltage_sweep(&mut acc, &fig_sweep(s.images)).expect("sweep");
    sweep_cache()
        .lock()
        .expect("cache lock")
        .insert(key, sweep.clone());
    sweep
}

/// **Figure 4** — overall voltage behaviour (GoogleNet): power-efficiency
/// and accuracy vs voltage, showing the three regions.
pub fn fig4(s: &Settings) -> Table {
    let sweep = sweep_for(s, BenchmarkId::GoogleNet, s.boards[0]);
    let mut t = Table::new(
        "Fig 4: Overall voltage behaviour (GoogleNet, board 0)",
        &["VCCINT mV", "Power W", "GOPs/W gain", "Accuracy", "Region"],
    );
    let nominal = *sweep.nominal();
    for m in &sweep.points {
        let region = if m.injected_faults == 0 && m.accuracy >= nominal.accuracy - 0.01 {
            if m.vccint_mv >= 850.0 {
                "nominal"
            } else {
                "guardband"
            }
        } else {
            "critical"
        };
        t.row(&[
            fmt(m.vccint_mv, 0),
            fmt(m.power_w, 2),
            norm(m.gops_per_w / nominal.gops_per_w),
            pct(m.accuracy),
            region.to_string(),
        ]);
    }
    if let Some(mv) = sweep.crashed_at_mv {
        t.row(&[
            fmt(mv, 0),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "CRASH".to_string(),
        ]);
    }
    t
}

/// **Figure 5** — power-efficiency improvement per benchmark (averaged
/// over the configured boards).
pub fn fig5(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 5: GOPs/W gain vs Vnom (paper: 2.6x at Vmin, >3x at Vcrash)",
        &[
            "Model",
            "GOPs/W @850",
            "Gain @Vmin",
            "Gain @last-alive",
            "Extra below guardband",
        ],
    );
    for kind in BenchmarkId::ALL {
        let mut at_vmin = Vec::new();
        let mut at_crash = Vec::new();
        let mut base_eff = Vec::new();
        for &board in &s.boards {
            let sweep = sweep_for(s, kind, board);
            let regions = VoltageRegions::from_sweep(&sweep, 0.01).expect("non-empty sweep");
            if let Some(h) = efficiency::headline(&sweep, regions.vmin_mv) {
                at_vmin.push(h.gain_at_vmin);
                at_crash.push(h.gain_at_vcrash);
            }
            base_eff.push(sweep.nominal().gops_per_w);
        }
        let mean = |v: &[f64]| stats::mean(v).unwrap_or(f64::NAN);
        let (gv, gc) = (mean(&at_vmin), mean(&at_crash));
        t.row(&[
            kind.name().to_string(),
            fmt(mean(&base_eff), 1),
            norm(gv),
            norm(gc),
            pct(gc / gv - 1.0),
        ]);
    }
    t
}

/// **Figure 6** — accuracy vs voltage in the critical region, per
/// benchmark and board.
pub fn fig6(s: &Settings) -> Table {
    let mut t = Table::new(
        "Fig 6: Accuracy vs voltage below the guardband (per board)",
        &["Model", "Board", "mV", "Accuracy", "Acc std", "Faults"],
    );
    for kind in BenchmarkId::ALL {
        for &board in &s.boards {
            let sweep = sweep_for(s, kind, board);
            for m in sweep.points.iter().filter(|m| m.vccint_mv <= 600.0) {
                t.row(&[
                    kind.name().to_string(),
                    board.to_string(),
                    fmt(m.vccint_mv, 0),
                    pct(m.accuracy),
                    fmt(m.accuracy_std, 3),
                    m.injected_faults.to_string(),
                ]);
            }
        }
    }
    t
}

/// **Table 2** — frequency underscaling in the critical region. Each
/// board's scan starts at its own measured Vmin (the paper reports the
/// three-board average anchored at the mean Vmin of 570 mV).
pub fn table2(s: &Settings) -> Table {
    let mut per_board: Vec<Vec<FreqScaleRow>> = Vec::new();
    for &board in &s.boards {
        let regions = regions_for(s, BenchmarkId::VggNet, board);
        let mut acc = bring_up(&s.config(BenchmarkId::VggNet, board));
        let rows = frequency_underscaling(
            &mut acc,
            &FreqScaleConfig {
                start_mv: regions.vmin_mv,
                stop_mv: regions.vmin_mv - 30.0,
                images: s.images,
                ..FreqScaleConfig::default()
            },
        )
        .expect("table2 scan");
        per_board.push(rows);
    }
    let mut t = Table::new(
        "Table 2: Frequency underscaling (normalized to each board's (Vmin, 333MHz))",
        &["VCCINT mV", "Fmax MHz", "GOPs", "Power", "GOPs/W", "GOPs/J"],
    );
    let depth = per_board.iter().map(Vec::len).min().unwrap_or(0);
    for k in 0..depth {
        let col = |f: &dyn Fn(&FreqScaleRow) -> f64| {
            let vals: Vec<f64> = per_board.iter().map(|rows| f(&rows[k])).collect();
            stats::mean(&vals).expect("non-empty boards")
        };
        t.row(&[
            fmt(col(&|r| r.vccint_mv), 0),
            fmt(col(&|r| r.fmax_mhz), 0),
            norm(col(&|r| r.gops_norm)),
            norm(col(&|r| r.power_norm)),
            norm(col(&|r| r.gops_per_w_norm)),
            norm(col(&|r| r.gops_per_j_norm)),
        ]);
    }
    t
}

/// **Figure 7** — undervolting × quantization (VGGNet, board 0). Returns
/// the accuracy table (7a) and the power-efficiency table (7b).
pub fn fig7(s: &Settings) -> (Table, Table) {
    let study: QuantStudy = quantization_study(
        &s.config(BenchmarkId::VggNet, s.boards[0]),
        &FIG7_PRECISIONS,
        &fig_sweep(s.images),
    )
    .expect("fig7 study");
    let voltages = [850.0, 570.0, 565.0, 560.0, 555.0, 550.0, 545.0, 540.0];
    let mut acc_t = Table::new(
        "Fig 7a: Accuracy vs voltage per precision (VGGNet)",
        &["mV", "INT8", "INT7", "INT6", "INT5", "INT4"],
    );
    let mut eff_t = Table::new(
        "Fig 7b: GOPs/W vs voltage per precision (VGGNet)",
        &["mV", "INT8", "INT7", "INT6", "INT5", "INT4"],
    );
    for &mv in &voltages {
        let mut acc_row = vec![fmt(mv, 0)];
        let mut eff_row = vec![fmt(mv, 0)];
        for &bits in &FIG7_PRECISIONS {
            let point = study.at_bits(bits).and_then(|c| c.sweep.at_mv(mv));
            match point {
                Some(m) => {
                    acc_row.push(pct(m.accuracy));
                    eff_row.push(fmt(m.gops_per_w, 0));
                }
                None => {
                    acc_row.push("CRASH".to_string());
                    eff_row.push("CRASH".to_string());
                }
            }
        }
        acc_t.row(&acc_row);
        eff_t.row(&eff_row);
    }
    (acc_t, eff_t)
}

/// **Figure 8** — undervolting × pruning (VGGNet, board 0). Returns the
/// accuracy table (8a) and the work-equivalent efficiency table (8b).
pub fn fig8(s: &Settings) -> (Table, Table) {
    let study: PruneStudy = pruning_study(
        &s.config(BenchmarkId::VggNet, s.boards[0]),
        0.5,
        &fig_sweep(s.images),
    )
    .expect("fig8 study");
    let mut acc_t = Table::new(
        "Fig 8a: Accuracy vs voltage, dense vs pruned (VGGNet)",
        &["mV", "Baseline", "Pruned"],
    );
    let mut eff_t = Table::new(
        "Fig 8b: Work-equivalent GOPs/W, dense vs pruned (VGGNet)",
        &["mV", "Baseline", "Pruned"],
    );
    let voltages = [
        850.0, 700.0, 570.0, 565.0, 560.0, 555.0, 550.0, 545.0, 540.0,
    ];
    let cell_acc = |m: Option<&Measurement>| {
        m.map(|m| pct(m.accuracy))
            .unwrap_or_else(|| "CRASH".to_string())
    };
    for &mv in &voltages {
        acc_t.row(&[
            fmt(mv, 0),
            cell_acc(study.dense.sweep.at_mv(mv)),
            cell_acc(study.pruned.sweep.at_mv(mv)),
        ]);
        let eq = |arm: &redvolt_core::pruneexp::PruneArm| {
            arm.sweep
                .at_mv(mv)
                .map(|m| fmt(m.gops_per_w * arm.work_equivalence, 0))
                .unwrap_or_else(|| "CRASH".to_string())
        };
        eff_t.row(&[fmt(mv, 0), eq(&study.dense), eq(&study.pruned)]);
    }
    let dense_crash = study.dense.sweep.last_alive_mv().unwrap_or(f64::NAN);
    let pruned_crash = study.pruned.sweep.last_alive_mv().unwrap_or(f64::NAN);
    acc_t.row(&[
        "Vcrash".to_string(),
        fmt(dense_crash, 0),
        fmt(pruned_crash, 0),
    ]);
    (acc_t, eff_t)
}

/// **Figure 9** — temperature effect on power (GoogleNet, board 0).
pub fn fig9(s: &Settings) -> Table {
    let study = temp_study(s);
    let mut t = Table::new(
        "Fig 9: Power vs voltage at 34/43/52 C (GoogleNet)",
        &["mV", "P@34C", "P@43C", "P@52C", "rise 34->52"],
    );
    let voltages = [850.0, 750.0, 650.0, 600.0, 570.0, 550.0];
    for &mv in &voltages {
        let p = |t_c: f64| {
            study
                .at_temp(t_c)
                .and_then(|c| c.sweep.at_mv(mv))
                .map(|m| m.power_w)
        };
        let (Some(p34), Some(p43), Some(p52)) = (p(34.0), p(43.0), p(52.0)) else {
            continue;
        };
        t.row(&[
            fmt(mv, 0),
            fmt(p34, 3),
            fmt(p43, 3),
            fmt(p52, 3),
            pct((p52 - p34) / p34),
        ]);
    }
    t
}

/// **Figure 10** — temperature effect on reliability / ITD (GoogleNet).
pub fn fig10(s: &Settings) -> Table {
    let study = temp_study(s);
    let mut t = Table::new(
        "Fig 10: Accuracy vs voltage at 34/43/52 C (GoogleNet)",
        &["mV", "Acc@34C", "Acc@43C", "Acc@52C"],
    );
    let voltages = [850.0, 570.0, 565.0, 560.0, 555.0, 550.0, 545.0, 540.0];
    for &mv in &voltages {
        let a = |t_c: f64| {
            study
                .at_temp(t_c)
                .and_then(|c| c.sweep.at_mv(mv))
                .map(|m| pct(m.accuracy))
                .unwrap_or_else(|| "CRASH".to_string())
        };
        t.row(&[fmt(mv, 0), a(34.0), a(43.0), a(52.0)]);
    }
    if let Some((temp, mv, power)) = study.optimal_point(0.01) {
        t.row(&[
            "OPTIMAL".to_string(),
            format!("{temp:.0}C"),
            format!("{mv:.0}mV"),
            format!("{power:.2}W"),
        ]);
    }
    t
}

/// **Ablations** — the design choices DESIGN.md calls out, each compared
/// against its naive alternative.
pub fn ablations(s: &Settings) -> Table {
    use redvolt_core::bench_suite::{Workload, WorkloadConfig};
    use redvolt_dpu::{compiler, engine};
    use redvolt_faults::injector::{SingleBitFaultInjector, SlackFaultInjector};
    use redvolt_faults::model::FaultRates;
    use redvolt_nn::quant::{Granularity, QuantizedGraph};

    let mut t = Table::new(
        "Ablations: modelling choices vs naive alternatives",
        &[
            "Ablation",
            "Chosen model",
            "Naive alternative",
            "Why it matters",
        ],
    );

    // 1. Correlated burst injection vs independent single-bit upsets, at a
    //    fixed critical-region deficit (550 mV-equivalent).
    let mut workload = Workload::prepare(WorkloadConfig {
        benchmark: BenchmarkId::VggNet,
        scale: s.scale,
        eval_images: s.images,
        ..WorkloadConfig::baseline(BenchmarkId::VggNet)
    })
    .expect("workload");
    let deficit = 333.0 / 259.0 - 1.0; // the 550 mV anchor
    let rates = FaultRates::for_deficit(deficit);
    let mut burst_inj = SlackFaultInjector::new(rates, 9);
    let mut model = workload.task.model_mut().clone();
    let burst_acc = {
        let preds: Vec<usize> = workload
            .eval
            .images
            .iter()
            .map(|img| model.predict_with(img, &mut burst_inj).unwrap())
            .collect();
        workload.eval.accuracy(&preds)
    };
    let mut single_inj = SingleBitFaultInjector::new(rates, 9);
    let single_acc = {
        let preds: Vec<usize> = workload
            .eval
            .images
            .iter()
            .map(|img| model.predict_with(img, &mut single_inj).unwrap())
            .collect();
        workload.eval.accuracy(&preds)
    };
    t.row(&[
        "fault model @550mV".to_string(),
        format!("bursts: acc {}", pct(burst_acc)),
        format!("single-bit: acc {}", pct(single_acc)),
        "independent upsets are absorbed; no Fig-6 collapse".to_string(),
    ]);

    // 2. Per-channel vs per-tensor weight scales at INT4.
    let graph = BenchmarkId::VggNet.build(s.scale).fold_batch_norms();
    let calib = redvolt_nn::dataset::SyntheticDataset::new(32, 32, 3, 10, 42).images(8);
    let rms = |g: Granularity| {
        QuantizedGraph::quantize_with(&graph, 4, &calib, g)
            .unwrap()
            .weight_rms_error(&graph)
    };
    t.row(&[
        "INT4 weight scales".to_string(),
        format!("per-channel RMS {:.4}", rms(Granularity::PerChannel)),
        format!("per-tensor RMS {:.4}", rms(Granularity::PerTensor)),
        "narrow formats need per-channel resolution (Fig 7)".to_string(),
    ]);

    // 3. DDR roofline vs compute-only clock scaling (Table-2 GOPs column).
    let kernel = compiler::compile("vgg", &graph, 8).unwrap();
    let with_roofline =
        engine::timing(&kernel, 250.0, 3).gops / engine::timing(&kernel, 333.0, 3).gops;
    t.row(&[
        "GOPs(250)/GOPs(333)".to_string(),
        format!("roofline: {:.2}", with_roofline),
        format!("compute-only: {:.2}", 250.0 / 333.0),
        "paper measures 0.83: memory-bound time hides clock loss".to_string(),
    ]);

    t
}

/// **Extension: Razor mitigation** (SS9 future work i) -- accuracy and cost
/// of detect-and-retry at the full clock below the guardband.
pub fn mitigation(s: &Settings) -> Table {
    use redvolt_core::mitigation::mitigation_study;
    let mut acc = bring_up(&s.config(BenchmarkId::VggNet, s.boards[0]));
    let study = mitigation_study(&mut acc, 570.0, 540.0, 5.0, s.images, 8).expect("study");
    let mut t = Table::new(
        "Extension (paper SS9.i): Razor detect-and-retry at 333 MHz (VGGNet)",
        &[
            "mV",
            "Acc (mitigated)",
            "Acc (plain)",
            "Attempts/img",
            "Eff GOPs/W",
            "Unresolved",
        ],
    );
    for p in &study.points {
        t.row(&[
            fmt(p.vccint_mv, 0),
            pct(p.accuracy),
            pct(p.unmitigated_accuracy),
            fmt(p.attempts_per_image, 2),
            fmt(p.effective_gops_per_w, 0),
            pct(p.unresolved_fraction),
        ]);
    }
    t
}

/// **Extension: voltage governor** (SS9 future work ii) -- a closed loop
/// that discovers and tracks Vmin at run time.
pub fn governor(s: &Settings) -> Table {
    use redvolt_core::governor::{run_governor, GovernorConfig};
    let mut t = Table::new(
        "Extension (paper SS9.ii): closed-loop minimum-voltage tracking (GoogleNet)",
        &[
            "Temp C",
            "Settled mV",
            "Mean power W",
            "Crashes",
            "Final power W",
        ],
    );
    for temp in [34.0, 52.0] {
        let mut acc = bring_up(&s.config(BenchmarkId::GoogleNet, s.boards[0]));
        acc.board_mut().thermal_mut().force_temperature(temp);
        let trace = run_governor(
            &mut acc,
            &GovernorConfig {
                batch_images: s.images.min(32),
                ..GovernorConfig::default()
            },
            140,
        )
        .expect("governor run");
        t.row(&[
            fmt(temp, 0),
            fmt(trace.settled_mv, 0),
            fmt(trace.mean_power_w(), 2),
            trace.crash_count().to_string(),
            fmt(trace.steps.last().map(|st| st.power_w).unwrap_or(0.0), 2),
        ]);
    }
    t
}

/// **Extension: BRAM-rail separation** (SS4.1 discussion) -- drive VCCBRAM
/// alone and show it buys no power while faulting below its own floor.
pub fn bram(s: &Settings) -> Table {
    use redvolt_core::bramexp::bram_rail_study;
    let mut acc = bring_up(&s.config(BenchmarkId::VggNet, s.boards[0]));
    let study = bram_rail_study(&mut acc, 850.0, 430.0, 10.0, s.images).expect("bram study");
    let mut t = Table::new(
        "Extension (SS4.1): VCCBRAM-only undervolting (VCCINT at nominal)",
        &["VCCBRAM mV", "Power W", "Accuracy", "Weight faults"],
    );
    for p in study
        .points
        .iter()
        .filter(|p| p.vccbram_mv % 50.0 == 0.0 || p.vccbram_mv < 560.0)
    {
        t.row(&[
            fmt(p.vccbram_mv, 0),
            fmt(p.measurement.power_w, 3),
            pct(p.measurement.accuracy),
            p.measurement.injected_faults.to_string(),
        ]);
    }
    if let Some(mv) = study.crashed_at_mv {
        t.row(&[
            fmt(mv, 0),
            "-".to_string(),
            "-".to_string(),
            "BRAM COLLAPSE".to_string(),
        ]);
    }
    t
}

fn temp_study(s: &Settings) -> TempStudy {
    static CACHE: std::sync::OnceLock<std::sync::Mutex<Vec<(Settings, TempStudy)>>> =
        std::sync::OnceLock::new();
    let cache = CACHE.get_or_init(|| std::sync::Mutex::new(Vec::new()));
    if let Some((_, hit)) = cache
        .lock()
        .expect("cache lock")
        .iter()
        .find(|(cfg, _)| cfg == s)
    {
        return hit.clone();
    }
    let study = temperature_study(
        &s.config(BenchmarkId::GoogleNet, s.boards[0]),
        &SETPOINTS_C,
        &fig_sweep(s.images),
    )
    .expect("temperature study");
    cache
        .lock()
        .expect("cache lock")
        .push((s.clone(), study.clone()));
    study
}

/// Convenience: runs a named experiment, returning its rendered tables.
///
/// # Errors
///
/// Returns an error string for unknown experiment names.
pub fn run_experiment(name: &str, s: &Settings) -> Result<Vec<Table>, MeasureError> {
    let tables = match name {
        "table1" => vec![table1(s)],
        "power-breakdown" => vec![power_breakdown(s)],
        "fig3" => vec![fig3(s)],
        "fig4" => vec![fig4(s)],
        "fig5" => vec![fig5(s)],
        "fig6" => vec![fig6(s)],
        "table2" => vec![table2(s)],
        "fig7" => {
            let (a, b) = fig7(s);
            vec![a, b]
        }
        "fig8" => {
            let (a, b) = fig8(s);
            vec![a, b]
        }
        "fig9" => vec![fig9(s)],
        "fig10" => vec![fig10(s)],
        "ablations" => vec![ablations(s)],
        "mitigation" => vec![mitigation(s)],
        "governor" => vec![governor(s)],
        "bram" => vec![bram(s)],
        other => {
            return Err(MeasureError::Pmbus(
                redvolt_pmbus::PmbusError::Unencodable {
                    reason: format!("unknown experiment {other}"),
                },
            ))
        }
    };
    Ok(tables)
}

/// All experiment names in paper order.
pub const ALL_EXPERIMENTS: [&str; 15] = [
    "table1",
    "power-breakdown",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablations",
    "mitigation",
    "governor",
    "bram",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_table1_has_five_rows() {
        let t = table1(&Settings::tiny());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn tiny_fig4_covers_regions_and_crash() {
        let t = fig4(&Settings::tiny());
        let text = t.to_text();
        assert!(text.contains("guardband"));
        assert!(text.contains("CRASH"));
    }

    #[test]
    fn prefetch_is_jobs_invariant_and_fills_the_cache() {
        let s = Settings::tiny();
        let serial = prefetch_sweeps(&s, 1);
        let parallel = prefetch_sweeps(&s, 4);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.results.len(), BenchmarkId::ALL.len());
        let cache = sweep_cache().lock().expect("cache lock");
        for kind in BenchmarkId::ALL {
            assert!(
                cache.contains_key(&cache_key(&s, kind, 0)),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn parse_jobs_accepts_both_spellings_and_defaults() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs(&args(&["--jobs", "3"])), 3);
        assert_eq!(parse_jobs(&args(&["fig3", "--jobs=7", "--csv"])), 7);
        assert_eq!(parse_jobs(&args(&["--jobs", "0"])), 1);
        assert!(parse_jobs(&args(&["all"])) >= 1);
    }

    #[test]
    fn campaign_options_parse_both_spellings_and_validate() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let opts = CampaignOptions::from_args(&args(&[
            "fig6",
            "--jobs=2",
            "--image-jobs=4",
            "--journal",
            "run.journal",
            "--resume",
            "--max-attempts=5",
            "--fault-profile",
            "light",
            "--halt-after-cells=3",
            "--defense",
            "correct",
            "--governor",
        ]))
        .unwrap();
        assert_eq!(opts.jobs, 2);
        assert_eq!(opts.image_jobs, 4);
        assert_eq!(opts.supervisor_config().image_jobs, 4);
        assert_eq!(
            opts.journal.as_deref(),
            Some(std::path::Path::new("run.journal"))
        );
        assert!(opts.resume);
        assert_eq!(opts.max_attempts, 5);
        assert_eq!(opts.fault_profile, BusFaultProfile::light());
        assert_eq!(opts.halt_after, Some(3));
        assert_eq!(opts.supervisor_config().max_attempts, 5);
        assert_eq!(opts.supervisor_config().halt_after, Some(3));
        assert!(opts.journal_spec().is_some_and(|j| j.resume));
        assert_eq!(opts.defense, DefenseMode::Correct);
        assert!(opts.governor);

        let defaults = CampaignOptions::from_args(&args(&["fig3", "--csv"])).unwrap();
        assert_eq!(defaults.image_jobs, 0, "absent flag means auto-split");
        assert_eq!(defaults.fault_profile, BusFaultProfile::none());
        assert!(defaults.journal.is_none() && !defaults.resume);
        assert_eq!(defaults.defense, DefenseMode::Off);
        assert!(!defaults.governor);

        assert!(CampaignOptions::from_args(&args(&["--resume"])).is_err());
        assert!(CampaignOptions::from_args(&args(&["--fault-profile", "bad"])).is_err());
        assert!(CampaignOptions::from_args(&args(&["--defense", "nope"])).is_err());
        assert!(CampaignOptions::from_args(&args(&["--max-attempts", "0"])).is_err());
        assert!(CampaignOptions::from_args(&args(&["--journal"])).is_err());
        assert!(CampaignOptions::from_args(&args(&["--image-jobs", "x"])).is_err());
        assert!(CampaignOptions::from_args(&args(&["--image-jobs"])).is_err());
    }

    #[test]
    fn fault_profile_partitions_the_sweep_cache() {
        let clean = Settings::tiny();
        let faulty = Settings {
            bus_faults: BusFaultProfile::light(),
            ..Settings::tiny()
        };
        assert_ne!(
            cache_key(&clean, BenchmarkId::VggNet, 0),
            cache_key(&faulty, BenchmarkId::VggNet, 0)
        );
    }

    #[test]
    fn defense_and_governor_partition_the_sweep_cache() {
        let plain = Settings::tiny();
        let defended = Settings {
            defense: DefenseMode::Correct,
            ..Settings::tiny()
        };
        let governed = Settings {
            governor: true,
            ..Settings::tiny()
        };
        let key = |s: &Settings| cache_key(s, BenchmarkId::VggNet, 0);
        assert_ne!(key(&plain), key(&defended));
        assert_ne!(key(&plain), key(&governed));
        assert_ne!(key(&defended), key(&governed));
    }

    #[test]
    fn halted_prefetch_resumes_to_straight_bytes_under_faults() {
        let s = Settings {
            bus_faults: BusFaultProfile::light(),
            ..Settings::tiny()
        };
        let straight = prefetch_sweeps_with(&s, 2, &SupervisorConfig::default(), None)
            .unwrap()
            .report
            .to_csv();

        let dir = std::env::temp_dir().join("redvolt-harness-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("prefetch-{}.journal", std::process::id()));
        let halted = prefetch_sweeps_with(
            &s,
            2,
            &SupervisorConfig {
                halt_after: Some(2),
                ..SupervisorConfig::default()
            },
            Some(&JournalSpec::new(&path, false)),
        )
        .unwrap();
        assert!(halted.interrupted);

        let resumed = prefetch_sweeps_with(
            &s,
            2,
            &SupervisorConfig::default(),
            Some(&JournalSpec::new(&path, true)),
        )
        .unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.resumed_cells, 2);
        assert_eq!(resumed.report.to_csv(), straight);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn experiment_names_resolve() {
        for name in ALL_EXPERIMENTS {
            // Only check dispatch for the cheap ones in tests.
            if matches!(name, "table1" | "power-breakdown") {
                assert!(run_experiment(name, &Settings::tiny()).is_ok());
            }
        }
        assert!(run_experiment("nope", &Settings::tiny()).is_err());
    }
}

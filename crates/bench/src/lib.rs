//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each function in [`harness`] reproduces one table or figure of the
//! DSN-2020 study and returns it as a printable [`redvolt_core::report::Table`].
//! The `repro` binary prints them (`cargo run --release -p redvolt-bench
//! --bin repro -- all`); the criterion benches in `benches/` time reduced
//! versions of the same campaigns; EXPERIMENTS.md records paper-vs-measured
//! for a full run.

pub mod harness;

pub use harness::Settings;

//! Kernel and end-to-end inference throughput baseline.
//!
//! ```text
//! cargo run --release -p redvolt-bench --bin kernels -- --quick
//! cargo run --release -p redvolt-bench --bin kernels -- --out BENCH_6.json
//! cargo run --release -p redvolt-bench --bin kernels -- --quick --min-speedup 1.0
//! cargo run --release -p redvolt-bench --bin kernels -- --check BENCH_6.json
//! ```
//!
//! Measures the optimized im2col + blocked-GEMM kernels
//! (`redvolt_nn::kernels`) against the retained naive reference
//! implementations (`redvolt_nn::reference`), at two levels:
//!
//! * **Kernel micro-benchmarks** — conv/dense, float and quantized, on
//!   representative layer shapes, reported as ns/call.
//! * **End-to-end inference** — quantized `predict` over the paper's
//!   benchmark models, optimized vs `set_reference_kernels(true)`,
//!   reported as images/s. Both arms classify every image identically
//!   (bit-identical kernels), so the comparison is pure throughput.
//!
//! The workload is fully deterministic (fixed seeds, fixed iteration
//! counts); only the wall-clock timings vary run to run. Results go to
//! a JSON report (schema `redvolt-bench/kernels/v1`, default
//! `BENCH_6.json`). `--min-speedup X` exits non-zero if any end-to-end
//! speedup falls below `X` — the CI smoke gate. `--check PATH` validates
//! an existing report against the schema instead of benchmarking.

use redvolt_nn::dataset::SyntheticDataset;
use redvolt_nn::graph::ConvParams;
use redvolt_nn::kernels::{self, Scratch};
use redvolt_nn::models::{ModelKind, ModelScale};
use redvolt_nn::quant::QuantizedGraph;
use redvolt_nn::reference;
use redvolt_nn::tensor::{QTensor, Tensor};
use std::hint::black_box;
use std::time::Instant;

/// Report schema identifier; bump on layout changes.
const SCHEMA: &str = "redvolt-bench/kernels/v1";

struct KernelResult {
    name: String,
    shape: String,
    reference_ns: f64,
    optimized_ns: f64,
}

struct EndToEndResult {
    benchmark: &'static str,
    bits: u32,
    images: usize,
    reference_images_per_s: f64,
    optimized_images_per_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut out_path = "BENCH_6.json".to_string();
    let mut min_speedup: Option<f64> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--out" => out_path = expect_value(&mut it, "--out"),
            "--min-speedup" => {
                let v = expect_value(&mut it, "--min-speedup");
                min_speedup = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --min-speedup wants a number, got {v}");
                    std::process::exit(2);
                }));
            }
            "--check" => check_path = Some(expect_value(&mut it, "--check")),
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!("usage: kernels [--quick] [--out PATH] [--min-speedup X] [--check PATH]");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        check_report(&path);
        return;
    }

    let reps = if quick { 3 } else { 20 };
    eprintln!("# kernel micro-benchmarks ({reps} reps)");
    let kernel_results = bench_kernels(reps);
    for k in &kernel_results {
        eprintln!(
            "  {:<12} {:<26} ref {:>10.0} ns  opt {:>10.0} ns  x{:.2}",
            k.name,
            k.shape,
            k.reference_ns,
            k.optimized_ns,
            k.reference_ns / k.optimized_ns
        );
    }

    let models: &[ModelKind] = if quick {
        &[ModelKind::VggNet]
    } else {
        &ModelKind::ALL
    };
    let images = if quick { 12 } else { 40 };
    eprintln!("# end-to-end quantized inference ({images} images/arm)");
    let e2e: Vec<EndToEndResult> = models
        .iter()
        .map(|&m| bench_end_to_end(m, images))
        .collect();
    let mut min_seen = f64::INFINITY;
    for r in &e2e {
        let speedup = r.optimized_images_per_s / r.reference_images_per_s;
        min_seen = min_seen.min(speedup);
        eprintln!(
            "  {:<10} INT{} ref {:>8.1} img/s  opt {:>8.1} img/s  x{:.2}",
            r.benchmark, r.bits, r.reference_images_per_s, r.optimized_images_per_s, speedup
        );
    }

    let json = render_report(quick, &kernel_results, &e2e);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");

    if let Some(floor) = min_speedup {
        if min_seen < floor {
            eprintln!(
                "FAIL: minimum end-to-end speedup x{min_seen:.2} is below the x{floor:.2} floor"
            );
            std::process::exit(1);
        }
        eprintln!("OK: minimum end-to-end speedup x{min_seen:.2} >= x{floor:.2}");
    }
}

fn expect_value(it: &mut std::iter::Peekable<std::slice::Iter<String>>, flag: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("error: {flag} wants a value");
        std::process::exit(2);
    })
}

/// ns/call of `f`, median of `reps` timed calls after one warm-up call.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn synth_tensor(h: usize, w: usize, c: usize) -> Tensor {
    Tensor::from_vec(
        h,
        w,
        c,
        (0..h * w * c).map(|i| ((i as f32) * 0.37).sin()).collect(),
    )
}

fn synth_qtensor(h: usize, w: usize, c: usize) -> QTensor {
    let mut q = QTensor::zeros(h, w, c, 0.05);
    for (i, code) in q.codes.iter_mut().enumerate() {
        *code = (((i * 37) % 255) as i32 - 127) as i8;
    }
    q
}

fn bench_kernels(reps: usize) -> Vec<KernelResult> {
    let mut results = Vec::new();
    let mut scratch = Scratch::new();

    // A mid-network conv layer: 16x16x32 input, 3x3, 64 filters.
    let p = ConvParams {
        in_ch: 32,
        out_ch: 64,
        k: 3,
        stride: 1,
        pad: 1,
        relu: true,
    };
    let shape = "16x16x32 k3 s1 p1 oc64".to_string();
    let xf = synth_tensor(16, 16, 32);
    let wf: Vec<f32> = (0..p.weight_count())
        .map(|i| ((i as f32) * 0.73).cos())
        .collect();
    let bf: Vec<f32> = (0..p.out_ch).map(|i| i as f32 * 0.01).collect();
    let (oh, ow) = p.out_hw(16, 16);
    let mut out_f = vec![0.0f32; oh * ow * p.out_ch];
    results.push(KernelResult {
        name: "conv2d_f32".to_string(),
        shape: shape.clone(),
        reference_ns: time_ns(reps, || {
            black_box(reference::conv2d_f32(black_box(&xf), &p, &wf, &bf));
        }),
        optimized_ns: time_ns(reps, || {
            kernels::conv2d_f32_into(black_box(&xf), &p, &wf, &bf, &mut scratch, &mut out_f);
            black_box(&out_f);
        }),
    });

    let xq = synth_qtensor(16, 16, 32);
    let wq: Vec<i8> = (0..p.weight_count())
        .map(|i| (((i * 29) % 255) as i32 - 127) as i8)
        .collect();
    let bq: Vec<i32> = (0..p.out_ch).map(|i| i as i32 * 3 - 90).collect();
    let mut acc = vec![0i32; oh * ow * p.out_ch];
    results.push(KernelResult {
        name: "conv2d_q".to_string(),
        shape,
        reference_ns: time_ns(reps, || {
            black_box(reference::conv2d_q(black_box(&xq), &p, &wq, &bq));
        }),
        optimized_ns: time_ns(reps, || {
            kernels::conv2d_q_into(black_box(&xq), &p, &wq, &bq, &mut scratch, &mut acc);
            black_box(&acc);
        }),
    });

    // A readout-sized dense layer: 1024 -> 256.
    let (n, m) = (1024usize, 256usize);
    let shape = format!("{n}->{m}");
    let xf = synth_tensor(1, 1, n);
    let wf: Vec<f32> = (0..n * m).map(|i| ((i as f32) * 0.31).sin()).collect();
    let bf: Vec<f32> = (0..m).map(|i| i as f32 * 0.01).collect();
    let mut out_f = vec![0.0f32; m];
    results.push(KernelResult {
        name: "dense_f32".to_string(),
        shape: shape.clone(),
        reference_ns: time_ns(reps, || {
            black_box(reference::dense_f32(black_box(&xf), m, true, &wf, &bf));
        }),
        optimized_ns: time_ns(reps, || {
            kernels::dense_f32_into(black_box(xf.data()), m, true, &wf, &bf, &mut out_f);
            black_box(&out_f);
        }),
    });

    let xq = synth_qtensor(1, 1, n);
    let wq: Vec<i8> = (0..n * m)
        .map(|i| (((i * 17) % 255) as i32 - 127) as i8)
        .collect();
    let bq: Vec<i32> = (0..m).map(|i| i as i32 - 100).collect();
    let mut acc = vec![0i32; m];
    results.push(KernelResult {
        name: "dense_q".to_string(),
        shape,
        reference_ns: time_ns(reps, || {
            black_box(reference::dense_q(black_box(&xq), n, m, &wq, &bq));
        }),
        optimized_ns: time_ns(reps, || {
            kernels::dense_q_into(black_box(&xq), n, m, &wq, &bq, &mut acc);
            black_box(&acc);
        }),
    });

    results
}

fn bench_end_to_end(kind: ModelKind, images: usize) -> EndToEndResult {
    let graph = kind.build(ModelScale::Paper).fold_batch_norms();
    let in_shape = graph.input_shape();
    let classes = graph.num_classes();
    let ds = SyntheticDataset::new(in_shape.h, in_shape.w, in_shape.c, classes, 42);
    let mut q = QuantizedGraph::quantize(&graph, 8, &ds.images(4)).expect("quantize");
    let batch: Vec<Tensor> = (0..images).map(|i| ds.image(i).0).collect();

    // Warm both arms (arena growth, cache residency), then verify the
    // two arms agree before timing them.
    q.set_reference_kernels(true);
    let ref_preds: Vec<usize> = batch
        .iter()
        .map(|im| q.predict(im).expect("predict"))
        .collect();
    q.set_reference_kernels(false);
    let opt_preds: Vec<usize> = batch
        .iter()
        .map(|im| q.predict(im).expect("predict"))
        .collect();
    assert_eq!(ref_preds, opt_preds, "kernel arms disagree on {kind:?}");

    q.set_reference_kernels(true);
    let t = Instant::now();
    for im in &batch {
        black_box(q.predict(im).expect("predict"));
    }
    let ref_s = t.elapsed().as_secs_f64();

    q.set_reference_kernels(false);
    let t = Instant::now();
    for im in &batch {
        black_box(q.predict(im).expect("predict"));
    }
    let opt_s = t.elapsed().as_secs_f64();

    EndToEndResult {
        benchmark: kind.name(),
        bits: q.bits(),
        images,
        reference_images_per_s: images as f64 / ref_s,
        optimized_images_per_s: images as f64 / opt_s,
    }
}

fn render_report(quick: bool, kernels: &[KernelResult], e2e: &[EndToEndResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"shape\": \"{}\", \"reference_ns_per_call\": {:.1}, \
             \"optimized_ns_per_call\": {:.1}, \"speedup\": {:.3}}}{}\n",
            k.name,
            k.shape,
            k.reference_ns,
            k.optimized_ns,
            k.reference_ns / k.optimized_ns,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"end_to_end\": [\n");
    for (i, r) in e2e.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"bits\": {}, \"images\": {}, \
             \"reference_images_per_s\": {:.2}, \"optimized_images_per_s\": {:.2}, \
             \"speedup\": {:.3}}}{}\n",
            r.benchmark,
            r.bits,
            r.images,
            r.reference_images_per_s,
            r.optimized_images_per_s,
            r.optimized_images_per_s / r.reference_images_per_s,
            if i + 1 < e2e.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let min = e2e
        .iter()
        .map(|r| r.optimized_images_per_s / r.reference_images_per_s)
        .fold(f64::INFINITY, f64::min);
    s.push_str(&format!("  \"min_end_to_end_speedup\": {min:.3}\n"));
    s.push_str("}\n");
    s
}

/// Structural validation of a report file: correct schema tag, at least
/// one kernel and one end-to-end entry, every required key present, all
/// speedups positive and finite.
fn check_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    let mut problems = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        problems.push(format!("missing or wrong schema tag (want {SCHEMA})"));
    }
    for key in [
        "\"quick\":",
        "\"kernels\":",
        "\"end_to_end\":",
        "\"min_end_to_end_speedup\":",
        "\"reference_ns_per_call\":",
        "\"optimized_ns_per_call\":",
        "\"reference_images_per_s\":",
        "\"optimized_images_per_s\":",
        "\"speedup\":",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("\"min_end_to_end_speedup\":") {
            let v: f64 = rest
                .trim()
                .trim_end_matches(',')
                .parse()
                .unwrap_or(f64::NAN);
            if !v.is_finite() || v <= 0.0 {
                problems.push(format!("min_end_to_end_speedup not positive-finite: {v}"));
            }
        }
    }
    if problems.is_empty() {
        eprintln!("OK: {path} conforms to {SCHEMA}");
    } else {
        for p in &problems {
            eprintln!("FAIL: {p}");
        }
        std::process::exit(1);
    }
}

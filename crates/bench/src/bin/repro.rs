//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p redvolt-bench --bin repro -- all
//! cargo run --release -p redvolt-bench --bin repro -- --quick fig6 table2
//! cargo run --release -p redvolt-bench --bin repro -- --quick --jobs 8 all
//! cargo run --release -p redvolt-bench --bin repro -- --quick \
//!     --fault-profile light --journal sweep.journal --resume fig6
//! ```
//!
//! With no arguments, runs everything at full settings (three boards,
//! 100 images, 10 repetitions — the paper's methodology). `--quick` runs
//! board 0 with reduced sampling. `--csv` emits CSV instead of aligned
//! text. `--jobs N` shards the shared sweep campaign across N worker
//! threads (default: available parallelism); results are byte-identical
//! for every N because each campaign cell derives its seed from the plan,
//! not the schedule. `--image-jobs M` additionally shards each cell's
//! image batch across M workers (0 or absent = divide surplus `--jobs`
//! workers across images; 1 = sequential batches) — every image derives
//! its fault stream from `(cell seed, image index, attempt)`, so output
//! stays byte-identical for any (jobs, image-jobs) combination. Per-cell
//! timing goes to stderr so stdout stays comparable across job counts.
//!
//! The shared sweep campaign runs under the crash-resilient supervisor:
//! `--fault-profile none|light|heavy` injects transient PMBus faults
//! (absorbed by the adapter's retry/PEC machinery, so output stays
//! byte-identical per profile), `--max-attempts N` sets the per-cell
//! reboot-and-retry budget, `--journal PATH` write-ahead-journals each
//! completed cell, and `--resume` continues an interrupted campaign from
//! that journal. `--halt-after-cells K` deterministically stops after K
//! newly journaled cells (exit code 3) — the hook CI uses to prove that
//! interrupted-then-resumed output is byte-identical to a straight run.
//!
//! Telemetry: `--metrics-out PATH` writes the campaign's JSONL event
//! stream (spans + metrics), `--prom-out PATH` writes the Prometheus
//! text exposition, and `--progress SECS` emits live progress lines to
//! stderr. Exported metric bytes are a pure function of (seed, plan) —
//! identical for every `--jobs` value. The JSONL stream also carries the
//! process-wide workload-cache effectiveness counters
//! (`redvolt_quant_cache_{hits,misses}_total`, `_occupancy`); their
//! totals are scheduling-invariant too (once-semantics slots), though
//! they reflect the whole process, not a single campaign.
//!
//! SDC defense: `--defense off|detect|correct` arms ABFT checksums on
//! the kernels and ECC SECDED scrubbing on the BRAM weight store (`off`
//! keeps the execution path bit-identical to the undefended kernels),
//! and `--governor` turns on the adaptive undervolt governor, which
//! walks faulting cells down the mitigation ladder (frequency first,
//! then voltage backoff) and reports them as degraded-but-clean instead
//! of handing back corrupt payloads. Both are deterministic functions of
//! (seed, plan), so defended campaigns remain jobs-invariant.

use redvolt_bench::harness::{
    self, CampaignOptions, Settings, ALL_EXPERIMENTS, SWEEP_CACHED_EXPERIMENTS, VALUE_FLAGS,
};
use redvolt_core::telemetry::{
    bus_stats_table, defense_stats_table, CampaignObserver, CampaignTelemetry,
};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let opts = match CampaignOptions::from_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut skip_next = false;
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| {
            let take = !skip_next && !a.starts_with("--");
            skip_next = VALUE_FLAGS.contains(&a.as_str());
            take
        })
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    let settings = Settings {
        bus_faults: opts.fault_profile,
        defense: opts.defense,
        governor: opts.governor,
        ..if quick {
            Settings::quick()
        } else {
            Settings::full()
        }
    };
    println!(
        "# redvolt reproduction of DSN-2020 'Reduced-Voltage Operation in Modern FPGAs'\n\
         # settings: boards={:?} images={} reps={} faults={} defense={} governor={} ({})\n",
        settings.boards,
        settings.images,
        settings.reps,
        settings.bus_faults.name(),
        settings.defense.name(),
        if settings.governor { "on" } else { "off" },
        if quick { "quick" } else { "full" }
    );
    // Run the shared sweep grid once, in parallel, before any consumer.
    // The supervisor isolates panics, retries crashed cells and, with
    // --journal, records every completed cell write-ahead.
    if wanted
        .iter()
        .any(|w| SWEEP_CACHED_EXPERIMENTS.contains(&w.as_str()))
    {
        let journal = opts.journal_spec();
        let progress = opts.progress_reporter(harness::sweep_plan(&settings).len());
        let sup = match harness::prefetch_sweeps_observed(
            &settings,
            opts.jobs,
            &opts.supervisor_config(),
            journal.as_ref(),
            progress.as_ref().map(|p| p as &dyn CampaignObserver),
        ) {
            Ok(sup) => sup,
            Err(e) => {
                eprintln!("error: sweep campaign: {e}");
                std::process::exit(2);
            }
        };
        if let Some(p) = &progress {
            p.finish();
        }
        if sup.resumed_cells > 0 {
            eprintln!("# resumed {} journaled cells", sup.resumed_cells);
        }
        if sup.aborted_cells > 0 {
            eprintln!("# {} cells aborted (see report)", sup.aborted_cells);
        }
        eprintln!("{}", sup.report.timing_table().to_text());
        // PMBus bus health + telemetry summary go to stdout: every field
        // is an integer counter that round-trips through the journal, so
        // straight and interrupted-then-resumed runs print the same bytes.
        let telem = CampaignTelemetry::collect(&sup.report);
        println!("{}", bus_stats_table(&sup.report).to_text());
        if settings.defense.is_on() || settings.governor {
            println!("{}", defense_stats_table(&sup.report).to_text());
        }
        println!("{}", telem.summary_table().to_text());
        if let Err(e) = opts.export_telemetry(&telem) {
            eprintln!("error: telemetry export: {e}");
            std::process::exit(2);
        }
        if sup.interrupted {
            eprintln!(
                "# campaign halted after {} newly journaled cells; rerun with --resume",
                sup.report.results.len() - sup.resumed_cells
            );
            std::process::exit(3);
        }
    }
    for name in &wanted {
        let t0 = Instant::now();
        match harness::run_experiment(name, &settings) {
            Ok(tables) => {
                for table in tables {
                    println!("{}", if csv { table.to_csv() } else { table.to_text() });
                }
                // Timing goes to stderr: stdout must stay byte-identical
                // across runs and --jobs values (tests/determinism.rs).
                eprintln!("# {name} done in {:.1}s", t0.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: experiment {name}: {e}");
                std::process::exit(2);
            }
        }
    }
}

//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p redvolt-bench --bin repro -- all
//! cargo run --release -p redvolt-bench --bin repro -- --quick fig6 table2
//! ```
//!
//! With no arguments, runs everything at full settings (three boards,
//! 100 images, 10 repetitions — the paper's methodology). `--quick` runs
//! board 0 with reduced sampling. `--csv` emits CSV instead of aligned
//! text.

use redvolt_bench::harness::{self, Settings, ALL_EXPERIMENTS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let mut wanted: Vec<String> = args
        .into_iter()
        .filter(|a| !a.starts_with("--"))
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    let settings = if quick {
        Settings::quick()
    } else {
        Settings::full()
    };
    println!(
        "# redvolt reproduction of DSN-2020 'Reduced-Voltage Operation in Modern FPGAs'\n\
         # settings: boards={:?} images={} reps={} ({})\n",
        settings.boards,
        settings.images,
        settings.reps,
        if quick { "quick" } else { "full" }
    );
    for name in &wanted {
        let t0 = Instant::now();
        match harness::run_experiment(name, &settings) {
            Ok(tables) => {
                for table in tables {
                    println!("{}", if csv { table.to_csv() } else { table.to_text() });
                }
                println!("# {name} done in {:.1}s\n", t0.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: experiment {name}: {e}");
                std::process::exit(2);
            }
        }
    }
}

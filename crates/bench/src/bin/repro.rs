//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p redvolt-bench --bin repro -- all
//! cargo run --release -p redvolt-bench --bin repro -- --quick fig6 table2
//! cargo run --release -p redvolt-bench --bin repro -- --quick --jobs 8 all
//! ```
//!
//! With no arguments, runs everything at full settings (three boards,
//! 100 images, 10 repetitions — the paper's methodology). `--quick` runs
//! board 0 with reduced sampling. `--csv` emits CSV instead of aligned
//! text. `--jobs N` shards the shared sweep campaign across N worker
//! threads (default: available parallelism); results are byte-identical
//! for every N because each campaign cell derives its seed from the plan,
//! not the schedule. Per-cell timing goes to stderr so stdout stays
//! comparable across job counts.

use redvolt_bench::harness::{self, Settings, ALL_EXPERIMENTS, SWEEP_CACHED_EXPERIMENTS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let jobs = harness::parse_jobs(&args);
    let mut skip_next = false;
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| {
            let take = !skip_next && !a.starts_with("--");
            skip_next = *a == "--jobs";
            take
        })
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    let settings = if quick {
        Settings::quick()
    } else {
        Settings::full()
    };
    println!(
        "# redvolt reproduction of DSN-2020 'Reduced-Voltage Operation in Modern FPGAs'\n\
         # settings: boards={:?} images={} reps={} ({})\n",
        settings.boards,
        settings.images,
        settings.reps,
        if quick { "quick" } else { "full" }
    );
    // Run the shared sweep grid once, in parallel, before any consumer.
    if wanted
        .iter()
        .any(|w| SWEEP_CACHED_EXPERIMENTS.contains(&w.as_str()))
    {
        let report = harness::prefetch_sweeps(&settings, jobs);
        eprintln!("{}", report.timing_table().to_text());
    }
    for name in &wanted {
        let t0 = Instant::now();
        match harness::run_experiment(name, &settings) {
            Ok(tables) => {
                for table in tables {
                    println!("{}", if csv { table.to_csv() } else { table.to_text() });
                }
                // Timing goes to stderr: stdout must stay byte-identical
                // across runs and --jobs values (tests/determinism.rs).
                eprintln!("# {name} done in {:.1}s", t0.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: experiment {name}: {e}");
                std::process::exit(2);
            }
        }
    }
}

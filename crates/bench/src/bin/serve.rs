//! CLI for the deterministic inference-serving subsystem.
//!
//! ```text
//! cargo run --release -p redvolt-bench --bin serve -- \
//!     run --boards 3 --requests 120 --rps 40000 --seed 42 \
//!         --defense correct --router vmin --metrics-out serve.jsonl
//! cargo run --release -p redvolt-bench --bin serve -- bench --quick
//! cargo run --release -p redvolt-bench --bin serve -- bench --check BENCH_9.json
//! ```
//!
//! `run` executes one serving scenario and prints the deterministic
//! plain-text report to stdout (the golden tests and the CI smoke job
//! diff this byte-for-byte). `--metrics-out` / `--prom-out` /
//! `--trace-out` / `--flight-recorder` additionally write the JSONL,
//! Prometheus, Chrome trace-event and flight-recorder exports, which
//! share the same determinism contract: virtual-time timestamps only,
//! byte identical across reruns and `--image-jobs` values.
//! `--obs-addr HOST:PORT` then serves the final snapshot over HTTP
//! (`/metrics` byte-identical to `--prom-out`, plus `/healthz` and
//! `/trace`) until `--obs-max-requests` connections have been answered.
//!
//! `bench` compares the Vmin-aware router against the round-robin
//! baseline on the *same* seeded scenario (defense `correct`, governor
//! on, a sub-Vmin serving margin so mitigation actually fires) and
//! writes `BENCH_9.json` (schema `redvolt-bench/serve/v1`). The gated
//! quantity is **modeled energy per completed request** — a pure
//! function of `(seed, config)`, not wall clock — so the `--min-gain`
//! floor holds on any runner. The gate also requires both arms to finish
//! with zero silently corrupt responses and the Vmin arm to meet the
//! scenario's p99 SLO.

use redvolt_nn::abft::DefenseMode;
use redvolt_nn::models::ModelKind;
use redvolt_serve::fleet::CalibConfig;
use redvolt_serve::obs::{ObsServer, ObsSnapshot};
use redvolt_serve::report::ServeReport;
use redvolt_serve::router::RouterPolicy;
use redvolt_serve::sim::{self, ServeConfig};
use std::time::Instant;

/// Report schema identifier; bump on layout changes.
const SCHEMA: &str = "redvolt-bench/serve/v1";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_cmd(&args[1..]),
        Some("bench") => bench_cmd(&args[1..]),
        _ => {
            eprintln!("usage: serve <run|bench> [flags]");
            eprintln!("  run    one serving scenario; report to stdout");
            eprintln!("  bench  Vmin-aware vs round-robin routing gate");
            std::process::exit(2);
        }
    }
}

fn expect_value(it: &mut std::iter::Peekable<std::slice::Iter<String>>, flag: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("error: {flag} wants a value");
        std::process::exit(2);
    })
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants a number, got {v}");
        std::process::exit(2);
    })
}

fn parse_model(v: &str) -> ModelKind {
    match v.to_ascii_lowercase().as_str() {
        "vgg" | "vggnet" => ModelKind::VggNet,
        "googlenet" => ModelKind::GoogleNet,
        "alexnet" => ModelKind::AlexNet,
        "resnet50" => ModelKind::ResNet50,
        "inception" => ModelKind::Inception,
        _ => {
            eprintln!("error: unknown model {v} (vggnet|googlenet|alexnet|resnet50|inception)");
            std::process::exit(2);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run_cmd(args: &[String]) {
    let mut cfg = ServeConfig::smoke();
    let mut metrics_out: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut flight_out: Option<String> = None;
    let mut obs_addr: Option<String> = None;
    let mut obs_max_requests: Option<u64> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--boards" => cfg.boards = parse_num(&expect_value(&mut it, a), a),
            "--requests" => cfg.requests = parse_num(&expect_value(&mut it, a), a),
            "--rps" => cfg.rps = parse_num(&expect_value(&mut it, a), a),
            "--seed" => cfg.seed = parse_num(&expect_value(&mut it, a), a),
            "--model" => cfg.benchmark = parse_model(&expect_value(&mut it, a)),
            "--max-batch" => cfg.max_batch = parse_num(&expect_value(&mut it, a), a),
            "--batch-timeout" => {
                cfg.batch_timeout_cycles = parse_num(&expect_value(&mut it, a), a);
            }
            "--queue-depth" => cfg.queue_depth = parse_num(&expect_value(&mut it, a), a),
            "--margin-mv" => cfg.calib.margin_mv = parse_num(&expect_value(&mut it, a), a),
            "--retry-limit" => cfg.retry_limit = parse_num(&expect_value(&mut it, a), a),
            "--slo-p99" => cfg.slo_p99_cycles = parse_num(&expect_value(&mut it, a), a),
            "--burst-every" => cfg.burst_every = parse_num(&expect_value(&mut it, a), a),
            "--burst-len" => cfg.burst_len = parse_num(&expect_value(&mut it, a), a),
            "--image-jobs" => cfg.image_jobs = parse_num(&expect_value(&mut it, a), a),
            "--defense" => {
                let v = expect_value(&mut it, a);
                cfg.defense = DefenseMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: --defense wants off|detect|correct, got {v}");
                    std::process::exit(2);
                });
            }
            "--router" => {
                let v = expect_value(&mut it, a);
                cfg.router = RouterPolicy::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: --router wants vmin|rr, got {v}");
                    std::process::exit(2);
                });
            }
            "--no-governor" => cfg.governor = false,
            "--trace-capacity" => cfg.trace_capacity = parse_num(&expect_value(&mut it, a), a),
            "--metrics-out" => metrics_out = Some(expect_value(&mut it, a)),
            "--prom-out" => prom_out = Some(expect_value(&mut it, a)),
            "--trace-out" => trace_out = Some(expect_value(&mut it, a)),
            "--flight-recorder" => flight_out = Some(expect_value(&mut it, a)),
            "--obs-addr" => obs_addr = Some(expect_value(&mut it, a)),
            "--obs-max-requests" => {
                obs_max_requests = Some(parse_num(&expect_value(&mut it, a), a));
            }
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!(
                    "usage: serve run [--boards N] [--requests N] [--rps R] [--seed S] \
                     [--model NAME] [--max-batch N] [--batch-timeout CYCLES] \
                     [--queue-depth N] [--margin-mv X] [--retry-limit N] \
                     [--slo-p99 CYCLES] [--burst-every N] [--burst-len N] \
                     [--image-jobs N] [--defense off|detect|correct] [--router vmin|rr] \
                     [--no-governor] [--trace-capacity N] [--metrics-out PATH] \
                     [--prom-out PATH] [--trace-out PATH] [--flight-recorder PATH] \
                     [--obs-addr HOST:PORT] [--obs-max-requests N]"
                );
                std::process::exit(2);
            }
        }
    }

    let wall = Instant::now();
    let outcome = sim::run(&cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = ServeReport::build(&cfg, outcome);
    // Wall clock goes to stderr only; stdout stays deterministic.
    eprintln!("# served in {:.2}s wall", wall.elapsed().as_secs_f64());
    print!("{}", report.to_text());
    if let Some(path) = metrics_out {
        write_or_die(&path, &report.to_jsonl());
        eprintln!("wrote {path}");
    }
    if let Some(path) = prom_out {
        write_or_die(&path, &report.to_prometheus());
        eprintln!("wrote {path}");
    }
    if let Some(path) = trace_out {
        write_or_die(&path, &report.to_chrome_trace());
        eprintln!("wrote {path}");
    }
    if let Some(path) = flight_out {
        write_or_die(&path, &report.to_flight_jsonl());
        eprintln!("wrote {path}");
    }
    // Serve the observability snapshot *before* the SLO gate decides the
    // exit code, so a violated run can still be inspected over HTTP.
    if let Some(addr) = obs_addr {
        let server = ObsServer::bind(&addr, ObsSnapshot::of(&report)).unwrap_or_else(|e| {
            eprintln!("error: binding {addr}: {e}");
            std::process::exit(1);
        });
        let bound = server.local_addr().expect("bound socket has an address");
        eprintln!("obs: listening on http://{bound} (/metrics /healthz /trace)");
        let handled = server.serve(obs_max_requests).unwrap_or_else(|e| {
            eprintln!("error: obs server: {e}");
            std::process::exit(1);
        });
        eprintln!("obs: served {handled} requests");
    }
    if !report.slo_ok {
        eprintln!("FAIL: SLO violated (p99 or silent corruption)");
        std::process::exit(1);
    }
}

fn write_or_die(path: &str, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    });
}

/// The benchmarked scenario: a fleet served just below Vmin under load,
/// defense `correct`, governor on — the regime where boards diverge
/// (different corners, different mitigation walks) and routing policy
/// decides how much energy the fleet spends per answer.
fn bench_scenario(quick: bool, router: RouterPolicy) -> ServeConfig {
    ServeConfig {
        seed: 1909,
        boards: if quick { 4 } else { 6 },
        requests: if quick { 160 } else { 400 },
        rps: 30_000.0,
        calib: CalibConfig {
            margin_mv: -10.0,
            ..CalibConfig::default()
        },
        slo_p99_cycles: 60_000_000,
        router,
        ..ServeConfig::default()
    }
}

fn bench_cmd(args: &[String]) {
    let mut quick = false;
    let mut out_path = "BENCH_9.json".to_string();
    let mut min_gain: Option<f64> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = expect_value(&mut it, a),
            "--min-gain" => min_gain = Some(parse_num(&expect_value(&mut it, a), a)),
            "--check" => check_path = Some(expect_value(&mut it, a)),
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!(
                    "usage: serve bench [--quick] [--out PATH] [--min-gain X] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        check_report(&path);
        return;
    }

    let mut arms = Vec::new();
    for router in [RouterPolicy::VminAware, RouterPolicy::RoundRobin] {
        let cfg = bench_scenario(quick, router);
        eprintln!(
            "# serve bench: router {} ({} boards, {} requests)...",
            router.name(),
            cfg.boards,
            cfg.requests
        );
        let wall = Instant::now();
        let outcome = sim::run(&cfg).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        let wall_s = wall.elapsed().as_secs_f64();
        let report = ServeReport::build(&cfg, outcome);
        eprintln!(
            "  energy/completed {:.3} uJ, p99 {} cycles, silent {} ({wall_s:.2}s wall)",
            report.energy_per_completed_j * 1e6,
            report.p99_cycles,
            report.outcome.counters.silently_corrupt,
        );
        arms.push(report);
    }
    let vmin = &arms[0];
    let rr = &arms[1];
    let gain = rr.energy_per_completed_j / vmin.energy_per_completed_j.max(1e-18);
    eprintln!("# energy-per-inference gain (rr/vmin): x{gain:.3}");

    let json = render_report(quick, vmin, rr, gain);
    write_or_die(&out_path, &json);
    eprintln!("wrote {out_path}");

    let mut failures = Vec::new();
    if vmin.outcome.counters.silently_corrupt > 0 || rr.outcome.counters.silently_corrupt > 0 {
        failures.push("silent corruption under --defense correct".to_string());
    }
    if !vmin.slo_ok {
        failures.push(format!(
            "vmin arm violated its SLO (p99 {} > {})",
            vmin.p99_cycles, vmin.config.slo_p99_cycles
        ));
    }
    if let Some(floor) = min_gain {
        if gain < floor {
            failures.push(format!(
                "energy gain x{gain:.3} below the x{floor:.3} floor"
            ));
        } else {
            eprintln!("OK: energy gain x{gain:.3} >= x{floor:.3}");
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn arm_json(name: &str, r: &ServeReport) -> String {
    let c = &r.outcome.counters;
    format!(
        "  \"{name}\": {{\n    \"energy_per_completed_j\": {:?},\n    \"fleet_energy_j\": {:?},\n    \"completed\": {},\n    \"shed\": {},\n    \"retried\": {},\n    \"escalations\": {},\n    \"crashes\": {},\n    \"silently_corrupt\": {},\n    \"p50_cycles\": {},\n    \"p99_cycles\": {},\n    \"slo_ok\": {}\n  }}",
        r.energy_per_completed_j,
        r.fleet_energy_j,
        c.completed,
        c.shed,
        c.retried,
        c.escalations,
        c.crashes,
        c.silently_corrupt,
        r.p50_cycles,
        r.p99_cycles,
        r.slo_ok,
    )
}

fn render_report(quick: bool, vmin: &ServeReport, rr: &ServeReport, gain: f64) -> String {
    let cfg = &vmin.config;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"scenario\": {{\n    \"seed\": {},\n    \"boards\": {},\n    \"requests\": {},\n    \"rps\": {:?},\n    \"margin_mv\": {:?},\n    \"defense\": \"{}\",\n    \"governor\": {},\n    \"slo_p99_cycles\": {}\n  }},\n",
        cfg.seed,
        cfg.boards,
        cfg.requests,
        cfg.rps,
        cfg.calib.margin_mv,
        cfg.defense.name(),
        cfg.governor,
        cfg.slo_p99_cycles,
    ));
    s.push_str(&arm_json("vmin_aware", vmin));
    s.push_str(",\n");
    s.push_str(&arm_json("round_robin", rr));
    s.push_str(",\n");
    s.push_str(&format!("  \"energy_gain\": {gain:?}\n"));
    s.push_str("}\n");
    s
}

/// Structural validation of a report file: correct schema tag, both
/// arms present, zero silent corruption attested, and a positive-finite
/// energy gain.
fn check_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    let mut problems = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        problems.push(format!("missing or wrong schema tag (want {SCHEMA})"));
    }
    for key in [
        "\"quick\":",
        "\"scenario\":",
        "\"vmin_aware\":",
        "\"round_robin\":",
        "\"energy_per_completed_j\":",
        "\"p99_cycles\":",
        "\"energy_gain\":",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    if text.contains("\"silently_corrupt\": 0") {
        // Both arms must attest zero; two occurrences expected.
        if text.matches("\"silently_corrupt\": 0").count() < 2 {
            problems.push("an arm reports silent corruption".to_string());
        }
    } else {
        problems.push("silently_corrupt attestations missing or nonzero".to_string());
    }
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("\"energy_gain\":") {
            let v: f64 = rest
                .trim()
                .trim_end_matches(',')
                .parse()
                .unwrap_or(f64::NAN);
            if !v.is_finite() || v <= 0.0 {
                problems.push(format!("energy_gain not positive-finite: {v}"));
            }
        }
    }
    if problems.is_empty() {
        eprintln!("OK: {path} conforms to {SCHEMA}");
    } else {
        for p in &problems {
            eprintln!("FAIL: {p}");
        }
        std::process::exit(1);
    }
}

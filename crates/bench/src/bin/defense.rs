//! ABFT defense overhead baseline.
//!
//! ```text
//! cargo run --release -p redvolt-bench --bin defense -- --quick
//! cargo run --release -p redvolt-bench --bin defense -- --out BENCH_7.json
//! cargo run --release -p redvolt-bench --bin defense -- --quick --max-overhead 0.25
//! cargo run --release -p redvolt-bench --bin defense -- --check BENCH_7.json
//! ```
//!
//! Times end-to-end quantized inference over the paper's benchmark
//! models with the ABFT defense (`redvolt_nn::abft`) off, in `detect`
//! mode and in `correct` mode, on the clean (fault-free) path — the
//! steady-state cost a defended campaign pays at every healthy operating
//! point. All three arms classify every image identically (`off` is
//! bit-identical by construction; checksums never alter clean results),
//! so the comparison is pure throughput.
//!
//! The workload is fully deterministic (fixed seeds, fixed iteration
//! counts); only the wall-clock timings vary run to run. Results go to
//! a JSON report (schema `redvolt-bench/defense/v1`, default
//! `BENCH_7.json`). `--max-overhead X` exits non-zero if any arm's
//! fractional slowdown over the undefended baseline exceeds `X` — the
//! CI gate for the issue's <= 25 % overhead budget. `--check PATH`
//! validates an existing report against the schema instead of
//! benchmarking.

use redvolt_nn::abft::DefensePolicy;
use redvolt_nn::dataset::SyntheticDataset;
use redvolt_nn::models::{ModelKind, ModelScale};
use redvolt_nn::quant::QuantizedGraph;
use redvolt_nn::tensor::Tensor;
use std::hint::black_box;
use std::time::Instant;

/// Report schema identifier; bump on layout changes.
const SCHEMA: &str = "redvolt-bench/defense/v1";

struct DefenseResult {
    benchmark: &'static str,
    bits: u32,
    images: usize,
    off_images_per_s: f64,
    detect_images_per_s: f64,
    correct_images_per_s: f64,
}

impl DefenseResult {
    fn detect_overhead(&self) -> f64 {
        self.off_images_per_s / self.detect_images_per_s - 1.0
    }

    fn correct_overhead(&self) -> f64 {
        self.off_images_per_s / self.correct_images_per_s - 1.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut out_path = "BENCH_7.json".to_string();
    let mut max_overhead: Option<f64> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--out" => out_path = expect_value(&mut it, "--out"),
            "--max-overhead" => {
                let v = expect_value(&mut it, "--max-overhead");
                max_overhead = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --max-overhead wants a number, got {v}");
                    std::process::exit(2);
                }));
            }
            "--check" => check_path = Some(expect_value(&mut it, "--check")),
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!(
                    "usage: defense [--quick] [--out PATH] [--max-overhead X] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        check_report(&path);
        return;
    }

    let models: &[ModelKind] = if quick {
        &[ModelKind::VggNet]
    } else {
        &ModelKind::ALL
    };
    let images = if quick { 12 } else { 40 };
    eprintln!("# ABFT defense overhead, clean path ({images} images/arm)");
    let results: Vec<DefenseResult> = models.iter().map(|&m| bench_model(m, images)).collect();
    let mut worst = 0.0f64;
    for r in &results {
        worst = worst.max(r.detect_overhead()).max(r.correct_overhead());
        eprintln!(
            "  {:<10} INT{} off {:>8.1} img/s  detect {:>8.1} img/s (+{:.1}%)  \
             correct {:>8.1} img/s (+{:.1}%)",
            r.benchmark,
            r.bits,
            r.off_images_per_s,
            r.detect_images_per_s,
            r.detect_overhead() * 100.0,
            r.correct_images_per_s,
            r.correct_overhead() * 100.0,
        );
    }

    let json = render_report(quick, &results);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");

    if let Some(budget) = max_overhead {
        if worst > budget {
            eprintln!(
                "FAIL: worst defense overhead +{:.1}% exceeds the {:.1}% budget",
                worst * 100.0,
                budget * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "OK: worst defense overhead +{:.1}% <= {:.1}%",
            worst * 100.0,
            budget * 100.0
        );
    }
}

fn expect_value(it: &mut std::iter::Peekable<std::slice::Iter<String>>, flag: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("error: {flag} wants a value");
        std::process::exit(2);
    })
}

fn bench_model(kind: ModelKind, images: usize) -> DefenseResult {
    let graph = kind.build(ModelScale::Paper).fold_batch_norms();
    let in_shape = graph.input_shape();
    let classes = graph.num_classes();
    let ds = SyntheticDataset::new(in_shape.h, in_shape.w, in_shape.c, classes, 42);
    let mut q = QuantizedGraph::quantize(&graph, 8, &ds.images(4)).expect("quantize");
    let batch: Vec<Tensor> = (0..images).map(|i| ds.image(i).0).collect();

    let arms = [
        DefensePolicy::off(),
        DefensePolicy::detect(),
        DefensePolicy::correct(),
    ];
    // Warm every arm (arena growth, cache residency) and verify they
    // agree on the clean path before timing any of them.
    let mut preds: Vec<Vec<usize>> = Vec::new();
    for policy in arms {
        q.set_defense(policy);
        preds.push(
            batch
                .iter()
                .map(|im| q.predict(im).expect("predict"))
                .collect(),
        );
    }
    assert_eq!(preds[0], preds[1], "detect arm diverged on {kind:?}");
    assert_eq!(preds[0], preds[2], "correct arm diverged on {kind:?}");

    // Interleave the arms across repetitions and keep per-arm medians,
    // so clock drift and scheduler noise hit all three arms alike.
    const REPS: usize = 7;
    let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..REPS {
        for (arm, policy) in samples.iter_mut().zip(arms) {
            q.set_defense(policy);
            let t = Instant::now();
            for im in &batch {
                black_box(q.predict(im).expect("predict"));
            }
            arm.push(images as f64 / t.elapsed().as_secs_f64());
        }
    }
    let mut rates = [0.0f64; 3];
    for (rate, arm) in rates.iter_mut().zip(samples.iter_mut()) {
        arm.sort_by(f64::total_cmp);
        *rate = arm[arm.len() / 2];
    }
    q.set_defense(DefensePolicy::off());
    q.take_defense_stats();

    DefenseResult {
        benchmark: kind.name(),
        bits: q.bits(),
        images,
        off_images_per_s: rates[0],
        detect_images_per_s: rates[1],
        correct_images_per_s: rates[2],
    }
}

fn render_report(quick: bool, results: &[DefenseResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"models\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"bits\": {}, \"images\": {}, \
             \"off_images_per_s\": {:.2}, \"detect_images_per_s\": {:.2}, \
             \"correct_images_per_s\": {:.2}, \"detect_overhead\": {:.3}, \
             \"correct_overhead\": {:.3}}}{}\n",
            r.benchmark,
            r.bits,
            r.images,
            r.off_images_per_s,
            r.detect_images_per_s,
            r.correct_images_per_s,
            r.detect_overhead(),
            r.correct_overhead(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let worst = results
        .iter()
        .map(|r| r.detect_overhead().max(r.correct_overhead()))
        .fold(0.0f64, f64::max);
    s.push_str(&format!("  \"worst_overhead\": {worst:.3}\n"));
    s.push_str("}\n");
    s
}

/// Structural validation of a report file: correct schema tag, at least
/// one model entry, every required key present, and a finite
/// `worst_overhead` below 1.0 (a doubling would mean the defense is
/// mis-integrated, not merely slow).
fn check_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    let mut problems = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        problems.push(format!("missing or wrong schema tag (want {SCHEMA})"));
    }
    for key in [
        "\"quick\":",
        "\"models\":",
        "\"off_images_per_s\":",
        "\"detect_images_per_s\":",
        "\"correct_images_per_s\":",
        "\"detect_overhead\":",
        "\"correct_overhead\":",
        "\"worst_overhead\":",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("\"worst_overhead\":") {
            let v: f64 = rest
                .trim()
                .trim_end_matches(',')
                .parse()
                .unwrap_or(f64::NAN);
            if !v.is_finite() || v >= 1.0 {
                problems.push(format!("worst_overhead not finite below 1.0: {v}"));
            }
        }
    }
    if problems.is_empty() {
        eprintln!("OK: {path} conforms to {SCHEMA}");
    } else {
        for p in &problems {
            eprintln!("FAIL: {p}");
        }
        std::process::exit(1);
    }
}

//! Re-derives the fitted calibration constants from the paper's anchors
//! and checks them against `redvolt_fpga::calib`.
//!
//! The board model's free parameters were fitted once against the numbers
//! printed in the paper; this tool repeats the fit so the provenance of
//! every hard-coded constant can be audited:
//!
//! ```text
//! cargo run --release -p redvolt-bench --bin calibrate -- --jobs 3
//! ```
//!
//! `--jobs N` shards the per-board-sample searches across worker threads
//! (default: available parallelism). The checks are deterministic, so the
//! report is identical for every N.
//!
//! `--journal PATH` write-ahead-journals each per-board Vmin/Vcrash
//! search as it completes; `--resume` skips the journaled boards on a
//! rerun. The fits themselves are cheap closed-form checks and always
//! rerun.
//!
//! `--metrics-out PATH` / `--prom-out PATH` export the calibration run's
//! telemetry (check and miss counters, per-board Vmin/Vcrash gauges);
//! `--progress SECS` reports the board searches live on stderr.
//!
//! The full campaign flag set — including `--defense`, `--governor` and
//! `--image-jobs` — parses here for parity with `repro`, but those flags
//! have no effect on this binary: the calibration searches query the
//! timing and power models directly and never execute kernels, so there
//! is nothing for ABFT, the governor or image sharding to act on.

use redvolt_bench::harness::CampaignOptions;
use redvolt_core::executor::run_indexed;
use redvolt_core::journal::{read_journal, JournalEntry, JournalWriter};
use redvolt_core::telemetry::CampaignTelemetry;
use redvolt_fpga::calib;
use redvolt_fpga::power::{LoadProfile, PowerModel};
use redvolt_fpga::timing::TimingModel;
use redvolt_fpga::variation::BoardCorner;
use redvolt_telemetry::{Registry, SpanRing};

fn check(reg: &Registry, name: &str, got: f64, want: f64, tol: f64) -> bool {
    let ok = (got - want).abs() <= tol;
    reg.counter("calibrate_checks_total", &[]).inc();
    if !ok {
        reg.counter("calibrate_checks_missed_total", &[]).inc();
    }
    println!(
        "  [{}] {name}: got {got:.4}, target {want:.4} (tol {tol})",
        if ok { "ok" } else { "MISS" }
    );
    ok
}

/// Journal header meta for the per-board searches: any change to the
/// search grid invalidates old journals.
const JOURNAL_META: &str = "tool=calibrate boards=3 grid=5mv";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match CampaignOptions::from_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let jobs = opts.jobs;
    let reg = Registry::new();
    let mut all_ok = true;
    println!("== Leakage temperature coefficient ==");
    // Paper §7.1: power rises 0.46% over 34->52 C at 850 mV. With the
    // fitted leakage share, solve share*(e^{18c}-1) = 0.0046 for c.
    let leak_nom = calib::LEAK_ANCHORS_MV_W.last().unwrap().1;
    let share = leak_nom / calib::P_ONCHIP_NOM_W;
    let c = ((0.0046 / share) + 1.0f64).ln() / 18.0;
    all_ok &= check(
        &reg,
        "LEAK_TEMP_PER_C (analytic)",
        c,
        calib::LEAK_TEMP_PER_C,
        5e-4,
    );
    // Numerically, as a one-dimensional least-squares fit against both
    // temperature anchors (0.46% @850mV, 0.15% @650mV) simultaneously.
    let pm_probe = PowerModel::default();
    let leak650 = pm_probe.leakage_w(650.0, calib::T_REF_C);
    let p650 = pm_probe.vccint_w(650.0, calib::T_REF_C, &LoadProfile::nominal());
    let objective = |cand: f64| {
        let rise = |leak: f64, total: f64| leak / total * ((cand * 18.0f64).exp() - 1.0);
        let e850 = rise(leak_nom, calib::P_ONCHIP_NOM_W) - 0.0046;
        let e650 = rise(leak650, p650) - 0.0015;
        e850 * e850 + e650 * e650
    };
    let c_fit = redvolt_num::fit::golden_section_min(objective, 1e-4, 2e-2, 1e-8);
    all_ok &= check(
        &reg,
        "LEAK_TEMP_PER_C (refit)",
        c_fit,
        calib::LEAK_TEMP_PER_C,
        1e-3,
    );

    println!("== Power scaling anchors (Fig 5 / Table 2) ==");
    let pm = PowerModel::default();
    let t = calib::T_REF_C;
    let nom = pm.vccint_w(850.0, t, &LoadProfile::nominal());
    let vmin = pm.vccint_w(570.0, t, &LoadProfile::nominal());
    let crash = pm.vccint_w(540.0, t, &LoadProfile::nominal());
    all_ok &= check(&reg, "gain at Vmin (paper 2.6x)", nom / vmin, 2.6, 0.05);
    all_ok &= check(&reg, "gain at Vcrash (paper >3x)", nom / crash, 3.6, 0.3);
    let table2 = [
        (565.0, 300.0, 0.94, 0.97),
        (560.0, 250.0, 0.83, 0.84),
        (555.0, 250.0, 0.83, 0.78),
        (550.0, 250.0, 0.83, 0.75),
        (545.0, 250.0, 0.83, 0.74),
        (540.0, 200.0, 0.70, 0.56),
    ];
    for (mv, f, gops, p_norm) in table2 {
        let p = pm.vccint_w(
            mv,
            t,
            &LoadProfile {
                f_mhz: f,
                ops_rate_norm: gops,
                energy_per_op_factor: 1.0,
                critical_path_factor: 1.0,
            },
        ) / vmin;
        all_ok &= check(
            &reg,
            &format!("Table2 power norm @{mv:.0}mV"),
            p,
            p_norm,
            0.06,
        );
    }

    println!("== Fmax surface quantizes to Table 2 ==");
    let tm = TimingModel::default();
    let grid_fmax = |mv: f64| -> f64 {
        let true_fmax = tm.fmax_true_mhz(mv, t);
        if true_fmax >= 333.0 {
            return 333.0;
        }
        (true_fmax / 25.0).floor() * 25.0
    };
    for (mv, want) in [
        (570.0, 333.0),
        (565.0, 300.0),
        (560.0, 250.0),
        (555.0, 250.0),
        (550.0, 250.0),
        (545.0, 250.0),
        (540.0, 200.0),
    ] {
        all_ok &= check(
            &reg,
            &format!("Fmax grid @{mv:.0}mV"),
            grid_fmax(mv),
            want,
            0.0,
        );
    }

    println!("== Process-variation spreads (paper: dVmin 31mV, dVcrash 18mV) ==");
    let vmin_of = |sample: u32| -> f64 {
        let tm = TimingModel::new(BoardCorner::for_sample(sample));
        let mut v = 850.0;
        while tm.slack_deficit(v - 5.0, calib::F_NOM_MHZ, t) == 0.0 {
            v -= 5.0;
        }
        v
    };
    let vcrash_of = |sample: u32| -> f64 {
        let tm = TimingModel::new(BoardCorner::for_sample(sample));
        tm.crash_voltage_mv(
            calib::F_NOM_MHZ,
            t,
            calib::CRASH_SLACK_RATIO,
            480.0,
            850.0,
            5.0,
        )
        .map(|v| v + 5.0)
        .unwrap_or(f64::NAN)
    };
    // Board samples are independent — shard them across workers exactly
    // like campaign cells; the merge below restores sample order whether
    // a value came from the journal or a fresh search.
    let journaled = match &opts.journal {
        Some(path) if opts.resume => match read_journal(path, JOURNAL_META) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("error: journal {}: {e}", path.display());
                std::process::exit(2);
            }
        },
        _ => Default::default(),
    };
    let mut writer = opts.journal.as_ref().map(|path| {
        let opened = if opts.resume && path.exists() {
            JournalWriter::append_to(path)
        } else {
            JournalWriter::create(path, JOURNAL_META)
        };
        opened.unwrap_or_else(|e| {
            eprintln!("error: journal {}: {e}", path.display());
            std::process::exit(2);
        })
    });
    let pending: Vec<usize> = (0..3).filter(|i| !journaled.contains_key(i)).collect();
    let progress = opts.progress_reporter(pending.len());
    let fresh: Vec<(usize, f64, f64)> = run_indexed(pending.len(), jobs, |k, _worker| {
        let sample = pending[k];
        let found = (sample, vmin_of(sample as u32), vcrash_of(sample as u32));
        if let Some(p) = &progress {
            p.cell_done(false, 0, 0);
        }
        found
    });
    if let Some(p) = &progress {
        p.finish();
    }
    if let Some(w) = writer.as_mut() {
        for &(sample, vmin, vcrash) in &fresh {
            let entry = JournalEntry {
                index: sample,
                attempts: 1,
                payload: format!("vmin={vmin:?} vcrash={vcrash:?}"),
            };
            if let Err(e) = w.append(&entry) {
                eprintln!("error: journal write: {e}");
                std::process::exit(2);
            }
        }
    }
    let mut vmins = vec![f64::NAN; 3];
    let mut vcrashes = vec![f64::NAN; 3];
    for (&sample, entry) in journaled.iter().filter(|(&sample, _)| sample < 3) {
        for field in entry.payload.split_whitespace() {
            if let Some(v) = field.strip_prefix("vmin=") {
                vmins[sample] = v.parse().unwrap_or(f64::NAN);
            } else if let Some(v) = field.strip_prefix("vcrash=") {
                vcrashes[sample] = v.parse().unwrap_or(f64::NAN);
            }
        }
    }
    if !journaled.is_empty() {
        // stderr, so stdout stays byte-comparable with a straight run.
        eprintln!("# resumed {} journaled board samples", journaled.len());
    }
    for (sample, vmin, vcrash) in fresh {
        vmins[sample] = vmin;
        vcrashes[sample] = vcrash;
    }
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    println!("  Vmin per board:   {vmins:?}");
    println!("  Vcrash per board: {vcrashes:?}");
    all_ok &= check(&reg, "dVmin", spread(&vmins), 31.0, 10.0);
    all_ok &= check(&reg, "dVcrash", spread(&vcrashes), 18.0, 8.0);
    all_ok &= check(
        &reg,
        "mean Vmin",
        vmins.iter().sum::<f64>() / 3.0,
        570.0,
        7.0,
    );

    println!("== Temperature sensitivity of power (Fig 9) ==");
    let rel = |v: f64| {
        let cold = pm.vccint_w(v, 34.0, &LoadProfile::nominal());
        let hot = pm.vccint_w(v, 52.0, &LoadProfile::nominal());
        (hot - cold) / cold
    };
    all_ok &= check(&reg, "rise @850mV (paper 0.46%)", rel(850.0), 0.0046, 0.001);
    all_ok &= check(&reg, "rise @650mV (paper 0.15%)", rel(650.0), 0.0015, 0.001);

    // Per-board search results as gauges, alongside the check counters.
    for sample in 0..3usize {
        let board = sample.to_string();
        reg.gauge("calibrate_vmin_mv", &[("board", &board)])
            .set(vmins[sample]);
        reg.gauge("calibrate_vcrash_mv", &[("board", &board)])
            .set(vcrashes[sample]);
    }
    let telem = CampaignTelemetry {
        registry: reg,
        spans: SpanRing::new(),
    };
    if let Err(e) = opts.export_telemetry(&telem) {
        eprintln!("error: telemetry export: {e}");
        std::process::exit(2);
    }

    if all_ok {
        println!("\nall calibration constants verified against paper anchors");
    } else {
        println!("\nCALIBRATION DRIFT DETECTED — see MISS lines above");
        std::process::exit(1);
    }
}

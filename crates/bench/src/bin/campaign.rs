//! Campaign throughput benchmark for the two-level scheduler.
//!
//! ```text
//! cargo run --release -p redvolt-bench --bin campaign -- --quick
//! cargo run --release -p redvolt-bench --bin campaign -- --out BENCH_8.json
//! cargo run --release -p redvolt-bench --bin campaign -- --quick --min-speedup 2.0
//! cargo run --release -p redvolt-bench --bin campaign -- --quick --check BENCH_8.json
//! ```
//!
//! Runs one small sweep campaign — deliberately *fewer cells than
//! workers*, the regime the cell-level-only executor wasted — through
//! two arms:
//!
//! * **serial** — `run_sharded(1, 1)`: one worker, sequential batches.
//! * **sharded** — `run_sharded(0, 0)`: auto cell workers plus auto
//!   image shards (the two-level engine).
//!
//! Both arms must produce byte-identical payloads (checked here, exit 1
//! on divergence — that is the engine's core invariant). Wall-clock for
//! both arms is recorded honestly, but the `--min-speedup` gate applies
//! to a **deterministic scheduler model**, not to wall-clock: CI runners
//! (and this development host) may expose a single hardware thread,
//! where a measured campaign speedup is unobservable no matter how good
//! the engine is. The model replays the measured per-cell simulated
//! cycle costs through the exact two-level split the engine uses at a
//! fixed modeled worker count (`--workers`, default 16):
//!
//! * serial makespan — the sum of per-cell cycles;
//! * cell-level makespan — an LPT list-schedule of whole cells over
//!   `min(workers, cells)` workers (what the old engine could do);
//! * two-level makespan — the same schedule with every cell's duration
//!   scaled by `ceil(I/image_jobs) / I` (each batch of `I` images shards
//!   across the cell's surplus workers; batches stay sequential).
//!
//! Every input to the model is a pure function of `(seed, plan)`, so the
//! gated speedup is identical on any runner. Results go to a JSON report
//! (schema `redvolt-bench/campaign/v1`, default `BENCH_8.json`).
//! `--check PATH` validates an existing report instead of benchmarking.

use redvolt_core::bench_suite::BenchmarkId;
use redvolt_core::executor::{CampaignPlan, CampaignReport};
use redvolt_core::experiment::AcceleratorConfig;
use redvolt_core::sweep::SweepConfig;
use std::time::Instant;

/// Report schema identifier; bump on layout changes.
const SCHEMA: &str = "redvolt-bench/campaign/v1";

/// Modeled worker count the gate evaluates at (override with `--workers`).
const DEFAULT_WORKERS: usize = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut out_path = "BENCH_8.json".to_string();
    let mut min_speedup: Option<f64> = None;
    let mut check_path: Option<String> = None;
    let mut workers = DEFAULT_WORKERS;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--out" => out_path = expect_value(&mut it, "--out"),
            "--min-speedup" => {
                let v = expect_value(&mut it, "--min-speedup");
                min_speedup = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --min-speedup wants a number, got {v}");
                    std::process::exit(2);
                }));
            }
            "--workers" => {
                let v = expect_value(&mut it, "--workers");
                workers = v.parse().ok().filter(|&w| w >= 1).unwrap_or_else(|| {
                    eprintln!("error: --workers wants a positive integer, got {v}");
                    std::process::exit(2);
                });
            }
            "--check" => check_path = Some(expect_value(&mut it, "--check")),
            other => {
                eprintln!("error: unknown flag {other}");
                eprintln!(
                    "usage: campaign [--quick] [--out PATH] [--workers N] \
                     [--min-speedup X] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        check_report(&path);
        return;
    }

    let (plan, images) = bench_plan(quick);
    let cells = plan.len();
    eprintln!(
        "# campaign benchmark: {cells} cells, {images} images/batch, {workers} modeled workers"
    );

    // Untimed warm-up: populates the process-wide workload cache so both
    // timed arms measure campaign execution, not one-off preparation.
    eprintln!("  warm-up pass...");
    plan.run_sharded(0, 0).expect("warm-up campaign");

    eprintln!("  serial arm (jobs=1, image-jobs=1)...");
    let t = Instant::now();
    let serial = plan.run_sharded(1, 1).expect("serial campaign");
    let serial_wall_s = t.elapsed().as_secs_f64();

    eprintln!("  sharded arm (jobs=auto, image-jobs=auto)...");
    let t = Instant::now();
    let sharded = plan.run_sharded(0, 0).expect("sharded campaign");
    let sharded_wall_s = t.elapsed().as_secs_f64();

    let payload_identical = serial.to_csv() == sharded.to_csv();
    if !payload_identical {
        eprintln!("FAIL: sharded payload diverged from the serial payload");
        std::process::exit(1);
    }

    let model = model_speedups(&serial, images, workers);
    eprintln!(
        "  measured: serial {serial_wall_s:.2}s, sharded {sharded_wall_s:.2}s \
         (x{:.2} on {} host threads)",
        serial_wall_s / sharded_wall_s.max(1e-9),
        host_threads(),
    );
    eprintln!(
        "  modeled @{} workers: cell-level x{:.2}, two-level x{:.2}",
        workers, model.cell_level_speedup, model.campaign_speedup
    );

    let json = render_report(
        quick,
        workers,
        cells,
        images,
        serial_wall_s,
        sharded_wall_s,
        &model,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");

    if let Some(floor) = min_speedup {
        if model.campaign_speedup < floor {
            eprintln!(
                "FAIL: modeled campaign speedup x{:.2} is below the x{floor:.2} floor",
                model.campaign_speedup
            );
            std::process::exit(1);
        }
        eprintln!(
            "OK: modeled campaign speedup x{:.2} >= x{floor:.2}",
            model.campaign_speedup
        );
    }
}

fn expect_value(it: &mut std::iter::Peekable<std::slice::Iter<String>>, flag: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("error: {flag} wants a value");
        std::process::exit(2);
    })
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The benchmarked campaign: a sweep over a handful of cells, each with
/// large image batches — fewer cells than modeled workers, so the old
/// cell-level-only executor would idle most of the pool.
fn bench_plan(quick: bool) -> (CampaignPlan, usize) {
    let benchmarks: &[BenchmarkId] = if quick {
        &[BenchmarkId::VggNet, BenchmarkId::AlexNet]
    } else {
        &[
            BenchmarkId::VggNet,
            BenchmarkId::AlexNet,
            BenchmarkId::GoogleNet,
        ]
    };
    let images = if quick { 16 } else { 32 };
    let base = AcceleratorConfig {
        eval_images: images,
        repetitions: 1,
        ..AcceleratorConfig::tiny(BenchmarkId::VggNet)
    };
    let sweep = SweepConfig {
        start_mv: 620.0,
        stop_mv: if quick { 580.0 } else { 560.0 },
        step_mv: 20.0,
        images,
    };
    (
        CampaignPlan::sweep_grid(1908, benchmarks, &[0], base, sweep),
        images,
    )
}

struct Model {
    serial_cycles: u64,
    cell_level_makespan: f64,
    two_level_makespan: f64,
    cell_level_speedup: f64,
    campaign_speedup: f64,
}

/// Replays the measured per-cell simulated-cycle costs through the
/// two-level split at `workers` modeled workers. Each cell's batches all
/// hold `images` images, so sharding a cell across `image_jobs` workers
/// scales its duration by exactly `ceil(images/image_jobs) / images`
/// (batches stay sequential; images within a batch spread out).
fn model_speedups(report: &CampaignReport, images: usize, workers: usize) -> Model {
    let costs: Vec<u64> = report.results.iter().map(|r| r.telemetry.cycles).collect();
    let serial_cycles: u64 = costs.iter().sum();
    let cells = costs.len().max(1);
    let cell_jobs = workers.min(cells).max(1);
    let image_jobs = (workers / cell_jobs).max(1);
    let shard_factor = images.div_ceil(image_jobs) as f64 / images.max(1) as f64;

    let cell_level_makespan = lpt_makespan(
        &costs.iter().map(|&c| c as f64).collect::<Vec<_>>(),
        cell_jobs,
    );
    let two_level_makespan = lpt_makespan(
        &costs
            .iter()
            .map(|&c| c as f64 * shard_factor)
            .collect::<Vec<_>>(),
        cell_jobs,
    );
    Model {
        serial_cycles,
        cell_level_makespan,
        two_level_makespan,
        cell_level_speedup: serial_cycles as f64 / cell_level_makespan.max(1e-9),
        campaign_speedup: serial_cycles as f64 / two_level_makespan.max(1e-9),
    }
}

/// Longest-processing-time list schedule: sort tasks by duration
/// (descending, index-stable), greedily assign each to the least-loaded
/// worker, return the maximum load. Deterministic for fixed inputs.
fn lpt_makespan(durations: &[f64], workers: usize) -> f64 {
    let mut order: Vec<usize> = (0..durations.len()).collect();
    order.sort_by(|&a, &b| durations[b].total_cmp(&durations[a]).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; workers.max(1)];
    for &i in &order {
        let min = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(k, _)| k)
            .expect("at least one worker");
        loads[min] += durations[i];
    }
    loads.iter().fold(0.0f64, |a, &b| a.max(b))
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    quick: bool,
    workers: usize,
    cells: usize,
    images: usize,
    serial_wall_s: f64,
    sharded_wall_s: f64,
    model: &Model,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"workers\": {workers},\n"));
    s.push_str(&format!("  \"cells\": {cells},\n"));
    s.push_str(&format!("  \"images_per_batch\": {images},\n"));
    s.push_str("  \"payload_identical\": true,\n");
    s.push_str("  \"measured\": {\n");
    s.push_str(&format!(
        "    \"host_threads\": {},\n    \"serial_wall_s\": {:.3},\n    \"sharded_wall_s\": {:.3},\n    \"wall_speedup\": {:.3}\n",
        host_threads(),
        serial_wall_s,
        sharded_wall_s,
        serial_wall_s / sharded_wall_s.max(1e-9)
    ));
    s.push_str("  },\n");
    s.push_str("  \"modeled\": {\n");
    s.push_str(&format!(
        "    \"serial_cycles\": {},\n    \"cell_level_makespan_cycles\": {:.0},\n    \"two_level_makespan_cycles\": {:.0},\n    \"cell_level_speedup\": {:.3},\n    \"campaign_speedup\": {:.3}\n",
        model.serial_cycles,
        model.cell_level_makespan,
        model.two_level_makespan,
        model.cell_level_speedup,
        model.campaign_speedup
    ));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"modeled_campaign_speedup\": {:.3}\n",
        model.campaign_speedup
    ));
    s.push_str("}\n");
    s
}

/// Structural validation of a report file: correct schema tag, every
/// required key present, byte-identical payloads attested, and a
/// positive-finite modeled campaign speedup.
fn check_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    let mut problems = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        problems.push(format!("missing or wrong schema tag (want {SCHEMA})"));
    }
    if !text.contains("\"payload_identical\": true") {
        problems.push("payload_identical is not true".to_string());
    }
    for key in [
        "\"quick\":",
        "\"workers\":",
        "\"cells\":",
        "\"images_per_batch\":",
        "\"measured\":",
        "\"serial_wall_s\":",
        "\"sharded_wall_s\":",
        "\"wall_speedup\":",
        "\"modeled\":",
        "\"serial_cycles\":",
        "\"cell_level_speedup\":",
        "\"campaign_speedup\":",
        "\"modeled_campaign_speedup\":",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("\"modeled_campaign_speedup\":") {
            let v: f64 = rest
                .trim()
                .trim_end_matches(',')
                .parse()
                .unwrap_or(f64::NAN);
            if !v.is_finite() || v <= 0.0 {
                problems.push(format!("modeled_campaign_speedup not positive-finite: {v}"));
            }
        }
    }
    if problems.is_empty() {
        eprintln!("OK: {path} conforms to {SCHEMA}");
    } else {
        for p in &problems {
            eprintln!("FAIL: {p}");
        }
        std::process::exit(1);
    }
}

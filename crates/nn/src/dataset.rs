//! Synthetic datasets with accuracy calibration.
//!
//! The paper evaluates on CIFAR-10, Kaggle Dogs-vs-Cats and ILSVRC2012 —
//! datasets we substitute with synthetic class-conditional images (smooth
//! class prototypes plus noise). Ground-truth labels are *calibrated*: each
//! evaluation image's label equals the clean INT8 model's prediction for a
//! fixed fraction of the set (exactly the paper's "our design @Vnom"
//! accuracy) and a different class for the rest. This pins the
//! nominal-voltage accuracy of Table 1 by construction while keeping every
//! *degraded* accuracy number an emergent result of faulty arithmetic: a
//! fault-flipped prediction almost surely leaves the matching label.

use crate::graph::GraphError;
use crate::quant::QuantizedGraph;
use crate::tensor::Tensor;
use redvolt_num::rng::Xoshiro256StarStar;

/// A deterministic generator of synthetic class-conditional images.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    h: usize,
    w: usize,
    c: usize,
    classes: usize,
    seed: u64,
    prototypes: Vec<Vec<f32>>,
}

impl SyntheticDataset {
    /// Creates a dataset of `classes` smooth prototypes of shape `(h,w,c)`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or the shape is empty.
    pub fn new(h: usize, w: usize, c: usize, classes: usize, seed: u64) -> Self {
        assert!(classes > 0 && h * w * c > 0, "degenerate dataset");
        let root = Xoshiro256StarStar::seed_from(seed);
        let prototypes = (0..classes)
            .map(|k| {
                let mut rng = root.substream(k as u64 + 1);
                // Smooth pattern: sum of a few random low-frequency waves.
                let waves: Vec<(f64, f64, f64, f64)> = (0..6)
                    .map(|_| {
                        (
                            rng.next_range(0.1, 0.9),
                            rng.next_range(0.1, 0.9),
                            rng.next_range(0.0, std::f64::consts::TAU),
                            rng.next_range(0.4, 1.0),
                        )
                    })
                    .collect();
                let mut data = Vec::with_capacity(h * w * c);
                for y in 0..h {
                    for x in 0..w {
                        for ch in 0..c {
                            let mut v = 0.0;
                            for (fy, fx, phase, amp) in &waves {
                                v += amp
                                    * (fy * y as f64 + fx * x as f64 + phase + ch as f64 * 1.7)
                                        .sin();
                            }
                            data.push((v / 3.0) as f32);
                        }
                    }
                }
                data
            })
            .collect();
        SyntheticDataset {
            h,
            w,
            c,
            classes,
            seed,
            prototypes,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Generates image `index` deterministically: a prototype blended with
    /// seeded noise. Returns the image and its generating class.
    pub fn image(&self, index: usize) -> (Tensor, usize) {
        let mut rng = Xoshiro256StarStar::seed_from(self.seed ^ 0xDA7A).substream(index as u64);
        let class = rng.next_index(self.classes);
        let blend = rng.next_range(0.55, 0.8) as f32;
        let proto = &self.prototypes[class];
        let data: Vec<f32> = proto
            .iter()
            .map(|&p| blend * p + (1.0 - blend) * rng.next_gaussian(0.0, 0.5) as f32)
            .collect();
        (Tensor::from_vec(self.h, self.w, self.c, data), class)
    }

    /// Generates the first `n` images.
    pub fn images(&self, n: usize) -> Vec<Tensor> {
        (0..n).map(|i| self.image(i).0).collect()
    }
}

/// A labelled evaluation set with calibrated nominal accuracy.
#[derive(Debug, Clone)]
pub struct EvalSet {
    /// Evaluation images.
    pub images: Vec<Tensor>,
    /// Calibrated ground-truth labels.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl EvalSet {
    /// Builds an evaluation set of `n` images whose labels give the clean
    /// `reference` model an accuracy of exactly `round(target_accuracy·n)/n`.
    ///
    /// Exactly that many images (chosen by a seeded shuffle) keep the
    /// reference prediction as their label; the rest get a different,
    /// seeded-random class.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from reference inference.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `target_accuracy` is outside `[0, 1]`, or the
    /// dataset has a single class (no "different class" exists).
    pub fn calibrated(
        reference: &mut QuantizedGraph,
        dataset: &SyntheticDataset,
        n: usize,
        target_accuracy: f64,
        seed: u64,
    ) -> Result<Self, GraphError> {
        assert!(n > 0, "empty evaluation set");
        assert!((0.0..=1.0).contains(&target_accuracy), "bad target");
        assert!(dataset.classes() > 1, "need at least two classes");
        let images = dataset.images(n);
        let preds: Vec<usize> = images
            .iter()
            .map(|img| reference.predict(img))
            .collect::<Result<_, _>>()?;
        let keep = (target_accuracy * n as f64).round() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Xoshiro256StarStar::seed_from(seed ^ 0x1ABE1);
        rng.shuffle(&mut order);
        let mut labels = vec![0usize; n];
        for (rank, &i) in order.iter().enumerate() {
            if rank < keep {
                labels[i] = preds[i];
            } else {
                // A different class, uniformly among the others.
                let mut wrong = rng.next_index(dataset.classes() - 1);
                if wrong >= preds[i] {
                    wrong += 1;
                }
                labels[i] = wrong;
            }
        }
        Ok(EvalSet {
            images,
            labels,
            classes: dataset.classes(),
        })
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Accuracy of `predictions` against the calibrated labels.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn accuracy(&self, predictions: &[usize]) -> f64 {
        assert_eq!(predictions.len(), self.labels.len(), "length mismatch");
        let hits = predictions
            .iter()
            .zip(&self.labels)
            .filter(|(p, l)| p == l)
            .count();
        hits as f64 / self.labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ModelKind, ModelScale};
    use crate::quant::QuantizedGraph;

    fn reference() -> (QuantizedGraph, SyntheticDataset) {
        let g = ModelKind::VggNet.build(ModelScale::Tiny);
        let ds = SyntheticDataset::new(32, 32, 3, 10, 42);
        let q = QuantizedGraph::quantize(&g, 8, &ds.images(8)).unwrap();
        (q, ds)
    }

    #[test]
    fn images_are_deterministic() {
        let ds = SyntheticDataset::new(8, 8, 3, 4, 7);
        let (a, ca) = ds.image(3);
        let (b, cb) = ds.image(3);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn different_indices_differ() {
        let ds = SyntheticDataset::new(8, 8, 3, 4, 7);
        assert_ne!(ds.image(0).0, ds.image(1).0);
    }

    #[test]
    fn prototypes_are_bounded() {
        let ds = SyntheticDataset::new(16, 16, 3, 10, 9);
        for i in 0..20 {
            let (img, _) = ds.image(i);
            assert!(img.max_abs() < 5.0, "image {i} out of range");
        }
    }

    #[test]
    fn calibrated_accuracy_is_exact() {
        let (mut q, ds) = reference();
        let set = EvalSet::calibrated(&mut q, &ds, 40, 0.86, 1).unwrap();
        let preds: Vec<usize> = set
            .images
            .iter()
            .map(|img| q.predict(img).unwrap())
            .collect();
        let acc = set.accuracy(&preds);
        // round(0.86*40)=34 -> 0.85.
        assert!(
            (acc - (0.86f64 * 40.0).round() / 40.0).abs() < 1e-9,
            "{acc}"
        );
    }

    #[test]
    fn wrong_labels_never_equal_prediction() {
        let (mut q, ds) = reference();
        let set = EvalSet::calibrated(&mut q, &ds, 30, 0.5, 3).unwrap();
        let preds: Vec<usize> = set
            .images
            .iter()
            .map(|img| q.predict(img).unwrap())
            .collect();
        let hits = preds
            .iter()
            .zip(&set.labels)
            .filter(|(p, l)| p == l)
            .count();
        assert_eq!(hits, 15);
        for l in &set.labels {
            assert!(*l < 10);
        }
    }

    #[test]
    fn calibration_is_seed_stable() {
        let (mut q, ds) = reference();
        let a = EvalSet::calibrated(&mut q, &ds, 20, 0.8, 5).unwrap();
        let b = EvalSet::calibrated(&mut q, &ds, 20, 0.8, 5).unwrap();
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_checks_lengths() {
        let (mut q, ds) = reference();
        let set = EvalSet::calibrated(&mut q, &ds, 10, 0.8, 5).unwrap();
        set.accuracy(&[0; 3]);
    }
}

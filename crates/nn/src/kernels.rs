//! Optimized inference kernels: im2col + register/cache-blocked GEMM.
//!
//! Two regimes, two contracts:
//!
//! * **Float kernels** must be *bit-identical* to
//!   [`crate::reference::conv2d_f32`] / [`crate::reference::dense_f32`].
//!   `f32` addition is non-associative, so the optimized code reproduces
//!   the reference accumulation order exactly — per `(ky, kx)` kernel row
//!   a partial sum is folded sequentially from `0.0` over the channel
//!   chunk and then added to the bias-initialized accumulator, with
//!   out-of-bounds rows skipped (never zero-padded: `-0.0 + 0.0`
//!   normalizes the sign bit, which a skip does not). Speed comes from
//!   hoisting bounds checks out of the hot loops, gathering each output
//!   pixel's valid chunks into a contiguous im2col panel once, and
//!   running four output channels as independent accumulation chains so
//!   the sequential floating-point folds overlap in the pipeline.
//!
//! * **Integer kernels** accumulate `i8 × i8` products in `i32`, which is
//!   associative (wrapping arithmetic forms a group), so they are free to
//!   reorder: a zero-padded im2col panel is built for a tile of output
//!   pixels and multiplied as a cache-blocked GEMM — four output channels
//!   advance together so every panel load is reused across four weight
//!   rows, and the full `k·k·ic` dot product vectorizes cleanly. On
//!   x86-64 the GEMM microkernel is additionally compiled for AVX2 and
//!   selected by runtime feature detection; integer arithmetic is exact,
//!   so both code paths produce identical accumulators.
//!
//! All `_into` variants write into caller-provided buffers and borrow
//! their temporaries from a [`Scratch`] arena, so a warmed-up executor
//! performs no per-inference allocations.

use crate::graph::ConvParams;
use crate::tensor::{QTensor, Tensor};

/// Output-pixel tile width of the integer GEMM: the weight row fetched
/// for an output channel is reused across this many im2col panel rows
/// while hot in L1.
const QTILE: usize = 8;

/// Reusable kernel workspace (im2col panels and chunk tables). Create
/// once, thread through every kernel call; buffers grow to the largest
/// layer seen and are then reused allocation-free.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// f32 im2col panel: the valid input chunks of one output pixel.
    panel_f: Vec<f32>,
    /// Weight-row offsets of the valid chunks in `panel_f`.
    chunk_offs: Vec<usize>,
    /// i8 im2col panel: `QTILE` zero-padded rows of `k·k·ic` codes.
    panel_q: Vec<i8>,
}

impl Scratch {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Optimized float convolution writing into `out` (length `oh·ow·out_ch`).
///
/// Bit-identical to [`crate::reference::conv2d_f32`].
///
/// # Panics
///
/// Panics if a buffer length does not match the parameters.
pub fn conv2d_f32_into(
    input: &Tensor,
    p: &ConvParams,
    weights: &[f32],
    bias: &[f32],
    scratch: &mut Scratch,
    out: &mut [f32],
) {
    let (ih, iw, ic) = (input.h(), input.w(), input.c());
    let (oh, ow) = p.out_hw(ih, iw);
    assert_eq!(out.len(), oh * ow * p.out_ch, "output buffer length");
    assert_eq!(weights.len(), p.weight_count(), "weights length");
    assert_eq!(bias.len(), p.out_ch, "bias length");
    let data = input.data();
    let k2ic = p.k * p.k * ic;
    scratch.panel_f.resize(k2ic, 0.0);
    for oy in 0..oh {
        let base_y = (oy * p.stride) as isize - p.pad as isize;
        for ox in 0..ow {
            let base_x = (ox * p.stride) as isize - p.pad as isize;
            // im2col gather: copy this pixel's in-bounds chunks into one
            // contiguous panel row, remembering each chunk's offset into
            // the weight row. Chunks keep the reference's (ky, kx) order.
            scratch.chunk_offs.clear();
            let mut filled = 0usize;
            for ky in 0..p.k {
                let y = base_y + ky as isize;
                if y < 0 || y >= ih as isize {
                    continue;
                }
                for kx in 0..p.k {
                    let x = base_x + kx as isize;
                    if x < 0 || x >= iw as isize {
                        continue;
                    }
                    let in_off = ((y as usize) * iw + x as usize) * ic;
                    scratch.panel_f[filled..filled + ic]
                        .copy_from_slice(&data[in_off..in_off + ic]);
                    scratch.chunk_offs.push((ky * p.k + kx) * ic);
                    filled += ic;
                }
            }
            let panel = &scratch.panel_f[..filled];
            let chunks = &scratch.chunk_offs[..];
            let outs = &mut out[(oy * ow + ox) * p.out_ch..][..p.out_ch];
            // Register-blocked GEMV: four output channels advance four
            // independent accumulation chains over the shared panel, each
            // chain replaying the reference op sequence exactly.
            let mut oc = 0;
            while oc + 4 <= p.out_ch {
                let w0 = &weights[oc * k2ic..][..k2ic];
                let w1 = &weights[(oc + 1) * k2ic..][..k2ic];
                let w2 = &weights[(oc + 2) * k2ic..][..k2ic];
                let w3 = &weights[(oc + 3) * k2ic..][..k2ic];
                let (mut a0, mut a1, mut a2, mut a3) =
                    (bias[oc], bias[oc + 1], bias[oc + 2], bias[oc + 3]);
                for (ci, &woff) in chunks.iter().enumerate() {
                    let xs = &panel[ci * ic..][..ic];
                    let (mut p0, mut p1, mut p2, mut p3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    let ws0 = &w0[woff..][..ic];
                    let ws1 = &w1[woff..][..ic];
                    let ws2 = &w2[woff..][..ic];
                    let ws3 = &w3[woff..][..ic];
                    for ((((&x, &v0), &v1), &v2), &v3) in
                        xs.iter().zip(ws0).zip(ws1).zip(ws2).zip(ws3)
                    {
                        p0 += x * v0;
                        p1 += x * v1;
                        p2 += x * v2;
                        p3 += x * v3;
                    }
                    a0 += p0;
                    a1 += p1;
                    a2 += p2;
                    a3 += p3;
                }
                if p.relu {
                    a0 = a0.max(0.0);
                    a1 = a1.max(0.0);
                    a2 = a2.max(0.0);
                    a3 = a3.max(0.0);
                }
                outs[oc] = a0;
                outs[oc + 1] = a1;
                outs[oc + 2] = a2;
                outs[oc + 3] = a3;
                oc += 4;
            }
            while oc < p.out_ch {
                let w0 = &weights[oc * k2ic..][..k2ic];
                let mut a0 = bias[oc];
                for (ci, &woff) in chunks.iter().enumerate() {
                    let xs = &panel[ci * ic..][..ic];
                    let ws0 = &w0[woff..][..ic];
                    let mut p0 = 0.0f32;
                    for (&x, &v0) in xs.iter().zip(ws0) {
                        p0 += x * v0;
                    }
                    a0 += p0;
                }
                outs[oc] = if p.relu { a0.max(0.0) } else { a0 };
                oc += 1;
            }
        }
    }
}

/// Optimized float convolution returning a fresh tensor (convenience
/// wrapper over [`conv2d_f32_into`], signature-compatible with
/// [`crate::reference::conv2d_f32`]).
pub fn conv2d_f32(input: &Tensor, p: &ConvParams, weights: &[f32], bias: &[f32]) -> Tensor {
    let (oh, ow) = p.out_hw(input.h(), input.w());
    let mut out = Tensor::zeros(oh, ow, p.out_ch);
    let mut scratch = Scratch::new();
    conv2d_f32_into(input, p, weights, bias, &mut scratch, out.data_mut());
    out
}

/// Optimized float dense layer writing into `out` (length `out_len`).
///
/// Bit-identical to [`crate::reference::dense_f32`]: each output's dot
/// product folds sequentially from `0.0` and is added to the bias, with
/// four outputs advancing as independent chains.
///
/// # Panics
///
/// Panics if a buffer length does not match.
pub fn dense_f32_into(
    input: &[f32],
    out_len: usize,
    relu: bool,
    weights: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let n = input.len();
    assert_eq!(weights.len(), n * out_len, "weights length");
    assert_eq!(bias.len(), out_len, "bias length");
    assert_eq!(out.len(), out_len, "output buffer length");
    let mut o = 0;
    while o + 4 <= out_len {
        let w0 = &weights[o * n..][..n];
        let w1 = &weights[(o + 1) * n..][..n];
        let w2 = &weights[(o + 2) * n..][..n];
        let w3 = &weights[(o + 3) * n..][..n];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for ((((&x, &v0), &v1), &v2), &v3) in input.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
            s0 += x * v0;
            s1 += x * v1;
            s2 += x * v2;
            s3 += x * v3;
        }
        let (mut a0, mut a1, mut a2, mut a3) = (
            bias[o] + s0,
            bias[o + 1] + s1,
            bias[o + 2] + s2,
            bias[o + 3] + s3,
        );
        if relu {
            a0 = a0.max(0.0);
            a1 = a1.max(0.0);
            a2 = a2.max(0.0);
            a3 = a3.max(0.0);
        }
        out[o] = a0;
        out[o + 1] = a1;
        out[o + 2] = a2;
        out[o + 3] = a3;
        o += 4;
    }
    while o < out_len {
        let ws = &weights[o * n..][..n];
        let mut s = 0.0f32;
        for (&x, &w) in input.iter().zip(ws) {
            s += x * w;
        }
        let a = bias[o] + s;
        out[o] = if relu { a.max(0.0) } else { a };
        o += 1;
    }
}

/// Optimized float dense layer returning a fresh tensor.
pub fn dense_f32(
    input: &Tensor,
    out_len: usize,
    relu: bool,
    weights: &[f32],
    bias: &[f32],
) -> Tensor {
    let mut out = vec![0.0f32; out_len];
    dense_f32_into(input.data(), out_len, relu, weights, bias, &mut out);
    Tensor::vector(out)
}

/// Optimized integer convolution writing raw accumulators into `acc`
/// (length `oh·ow·out_ch`). Produces values identical to
/// [`crate::reference::conv2d_q`] — integer accumulation is associative,
/// so the blocked GEMM reorder is exact.
///
/// # Panics
///
/// Panics if a buffer length does not match.
pub fn conv2d_q_into(
    input: &QTensor,
    p: &ConvParams,
    wcodes: &[i8],
    bias_q: &[i32],
    scratch: &mut Scratch,
    acc: &mut [i32],
) {
    let (ih, iw, ic) = (input.h(), input.w(), input.c());
    let (oh, ow) = p.out_hw(ih, iw);
    assert_eq!(acc.len(), oh * ow * p.out_ch, "accumulator buffer length");
    assert_eq!(wcodes.len(), p.weight_count(), "weights length");
    assert_eq!(bias_q.len(), p.out_ch, "bias length");
    let k2ic = p.k * p.k * ic;
    let pixels = oh * ow;
    scratch.panel_q.resize(QTILE * k2ic, 0);
    let mut tile_start = 0usize;
    while tile_start < pixels {
        let tile = QTILE.min(pixels - tile_start);
        // Zero-padded im2col: out-of-bounds taps contribute exact zeros
        // in integer arithmetic, so every panel row has the full k·k·ic
        // layout of a weight row.
        for row in 0..tile {
            let pixel = tile_start + row;
            let (oy, ox) = (pixel / ow, pixel % ow);
            let base_y = (oy * p.stride) as isize - p.pad as isize;
            let base_x = (ox * p.stride) as isize - p.pad as isize;
            let prow = &mut scratch.panel_q[row * k2ic..][..k2ic];
            prow.fill(0);
            for ky in 0..p.k {
                let y = base_y + ky as isize;
                if y < 0 || y >= ih as isize {
                    continue;
                }
                let x_lo = (-base_x).clamp(0, p.k as isize) as usize;
                let x_hi = (iw as isize - base_x).clamp(0, p.k as isize) as usize;
                if x_lo >= x_hi {
                    continue;
                }
                let in_off = ((y as usize) * iw + (base_x + x_lo as isize) as usize) * ic;
                let w_off = (ky * p.k + x_lo) * ic;
                let len = (x_hi - x_lo) * ic;
                prow[w_off..w_off + len].copy_from_slice(&input.codes[in_off..in_off + len]);
            }
        }
        // Cache-blocked GEMM over the tile: weight rows stay hot in L1
        // across the tile's panel rows, four output channels per pass.
        gemm_q_dispatch(
            &scratch.panel_q[..QTILE * k2ic],
            tile,
            k2ic,
            wcodes,
            p.out_ch,
            bias_q,
            &mut acc[tile_start * p.out_ch..][..tile * p.out_ch],
        );
        tile_start += tile;
    }
}

/// The integer GEMM microkernel: `tile` panel rows × `out_ch` weight
/// rows, `acc[row * out_ch + oc] = bias[oc] + panel_row · weight_row`.
///
/// Four output channels advance as interleaved reductions so each panel
/// element is loaded once per four weight rows; integer accumulation is
/// associative, so the autovectorizer is free to widen the chains.
///
/// `#[inline(always)]` so the body inlines into both the baseline and
/// the [`gemm_q_avx2`] wrapper and is compiled at each feature level.
#[inline(always)]
fn gemm_q(
    panel: &[i8],
    tile: usize,
    k2ic: usize,
    wcodes: &[i8],
    out_ch: usize,
    bias_q: &[i32],
    acc: &mut [i32],
) {
    for row in 0..tile {
        let prow = &panel[row * k2ic..][..k2ic];
        let outs = &mut acc[row * out_ch..][..out_ch];
        let mut oc = 0;
        while oc + 4 <= out_ch {
            let w0 = &wcodes[oc * k2ic..][..k2ic];
            let w1 = &wcodes[(oc + 1) * k2ic..][..k2ic];
            let w2 = &wcodes[(oc + 2) * k2ic..][..k2ic];
            let w3 = &wcodes[(oc + 3) * k2ic..][..k2ic];
            let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
            for ((((&x, &v0), &v1), &v2), &v3) in prow.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
                let xw = i32::from(x);
                s0 += xw * i32::from(v0);
                s1 += xw * i32::from(v1);
                s2 += xw * i32::from(v2);
                s3 += xw * i32::from(v3);
            }
            outs[oc] = bias_q[oc] + s0;
            outs[oc + 1] = bias_q[oc + 1] + s1;
            outs[oc + 2] = bias_q[oc + 2] + s2;
            outs[oc + 3] = bias_q[oc + 3] + s3;
            oc += 4;
        }
        while oc < out_ch {
            let ws = &wcodes[oc * k2ic..][..k2ic];
            let mut sum = 0i32;
            for (&x, &w) in prow.iter().zip(ws) {
                sum += i32::from(x) * i32::from(w);
            }
            outs[oc] = bias_q[oc] + sum;
            oc += 1;
        }
    }
}

/// [`gemm_q`] recompiled with AVX2 enabled (256-bit widening multiplies).
///
/// # Safety
///
/// The caller must have verified AVX2 support
/// (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_q_avx2(
    panel: &[i8],
    tile: usize,
    k2ic: usize,
    wcodes: &[i8],
    out_ch: usize,
    bias_q: &[i32],
    acc: &mut [i32],
) {
    gemm_q(panel, tile, k2ic, wcodes, out_ch, bias_q, acc)
}

/// Picks the widest microkernel the CPU supports. The feature probe is a
/// cached atomic load in `std`, so dispatching per tile is free.
fn gemm_q_dispatch(
    panel: &[i8],
    tile: usize,
    k2ic: usize,
    wcodes: &[i8],
    out_ch: usize,
    bias_q: &[i32],
    acc: &mut [i32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified.
        return unsafe { gemm_q_avx2(panel, tile, k2ic, wcodes, out_ch, bias_q, acc) };
    }
    gemm_q(panel, tile, k2ic, wcodes, out_ch, bias_q, acc)
}

/// Optimized integer convolution returning fresh accumulators.
pub fn conv2d_q(input: &QTensor, p: &ConvParams, wcodes: &[i8], bias_q: &[i32]) -> Vec<i32> {
    let (oh, ow) = p.out_hw(input.h(), input.w());
    let mut acc = vec![0i32; oh * ow * p.out_ch];
    let mut scratch = Scratch::new();
    conv2d_q_into(input, p, wcodes, bias_q, &mut scratch, &mut acc);
    acc
}

/// Optimized integer dense layer writing raw accumulators into `acc`.
/// Identical values to [`crate::reference::dense_q`].
///
/// # Panics
///
/// Panics if a buffer length does not match.
pub fn dense_q_into(
    input: &QTensor,
    in_len: usize,
    out_len: usize,
    wcodes: &[i8],
    bias_q: &[i32],
    acc: &mut [i32],
) {
    debug_assert_eq!(input.codes.len(), in_len);
    assert_eq!(wcodes.len(), in_len * out_len, "weights length");
    assert_eq!(bias_q.len(), out_len, "bias length");
    assert_eq!(acc.len(), out_len, "accumulator buffer length");
    // A dense layer is a one-row GEMM: the input vector is the panel.
    gemm_q_dispatch(&input.codes, 1, in_len, wcodes, out_len, bias_q, acc);
}

/// Optimized integer dense layer returning fresh accumulators.
pub fn dense_q(
    input: &QTensor,
    in_len: usize,
    out_len: usize,
    wcodes: &[i8],
    bias_q: &[i32],
) -> Vec<i32> {
    let mut acc = vec![0i32; out_len];
    dense_q_into(input, in_len, out_len, wcodes, bias_q, &mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn tensor(h: usize, w: usize, c: usize, seed: f32) -> Tensor {
        Tensor::from_vec(
            h,
            w,
            c,
            (0..h * w * c)
                .map(|i| ((i as f32 + seed) * 0.37).sin())
                .collect(),
        )
    }

    fn qtensor(h: usize, w: usize, c: usize, seed: i32) -> QTensor {
        let mut q = QTensor::zeros(h, w, c, 0.05);
        for (i, code) in q.codes.iter_mut().enumerate() {
            *code = (((i as i32 * 37 + seed * 11) % 255) - 127) as i8;
        }
        q
    }

    #[test]
    fn conv_f32_matches_reference_bitwise() {
        for (k, stride, pad, in_ch, out_ch) in [
            (3, 1, 1, 3, 7),
            (1, 1, 0, 4, 4),
            (5, 2, 2, 2, 6),
            (3, 2, 0, 1, 5),
        ] {
            let p = ConvParams {
                in_ch,
                out_ch,
                k,
                stride,
                pad,
                relu: k % 2 == 1,
            };
            let input = tensor(7, 6, in_ch, k as f32);
            let weights: Vec<f32> = (0..p.weight_count())
                .map(|i| ((i as f32) * 0.73).cos())
                .collect();
            let bias: Vec<f32> = (0..out_ch).map(|i| (i as f32) * 0.11 - 0.3).collect();
            let want = reference::conv2d_f32(&input, &p, &weights, &bias);
            let got = conv2d_f32(&input, &p, &weights, &bias);
            assert_eq!(
                want.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "k={k} stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn dense_f32_matches_reference_bitwise() {
        for out_len in [1, 3, 4, 9] {
            let input = tensor(1, 1, 17, 0.5);
            let weights: Vec<f32> = (0..17 * out_len)
                .map(|i| ((i as f32) * 0.31).sin())
                .collect();
            let bias: Vec<f32> = (0..out_len).map(|i| (i as f32) * 0.2 - 0.4).collect();
            let want = reference::dense_f32(&input, out_len, out_len % 2 == 0, &weights, &bias);
            let got = dense_f32(&input, out_len, out_len % 2 == 0, &weights, &bias);
            assert_eq!(
                want.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn conv_q_matches_reference() {
        for (k, stride, pad, in_ch, out_ch) in [
            (3, 1, 1, 3, 7),
            (1, 1, 0, 4, 4),
            (5, 2, 2, 2, 6),
            (3, 3, 0, 1, 5),
        ] {
            let p = ConvParams {
                in_ch,
                out_ch,
                k,
                stride,
                pad,
                relu: false,
            };
            let input = qtensor(7, 9, in_ch, k as i32);
            let wcodes: Vec<i8> = (0..p.weight_count())
                .map(|i| (((i * 29) % 255) as i32 - 127) as i8)
                .collect();
            let bias_q: Vec<i32> = (0..out_ch).map(|i| i as i32 * 100 - 250).collect();
            assert_eq!(
                reference::conv2d_q(&input, &p, &wcodes, &bias_q),
                conv2d_q(&input, &p, &wcodes, &bias_q),
                "k={k} stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn dense_q_matches_reference() {
        let input = qtensor(1, 1, 23, 3);
        let wcodes: Vec<i8> = (0..23 * 5)
            .map(|i| (((i * 17) % 255) - 127) as i8)
            .collect();
        let bias_q: Vec<i32> = vec![5, -7, 0, 999, -12345];
        assert_eq!(
            reference::dense_q(&input, 23, 5, &wcodes, &bias_q),
            dense_q(&input, 23, 5, &wcodes, &bias_q)
        );
    }
}

//! Linear-readout training (softmax regression).
//!
//! The benchmark models use frozen seeded-random convolutional features
//! with a *trained* linear classifier on top (see
//! [`crate::graph::Graph::fit_readout`]), which restores the decision
//! margins of a trained network. The same trainer is reused for
//! quantization-aware recalibration: after quantizing the backbone, the
//! readout is refitted on the *quantized* features, mirroring the DECENT
//! toolchain's quantize-then-finetune flow (§3.1).

/// Trains `weights`/`bias` (row-major `[classes][dim]`) by full-batch
/// softmax regression with L2 decay.
///
/// # Panics
///
/// Panics if buffer sizes disagree or a label is out of range.
#[allow(clippy::too_many_arguments)] // full training-problem description
pub fn fit_softmax_regression(
    features: &[Vec<f32>],
    labels: &[usize],
    dim: usize,
    classes: usize,
    weights: &mut [f32],
    bias: &mut [f32],
    epochs: usize,
    learning_rate: f32,
) {
    assert_eq!(features.len(), labels.len(), "features/labels mismatch");
    assert_eq!(weights.len(), dim * classes, "weight buffer size");
    assert_eq!(bias.len(), classes, "bias buffer size");
    for f in features {
        assert_eq!(f.len(), dim, "feature dimension");
    }
    for &label in labels {
        assert!(label < classes, "label {label} out of range");
    }
    if features.is_empty() {
        return;
    }
    let n = features.len() as f32;
    let decay = 1e-5f32;
    for _ in 0..epochs {
        let mut grad_w = vec![0.0f32; weights.len()];
        let mut grad_b = vec![0.0f32; classes];
        for (f, &label) in features.iter().zip(labels) {
            let mut logits = vec![0.0f32; classes];
            for (k, l) in logits.iter_mut().enumerate() {
                let row = &weights[k * dim..(k + 1) * dim];
                *l = bias[k] + f.iter().zip(row).map(|(a, b)| a * b).sum::<f32>();
            }
            let m = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let exps: Vec<f32> = logits.iter().map(|&z| (z - m).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for k in 0..classes {
                let p = exps[k] / sum;
                let err = p - if k == label { 1.0 } else { 0.0 };
                grad_b[k] += err;
                let gw = &mut grad_w[k * dim..(k + 1) * dim];
                for (g, &x) in gw.iter_mut().zip(f) {
                    *g += err * x;
                }
            }
        }
        for (w, g) in weights.iter_mut().zip(&grad_w) {
            *w -= learning_rate * (g / n + decay * *w);
        }
        for (b, g) in bias.iter_mut().zip(&grad_b) {
            *b -= learning_rate * g / n;
        }
    }
}

/// Classification accuracy of a linear readout on features.
pub fn readout_accuracy(
    features: &[Vec<f32>],
    labels: &[usize],
    dim: usize,
    classes: usize,
    weights: &[f32],
    bias: &[f32],
) -> f64 {
    let mut hits = 0usize;
    for (f, &label) in features.iter().zip(labels) {
        let mut best = 0usize;
        let mut best_z = f32::NEG_INFINITY;
        for k in 0..classes {
            let row = &weights[k * dim..(k + 1) * dim];
            let z = bias[k] + f.iter().zip(row).map(|(a, b)| a * b).sum::<f32>();
            if z > best_z {
                best_z = z;
                best = k;
            }
        }
        if best == label {
            hits += 1;
        }
    }
    hits as f64 / labels.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use redvolt_num::rng::Xoshiro256StarStar;

    fn separable_problem(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        // Three well-separated Gaussian blobs in 8 dimensions.
        let mut rng = Xoshiro256StarStar::seed_from(5);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let mut f = vec![0.0f32; 8];
            for (d, v) in f.iter_mut().enumerate() {
                let center = if d % 3 == class { 2.0 } else { -1.0 };
                *v = center + rng.next_gaussian(0.0, 0.3) as f32;
            }
            features.push(f);
            labels.push(class);
        }
        (features, labels)
    }

    #[test]
    fn learns_a_separable_problem() {
        let (features, labels) = separable_problem(90);
        let mut w = vec![0.0f32; 8 * 3];
        let mut b = vec![0.0f32; 3];
        fit_softmax_regression(&features, &labels, 8, 3, &mut w, &mut b, 200, 0.5);
        let acc = readout_accuracy(&features, &labels, 8, 3, &w, &b);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn zero_epochs_is_a_no_op() {
        let (features, labels) = separable_problem(9);
        let mut w = vec![0.5f32; 24];
        let mut b = vec![0.1f32; 3];
        let (w0, b0) = (w.clone(), b.clone());
        fit_softmax_regression(&features, &labels, 8, 3, &mut w, &mut b, 0, 0.5);
        assert_eq!(w, w0);
        assert_eq!(b, b0);
    }

    #[test]
    #[should_panic(expected = "label 7 out of range")]
    fn rejects_out_of_range_labels() {
        let mut w = vec![0.0f32; 8 * 3];
        let mut b = vec![0.0f32; 3];
        fit_softmax_regression(&[vec![0.0; 8]], &[7], 8, 3, &mut w, &mut b, 1, 0.1);
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        assert_eq!(readout_accuracy(&[], &[], 4, 2, &[0.0; 8], &[0.0; 2]), 0.0);
    }
}
